//! Command-line interface support for the `qar` binary.
//!
//! Kept in the library so the parsing and plumbing are unit-testable; the
//! binary in `src/bin/qar.rs` is a thin `main`.
//!
//! ```text
//! qar mine  --input data.csv --schema age:quant,married:cat [options]
//! qar generate credit|people|planted --records N [--seed S] [--output f]
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use qar_analytics::AnalyticsConfig;
use qar_core::{
    encoding_fingerprint, mine_source, mine_source_captured, update_precheck, CapturedCounts,
    ChunkedSource, CountError, CountSource, InMemorySource, InterestConfig, InterestMode,
    MergeSource, Miner, MinerConfig, MinerError, MiningOutput, PartitionSpec, PartitionStrategy,
    QuantRule, RuleInterest, ScanKernel, SupportCounts, UpdateInput,
};
use qar_dist::{
    mine_distributed, mine_distributed_captured, Backing, Cluster, ClusterOptions, DistOptions,
    DistSource, WorkerSpawn,
};
use qar_prng::Prng;
use qar_store::protocol::{Query, QueryOptions, Request, Response};
use qar_store::serve::ServeClient;
use qar_store::{
    analytics_from_encoded, analytics_from_mining, section_inventory, Catalog, RankBy, RuleIndex,
    Server, ServerConfig,
};
use qar_table::{csv, AttributeKind, EncodedTable, Schema, SchemaBuilder, Table, Value};
use qar_trace::{event::micros, CancelToken, ProgressSink, TraceEvent, TraceFormat, WriterSink};

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Mine rules from a CSV file.
    Mine(MineArgs),
    /// Generate a synthetic dataset as CSV.
    Generate(GenerateArgs),
    /// Validate a JSON-lines trace stream against the event schema.
    TraceCheck(TraceCheckArgs),
    /// Query a stored rule catalog.
    Query(QueryArgs),
    /// Backfill rule analytics into an existing catalog.
    Analyze(AnalyzeArgs),
    /// Validate a `.qarcat` catalog file.
    StoreCheck(StoreCheckArgs),
    /// Differentially fuzz every mining path against its references.
    Fuzz(FuzzArgs),
    /// Serve one or more catalogs over TCP.
    Serve(ServeArgs),
    /// Benchmark a rule server with concurrent clients.
    BenchServe(BenchServeArgs),
    /// Benchmark the analytics subsystem (closed-form + Shapley).
    BenchAnalytics(BenchAnalyticsArgs),
    /// Benchmark count-distribution counting against the serial scan.
    BenchDist(BenchDistArgs),
    /// Benchmark an incremental catalog update against a full re-mine.
    BenchUpdate(BenchUpdateArgs),
    /// Run as a counting worker connected to a mine coordinator.
    Worker(WorkerArgs),
    /// Print usage.
    Help,
}

/// Arguments of `qar worker`.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerArgs {
    /// Coordinator address (`HOST:PORT`) to connect to.
    pub connect: String,
    /// Threads per counting scan (0 = all cores).
    pub threads: usize,
    /// Scan kernel for candidate counting.
    pub kernel: ScanKernel,
}

/// Arguments of `qar bench-dist`.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDistArgs {
    /// Planted-dataset records the benchmark table holds.
    pub records: usize,
    /// Worker partitions the counting is distributed over.
    pub workers: usize,
    /// Minimum counting speedup; the run fails below this (0 = off).
    pub floor: f64,
    /// Where the machine-readable summary JSON goes; `None` falls back
    /// to `$QAR_BENCH_OUT`, then `BENCH_dist.json`.
    pub out: Option<String>,
}

/// Arguments of `qar bench-update`.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchUpdateArgs {
    /// Base-table records mined (with counts) before the delta arrives.
    pub records: usize,
    /// Appended delta size, as a fraction of the base table.
    pub delta: f64,
    /// Minimum update-vs-remine speedup; the run fails below this
    /// (0 = off).
    pub floor: f64,
    /// Where the machine-readable summary JSON goes; `None` falls back
    /// to `$QAR_BENCH_OUT`, then `BENCH_update.json`.
    pub out: Option<String>,
}

/// Arguments of `qar mine`.
#[derive(Debug, Clone, PartialEq)]
pub struct MineArgs {
    /// CSV path ("-" = stdin).
    pub input: String,
    /// Attribute declarations, `name:quant` / `name:cat`, in CSV header
    /// order (any order relative to the file's header is fine — matching
    /// is by name).
    pub schema: Vec<(String, bool)>,
    /// Miner configuration assembled from the flags.
    pub config: MinerConfig,
    /// Print at most this many rules (0 = all).
    pub top: usize,
    /// Show only interesting rules when an interest level is set.
    pub interesting_only: bool,
    /// Output format.
    pub format: OutputFormat,
    /// Taxonomy files: `(attribute, path)` pairs from `--taxonomy a=path`.
    pub taxonomy_files: Vec<(String, String)>,
    /// Emit per-pass trace events to stderr in this format.
    pub trace: Option<TraceFormat>,
    /// Abort the run after this many seconds, reporting partial progress.
    pub deadline: Option<f64>,
    /// Also write the mined ruleset to this `.qarcat` catalog file.
    pub store: Option<String>,
    /// Compute rule analytics (lift, conviction, chi², J-measure,
    /// Shapley attribution) and persist them in the stored catalog.
    pub analytics: bool,
    /// Distribute the counting passes over this many worker processes
    /// (0 = mine serially in this process).
    pub workers: usize,
    /// Stream the CSV in row blocks of this size and spill encoded
    /// chunks to disk instead of loading the table into memory
    /// (0 = in-memory).
    pub chunk_rows: usize,
    /// Zero the volatile statistics (timings, kernels) before storing or
    /// reporting, so identical inputs give byte-identical catalogs.
    pub normalize_stats: bool,
    /// Incremental mode: update this existing `.qarcat` catalog by
    /// scanning only the delta rows in `--input`, merging them with the
    /// catalog's persisted support counts. The catalog's schema and
    /// semantic configuration are authoritative; the refreshed catalog is
    /// rewritten in place unless `--store` redirects it.
    pub update: Option<String>,
    /// Deprecation warnings this command line earned; the binary prints
    /// each to stderr before running.
    pub warnings: Vec<String>,
}

/// Arguments of `qar trace-check`.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceCheckArgs {
    /// Trace file to validate; `-` (the default) reads stdin.
    pub input: String,
    /// Schema file path; `None` uses the checked-in default
    /// (`schemas/trace_events.schema.json`).
    pub schema: Option<String>,
}

/// Arguments of `qar query`.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryArgs {
    /// Catalog path (`-` = stdin).
    pub catalog: String,
    /// Point query: `attr=value,...` — rules whose antecedents cover
    /// this record.
    pub record: Option<String>,
    /// Overlap query: `attr=lo..hi` — rules mentioning this value range.
    pub range: Option<String>,
    /// Keep only the first N rules after ranking (`None` = all).
    pub top_k: Option<usize>,
    /// Ranking metric; `None` preserves the catalog's mined order.
    pub by: Option<RankBy>,
    /// Keep only rules with `lift >= min_lift` (needs analytics).
    pub min_lift: Option<f64>,
    /// Keep only rules with BH-adjusted `p <= max_p` (needs analytics).
    pub max_p: Option<f64>,
    /// Output format.
    pub format: OutputFormat,
    /// Emit store trace events (catalog load, index build) to stderr.
    pub trace: Option<TraceFormat>,
}

/// Arguments of `qar analyze`.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzeArgs {
    /// Catalog file to backfill (a real path — it is rewritten in place
    /// unless `--output` redirects).
    pub catalog: String,
    /// The catalog's source data as CSV (`-` = stdin); must have the
    /// same row count the catalog was mined from.
    pub input: String,
    /// Monte-Carlo permutations per rule for the Shapley attribution.
    pub samples: u32,
    /// Base seed for the deterministic Shapley sampler.
    pub seed: u64,
    /// Destination path; `None` rewrites the catalog in place.
    pub output: Option<String>,
    /// Emit store trace events to stderr in this format.
    pub trace: Option<TraceFormat>,
}

/// Arguments of `qar bench-analytics`.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchAnalyticsArgs {
    /// Planted-dataset records to mine the benchmark ruleset from.
    pub records: usize,
    /// Shapley samples per rule in the attribution timing.
    pub samples: u32,
    /// Minimum closed-form rules/sec; the run fails below this (0 = off).
    pub floor: f64,
    /// Where the machine-readable summary JSON goes; `None` falls back
    /// to `$QAR_BENCH_OUT`, then `BENCH_analytics.json`.
    pub out: Option<String>,
}

/// Arguments of `qar store-check`.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreCheckArgs {
    /// Catalog file to validate; `-` (the default) reads stdin.
    pub input: String,
}

/// Arguments of `qar fuzz`.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzArgs {
    /// Number of fuzz iterations.
    pub iters: u64,
    /// Base RNG seed; each iteration derives its own replayable seed.
    pub seed: u64,
    /// Directory minimized repro fixtures are written to.
    pub out: String,
}

/// Arguments of `qar serve`.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeArgs {
    /// `.qarcat` paths to serve; each becomes a slot named after its
    /// file stem.
    pub catalogs: Vec<String>,
    /// TCP port on 127.0.0.1 (0 lets the OS pick; the bound address is
    /// printed on startup).
    pub port: u16,
    /// Connection worker threads (0 = one per CPU). Each live connection
    /// occupies one worker, so size this to the expected concurrent
    /// client count.
    pub threads: usize,
    /// Emit server trace events to stderr in this format.
    pub trace: Option<TraceFormat>,
}

/// Arguments of `qar bench-serve`.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchServeArgs {
    /// Benchmark an already-running server at this address instead of
    /// spinning one up in-process.
    pub addr: Option<String>,
    /// Catalog the workload queries are drawn from. Required context for
    /// realistic queries; without it (addr mode only) the workload falls
    /// back to a generic query space.
    pub catalog: Option<String>,
    /// Concurrent client connections.
    pub clients: usize,
    /// Requests sent per client.
    pub requests: usize,
    /// Server worker threads in self-hosted mode (0 = one per client).
    pub threads: usize,
    /// Minimum aggregate queries/sec; the run fails below this (0 = off).
    pub floor: f64,
    /// Send a shutdown frame to an `--addr` server when done.
    pub shutdown: bool,
    /// Where the machine-readable summary JSON goes; `None` falls back
    /// to `$QAR_BENCH_OUT`, then `BENCH_serve.json`.
    pub out: Option<String>,
}

/// Output format for `qar mine`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputFormat {
    /// Human-readable report (default).
    #[default]
    Text,
    /// CSV with one rule per line.
    Csv,
    /// A JSON array of rule objects.
    Json,
}

/// Arguments of `qar generate`.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerateArgs {
    /// Which dataset: "credit", "people", or "planted".
    pub dataset: String,
    /// Number of records (ignored for "people").
    pub records: usize,
    /// RNG seed.
    pub seed: u64,
    /// Output path ("-" = stdout).
    pub output: String,
}

/// CLI errors with user-facing messages.
#[derive(Debug, Clone, PartialEq)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// Usage text.
pub const USAGE: &str = "\
qar — mine quantitative association rules (Srikant & Agrawal, SIGMOD '96)

USAGE:
  qar mine --input FILE --schema DECLS [options]
  qar generate DATASET [--records N] [--seed S] [--output FILE]
  qar query CATALOG [--record K=V,...|--range A=LO..HI] [--top-k N] [--by M]
  qar analyze CATALOG --input FILE [--samples N] [--seed S] [--output FILE]
  qar store-check [CATALOG]
  qar trace-check [TRACE] [--schema FILE]
  qar fuzz [--iters N] [--seed S] [--out DIR]
  qar serve CATALOG... [--port P] [--threads N] [--trace F]
  qar worker --connect HOST:PORT [--threads N] [--kernel K]
  qar bench-serve [--addr HOST:PORT] [--catalog FILE] [options]
  qar bench-analytics [--records N] [--samples N] [--floor R] [--out FILE]
  qar bench-dist [--records N] [--workers W] [--floor R] [--out FILE]
  qar bench-update [--records N] [--delta F] [--floor R] [--out FILE]
  qar help

MINE OPTIONS:
  --input FILE          CSV file with a header row (\"-\" for stdin)
  --schema DECLS        comma-separated `name:quant` / `name:cat`
  --minsup F            minimum support fraction        [default 0.2]
  --minconf F           minimum confidence              [default 0.25]
  --maxsup F            maximum combined-range support  [default 0.4]
  --completeness K      partial completeness level      [default 2.0]
  --intervals N         fixed interval count (overrides --completeness)
  --no-partition        mine raw values (small domains only)
  --strategy S          equidepth | equiwidth | kmeans  [default equidepth]
  --interest R          interest level (> 1); omit to keep all rules
  --interest-mode M     and | or                        [default or]
  --max-size K          cap itemset size (0 = unbounded)
  --threads N           counting worker threads (0 = all cores) [default 0]
  --kernel K            support-counting scan kernel: auto | direct |
                        memoized | bitmask              [default auto]
  --no-memoize          deprecated alias for --kernel direct
  --top N               print at most N rules (0 = all) [default 50]
  --all-rules           print pruned rules too (with a * marker)
  --format F            text | csv | json               [default text]
                        (csv/json always export ALL rules with verdicts)
  --taxonomy A=FILE     is-a taxonomy for categorical attribute A; FILE has
                        one `child,parent` edge per line (repeatable)
  --trace F             emit per-pass trace events to stderr: json | text
  --deadline SECS       abort after SECS seconds, reporting partial progress
  --store FILE          also write the ruleset to FILE as a .qarcat catalog
                        (query it later with `qar query`, no re-mining)
  --analytics           compute rule analytics (lift, conviction, leverage,
                        chi² + BH-adjusted p, J-measure, Shapley attribution)
                        from the mine's own counts and persist them in the
                        stored catalog (requires --store; incompatible with
                        --workers / --chunk-rows)
  --workers N           distribute the counting passes over N worker
                        processes (spawned from this binary as
                        `qar worker`); candidate generation, frequency
                        decisions, and rule generation stay in the
                        coordinator, and the result is bit-identical to a
                        serial run                      [default 0 = serial]
  --chunk-rows N        stream the CSV in N-row blocks and spill encoded
                        chunks to a temp directory, mining out-of-core
                        with one chunk in memory at a time; needs a real
                        --input file (read twice)    [default 0 = in-memory]
  --normalize-stats     zero the volatile statistics (timings, kernel
                        names) before storing/reporting so identical
                        inputs give byte-identical .qarcat catalogs
                        across serial, --workers, and --chunk-rows runs
  --update CATALOG      incremental mode: treat --input as the rows
                        APPENDED since CATALOG was mined, scan only
                        them, and merge with the catalog's persisted
                        support counts (a catalog stored by `qar mine
                        --store` carries them). Schema, thresholds, and
                        partitioning come from the catalog, so the
                        corresponding flags are rejected; the refreshed
                        catalog rewrites CATALOG in place unless --store
                        redirects it. The result is identical to mining
                        base+delta from scratch; when the delta would
                        change the encoding (interval repartitioning, an
                        unseen value) or a support crosses a threshold,
                        the update stops with an `incremental_fallback`
                        trace event and an error naming the reason —
                        re-mine from the full data then

GENERATE:
  DATASET               credit | people | planted
  --records N           number of records               [default 10000]
  --seed S              RNG seed                        [default 1996]
  --output FILE         destination (\"-\" for stdout)  [default -]

QUERY:
  CATALOG               .qarcat file written by `qar mine --store`
                        (\"-\" reads the catalog from stdin)
  --record K=V,...      rules that FIRE for this record: every antecedent
                        item is satisfied by the record's value on that
                        attribute
  --range A=LO..HI      rules MENTIONING quantitative attribute A on
                        [LO, HI] (either rule side, bounds inclusive)
  --top-k N             keep only the first N rules after ranking (0 = all)
  --by M                rank by support | confidence | interest, or — with
                        an analytics section — lift | conviction | chi2 |
                        jmeasure   [default: the catalog's mined order]
  --min-lift F          keep only rules with lift >= F (needs analytics)
  --max-p F             keep only rules with BH-adjusted p <= F (needs
                        analytics)
  --format F            text | csv | json               [default text]

ANALYZE:
  Backfills the ANALYTICS section into a catalog mined before analytics
  existed (or re-computes it with different sampling). Re-encodes the
  catalog's source CSV with the catalog's own encoders and counts
  support by direct scan; the result is bit-identical to what
  `qar mine --analytics` would have stored.
  CATALOG               .qarcat file to annotate (rewritten in place)
  --input FILE          the catalog's source data as CSV (\"-\" = stdin);
                        row count must match the catalog
  --samples N           Shapley permutations per rule     [default 64]
  --seed S              Shapley sampler base seed
  --output FILE         write the annotated catalog here instead of
                        rewriting CATALOG in place
  --trace F             emit store trace events to stderr: json | text

STORE-CHECK:
  Decodes a .qarcat catalog (\"-\" or no argument reads stdin), verifying
  magic, version, section checksums, and structural invariants, then
  prints a summary and a section inventory (tag, length, CRC verdict,
  and how many unknown trailing sections this version skips). Exits
  non-zero on any corruption.

TRACE-CHECK:
  Reads a JSON-lines trace stream (as written by --trace json) from TRACE
  (\"-\" or no argument reads stdin) and validates every event against the
  trace-event schema.
  --schema FILE         schema to validate against
                        [default schemas/trace_events.schema.json]

FUZZ:
  Draws random tables and configurations (skewed toward boundary cases)
  and cross-checks every mining path — serial, parallel, the brute-force
  reference, the apriori bridge, the catalog round trip, the memoized
  scan cache on duplicate-heavy tables, and the bitmask scan kernel on
  boundary-skewed tables — for agreement. On divergence the failing
  case is shrunk to a minimal repro and written as a fixture under
  --out; the exit code is non-zero.
  --iters N             fuzz iterations                 [default 200]
  --seed S              base RNG seed (each iteration derives a
                        replayable per-case seed)       [default 42]
  --out DIR             fixture directory    [default tests/fuzz_repros]

SERVE:
  Long-lived rule-serving daemon on 127.0.0.1. Loads each CATALOG into a
  slot named after its file stem and answers point / range / top-k /
  batch queries over a length-prefixed, CRC-framed TCP protocol (see
  DESIGN.md §12). Prints `listening on ADDR` once bound, then blocks.
  Stop it with a shutdown frame (`qar bench-serve --addr A --shutdown`).
  Catalogs hot-reload in place on a reload frame; in-flight queries
  finish on the old snapshot.
  --port P              TCP port (0 = OS-assigned)      [default 0]
  --threads N           connection workers (0 = one per CPU); each live
                        connection occupies one worker  [default 0]
  --trace F             emit server trace events to stderr: json | text

WORKER:
  Counting worker for distributed mining. Connects to a `qar mine
  --workers N` coordinator, receives the schema, encoders, and its row
  partition over the wire, and answers per-pass counting requests with
  raw u64 tallies until the coordinator shuts it down. Normally spawned
  by the coordinator itself; run it by hand only to place workers on
  other machines or debug the protocol.
  --connect HOST:PORT   coordinator address (required)
  --threads N           threads per counting scan (0 = all cores)
  --kernel K            scan kernel: auto | direct | memoized | bitmask
                        [default auto]

BENCH-SERVE:
  Drives a mixed point/range/top-k/batch workload from concurrent client
  connections, reports p50/p99 request latency and aggregate throughput,
  and writes a summary JSON line to BENCH_serve.json. Without --addr it
  mines a planted catalog and serves it in-process on an OS-assigned
  port. Exits non-zero below the throughput floor.
  --addr HOST:PORT      benchmark an already-running server
  --catalog FILE        catalog to draw realistic queries from (used as
                        the slot name via its file stem; in self-hosted
                        mode also the catalog served)
  --clients N           concurrent connections          [default 8]
  --requests M          requests per client             [default 2000]
                        (QAR_BENCH_QUICK=1 caps this at 300)
  --threads N           self-hosted server workers (0 = one per client)
  --floor Q             fail under Q aggregate queries/sec (0 = off)
                        [default 50000]
  --shutdown            send a shutdown frame to an --addr server after
                        the run
  --out FILE            summary JSON destination
                        [default $QAR_BENCH_OUT, then BENCH_serve.json]

BENCH-ANALYTICS:
  Mines a planted catalog, then times the analytics subsystem: the
  closed-form measures (lift, conviction, leverage, chi² + p, J-measure,
  BH correction) as rules/sec and the Monte-Carlo Shapley attribution as
  samples/sec. Writes a summary JSON line to BENCH_analytics.json.
  Exits non-zero below the closed-form floor.
  --records N           planted records to mine         [default 5000]
                        (QAR_BENCH_QUICK=1 caps this at 1000)
  --samples N           Shapley permutations per rule   [default 64]
  --floor R             fail under R closed-form rules/sec (0 = off)
                        [default 500]
  --out FILE            summary JSON destination
                        [default $QAR_BENCH_OUT, then BENCH_analytics.json]

BENCH-DIST:
  Measures what count distribution buys per pass: mines a planted table
  once, timing every counting pass twice — a single serial scan over the
  whole table, and the distributed critical path (the slowest of W
  equal contiguous partitions scanned with the same single-threaded
  kernel, plus the coordinator's element-wise merge). The reported
  speedup = serial / (critical path + merge) isolates the algorithmic
  gain from host core count, so it holds on a single-core machine; it
  still falls below W when merge overhead or partition skew eats the
  margin. Every pass asserts the merged partition counts equal the
  serial counts. Writes a summary JSON line to BENCH_dist.json and
  exits non-zero below the floor.
  --records N           planted records to mine      [default 10000000]
                        (QAR_BENCH_QUICK=1 caps this at 200000)
  --workers W           partitions to distribute over   [default 2]
  --floor R             fail under speedup R (0 = off)  [default 1.6]
  --out FILE            summary JSON destination
                        [default $QAR_BENCH_OUT, then BENCH_dist.json]

BENCH-UPDATE:
  Measures what persisted counts buy: synthesizes a small-domain table,
  mines the base with count capture, appends a --delta fraction of new
  rows, then times a full re-mine of base+delta against an incremental
  `--update` (delta-only scan merged with the persisted counts). Every
  run asserts the update stayed on the incremental path and produced
  counts identical to the from-scratch mine. Writes a summary JSON line
  to BENCH_update.json and exits non-zero below the floor.
  --records N           base-table records              [default 1000000]
                        (QAR_BENCH_QUICK=1 caps this at 50000)
  --delta F             appended fraction of the base   [default 0.01]
  --floor R             fail under speedup R (0 = off)  [default 5.0]
  --out FILE            summary JSON destination
                        [default $QAR_BENCH_OUT, then BENCH_update.json]
";

/// Split an optional leading positional argument (anything not starting
/// with `--`) from the flags that follow. Returns the positional (or
/// `default` when absent) and the remaining args.
fn positional_then_flags<'a>(args: &'a [String], default: &str) -> (String, &'a [String]) {
    match args.first() {
        Some(a) if !a.starts_with("--") => (a.clone(), &args[1..]),
        _ => (default.to_string(), args),
    }
}

fn parse_flag_map(args: &[String]) -> Result<BTreeMap<String, String>, CliError> {
    let mut map: BTreeMap<String, String> = BTreeMap::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if !a.starts_with("--") {
            return Err(err(format!(
                "unexpected argument `{a}` (expected a --flag)"
            )));
        }
        let key = a.trim_start_matches("--").to_string();
        // Boolean flags take no value.
        if key == "no-partition"
            || key == "all-rules"
            || key == "no-memoize"
            || key == "shutdown"
            || key == "analytics"
            || key == "normalize-stats"
        {
            map.insert(key, "true".into());
            i += 1;
            continue;
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| err(format!("flag --{key} needs a value")))?;
        if key == "taxonomy" {
            // Repeatable flag: accumulate with a separator no path contains.
            match map.get_mut(&key) {
                Some(existing) => {
                    existing.push('\x1f');
                    existing.push_str(value);
                }
                None => {
                    map.insert(key, value.clone());
                }
            }
        } else {
            map.insert(key, value.clone());
        }
        i += 2;
    }
    Ok(map)
}

fn parse_f64(map: &BTreeMap<String, String>, key: &str, default: f64) -> Result<f64, CliError> {
    match map.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| err(format!("--{key}: `{v}` is not a number"))),
    }
}

fn parse_opt_f64(map: &BTreeMap<String, String>, key: &str) -> Result<Option<f64>, CliError> {
    match map.get(key) {
        None => Ok(None),
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| err(format!("--{key}: `{v}` is not a number"))),
    }
}

fn parse_usize(
    map: &BTreeMap<String, String>,
    key: &str,
    default: usize,
) -> Result<usize, CliError> {
    match map.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| err(format!("--{key}: `{v}` is not an integer"))),
    }
}

/// Parse `name:quant,name:cat,...` declarations.
pub fn parse_schema_decls(decls: &str) -> Result<Vec<(String, bool)>, CliError> {
    let mut out = Vec::new();
    for part in decls.split(',') {
        let (name, kind) = part.split_once(':').ok_or_else(|| {
            err(format!(
                "schema entry `{part}` must be name:quant or name:cat"
            ))
        })?;
        let quant = match kind.trim() {
            "quant" | "q" | "quantitative" => true,
            "cat" | "c" | "categorical" => false,
            other => return Err(err(format!("unknown attribute kind `{other}`"))),
        };
        if name.trim().is_empty() {
            return Err(err("empty attribute name in schema"));
        }
        out.push((name.trim().to_string(), quant));
    }
    if out.is_empty() {
        return Err(err("schema has no attributes"));
    }
    Ok(out)
}

/// Build a [`Schema`] from parsed declarations.
pub fn build_schema(decls: &[(String, bool)]) -> Result<Schema, CliError> {
    let mut builder: SchemaBuilder = Schema::builder();
    for (name, quant) in decls {
        builder = if *quant {
            builder.quantitative(name.clone())
        } else {
            builder.categorical(name.clone())
        };
    }
    builder.build().map_err(|e| err(e.to_string()))
}

/// Parse a full command line (without the program name).
pub fn parse_command(args: &[String]) -> Result<Command, CliError> {
    let Some(verb) = args.first() else {
        return Ok(Command::Help);
    };
    match verb.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "mine" => {
            let map = parse_flag_map(&args[1..])?;
            let input = map
                .get("input")
                .cloned()
                .ok_or_else(|| err("mine requires --input FILE"))?;
            let update = map.get("update").cloned();
            let schema = if update.is_some() {
                // The catalog's persisted counts pin the schema and every
                // semantic knob; re-specifying any of them on an update
                // would silently disagree with what the counts mean.
                for key in [
                    "schema",
                    "minsup",
                    "minconf",
                    "maxsup",
                    "completeness",
                    "intervals",
                    "no-partition",
                    "strategy",
                    "interest",
                    "interest-mode",
                    "max-size",
                    "taxonomy",
                    "no-memoize",
                ] {
                    if map.contains_key(key) {
                        return Err(err(format!(
                            "--{key} cannot be combined with --update: the schema, thresholds, \
                             and partitioning come from the catalog's persisted counts"
                        )));
                    }
                }
                Vec::new()
            } else {
                parse_schema_decls(
                    map.get("schema")
                        .ok_or_else(|| err("mine requires --schema DECLS"))?,
                )?
            };
            let partitioning = if map.contains_key("no-partition") {
                PartitionSpec::None
            } else if let Some(n) = map.get("intervals") {
                PartitionSpec::FixedIntervals(
                    n.parse()
                        .map_err(|_| err(format!("--intervals: `{n}` is not an integer")))?,
                )
            } else {
                PartitionSpec::CompletenessLevel(parse_f64(&map, "completeness", 2.0)?)
            };
            let partition_strategy = match map.get("strategy").map(String::as_str) {
                None | Some("equidepth") => PartitionStrategy::EquiDepth,
                Some("equiwidth") => PartitionStrategy::EquiWidth,
                Some("kmeans") => PartitionStrategy::KMeans,
                Some(other) => return Err(err(format!("unknown strategy `{other}`"))),
            };
            let interest = match map.get("interest") {
                None => None,
                Some(v) => {
                    let level: f64 = v
                        .parse()
                        .map_err(|_| err(format!("--interest: `{v}` is not a number")))?;
                    let mode = match map.get("interest-mode").map(String::as_str) {
                        None | Some("or") => InterestMode::SupportOrConfidence,
                        Some("and") => InterestMode::SupportAndConfidence,
                        Some(other) => return Err(err(format!("unknown interest mode `{other}`"))),
                    };
                    Some(InterestConfig {
                        level,
                        mode,
                        prune_candidates: mode == InterestMode::SupportAndConfidence,
                    })
                }
            };
            let config = MinerConfig {
                min_support: parse_f64(&map, "minsup", 0.2)?,
                min_confidence: parse_f64(&map, "minconf", 0.25)?,
                max_support: parse_f64(&map, "maxsup", 0.4)?,
                partitioning,
                partition_strategy,
                taxonomies: Default::default(),
                interest,
                max_itemset_size: parse_usize(&map, "max-size", 0)?,
                parallelism: std::num::NonZeroUsize::new(parse_usize(&map, "threads", 0)?),
                kernel: match map.get("kernel") {
                    Some(v) => ScanKernel::parse(v).ok_or_else(|| {
                        err(format!(
                            "--kernel: `{v}` is not auto, direct, memoized, or bitmask"
                        ))
                    })?,
                    // `--no-memoize` predates `--kernel`; keep it working as
                    // an alias for the direct (uncached, unblocked) kernel.
                    None if map.contains_key("no-memoize") => ScanKernel::Direct,
                    None => ScanKernel::Auto,
                },
            };
            config.validate().map_err(|e| err(e.to_string()))?;
            let format = match map.get("format").map(String::as_str) {
                None | Some("text") => OutputFormat::Text,
                Some("csv") => OutputFormat::Csv,
                Some("json") => OutputFormat::Json,
                Some(other) => return Err(err(format!("unknown format `{other}`"))),
            };
            let mut taxonomy_files = Vec::new();
            if let Some(spec) = map.get("taxonomy") {
                for entry in spec.split('\x1f') {
                    let (attr, path) = entry.split_once('=').ok_or_else(|| {
                        err(format!("--taxonomy `{entry}` must be attribute=file"))
                    })?;
                    taxonomy_files.push((attr.trim().to_string(), path.trim().to_string()));
                }
            }
            let trace = match map.get("trace") {
                None => None,
                Some(v) => Some(
                    v.parse::<TraceFormat>()
                        .map_err(|_| err(format!("--trace: `{v}` is not json or text")))?,
                ),
            };
            let deadline = match map.get("deadline") {
                None => None,
                Some(v) => {
                    let secs: f64 = v
                        .parse()
                        .map_err(|_| err(format!("--deadline: `{v}` is not a number")))?;
                    if !secs.is_finite() || secs <= 0.0 {
                        return Err(err(format!("--deadline must be positive, got {v}")));
                    }
                    Some(secs)
                }
            };
            let analytics = map.contains_key("analytics");
            // An update rewrites its catalog in place, so it has a
            // destination for the analytics even without --store.
            if analytics && !map.contains_key("store") && update.is_none() {
                return Err(err(
                    "--analytics requires --store FILE (analytics are persisted in the catalog)",
                ));
            }
            let workers = parse_usize(&map, "workers", 0)?;
            let chunk_rows = parse_usize(&map, "chunk-rows", 0)?;
            if analytics && (workers > 0 || chunk_rows > 0) {
                return Err(err(
                    "--analytics needs the full in-memory table; drop --workers/--chunk-rows \
                     or backfill the catalog later with `qar analyze`",
                ));
            }
            if chunk_rows > 0 && input == "-" {
                return Err(err(
                    "--chunk-rows streams the input twice (stats pass, then spill pass), \
                     so it needs a real --input file, not stdin",
                ));
            }
            let mut warnings = Vec::new();
            if map.contains_key("no-memoize") {
                warnings.push(
                    "--no-memoize is deprecated and will be removed; use `--kernel direct` instead"
                        .to_string(),
                );
            }
            Ok(Command::Mine(MineArgs {
                input,
                schema,
                config,
                top: parse_usize(&map, "top", 50)?,
                interesting_only: !map.contains_key("all-rules"),
                format,
                taxonomy_files,
                trace,
                deadline,
                store: map.get("store").cloned(),
                analytics,
                workers,
                chunk_rows,
                normalize_stats: map.contains_key("normalize-stats"),
                update,
                warnings,
            }))
        }
        "worker" => {
            let map = parse_flag_map(&args[1..])?;
            for key in map.keys() {
                if !["connect", "threads", "kernel"].contains(&key.as_str()) {
                    return Err(err(format!("worker does not take --{key}")));
                }
            }
            let connect = map
                .get("connect")
                .cloned()
                .ok_or_else(|| err("worker requires --connect HOST:PORT"))?;
            let kernel = match map.get("kernel") {
                Some(v) => ScanKernel::parse(v).ok_or_else(|| {
                    err(format!(
                        "--kernel: `{v}` is not auto, direct, memoized, or bitmask"
                    ))
                })?,
                None => ScanKernel::Auto,
            };
            Ok(Command::Worker(WorkerArgs {
                connect,
                threads: parse_usize(&map, "threads", 0)?,
                kernel,
            }))
        }
        "generate" => {
            let dataset = args
                .get(1)
                .filter(|a| !a.starts_with("--"))
                .cloned()
                .ok_or_else(|| err("generate requires a dataset: credit | people | planted"))?;
            if !["credit", "people", "planted"].contains(&dataset.as_str()) {
                return Err(err(format!("unknown dataset `{dataset}`")));
            }
            let map = parse_flag_map(&args[2..])?;
            Ok(Command::Generate(GenerateArgs {
                dataset,
                records: parse_usize(&map, "records", 10_000)?,
                seed: parse_usize(&map, "seed", 1996)? as u64,
                output: map.get("output").cloned().unwrap_or_else(|| "-".into()),
            }))
        }
        "trace-check" => {
            let (input, rest) = positional_then_flags(&args[1..], "-");
            let map = parse_flag_map(rest)?;
            Ok(Command::TraceCheck(TraceCheckArgs {
                input,
                schema: map.get("schema").cloned(),
            }))
        }
        "query" => {
            let (catalog, rest) = positional_then_flags(&args[1..], "");
            if catalog.is_empty() {
                return Err(err("query requires a CATALOG path (or `-` for stdin)"));
            }
            let map = parse_flag_map(rest)?;
            let record = map.get("record").cloned();
            let range = map.get("range").cloned();
            if record.is_some() && range.is_some() {
                return Err(err("--record and --range are mutually exclusive"));
            }
            let by = match map.get("by") {
                None => None,
                Some(v) => Some(v.parse::<RankBy>().map_err(|e| err(format!("--by: {e}")))?),
            };
            let top_k = match map.get("top-k") {
                None => None,
                Some(v) => Some(
                    v.parse::<usize>()
                        .map_err(|_| err(format!("--top-k: `{v}` is not an integer")))?,
                ),
            };
            let format = match map.get("format").map(String::as_str) {
                None | Some("text") => OutputFormat::Text,
                Some("csv") => OutputFormat::Csv,
                Some("json") => OutputFormat::Json,
                Some(other) => return Err(err(format!("unknown format `{other}`"))),
            };
            let trace = match map.get("trace") {
                None => None,
                Some(v) => Some(
                    v.parse::<TraceFormat>()
                        .map_err(|_| err(format!("--trace: `{v}` is not json or text")))?,
                ),
            };
            Ok(Command::Query(QueryArgs {
                catalog,
                record,
                range,
                top_k,
                by,
                min_lift: parse_opt_f64(&map, "min-lift")?,
                max_p: parse_opt_f64(&map, "max-p")?,
                format,
                trace,
            }))
        }
        "analyze" => {
            let (catalog, rest) = positional_then_flags(&args[1..], "");
            if catalog.is_empty() || catalog == "-" {
                return Err(err(
                    "analyze requires a CATALOG file path (it is rewritten in place \
                     unless --output redirects, so stdin is not supported)",
                ));
            }
            let map = parse_flag_map(rest)?;
            for key in map.keys() {
                if !["input", "samples", "seed", "output", "trace"].contains(&key.as_str()) {
                    return Err(err(format!("analyze does not take --{key}")));
                }
            }
            let input = map
                .get("input")
                .cloned()
                .ok_or_else(|| err("analyze requires --input FILE (the catalog's source CSV)"))?;
            let defaults = AnalyticsConfig::default();
            let samples = parse_usize(&map, "samples", defaults.shapley_samples as usize)?;
            if samples == 0 || samples > u32::MAX as usize {
                return Err(err("--samples must be between 1 and 2^32-1"));
            }
            let trace = match map.get("trace") {
                None => None,
                Some(v) => Some(
                    v.parse::<TraceFormat>()
                        .map_err(|_| err(format!("--trace: `{v}` is not json or text")))?,
                ),
            };
            Ok(Command::Analyze(AnalyzeArgs {
                catalog,
                input,
                samples: samples as u32,
                seed: parse_usize(&map, "seed", defaults.seed as usize)? as u64,
                output: map.get("output").cloned(),
                trace,
            }))
        }
        "store-check" => {
            let (input, rest) = positional_then_flags(&args[1..], "-");
            parse_flag_map(rest)?; // no flags yet; reject unknown ones
            if !rest.is_empty() {
                return Err(err("store-check takes no flags"));
            }
            Ok(Command::StoreCheck(StoreCheckArgs { input }))
        }
        "fuzz" => {
            let map = parse_flag_map(&args[1..])?;
            for key in map.keys() {
                if !["iters", "seed", "out"].contains(&key.as_str()) {
                    return Err(err(format!("fuzz does not take --{key}")));
                }
            }
            let iters = parse_usize(&map, "iters", 200)? as u64;
            if iters == 0 {
                return Err(err("--iters must be at least 1"));
            }
            Ok(Command::Fuzz(FuzzArgs {
                iters,
                seed: parse_usize(&map, "seed", 42)? as u64,
                out: map
                    .get("out")
                    .cloned()
                    .unwrap_or_else(|| "tests/fuzz_repros".into()),
            }))
        }
        "serve" => {
            let rest = &args[1..];
            let split = rest
                .iter()
                .position(|a| a.starts_with("--"))
                .unwrap_or(rest.len());
            let catalogs: Vec<String> = rest[..split].to_vec();
            if catalogs.is_empty() {
                return Err(err("serve requires at least one CATALOG path"));
            }
            let map = parse_flag_map(&rest[split..])?;
            for key in map.keys() {
                if !["port", "threads", "trace"].contains(&key.as_str()) {
                    return Err(err(format!("serve does not take --{key}")));
                }
            }
            let port = parse_usize(&map, "port", 0)?;
            if port > u16::MAX as usize {
                return Err(err(format!("--port {port} is not a TCP port")));
            }
            let trace = match map.get("trace") {
                None => None,
                Some(v) => Some(
                    v.parse::<TraceFormat>()
                        .map_err(|_| err(format!("--trace: `{v}` is not json or text")))?,
                ),
            };
            Ok(Command::Serve(ServeArgs {
                catalogs,
                port: port as u16,
                threads: parse_usize(&map, "threads", 0)?,
                trace,
            }))
        }
        "bench-serve" => {
            let map = parse_flag_map(&args[1..])?;
            for key in map.keys() {
                let known = [
                    "addr", "catalog", "clients", "requests", "threads", "floor", "shutdown", "out",
                ];
                if !known.contains(&key.as_str()) {
                    return Err(err(format!("bench-serve does not take --{key}")));
                }
            }
            let clients = parse_usize(&map, "clients", 8)?;
            let requests = parse_usize(&map, "requests", 2000)?;
            if clients == 0 || requests == 0 {
                return Err(err("--clients and --requests must be at least 1"));
            }
            if map.contains_key("shutdown") && !map.contains_key("addr") {
                return Err(err(
                    "--shutdown only applies with --addr (self-hosted servers always stop)",
                ));
            }
            Ok(Command::BenchServe(BenchServeArgs {
                addr: map.get("addr").cloned(),
                catalog: map.get("catalog").cloned(),
                clients,
                requests,
                threads: parse_usize(&map, "threads", 0)?,
                floor: parse_f64(&map, "floor", 50_000.0)?,
                shutdown: map.contains_key("shutdown"),
                out: map.get("out").cloned(),
            }))
        }
        "bench-analytics" => {
            let map = parse_flag_map(&args[1..])?;
            for key in map.keys() {
                if !["records", "samples", "floor", "out"].contains(&key.as_str()) {
                    return Err(err(format!("bench-analytics does not take --{key}")));
                }
            }
            let records = parse_usize(&map, "records", 5_000)?;
            let samples = parse_usize(&map, "samples", 64)?;
            if records == 0 || samples == 0 {
                return Err(err("--records and --samples must be at least 1"));
            }
            if samples > u32::MAX as usize {
                return Err(err("--samples must fit in 32 bits"));
            }
            Ok(Command::BenchAnalytics(BenchAnalyticsArgs {
                records,
                samples: samples as u32,
                floor: parse_f64(&map, "floor", 500.0)?,
                out: map.get("out").cloned(),
            }))
        }
        "bench-dist" => {
            let map = parse_flag_map(&args[1..])?;
            for key in map.keys() {
                if !["records", "workers", "floor", "out"].contains(&key.as_str()) {
                    return Err(err(format!("bench-dist does not take --{key}")));
                }
            }
            let records = parse_usize(&map, "records", 10_000_000)?;
            let workers = parse_usize(&map, "workers", 2)?;
            if records == 0 {
                return Err(err("--records must be at least 1"));
            }
            if workers < 2 {
                return Err(err(
                    "--workers must be at least 2 (a one-worker split has no counting to distribute)",
                ));
            }
            Ok(Command::BenchDist(BenchDistArgs {
                records,
                workers,
                floor: parse_f64(&map, "floor", 1.6)?,
                out: map.get("out").cloned(),
            }))
        }
        "bench-update" => {
            let map = parse_flag_map(&args[1..])?;
            for key in map.keys() {
                if !["records", "delta", "floor", "out"].contains(&key.as_str()) {
                    return Err(err(format!("bench-update does not take --{key}")));
                }
            }
            let records = parse_usize(&map, "records", 1_000_000)?;
            if records == 0 {
                return Err(err("--records must be at least 1"));
            }
            let delta = parse_f64(&map, "delta", 0.01)?;
            if !delta.is_finite() || delta <= 0.0 || delta > 1.0 {
                return Err(err(
                    "--delta must be a fraction of the base table in (0, 1]",
                ));
            }
            Ok(Command::BenchUpdate(BenchUpdateArgs {
                records,
                delta,
                floor: parse_f64(&map, "floor", 5.0)?,
                out: map.get("out").cloned(),
            }))
        }
        other => Err(err(format!("unknown command `{other}` (try `qar help`)"))),
    }
}

/// Parse a taxonomy edge file: one `child,parent` pair per line; blank
/// lines and `#` comments ignored.
pub fn parse_taxonomy(text: &str) -> Result<qar_table::Taxonomy, CliError> {
    let mut edges: Vec<(String, String)> = Vec::new();
    for (no, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (child, parent) = line
            .split_once(',')
            .ok_or_else(|| err(format!("taxonomy line {}: expected `child,parent`", no + 1)))?;
        edges.push((child.trim().to_string(), parent.trim().to_string()));
    }
    if edges.is_empty() {
        return Err(err("taxonomy file has no edges"));
    }
    qar_table::Taxonomy::from_edges(&edges).map_err(|e| err(e.to_string()))
}

/// The stderr trace sink a `--trace` flag asks for, shared between the
/// miner and the catalog store so their events interleave on one stream.
pub fn trace_sink(trace: Option<TraceFormat>) -> Option<Arc<dyn ProgressSink>> {
    trace
        .map(|format| Arc::new(WriterSink::new(format, std::io::stderr())) as Arc<dyn ProgressSink>)
}

/// Build the [`Miner`] a `qar mine` invocation described: configuration
/// plus the given progress sink and the deadline token from the flags.
pub fn build_miner(args: &MineArgs, sink: Option<Arc<dyn ProgressSink>>) -> Miner {
    let mut miner = Miner::new(args.config.clone());
    if let Some(sink) = sink {
        miner = miner.with_progress(sink);
    }
    if let Some(secs) = args.deadline {
        miner = miner.with_cancel(CancelToken::with_deadline(Duration::from_secs_f64(secs)));
    }
    miner
}

/// The [`WorkerSpawn`] a production `qar mine --workers N` uses: child
/// processes of this very binary running `qar worker`, inheriting the
/// mine's thread and kernel flags.
fn process_spawn(config: &MinerConfig) -> Result<WorkerSpawn, CliError> {
    let exe = std::env::current_exe()
        .map_err(|e| err(format!("cannot locate the qar binary for workers: {e}")))?;
    let mut worker_args = Vec::new();
    if let Some(threads) = config.parallelism {
        worker_args.push("--threads".to_string());
        worker_args.push(threads.get().to_string());
    }
    if config.kernel != ScanKernel::Auto {
        worker_args.push("--kernel".to_string());
        worker_args.push(config.kernel.name().to_string());
    }
    Ok(WorkerSpawn::Processes {
        exe,
        args: worker_args,
    })
}

/// The deadline token a `--deadline` flag asks for (the non-serial mine
/// paths thread it into their counting scans themselves).
fn deadline_token(args: &MineArgs) -> Option<CancelToken> {
    args.deadline
        .map(|secs| CancelToken::with_deadline(Duration::from_secs_f64(secs)))
}

/// [`DistOptions`] for a `qar mine --workers N` run with the given spawn.
fn dist_options(args: &MineArgs, spawn: WorkerSpawn) -> DistOptions {
    DistOptions {
        workers: args.workers,
        spawn,
        ..DistOptions::default()
    }
}

/// Execute `qar mine` against an already-loaded table, writing a report to
/// `out` (trace events, when enabled, go to stderr). Separated from file
/// I/O for testability. With `args.workers > 0` the counting passes run
/// on worker processes spawned from this binary.
pub fn run_mine_on_table(
    table: &Table,
    args: &MineArgs,
    out: &mut impl std::io::Write,
) -> Result<(), Box<dyn std::error::Error>> {
    let spawn = if args.workers > 0 {
        Some(process_spawn(&args.config)?)
    } else {
        None
    };
    run_mine_on_table_spawn(table, args, spawn, out)
}

/// [`run_mine_on_table`] with an explicit worker spawn, so tests can use
/// in-process worker threads instead of child processes.
pub fn run_mine_on_table_spawn(
    table: &Table,
    args: &MineArgs,
    spawn: Option<WorkerSpawn>,
    out: &mut impl std::io::Write,
) -> Result<(), Box<dyn std::error::Error>> {
    let sink = trace_sink(args.trace);
    // A stored catalog gets a COUNTS section so `qar mine --update` can
    // refresh it later; report-only runs skip the capture overhead.
    let capture = args.store.is_some();
    let (result, counts) = if args.workers > 0 {
        let spawn = spawn.ok_or_else(|| err("distributed mining needs a worker spawn"))?;
        // The distributed driver counts already-encoded rows, so Steps 1-2
        // (partitioning, encoding) happen here on the coordinator — with
        // the exact encoders the serial path would build.
        let (encoders, intervals) =
            qar_core::pipeline::build_encoders(table, &args.config).map_err(box_miner_error)?;
        let encoded = EncodedTable::encode(table, encoders)?;
        let cancel = deadline_token(args);
        let options = dist_options(args, spawn);
        let (mut result, captured) = if capture {
            let (result, captured) = mine_distributed_captured(
                Backing::Memory(&encoded),
                &args.config,
                &options,
                sink.as_deref(),
                cancel.as_ref(),
            )
            .map_err(box_miner_error)?;
            (result, Some(captured))
        } else {
            let result = mine_distributed(
                Backing::Memory(&encoded),
                &args.config,
                &options,
                sink.as_deref(),
                cancel.as_ref(),
            )
            .map_err(box_miner_error)?;
            (result, None)
        };
        result.stats.intervals_per_attribute = intervals.clone();
        let counts = captured.map(|captured| {
            SupportCounts::assemble(
                result.encoded.schema(),
                result.encoded.encoders(),
                table.num_rows() as u64,
                &args.config,
                intervals,
                captured,
            )
        });
        (result, counts)
    } else if capture {
        let (result, counts) = build_miner(args, sink.clone()).mine_with_counts(table)?;
        (result, Some(counts))
    } else {
        (build_miner(args, sink.clone()).mine(table)?, None)
    };
    finish_mine(table.num_rows() as u64, result, counts, args, sink, out)
}

/// Execute `qar mine --chunk-rows N`: stream the CSV twice (stats pass,
/// then spill pass), mine the spilled chunks out-of-core — optionally
/// distributed over workers — and clean the spill directory up. The
/// result is bit-identical to the in-memory path on the same input.
pub fn run_mine_chunked(
    args: &MineArgs,
    out: &mut impl std::io::Write,
) -> Result<(), Box<dyn std::error::Error>> {
    let spawn = if args.workers > 0 {
        Some(process_spawn(&args.config)?)
    } else {
        None
    };
    run_mine_chunked_spawn(args, spawn, out)
}

/// [`run_mine_chunked`] with an explicit worker spawn (see
/// [`run_mine_on_table_spawn`]).
pub fn run_mine_chunked_spawn(
    args: &MineArgs,
    spawn: Option<WorkerSpawn>,
    out: &mut impl std::io::Write,
) -> Result<(), Box<dyn std::error::Error>> {
    if args.input == "-" {
        return Err(Box::new(err(
            "--chunk-rows needs a real --input file (the CSV is read twice)",
        )));
    }
    let sink = trace_sink(args.trace);
    let schema = build_schema(&args.schema)?;
    let open = || {
        std::fs::File::open(&args.input)
            .map(std::io::BufReader::new)
            .map_err(|e| err(format!("cannot open `{}`: {e}", args.input)))
    };
    // Pass 1 (stats): per-attribute summaries — enough to build the exact
    // encoders Steps 1-2 would build on the in-memory table.
    let summary = qar_table::chunk::summarize_csv(open()?, &schema, args.chunk_rows)?;
    let (encoders, intervals) =
        qar_core::pipeline::build_encoders_from_summary(&summary, &args.config)
            .map_err(box_miner_error)?;
    // Pass 2 (spill): encode row blocks and write per-chunk code files.
    let dir = qar_table::chunk::default_spill_dir("mine");
    let store = qar_table::chunk::spill_csv(open()?, &schema, encoders, args.chunk_rows, &dir)?;
    let num_rows = store.num_rows() as u64;
    let cancel = deadline_token(args);
    let capture = args.store.is_some();
    let mined = if args.workers > 0 {
        let spawn = spawn.ok_or_else(|| err("distributed mining needs a worker spawn"))?;
        let options = dist_options(args, spawn);
        if capture {
            mine_distributed_captured(
                Backing::Chunks(&store),
                &args.config,
                &options,
                sink.as_deref(),
                cancel.as_ref(),
            )
            .map(|(r, c)| (r, Some(c)))
        } else {
            mine_distributed(
                Backing::Chunks(&store),
                &args.config,
                &options,
                sink.as_deref(),
                cancel.as_ref(),
            )
            .map(|r| (r, None))
        }
    } else {
        let mut source = ChunkedSource::new(&store, &args.config);
        if let Some(token) = &cancel {
            source = source.with_cancel(token);
        }
        if capture {
            mine_source_captured(&mut source, &args.config, sink.as_deref(), cancel.as_ref())
                .map(|(r, c)| (r, Some(c)))
        } else {
            mine_source(&mut source, &args.config, sink.as_deref(), cancel.as_ref())
                .map(|r| (r, None))
        }
    };
    // The spill directory is temporary either way — remove it before
    // surfacing the mining verdict.
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
    let (mut result, captured) = mined.map_err(box_miner_error)?;
    result.stats.intervals_per_attribute = intervals.clone();
    let counts = captured.map(|captured| {
        SupportCounts::assemble(
            result.encoded.schema(),
            result.encoded.encoders(),
            num_rows,
            &args.config,
            intervals,
            captured,
        )
    });
    finish_mine(num_rows, result, counts, args, sink, out)
}

/// Box a [`MinerError`] without losing its message.
fn box_miner_error(e: MinerError) -> Box<dyn std::error::Error> {
    Box::new(err(e.to_string()))
}

/// Execute `qar mine --update CATALOG`: refresh an existing catalog by
/// scanning only the delta rows in `--input` and merging them with the
/// catalog's persisted support counts. See [`run_mine_update_spawn`].
pub fn run_mine_update(
    args: &MineArgs,
    out: &mut impl std::io::Write,
) -> Result<(), Box<dyn std::error::Error>> {
    let spawn = if args.workers > 0 {
        Some(process_spawn(&args.config)?)
    } else {
        None
    };
    run_mine_update_spawn(args, spawn, out)
}

/// [`run_mine_update`] with an explicit worker spawn (see
/// [`run_mine_on_table_spawn`]).
///
/// The catalog's schema and semantic configuration are authoritative —
/// only the performance knobs (`--threads`, `--kernel`) and the topology
/// (`--workers`, `--chunk-rows`) come from this command line. The
/// refreshed catalog (rules, stats, analytics when `--analytics` is
/// passed, and the merged counts) rewrites the catalog in place unless
/// `--store` redirects it; the result is identical to mining base+delta
/// from scratch under the same flags.
pub fn run_mine_update_spawn(
    args: &MineArgs,
    spawn: Option<WorkerSpawn>,
    out: &mut impl std::io::Write,
) -> Result<(), Box<dyn std::error::Error>> {
    let catalog_path = args
        .update
        .as_deref()
        .ok_or_else(|| err("run_mine_update needs --update CATALOG"))?;
    let sink = trace_sink(args.trace);
    let catalog = Catalog::load(catalog_path, sink.as_deref())
        .map_err(|e| err(format!("cannot load `{catalog_path}`: {e}")))?;
    let Some(counts) = catalog.counts() else {
        return Err(Box::new(err(format!(
            "`{catalog_path}` has no persisted support counts; re-mine it with `qar mine \
             --store` (counts are captured automatically) before updating incrementally"
        ))));
    };
    // Rebuild the mining configuration from the catalog's snapshot; the
    // command line contributes only performance knobs.
    let mut config = counts.config.miner_config();
    config.parallelism = args.config.parallelism;
    config.kernel = args.config.kernel;

    let (mut result, new_counts) = if args.workers == 0 && args.chunk_rows == 0 {
        // Serial/pooled: the library's own update path.
        let delta = read_delta_table(&args.input, catalog.schema())?;
        let mut miner = Miner::new(config.clone());
        if let Some(s) = &sink {
            miner = miner.with_progress(Arc::clone(s));
        }
        if let Some(secs) = args.deadline {
            miner = miner.with_cancel(CancelToken::with_deadline(Duration::from_secs_f64(secs)));
        }
        let updated = miner
            .update(UpdateInput {
                schema: catalog.schema(),
                encoders: catalog.encoders(),
                counts,
                delta: &delta,
                base_rows: None,
            })
            .map_err(box_miner_error)?;
        (updated.output, updated.counts)
    } else {
        update_via_merge(args, &catalog, counts, &config, spawn, sink.as_deref())?
    };

    if args.normalize_stats {
        result.stats = result.stats.normalized();
    }
    if catalog.analytics().is_some() && !args.analytics {
        eprintln!(
            "qar: warning: `{catalog_path}` carried analytics the update invalidates; dropping \
             them (pass --analytics to recompute, or backfill later with `qar analyze`)"
        );
    }
    let total_rows = new_counts.num_rows;
    let mut refreshed = Catalog::from_mining(&result);
    if args.analytics {
        let set = analytics_from_mining(&result, &AnalyticsConfig::default(), sink.as_deref());
        refreshed = refreshed.with_analytics(set)?;
    }
    refreshed = refreshed.with_counts(new_counts)?;
    let dest = args.store.as_deref().unwrap_or(catalog_path);
    refreshed.save(dest, sink.as_deref())?;
    write_mine_report(total_rows, &result, args, out)
}

/// Read the delta CSV (`-` = stdin) against the catalog's schema, so the
/// column layout is the catalog's by construction.
fn read_delta_table(input: &str, schema: &Schema) -> Result<Table, Box<dyn std::error::Error>> {
    if input == "-" {
        let mut buf = String::new();
        std::io::Read::read_to_string(&mut std::io::stdin(), &mut buf)?;
        Ok(csv::read_table(buf.as_bytes(), schema)?)
    } else {
        let file =
            std::fs::File::open(input).map_err(|e| err(format!("cannot open `{input}`: {e}")))?;
        Ok(csv::read_table(std::io::BufReader::new(file), schema)?)
    }
}

/// Mine through a [`MergeSource`] over the persisted counts plus a
/// delta-only source, handing the delta source back so topology-specific
/// teardown (cluster shutdown) can run.
#[allow(clippy::type_complexity)]
fn mine_over_merge<S: CountSource>(
    counts: &SupportCounts,
    delta: Option<S>,
    meta: EncodedTable,
    config: &MinerConfig,
    sink: Option<&dyn ProgressSink>,
    cancel: Option<&CancelToken>,
) -> (
    Result<(MiningOutput, CapturedCounts), MinerError>,
    Option<S>,
) {
    let mut merge = MergeSource::new(counts, delta, meta);
    let result = mine_source_captured(&mut merge, config, sink, cancel);
    (result, merge.into_delta())
}

/// The `--update` execution path for the non-serial topologies
/// (`--workers` and/or `--chunk-rows`): mirror [`Miner::update`]'s
/// checks, build a delta-only [`CountSource`] for the topology, and mine
/// through a [`MergeSource`] over the persisted counts. Fallback
/// conditions emit the pinned `incremental_fallback` trace event and
/// surface as errors — `qar mine --update` only ever reads the delta, so
/// the full-re-mine escape hatch has no base rows to work with.
fn update_via_merge(
    args: &MineArgs,
    catalog: &Catalog,
    counts: &SupportCounts,
    config: &MinerConfig,
    spawn: Option<WorkerSpawn>,
    sink: Option<&dyn ProgressSink>,
) -> Result<(MiningOutput, SupportCounts), Box<dyn std::error::Error>> {
    let started = Instant::now();
    let schema = catalog.schema();
    let encoders = catalog.encoders();
    let fallback = |reason: String| -> Box<dyn std::error::Error> {
        if let Some(sink) = sink {
            sink.on_event(&TraceEvent::IncrementalFallback {
                reason: reason.clone(),
            });
        }
        Box::new(err(format!(
            "{reason}; base rows unavailable for a full re-mine"
        )))
    };
    if counts.fingerprint != encoding_fingerprint(schema, encoders) {
        return Err(fallback(
            "persisted counts were taken under a different encoding fingerprint".to_string(),
        ));
    }
    let cancel = deadline_token(args);
    let (total_rows, mined) = if args.chunk_rows > 0 {
        // Out-of-core delta: spill it with the catalog's encoders (no
        // stats pass — the encoders are already decided).
        let open = std::fs::File::open(&args.input)
            .map(std::io::BufReader::new)
            .map_err(|e| err(format!("cannot open `{}`: {e}", args.input)))?;
        let dir = qar_table::chunk::default_spill_dir("update");
        let store = match qar_table::chunk::spill_csv(
            open,
            schema,
            encoders.to_vec(),
            args.chunk_rows,
            &dir,
        ) {
            Ok(store) => store,
            Err(e @ qar_table::TableError::UnencodableValue { .. }) => {
                let _ = std::fs::remove_dir_all(&dir);
                return Err(fallback(format!(
                    "delta is not encodable under the catalog's encoders ({e})"
                )));
            }
            Err(e) => {
                let _ = std::fs::remove_dir_all(&dir);
                return Err(Box::new(e));
            }
        };
        let delta_rows = store.num_rows() as u64;
        let total_rows = counts.num_rows + delta_rows;
        if let Err(reason) = update_precheck(schema, encoders, delta_rows) {
            drop(store);
            let _ = std::fs::remove_dir_all(&dir);
            return Err(fallback(reason));
        }
        let meta =
            EncodedTable::header_only(schema.clone(), encoders.to_vec(), total_rows as usize);
        let mined = if delta_rows == 0 {
            mine_over_merge(
                counts,
                None::<InMemorySource>,
                meta,
                config,
                sink,
                cancel.as_ref(),
            )
            .0
        } else if args.workers > 0 {
            let spawn = spawn.ok_or_else(|| err("distributed mining needs a worker spawn"))?;
            let options = dist_options(args, spawn);
            match start_dist_source(
                &options,
                Backing::Chunks(&store),
                config,
                sink,
                cancel.as_ref(),
            ) {
                Ok(source) => {
                    let (mined, source) =
                        mine_over_merge(counts, Some(source), meta, config, sink, cancel.as_ref());
                    if let Some(source) = source {
                        source.shutdown();
                    }
                    mined
                }
                Err(e) => Err(e),
            }
        } else {
            let mut source = ChunkedSource::new(&store, config);
            if let Some(token) = &cancel {
                source = source.with_cancel(token);
            }
            mine_over_merge(counts, Some(source), meta, config, sink, cancel.as_ref()).0
        };
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
        (total_rows, mined)
    } else {
        // In-memory delta, distributed counting.
        let delta = read_delta_table(&args.input, schema)?;
        let delta_rows = delta.num_rows() as u64;
        if let Err(reason) = update_precheck(schema, encoders, delta_rows) {
            return Err(fallback(reason));
        }
        let delta_encoded = if delta_rows == 0 {
            None
        } else {
            match EncodedTable::encode(&delta, encoders.to_vec()) {
                Ok(enc) => Some(enc),
                Err(e @ qar_table::TableError::UnencodableValue { .. }) => {
                    return Err(fallback(format!(
                        "delta is not encodable under the catalog's encoders ({e})"
                    )));
                }
                Err(e) => return Err(Box::new(e)),
            }
        };
        let total_rows = counts.num_rows + delta_rows;
        let meta =
            EncodedTable::header_only(schema.clone(), encoders.to_vec(), total_rows as usize);
        let mined = match &delta_encoded {
            None => {
                mine_over_merge(
                    counts,
                    None::<InMemorySource>,
                    meta,
                    config,
                    sink,
                    cancel.as_ref(),
                )
                .0
            }
            Some(enc) => {
                let spawn = spawn.ok_or_else(|| err("distributed mining needs a worker spawn"))?;
                let options = dist_options(args, spawn);
                match start_dist_source(
                    &options,
                    Backing::Memory(enc),
                    config,
                    sink,
                    cancel.as_ref(),
                ) {
                    Ok(source) => {
                        let (mined, source) = mine_over_merge(
                            counts,
                            Some(source),
                            meta,
                            config,
                            sink,
                            cancel.as_ref(),
                        );
                        if let Some(source) = source {
                            source.shutdown();
                        }
                        mined
                    }
                    Err(e) => Err(e),
                }
            }
        };
        (total_rows, mined)
    };
    let (mut output, captured) = match mined {
        Ok(x) => x,
        Err(MinerError::Update(reason)) => return Err(fallback(reason)),
        Err(other) => return Err(box_miner_error(other)),
    };
    output.stats.intervals_per_attribute = counts.intervals_per_attribute.clone();
    let new_counts = SupportCounts {
        num_rows: total_rows,
        fingerprint: counts.fingerprint,
        config: counts.config.clone(),
        intervals_per_attribute: counts.intervals_per_attribute.clone(),
        captured,
    };
    if let Some(sink) = sink {
        sink.on_event(&TraceEvent::IncrementalUpdate {
            base_rows: counts.num_rows,
            delta_rows: total_rows - counts.num_rows,
            total_rows,
            passes: new_counts.captured.passes.len() + 1,
            elapsed_us: micros(started.elapsed()),
        });
    }
    Ok((output, new_counts))
}

/// Spin up a worker cluster and wrap it as a delta-only [`DistSource`]
/// (the coordinator side of `--update --workers N`).
fn start_dist_source<'a>(
    options: &DistOptions,
    backing: Backing<'a>,
    config: &'a MinerConfig,
    sink: Option<&'a dyn ProgressSink>,
    cancel: Option<&'a CancelToken>,
) -> Result<DistSource<'a>, MinerError> {
    let cluster = Cluster::start(&ClusterOptions {
        workers: options.workers,
        spawn: options.spawn.clone(),
        read_timeout: options.read_timeout,
        accept_timeout: ClusterOptions::default().accept_timeout,
    })?;
    DistSource::new(cluster, backing, config, sink, cancel, options.fail_fast)
}

/// The shared tail of every `qar mine` path: normalize stats when asked,
/// store the catalog (with its support counts), and write the report in
/// the requested format.
fn finish_mine(
    num_rows: u64,
    mut result: MiningOutput,
    counts: Option<SupportCounts>,
    args: &MineArgs,
    sink: Option<Arc<dyn ProgressSink>>,
    out: &mut impl std::io::Write,
) -> Result<(), Box<dyn std::error::Error>> {
    if args.normalize_stats {
        result.stats = result.stats.normalized();
    }
    if let Some(path) = &args.store {
        let mut catalog = Catalog::from_mining(&result);
        if args.analytics {
            let set = analytics_from_mining(&result, &AnalyticsConfig::default(), sink.as_deref());
            catalog = catalog.with_analytics(set)?;
        }
        if let Some(counts) = counts {
            catalog = catalog.with_counts(counts)?;
        }
        catalog.save(path, sink.as_deref())?;
    }
    write_mine_report(num_rows, &result, args, out)
}

/// The report half of [`finish_mine`], shared with the `--update` path:
/// write the mined rules to `out` in the requested format.
fn write_mine_report(
    num_rows: u64,
    result: &MiningOutput,
    args: &MineArgs,
    out: &mut impl std::io::Write,
) -> Result<(), Box<dyn std::error::Error>> {
    match args.format {
        OutputFormat::Csv => {
            qar_core::export::rules_to_csv(
                out,
                &result.rules,
                result.interest.as_deref(),
                &result.encoded,
                result.frequent.num_rows,
            )?;
            return Ok(());
        }
        OutputFormat::Json => {
            // One object with run/pass statistics alongside the rules, so
            // scripted consumers get the pass-level numbers too.
            let mut stats = Vec::new();
            qar_core::export::stats_to_json(&mut stats, &result.stats)?;
            write!(
                out,
                "{{\"stats\":{},\"rules\":",
                String::from_utf8(stats)?.trim_end()
            )?;
            qar_core::export::rules_to_json(
                out,
                &result.rules,
                result.interest.as_deref(),
                &result.encoded,
                result.frequent.num_rows,
            )?;
            writeln!(out, "}}")?;
            return Ok(());
        }
        OutputFormat::Text => {}
    }
    writeln!(
        out,
        "{} records; {} frequent itemsets across {} levels; {} rules ({} interesting)",
        num_rows,
        result.frequent.total(),
        result.frequent.levels.len(),
        result.stats.rules_total,
        result.stats.rules_interesting,
    )?;
    writeln!(
        out,
        "intervals per attribute: {:?}; mining took {:?}",
        result.stats.intervals_per_attribute, result.stats.elapsed_mining
    )?;
    let verdicts = result.interest.as_deref();
    // Sort by confidence (descending), then support.
    let mut order: Vec<usize> = (0..result.rules.len())
        .filter(|&i| match (args.interesting_only, verdicts) {
            (true, Some(v)) => v[i].interesting,
            _ => true,
        })
        .collect();
    order.sort_by(|&a, &b| {
        result.rules[b]
            .confidence
            .total_cmp(&result.rules[a].confidence)
            .then(result.rules[b].support.cmp(&result.rules[a].support))
    });
    let limit = if args.top == 0 { order.len() } else { args.top };
    for &i in order.iter().take(limit) {
        let marker = match verdicts {
            Some(v) if !v[i].interesting => " *pruned*",
            _ => "",
        };
        writeln!(out, "  {}{marker}", result.format_rule(i))?;
    }
    if order.len() > limit {
        writeln!(out, "  ... and {} more (raise --top)", order.len() - limit)?;
    }
    Ok(())
}

/// Execute `qar generate`, writing CSV to `out`.
pub fn run_generate(
    args: &GenerateArgs,
    out: &mut impl std::io::Write,
) -> Result<(), Box<dyn std::error::Error>> {
    let table = match args.dataset.as_str() {
        "credit" => {
            qar_datagen::CreditDataset::generate(qar_datagen::CreditConfig {
                num_records: args.records,
                seed: args.seed,
                ..Default::default()
            })
            .table
        }
        "people" => qar_datagen::people_table(),
        "planted" => {
            qar_datagen::PlantedDataset::generate(qar_datagen::PlantedConfig {
                num_records: args.records,
                seed: args.seed,
            })
            .table
        }
        other => return Err(Box::new(err(format!("unknown dataset `{other}`")))),
    };
    csv::write_table(out, &table)?;
    Ok(())
}

/// Execute `qar trace-check`: validate a JSON-lines trace stream against
/// the given schema document, writing a per-event tally to `out`. Fails on
/// the first invalid line.
pub fn run_trace_check(
    schema_text: &str,
    input: &str,
    out: &mut impl std::io::Write,
) -> Result<(), Box<dyn std::error::Error>> {
    let schema: qar_trace::Schema = schema_text
        .parse()
        .map_err(|e| err(format!("trace schema: {e}")))?;
    let counts = qar_trace::schema::validate_lines(&schema, input)
        .map_err(|(line, e)| err(format!("trace line {line}: {e}")))?;
    let total: usize = counts.iter().map(|(_, n)| n).sum();
    writeln!(out, "{total} events valid")?;
    for (name, n) in &counts {
        writeln!(out, "  {name}: {n}")?;
    }
    Ok(())
}

/// Parse a `--record attr=value,...` spec into `(attribute, code)` pairs
/// using the catalog's schema and encoders. Quantitative values are
/// numbers; categorical values are labels. Rejects unknown attributes,
/// duplicate attributes, and values the encoder has never seen.
pub fn parse_record(catalog: &Catalog, spec: &str) -> Result<Vec<(u32, u32)>, CliError> {
    let mut record: Vec<(u32, u32)> = Vec::new();
    for part in spec.split(',') {
        let (name, value) = part
            .split_once('=')
            .ok_or_else(|| err(format!("record entry `{part}` must be attribute=value")))?;
        let name = name.trim();
        let def = catalog
            .schema()
            .attribute_by_name(name)
            .map_err(|e| err(e.to_string()))?;
        let id = catalog
            .schema()
            .iter()
            .find(|(_, d)| d.name() == name)
            .map(|(id, _)| id)
            .expect("attribute_by_name succeeded");
        if record.iter().any(|&(a, _)| a == id.index() as u32) {
            return Err(err(format!("attribute `{name}` appears twice in --record")));
        }
        let value = value.trim();
        let parsed = match def.kind() {
            AttributeKind::Quantitative => Value::Float(
                value
                    .parse::<f64>()
                    .map_err(|_| err(format!("`{value}` is not a number for `{name}`")))?,
            ),
            AttributeKind::Categorical => Value::from(value),
        };
        let code = catalog.encoders()[id.index()]
            .encode(name, &parsed)
            .map_err(|e| err(e.to_string()))?;
        record.push((id.index() as u32, code));
    }
    if record.is_empty() {
        return Err(err("record has no attributes"));
    }
    Ok(record)
}

/// Parse a `--range attr=lo..hi` spec against the catalog's schema.
/// The attribute must be quantitative.
pub fn parse_range(catalog: &Catalog, spec: &str) -> Result<(u32, f64, f64), CliError> {
    let (name, bounds) = spec
        .split_once('=')
        .ok_or_else(|| err(format!("range `{spec}` must be attribute=lo..hi")))?;
    let name = name.trim();
    let def = catalog
        .schema()
        .attribute_by_name(name)
        .map_err(|e| err(e.to_string()))?;
    if def.kind() != AttributeKind::Quantitative {
        return Err(err(format!(
            "--range needs a quantitative attribute; `{name}` is categorical"
        )));
    }
    let id = catalog
        .schema()
        .iter()
        .find(|(_, d)| d.name() == name)
        .map(|(id, _)| id)
        .expect("attribute_by_name succeeded");
    let (lo, hi) = bounds
        .split_once("..")
        .ok_or_else(|| err(format!("range bounds `{bounds}` must be lo..hi")))?;
    let lo: f64 = lo
        .trim()
        .parse()
        .map_err(|_| err(format!("`{lo}` is not a number")))?;
    let hi: f64 = hi
        .trim()
        .parse()
        .map_err(|_| err(format!("`{hi}` is not a number")))?;
    if lo.is_nan() || hi.is_nan() || lo > hi {
        return Err(err(format!("range {lo}..{hi} is empty")));
    }
    Ok((id.index() as u32, lo, hi))
}

/// Execute `qar query` against catalog bytes (already read from a file
/// or stdin), writing matching rules to `out`.
pub fn run_query(
    bytes: &[u8],
    args: &QueryArgs,
    out: &mut impl std::io::Write,
) -> Result<(), Box<dyn std::error::Error>> {
    let sink = trace_sink(args.trace);
    let catalog = Catalog::load_bytes(bytes, sink.as_deref())?;
    let index = RuleIndex::build(&catalog, sink.as_deref());

    let (mut ids, what) = if let Some(spec) = &args.record {
        let record = parse_record(&catalog, spec)?;
        (index.query_record(&record), "fire for the record")
    } else if let Some(spec) = &args.range {
        let (attr, lo, hi) = parse_range(&catalog, spec)?;
        (index.query_range(attr, lo, hi), "mention the range")
    } else {
        ((0..catalog.rules().len() as u32).collect(), "stored")
    };
    index.filter_analytics(&mut ids, args.min_lift, args.max_p)?;
    let analytics_ranking = matches!(
        args.by,
        Some(RankBy::Lift | RankBy::Conviction | RankBy::Chi2 | RankBy::JMeasure)
    );
    if analytics_ranking && !index.has_analytics() {
        return Err(Box::new(qar_store::AnalyticsUnavailable));
    }
    let matched = ids.len();
    if args.by.is_some() || args.top_k.is_some() {
        index.rank(&mut ids, args.by.unwrap_or(RankBy::Confidence));
    }
    if let Some(k) = args.top_k {
        if k > 0 {
            ids.truncate(k);
        }
    }

    let rules: Vec<QuantRule> = ids
        .iter()
        .map(|&i| catalog.rules()[i as usize].clone())
        .collect();
    let verdicts: Option<Vec<RuleInterest>> = catalog
        .interest()
        .map(|v| ids.iter().map(|&i| v[i as usize].clone()).collect());
    match args.format {
        OutputFormat::Csv => {
            qar_core::export::rules_to_csv(
                out,
                &rules,
                verdicts.as_deref(),
                &catalog,
                catalog.num_rows(),
            )?;
        }
        OutputFormat::Json => {
            // With an ANALYTICS section each rule object carries its
            // measures. Non-finite values (conviction diverges to +inf at
            // confidence 1; chi² and its p degenerate to NaN on an empty
            // margin) serialize as `null` — JSON has no inf/NaN tokens,
            // and emitting them raw would make the document unparseable.
            match catalog.analytics() {
                Some(set) => {
                    use qar_core::export::json_f64 as f;
                    qar_core::export::rules_to_json_with(
                        out,
                        &rules,
                        verdicts.as_deref(),
                        &catalog,
                        catalog.num_rows(),
                        |i| {
                            let a = &set.rules[ids[i] as usize];
                            format!(
                                ",\"lift\":{},\"conviction\":{},\"leverage\":{},\
                                 \"chi2\":{},\"p_value\":{},\"p_adjusted\":{},\
                                 \"jmeasure\":{}",
                                f(a.lift),
                                f(a.conviction),
                                f(a.leverage),
                                f(a.chi2),
                                f(a.p_value),
                                f(a.p_adjusted),
                                f(a.jmeasure),
                            )
                        },
                    )?;
                }
                None => {
                    qar_core::export::rules_to_json(
                        out,
                        &rules,
                        verdicts.as_deref(),
                        &catalog,
                        catalog.num_rows(),
                    )?;
                }
            }
        }
        OutputFormat::Text => {
            writeln!(
                out,
                "{matched} of {} rules {what}{}",
                catalog.rules().len(),
                if rules.len() < matched {
                    format!(" (showing {})", rules.len())
                } else {
                    String::new()
                }
            )?;
            for rule in &rules {
                writeln!(
                    out,
                    "  {}",
                    qar_core::output::format_rule(rule, catalog.num_rows(), &catalog)
                )?;
            }
        }
    }
    Ok(())
}

/// Execute `qar store-check` against catalog bytes: decode with full
/// validation and print a summary. Any corruption surfaces as an `Err`.
pub fn run_store_check(
    bytes: &[u8],
    out: &mut impl std::io::Write,
) -> Result<(), Box<dyn std::error::Error>> {
    // Walk the section framing first: on corruption the inventory still
    // prints, showing WHICH section's checksum failed before the decode
    // error surfaces.
    let sections = section_inventory(bytes);
    if let Ok(sections) = &sections {
        writeln!(out, "sections:")?;
        for s in sections {
            writeln!(
                out,
                "  {} (tag {}): {} byte(s), crc {}{}",
                s.name,
                s.tag,
                s.len,
                if s.crc_ok { "ok" } else { "MISMATCH" },
                if s.known() { "" } else { " [skipped]" },
            )?;
        }
        let unknown = sections.iter().filter(|s| !s.known()).count();
        writeln!(out, "  {unknown} unknown section(s) skipped")?;
    }
    let catalog = Catalog::decode(bytes)?;
    let interesting = catalog
        .interest()
        .map(|v| v.iter().filter(|r| r.interesting).count());
    writeln!(
        out,
        "catalog OK: {} bytes, {} attribute(s), {} rule(s), {} row(s)",
        bytes.len(),
        catalog.schema().len(),
        catalog.rules().len(),
        catalog.num_rows(),
    )?;
    for (id, def) in catalog.schema().iter() {
        writeln!(
            out,
            "  {} ({}, {} code(s))",
            def.name(),
            def.kind().name(),
            catalog.encoders()[id.index()].cardinality(),
        )?;
    }
    match interesting {
        Some(n) => writeln!(out, "  interest verdicts: {n} interesting")?,
        None => writeln!(out, "  interest verdicts: none")?,
    }
    match catalog.analytics() {
        Some(set) => writeln!(
            out,
            "  analytics: {} rule(s), {} Shapley sample(s), seed {}",
            set.rules.len(),
            set.shapley_samples,
            set.seed,
        )?,
        None => writeln!(out, "  analytics: none")?,
    }
    match catalog.counts() {
        Some(counts) => writeln!(
            out,
            "  counts: {} pass(es), {} candidate(s), {} row(s)",
            counts.captured.passes.len() + 1,
            counts.total_candidates(),
            counts.num_rows,
        )?,
        None => writeln!(out, "  counts: none")?,
    }
    Ok(())
}

/// Execute `qar analyze`: backfill the `ANALYTICS` section by re-encoding
/// the catalog's source CSV with the catalog's own encoders and counting
/// support by direct scan. Returns the annotated catalog's bytes (the
/// binary writes them to `--output`, or back over the catalog).
pub fn run_analyze(
    catalog_bytes: &[u8],
    csv_bytes: &[u8],
    args: &AnalyzeArgs,
    out: &mut impl std::io::Write,
) -> Result<Vec<u8>, Box<dyn std::error::Error>> {
    let sink = trace_sink(args.trace);
    let catalog = Catalog::load_bytes(catalog_bytes, sink.as_deref())?;
    let table = csv::read_table(csv_bytes, catalog.schema())?;
    if table.num_rows() as u64 != catalog.num_rows() {
        return Err(Box::new(err(format!(
            "catalog was mined from {} row(s) but --input has {} — \
             is this the catalog's source data?",
            catalog.num_rows(),
            table.num_rows(),
        ))));
    }
    let encoded = EncodedTable::encode(&table, catalog.encoders().to_vec())?;
    let config = AnalyticsConfig {
        shapley_samples: args.samples,
        seed: args.seed,
    };
    let set = analytics_from_encoded(catalog.rules(), &encoded, &config, sink.as_deref());
    writeln!(
        out,
        "backfilled analytics for {} rule(s) ({} Shapley sample(s) per rule)",
        set.rules.len(),
        set.shapley_samples,
    )?;
    Ok(catalog.with_analytics(set)?.encode())
}

/// Execute `qar fuzz`: run the differential oracle, write one fixture
/// file per minimized failure under `args.out`, and return how many
/// divergences were found (the binary exits non-zero when `> 0`).
pub fn run_fuzz(
    args: &FuzzArgs,
    out: &mut impl std::io::Write,
) -> Result<usize, Box<dyn std::error::Error>> {
    writeln!(
        out,
        "fuzzing {} iteration(s) from seed {} ...",
        args.iters, args.seed
    )?;
    let mut progress: Vec<String> = Vec::new();
    let report = qar_oracle::run_fuzz(args.iters, args.seed, |line| {
        progress.push(line.to_string());
    });
    for line in &progress {
        writeln!(out, "  {line}")?;
    }
    let kinds: Vec<String> = report
        .kind_counts
        .iter()
        .map(|(kind, count)| format!("{count} {kind}"))
        .collect();
    writeln!(
        out,
        "ran {} case(s) ({})",
        report.iterations,
        kinds.join(", ")
    )?;
    if report.ok() {
        writeln!(out, "all paths agreed on every case")?;
        return Ok(0);
    }
    std::fs::create_dir_all(&args.out).map_err(|e| {
        err(format!(
            "cannot create fixture directory `{}`: {e}",
            args.out
        ))
    })?;
    for failure in &report.failures {
        let path = std::path::Path::new(&args.out).join(format!(
            "{}_{:016x}.txt",
            failure.case.kind(),
            failure.case_seed
        ));
        std::fs::write(&path, &failure.fixture)
            .map_err(|e| err(format!("cannot write fixture `{}`: {e}", path.display())))?;
        writeln!(out, "DIVERGENCE {}", failure.divergence)?;
        writeln!(out, "  minimized repro written to {}", path.display())?;
    }
    Ok(report.failures.len())
}

/// Map catalog paths to `(slot_name, path)` pairs for [`Server::bind`]:
/// the slot name is the file stem (`rules/cat.qarcat` serves as `cat`).
pub fn catalog_slots(paths: &[String]) -> Result<Vec<(String, PathBuf)>, CliError> {
    let mut slots = Vec::with_capacity(paths.len());
    for raw in paths {
        let path = PathBuf::from(raw);
        let stem = path
            .file_stem()
            .and_then(|s| s.to_str())
            .filter(|s| !s.is_empty())
            .ok_or_else(|| err(format!("`{raw}` has no usable file stem for a slot name")))?;
        slots.push((stem.to_string(), path));
    }
    Ok(slots)
}

/// The query space a bench workload draws from: per-attribute code
/// cardinalities plus the numeric domain of each quantitative attribute.
struct QuerySpace {
    cards: Vec<u32>,
    quant_domains: Vec<(u32, f64, f64)>,
}

impl QuerySpace {
    fn from_catalog(catalog: &Catalog) -> QuerySpace {
        let cards: Vec<u32> = catalog.encoders().iter().map(|e| e.cardinality()).collect();
        let quant_domains = cards
            .iter()
            .enumerate()
            .filter_map(|(attr, &card)| {
                let encoder = &catalog.encoders()[attr];
                encoder
                    .numeric_bounds(0, card.saturating_sub(1))
                    .map(|(lo, hi)| (attr as u32, lo, hi))
            })
            .collect();
        QuerySpace {
            cards,
            quant_domains,
        }
    }

    /// Without a catalog the workload still exercises the protocol: the
    /// server answers unknown codes with empty result sets.
    fn generic() -> QuerySpace {
        QuerySpace {
            cards: vec![16; 4],
            quant_domains: vec![(0, 0.0, 100.0)],
        }
    }

    fn point(&self, rng: &mut Prng) -> Query {
        let record = self
            .cards
            .iter()
            .enumerate()
            .map(|(attr, &card)| (attr as u32, rng.gen_range(0..card.max(1))))
            .collect();
        Query::Point {
            record,
            opts: QueryOptions::default(),
        }
    }

    fn range(&self, rng: &mut Prng) -> Query {
        let (attr, dom_lo, dom_hi) = match self.quant_domains.as_slice() {
            [] => (0, 0.0, 100.0),
            domains => domains[rng.gen_range(0..domains.len() as u32) as usize],
        };
        let a = dom_lo + rng.gen_f64() * (dom_hi - dom_lo);
        let b = dom_lo + rng.gen_f64() * (dom_hi - dom_lo);
        Query::Range {
            attr,
            lo: a.min(b),
            hi: a.max(b),
            opts: QueryOptions::default(),
        }
    }
}

/// Queries inside one batch request.
const BENCH_BATCH: usize = 4;

/// A deterministic mixed workload for one client: point-heavy with
/// range, top-k, and batch requests interleaved, plus a deadline on
/// every seventh request to keep that path hot.
fn bench_workload(space: &QuerySpace, slot: &str, requests: usize, seed: u64) -> Vec<Request> {
    let mut rng = Prng::seed_from_u64(seed);
    let rank_cycle = [RankBy::Support, RankBy::Confidence, RankBy::Interest];
    (0..requests)
        .map(|i| {
            let deadline_ms = if i % 7 == 6 { Some(10_000) } else { None };
            match i % 8 {
                0 => Request::Query {
                    catalog: slot.to_string(),
                    deadline_ms,
                    query: Query::TopK {
                        by: rank_cycle[i / 8 % rank_cycle.len()],
                        k: 1 + (i as u32 % 20),
                    },
                },
                1 => Request::Query {
                    catalog: slot.to_string(),
                    deadline_ms,
                    query: space.range(&mut rng),
                },
                2 => Request::Batch {
                    catalog: slot.to_string(),
                    deadline_ms,
                    queries: (0..BENCH_BATCH).map(|_| space.point(&mut rng)).collect(),
                },
                _ => Request::Query {
                    catalog: slot.to_string(),
                    deadline_ms,
                    query: space.point(&mut rng),
                },
            }
        })
        .collect()
}

/// Per-client tallies from one bench connection.
struct ClientStats {
    latencies_us: Vec<u64>,
    queries: u64,
    results: u64,
}

/// Run one client's workload against a live server, timing each
/// request round trip.
fn drive_bench_client(addr: &str, workload: &[Request]) -> Result<ClientStats, String> {
    let mut client = ServeClient::connect(addr).map_err(|e| format!("connect to {addr}: {e}"))?;
    let mut stats = ClientStats {
        latencies_us: Vec::with_capacity(workload.len()),
        queries: 0,
        results: 0,
    };
    for request in workload {
        let start = Instant::now();
        let response = client
            .request(request)
            .map_err(|e| format!("request failed: {e}"))?;
        stats
            .latencies_us
            .push(start.elapsed().as_micros().min(u64::MAX as u128) as u64);
        match response {
            Response::Ids { ids, .. } => {
                stats.queries += 1;
                stats.results += ids.len() as u64;
            }
            Response::Batch { items, .. } => {
                stats.queries += items.len() as u64;
                for item in items {
                    match item {
                        Ok(ids) => stats.results += ids.len() as u64,
                        Err(e) => return Err(format!("batch item failed: {e}")),
                    }
                }
            }
            Response::Error(e) => return Err(format!("server error: {e}")),
            other => return Err(format!("unexpected response tag {}", other.tag())),
        }
    }
    Ok(stats)
}

/// Human-readable detail from a joined thread's panic payload. `join`
/// hands back `Box<dyn Any>`; the payload is a `&str` or `String` for
/// every `panic!`/`assert!` in practice, and anything else still gets a
/// generic description instead of propagating the panic.
fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        format!("thread panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("thread panicked: {s}")
    } else {
        "thread panicked (non-string payload)".to_string()
    }
}

/// The p-th percentile (0–100) of an unsorted latency sample.
fn percentile_us(latencies: &mut [u64], p: f64) -> u64 {
    if latencies.is_empty() {
        return 0;
    }
    latencies.sort_unstable();
    let rank = (p / 100.0 * (latencies.len() - 1) as f64).round() as usize;
    latencies[rank.min(latencies.len() - 1)]
}

/// Mine a small planted catalog for self-hosted benchmarking, written
/// to a temp file (`Server::bind` loads from disk). Looser thresholds
/// than the golden snapshot so the catalog holds a useful rule count.
fn bench_catalog_file(quick: bool) -> Result<PathBuf, Box<dyn std::error::Error>> {
    let records = if quick { 2_000 } else { 20_000 };
    let data = qar_datagen::PlantedDataset::generate(qar_datagen::PlantedConfig {
        num_records: records,
        seed: 1996,
    });
    let config = MinerConfig {
        min_support: 0.08,
        min_confidence: 0.5,
        max_support: 0.4,
        partitioning: PartitionSpec::FixedIntervals(20),
        interest: None,
        max_itemset_size: 2,
        ..MinerConfig::default()
    };
    let result = Miner::new(config).mine(&data.table)?;
    let path = std::env::temp_dir().join(format!("qar_bench_serve_{}.qarcat", std::process::id()));
    Catalog::from_mining(&result).save(&path, None)?;
    Ok(path)
}

/// Send a shutdown frame and wait for the acknowledgement.
fn shutdown_server(addr: &str) -> Result<(), String> {
    let mut client = ServeClient::connect(addr).map_err(|e| format!("connect: {e}"))?;
    match client.request(&Request::Shutdown) {
        Ok(Response::ShuttingDown) => Ok(()),
        Ok(other) => Err(format!("unexpected shutdown response tag {}", other.tag())),
        Err(e) => Err(format!("shutdown request failed: {e}")),
    }
}

/// Execute `qar bench-serve`: run the concurrent-client workload,
/// print a human summary to `out`, write the machine-readable JSON
/// line, and return the aggregate queries/sec (the caller enforces the
/// floor so the exit code carries it).
pub fn run_bench_serve(
    args: &BenchServeArgs,
    out: &mut impl std::io::Write,
) -> Result<f64, Box<dyn std::error::Error>> {
    let quick = std::env::var_os("QAR_BENCH_QUICK").is_some();
    let requests = if quick {
        args.requests.min(300)
    } else {
        args.requests
    };

    // Resolve the catalog the workload is shaped by, and — in
    // self-hosted mode — the file the server loads.
    let mut temp_catalog: Option<PathBuf> = None;
    let catalog_path: Option<PathBuf> = match (&args.catalog, &args.addr) {
        (Some(path), _) => Some(PathBuf::from(path)),
        (None, Some(_)) => None,
        (None, None) => {
            let path = bench_catalog_file(quick)?;
            temp_catalog = Some(path.clone());
            Some(path)
        }
    };
    let slot = catalog_path
        .as_deref()
        .and_then(Path::file_stem)
        .and_then(|s| s.to_str())
        .unwrap_or("cat")
        .to_string();
    let space = match &catalog_path {
        Some(path) => QuerySpace::from_catalog(&Catalog::load(path, None)?),
        None => QuerySpace::generic(),
    };

    // Self-hosted mode spins the server on an OS-assigned port with one
    // worker per client (each live connection occupies a worker).
    let mut server_thread = None;
    let (addr, stop_when_done) = match &args.addr {
        Some(addr) => (addr.clone(), args.shutdown),
        None => {
            let path = catalog_path
                .clone()
                .expect("self-hosted mode has a catalog");
            let threads = if args.threads == 0 {
                args.clients.max(2)
            } else {
                args.threads
            };
            let server = Server::bind(
                &[(slot.clone(), path)],
                &ServerConfig { port: 0, threads },
                None,
            )?;
            let addr = server.local_addr().to_string();
            server_thread = Some(std::thread::spawn(move || server.serve()));
            (addr, true)
        }
    };

    let workloads: Vec<Vec<Request>> = (0..args.clients)
        .map(|c| bench_workload(&space, &slot, requests, 0xBE5E ^ c as u64))
        .collect();

    let started = Instant::now();
    let stats: Vec<Result<ClientStats, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = workloads
            .iter()
            .map(|workload| {
                let addr = addr.as_str();
                scope.spawn(move || drive_bench_client(addr, workload))
            })
            .collect();
        // A panicking client thread must not abort the whole bench via
        // an unwrap on `join` — capture the payload as that client's
        // failure row so the server still gets shut down and the other
        // clients' outcomes still get reported.
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|payload| Err(panic_detail(&*payload)))
            })
            .collect()
    });
    let elapsed = started.elapsed();

    let mut failures: Vec<(usize, String)> = Vec::new();
    let mut latencies: Vec<u64> = Vec::new();
    let mut queries = 0u64;
    let mut results = 0u64;
    for (client, outcome) in stats.into_iter().enumerate() {
        match outcome {
            Ok(s) => {
                latencies.extend_from_slice(&s.latencies_us);
                queries += s.queries;
                results += s.results;
            }
            Err(e) => failures.push((client, e)),
        }
    }

    let mut shutdown_error = None;
    if stop_when_done {
        if let Err(e) = shutdown_server(&addr) {
            shutdown_error = Some(format!("shutdown: {e}"));
        }
    }
    if let Some(handle) = server_thread {
        handle
            .join()
            .map_err(|payload| err(format!("server {}", panic_detail(&*payload))))?
            .map_err(|e| err(format!("server failed: {e}")))?;
    }
    if let Some(path) = temp_catalog {
        let _ = std::fs::remove_file(path);
    }
    if !failures.is_empty() {
        for (client, e) in &failures {
            writeln!(out, "client {client} failed: {e}")?;
        }
        return Err(Box::new(err(format!(
            "{} of {} bench client(s) failed; first: client {}: {}",
            failures.len(),
            args.clients,
            failures[0].0,
            failures[0].1,
        ))));
    }
    if let Some(e) = shutdown_error {
        return Err(Box::new(err(format!("bench cleanup failed: {e}"))));
    }

    let total_requests = latencies.len() as u64;
    let elapsed_s = elapsed.as_secs_f64();
    let qps = queries as f64 / elapsed_s.max(1e-9);
    let rps = total_requests as f64 / elapsed_s.max(1e-9);
    let p50 = percentile_us(&mut latencies, 50.0);
    let p99 = percentile_us(&mut latencies, 99.0);

    writeln!(
        out,
        "{} client(s) x {requests} request(s) against {addr} (slot `{slot}`)",
        args.clients
    )?;
    writeln!(
        out,
        "{total_requests} requests / {queries} queries in {elapsed_s:.3}s: \
         {qps:.0} queries/sec ({rps:.0} requests/sec), {results} rule ids returned"
    )?;
    writeln!(out, "latency p50 {p50}us, p99 {p99}us")?;

    let json = format!(
        "{{\"suite\":\"bench_serve\",\"clients\":{},\"requests\":{total_requests},\
         \"queries\":{queries},\"results\":{results},\"elapsed_s\":{elapsed_s:.6},\
         \"queries_per_sec\":{qps:.1},\"requests_per_sec\":{rps:.1},\
         \"p50_us\":{p50},\"p99_us\":{p99},\"floor\":{:.1}}}",
        args.clients, args.floor
    );
    let json_path = args
        .out
        .clone()
        .or_else(|| std::env::var("QAR_BENCH_OUT").ok())
        .unwrap_or_else(|| "BENCH_serve.json".into());
    std::fs::write(&json_path, format!("{json}\n"))
        .map_err(|e| err(format!("cannot write `{json_path}`: {e}")))?;
    writeln!(out, "summary written to {json_path}")?;

    Ok(qps)
}

/// Execute `qar bench-analytics`: mine a planted ruleset, time the
/// closed-form measures and the Monte-Carlo Shapley attribution, print a
/// human summary, write the machine-readable JSON line, and return the
/// closed-form rules/sec (the caller enforces the floor so the exit code
/// carries it).
pub fn run_bench_analytics(
    args: &BenchAnalyticsArgs,
    out: &mut impl std::io::Write,
) -> Result<f64, Box<dyn std::error::Error>> {
    let quick = std::env::var_os("QAR_BENCH_QUICK").is_some();
    let records = if quick {
        args.records.min(1_000)
    } else {
        args.records
    };
    let iters = if quick { 2 } else { 5 };

    let data = qar_datagen::PlantedDataset::generate(qar_datagen::PlantedConfig {
        num_records: records,
        seed: 1996,
    });
    let config = MinerConfig {
        min_support: 0.05,
        min_confidence: 0.4,
        max_support: 0.5,
        partitioning: PartitionSpec::FixedIntervals(10),
        interest: None,
        max_itemset_size: 2,
        ..MinerConfig::default()
    };
    let result = Miner::new(config).mine(&data.table)?;
    let rules = result.rules.len();
    if rules == 0 {
        return Err(Box::new(err("benchmark mine produced no rules")));
    }

    // Best-of-N wall time for one full analytics computation at the
    // given sampling level. One Shapley sample is the computation's
    // floor (samples are clamped to >= 1), so that run times the
    // closed-form measures; the delta to the full-sampling run is
    // attribution work.
    let time_at = |samples: u32| -> f64 {
        let config = AnalyticsConfig {
            shapley_samples: samples,
            ..AnalyticsConfig::default()
        };
        let mut best = f64::INFINITY;
        for _ in 0..iters {
            let start = Instant::now();
            let set = analytics_from_mining(&result, &config, None);
            best = best.min(start.elapsed().as_secs_f64());
            std::hint::black_box(set);
        }
        best
    };
    let closed_s = time_at(1);
    let shapley_s = time_at(args.samples);

    let rules_per_sec = rules as f64 / closed_s.max(1e-9);
    let total_samples = rules as u64 * args.samples as u64;
    let samples_per_sec = total_samples as f64 / shapley_s.max(1e-9);

    writeln!(
        out,
        "{rules} rule(s) from {records} planted record(s); best of {iters} run(s)"
    )?;
    writeln!(
        out,
        "closed-form measures: {rules_per_sec:.0} rules/sec ({:.3}ms per pass)",
        closed_s * 1e3
    )?;
    writeln!(
        out,
        "Shapley attribution: {samples_per_sec:.0} samples/sec \
         ({} samples/rule, {:.3}ms per pass)",
        args.samples,
        shapley_s * 1e3
    )?;

    let json = format!(
        "{{\"suite\":\"bench_analytics\",\"records\":{records},\"rules\":{rules},\
         \"samples\":{},\"closed_form_rules_per_sec\":{rules_per_sec:.1},\
         \"shapley_samples_per_sec\":{samples_per_sec:.1},\"closed_form_s\":{closed_s:.6},\
         \"shapley_s\":{shapley_s:.6},\"floor\":{:.1}}}",
        args.samples, args.floor
    );
    let json_path = args
        .out
        .clone()
        .or_else(|| std::env::var("QAR_BENCH_OUT").ok())
        .unwrap_or_else(|| "BENCH_analytics.json".into());
    std::fs::write(&json_path, format!("{json}\n"))
        .map_err(|e| err(format!("cannot write `{json_path}`: {e}")))?;
    writeln!(out, "summary written to {json_path}")?;

    Ok(rules_per_sec)
}

/// A [`CountSource`] that times every counting pass two ways — one
/// serial scan of the whole table, and the count-distribution critical
/// path (slowest of `parts`, plus the merge) — while returning the
/// serial counts so the level-wise search proceeds normally. Each pass
/// asserts the merged partition counts equal the serial counts, so the
/// benchmark doubles as an exactness check with real candidate sets.
struct BenchDistSource<'a> {
    full: &'a EncodedTable,
    parts: Vec<EncodedTable>,
    serial_s: f64,
    critical_s: f64,
    merge_s: f64,
}

impl BenchDistSource<'_> {
    fn opts() -> qar_core::supercand::ScanOptions<'static> {
        qar_core::supercand::ScanOptions {
            kernel: ScanKernel::Auto,
            ..qar_core::supercand::ScanOptions::new(1)
        }
    }
}

impl CountSource for BenchDistSource<'_> {
    fn meta(&self) -> &EncodedTable {
        self.full
    }

    fn num_rows(&self) -> u64 {
        self.full.num_rows() as u64
    }

    fn value_counts(&mut self) -> Result<Vec<Vec<u64>>, CountError> {
        let started = Instant::now();
        let full = qar_core::frequent::attribute_value_counts(self.full);
        self.serial_s += started.elapsed().as_secs_f64();

        let mut worst = 0.0f64;
        let mut part_counts = Vec::with_capacity(self.parts.len());
        for part in &self.parts {
            let started = Instant::now();
            part_counts.push(qar_core::frequent::attribute_value_counts(part));
            worst = worst.max(started.elapsed().as_secs_f64());
        }
        self.critical_s += worst;

        let started = Instant::now();
        let mut merged: Vec<Vec<u64>> = full.iter().map(|v| vec![0u64; v.len()]).collect();
        for counts in &part_counts {
            for (acc, add) in merged.iter_mut().zip(counts) {
                for (a, b) in acc.iter_mut().zip(add) {
                    *a += b;
                }
            }
        }
        self.merge_s += started.elapsed().as_secs_f64();
        if merged != full {
            return Err(CountError::Failed(MinerError::Distributed(
                "pass 1: merged partition histograms diverge from the serial scan".into(),
            )));
        }
        Ok(full)
    }

    fn count(
        &mut self,
        pass: usize,
        candidates: &[qar_itemset::Itemset],
    ) -> Result<Vec<u64>, CountError> {
        let started = Instant::now();
        let (full, _) =
            qar_core::supercand::count_candidates_opts(self.full, candidates, None, Self::opts())?;
        self.serial_s += started.elapsed().as_secs_f64();

        let mut worst = 0.0f64;
        let mut part_counts = Vec::with_capacity(self.parts.len());
        for part in &self.parts {
            let started = Instant::now();
            let (counts, _) =
                qar_core::supercand::count_candidates_opts(part, candidates, None, Self::opts())?;
            part_counts.push(counts);
            worst = worst.max(started.elapsed().as_secs_f64());
        }
        self.critical_s += worst;

        let started = Instant::now();
        let mut merged = vec![0u64; candidates.len()];
        for counts in &part_counts {
            for (a, b) in merged.iter_mut().zip(counts) {
                *a += b;
            }
        }
        self.merge_s += started.elapsed().as_secs_f64();
        if merged != full {
            return Err(CountError::Failed(MinerError::Distributed(format!(
                "pass {pass}: merged partition counts diverge from the serial scan"
            ))));
        }
        Ok(full)
    }
}

/// Split an encoded table into `workers` contiguous row partitions, the
/// same split the distributed coordinator uses: near-even, with the
/// first `rows % workers` partitions one row longer.
fn partition_encoded(encoded: &EncodedTable, workers: usize) -> Vec<EncodedTable> {
    let rows = encoded.num_rows();
    let base = rows / workers;
    let extra = rows % workers;
    let mut parts = Vec::with_capacity(workers);
    let mut start = 0usize;
    for w in 0..workers {
        let len = base + usize::from(w < extra);
        let columns: Vec<Vec<u32>> = encoded
            .schema()
            .iter()
            .map(|(id, _)| encoded.codes(id)[start..start + len].to_vec())
            .collect();
        parts.push(EncodedTable::from_parts(
            encoded.schema().clone(),
            encoded.encoders().to_vec(),
            columns,
            len,
        ));
        start += len;
    }
    parts
}

/// Execute `qar bench-dist`: mine a planted table through
/// `BenchDistSource`, print a human summary, write the
/// machine-readable JSON line, and return the counting speedup (the
/// caller enforces the floor so the exit code carries it).
pub fn run_bench_dist(
    args: &BenchDistArgs,
    out: &mut impl std::io::Write,
) -> Result<f64, Box<dyn std::error::Error>> {
    let quick = std::env::var_os("QAR_BENCH_QUICK").is_some();
    let records = if quick {
        args.records.min(200_000)
    } else {
        args.records
    };

    let data = qar_datagen::PlantedDataset::generate(qar_datagen::PlantedConfig {
        num_records: records,
        seed: 1996,
    });
    let config = MinerConfig {
        min_support: 0.08,
        min_confidence: 0.5,
        max_support: 0.4,
        partitioning: PartitionSpec::FixedIntervals(10),
        interest: None,
        max_itemset_size: 2,
        parallelism: std::num::NonZeroUsize::new(1),
        ..MinerConfig::default()
    };
    let (encoders, _) =
        qar_core::pipeline::build_encoders(&data.table, &config).map_err(box_miner_error)?;
    let encoded = EncodedTable::encode(&data.table, encoders)?;
    drop(data);

    let mut source = BenchDistSource {
        parts: partition_encoded(&encoded, args.workers),
        full: &encoded,
        serial_s: 0.0,
        critical_s: 0.0,
        merge_s: 0.0,
    };
    let result = mine_source(&mut source, &config, None, None).map_err(box_miner_error)?;
    let (serial_s, critical_s, merge_s) = (source.serial_s, source.critical_s, source.merge_s);
    let dist_s = critical_s + merge_s;
    let speedup = serial_s / dist_s.max(1e-9);
    let passes = 1 + result.stats.mine.pass_stats.len();

    writeln!(
        out,
        "{records} planted record(s), {} worker partition(s), {passes} counting pass(es), \
         {} rule(s); partition counts merged exactly on every pass",
        args.workers,
        result.rules.len(),
    )?;
    writeln!(
        out,
        "serial counting {serial_s:.3}s; distributed critical path {critical_s:.3}s \
         + merge {merge_s:.3}s = {dist_s:.3}s"
    )?;
    writeln!(
        out,
        "counting speedup {speedup:.2}x (floor {:.2}x)",
        args.floor
    )?;

    let json = format!(
        "{{\"suite\":\"bench_dist\",\"records\":{records},\"workers\":{},\
         \"passes\":{passes},\"rules\":{},\"serial_s\":{serial_s:.6},\
         \"critical_path_s\":{critical_s:.6},\"merge_s\":{merge_s:.6},\
         \"speedup\":{speedup:.3},\"floor\":{:.2}}}",
        args.workers,
        result.rules.len(),
        args.floor
    );
    let json_path = args
        .out
        .clone()
        .or_else(|| std::env::var("QAR_BENCH_OUT").ok())
        .unwrap_or_else(|| "BENCH_dist.json".into());
    std::fs::write(&json_path, format!("{json}\n"))
        .map_err(|e| err(format!("cannot write `{json_path}`: {e}")))?;
    writeln!(out, "summary written to {json_path}")?;

    Ok(speedup)
}

/// The synthetic update-benchmark table: small integer/categorical
/// domains (append-stable value-list encoders, so the incremental path
/// applies), with the first rows enumerating every value so a delta
/// drawn from the same distribution never introduces an unseen one.
///
/// Every candidate's expected support sits at least 0.03 away from the
/// benchmark's `minsup` (0.10) at any scale: 40% of rows are a planted
/// `(qty=1, price=10, region=north)` triple (items/pairs/triple at
/// 0.40–0.60), and the uniform remainder puts every other pair at
/// 0.05–0.067. Without that separation a pair hovering at the threshold
/// could cross it between the base mine and the combined mine, which
/// changes the next pass's candidate set and legitimately forces the
/// update off the incremental path — the one thing this benchmark must
/// never do.
fn bench_update_table(records: usize, seed: u64) -> Table {
    let schema = Schema::builder()
        .quantitative("qty")
        .quantitative("price")
        .categorical("region")
        .build()
        .expect("static schema");
    let regions = ["south", "east", "west"];
    let mut rng = Prng::seed_from_u64(seed);
    let mut table = Table::new(schema);
    for i in 0..records {
        // The first 10 rows sweep every domain so later draws (and the
        // delta) are always encodable under the base encoders.
        let (qty, price, region) = if i < 10 {
            (
                i as i64 % 4,
                (i as i64 % 3) * 5 + 5,
                if i % 4 == 0 { "north" } else { regions[i % 3] },
            )
        } else if rng.gen_range(0..10u32) < 4 {
            (1, 10, "north")
        } else {
            (
                rng.gen_range(0..4i64),
                rng.gen_range(0..3i64) * 5 + 5,
                regions[rng.gen_range(0..3usize)],
            )
        };
        table
            .push_row(&[
                Value::Int(qty),
                Value::Int(price),
                Value::Cat(region.to_string()),
            ])
            .expect("schema-conformant row");
    }
    table
}

/// Execute `qar bench-update`: mine a base table with count capture,
/// append a delta, and time the incremental `--update` path against a
/// full re-mine of base+delta — asserting along the way that the update
/// stayed incremental and reproduced the from-scratch counts and rules
/// exactly. Returns the update speedup (re-mine time / update time).
pub fn run_bench_update(
    args: &BenchUpdateArgs,
    out: &mut impl std::io::Write,
) -> Result<f64, Box<dyn std::error::Error>> {
    let quick = std::env::var_os("QAR_BENCH_QUICK").is_some();
    let records = if quick {
        args.records.min(50_000)
    } else {
        args.records
    };
    let delta_rows = ((records as f64 * args.delta).ceil() as usize).max(1);

    // Base and delta from the same distribution; raw-value mining keeps
    // the encoders append-stable so the update is genuinely incremental.
    let base = bench_update_table(records, 1996);
    let delta = bench_update_table(delta_rows, 2026);
    let mut combined = Table::new(base.schema().clone());
    for table in [&base, &delta] {
        for r in 0..table.num_rows() {
            combined.push_row(&table.row(r).to_values())?;
        }
    }
    let config = MinerConfig {
        min_support: 0.1,
        min_confidence: 0.3,
        max_support: 1.0,
        partitioning: PartitionSpec::None,
        max_itemset_size: 3,
        parallelism: std::num::NonZeroUsize::new(1),
        ..MinerConfig::default()
    };

    let (base_output, base_counts) = Miner::new(config.clone()).mine_with_counts(&base)?;

    let iters = if quick { 1 } else { 3 };
    let mut remine_s = f64::INFINITY;
    let mut remined = None;
    for _ in 0..iters {
        let t = Instant::now();
        let pair = Miner::new(config.clone()).mine_with_counts(&combined)?;
        remine_s = remine_s.min(t.elapsed().as_secs_f64());
        remined = Some(pair);
    }
    let (remine_output, remine_counts) = remined.expect("at least one re-mine iteration");

    let mut update_s = f64::INFINITY;
    let mut updated = None;
    for _ in 0..iters {
        let t = Instant::now();
        let uo = Miner::new(config.clone())
            .update(UpdateInput {
                schema: base_output.encoded.schema(),
                encoders: base_output.encoded.encoders(),
                counts: &base_counts,
                delta: &delta,
                base_rows: None,
            })
            .map_err(box_miner_error)?;
        update_s = update_s.min(t.elapsed().as_secs_f64());
        updated = Some(uo);
    }
    let updated = updated.expect("at least one update iteration");

    // Exactness gates: the benchmark is meaningless if the update fell
    // back or diverged from the from-scratch mine.
    if !updated.incremental {
        return Err(Box::new(err(format!(
            "bench-update fell back to a full re-mine ({})",
            updated.fallback.as_deref().unwrap_or("unknown reason")
        ))));
    }
    if updated.counts != remine_counts {
        return Err(Box::new(err(
            "bench-update: merged counts diverged from the from-scratch mine",
        )));
    }
    if updated.output.rules != remine_output.rules {
        return Err(Box::new(err(
            "bench-update: updated rules diverged from the from-scratch mine",
        )));
    }

    let speedup = remine_s / update_s.max(1e-9);
    let passes = updated.counts.captured.passes.len() + 1;
    writeln!(
        out,
        "{records} base record(s) + {delta_rows} delta record(s), {passes} counting pass(es), \
         {} rule(s); update counts and rules match the from-scratch mine exactly",
        updated.output.rules.len(),
    )?;
    writeln!(
        out,
        "full re-mine {remine_s:.3}s; incremental update {update_s:.3}s"
    )?;
    writeln!(
        out,
        "update speedup {speedup:.2}x (floor {:.2}x)",
        args.floor
    )?;

    let json = format!(
        "{{\"suite\":\"bench_update\",\"records\":{records},\"delta_rows\":{delta_rows},\
         \"passes\":{passes},\"rules\":{},\"remine_s\":{remine_s:.6},\
         \"update_s\":{update_s:.6},\"speedup\":{speedup:.3},\"floor\":{:.2}}}",
        updated.output.rules.len(),
        args.floor
    );
    let json_path = args
        .out
        .clone()
        .or_else(|| std::env::var("QAR_BENCH_OUT").ok())
        .unwrap_or_else(|| "BENCH_update.json".into());
    std::fs::write(&json_path, format!("{json}\n"))
        .map_err(|e| err(format!("cannot write `{json_path}`: {e}")))?;
    writeln!(out, "summary written to {json_path}")?;

    Ok(speedup)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(|x| x.to_string()).collect()
    }

    #[test]
    fn help_variants() {
        assert_eq!(parse_command(&[]).unwrap(), Command::Help);
        assert_eq!(parse_command(&argv("help")).unwrap(), Command::Help);
        assert_eq!(parse_command(&argv("--help")).unwrap(), Command::Help);
    }

    #[test]
    fn mine_defaults() {
        let cmd = parse_command(&argv(
            "mine --input data.csv --schema age:quant,married:cat",
        ))
        .unwrap();
        let Command::Mine(args) = cmd else { panic!() };
        assert_eq!(args.input, "data.csv");
        assert_eq!(args.schema.len(), 2);
        assert_eq!(args.config.min_support, 0.2);
        assert_eq!(
            args.config.partitioning,
            PartitionSpec::CompletenessLevel(2.0)
        );
        assert!(args.config.interest.is_none());
        assert_eq!(args.config.kernel, ScanKernel::Auto);
        assert_eq!(args.top, 50);
    }

    #[test]
    fn kernel_flag() {
        for (flag, want) in [
            ("auto", ScanKernel::Auto),
            ("direct", ScanKernel::Direct),
            ("memoized", ScanKernel::Memoized),
            ("memo", ScanKernel::Memoized),
            ("bitmask", ScanKernel::Bitmask),
        ] {
            let cmd = parse_command(&argv(&format!(
                "mine --input f --schema a:q --kernel {flag}"
            )))
            .unwrap();
            let Command::Mine(args) = cmd else { panic!() };
            assert_eq!(args.config.kernel, want, "--kernel {flag}");
        }
        assert!(parse_command(&argv("mine --input f --schema a:q --kernel turbo")).is_err());
        // An explicit --kernel wins over the deprecated --no-memoize alias.
        let cmd = parse_command(&argv(
            "mine --input f --schema a:q --kernel bitmask --no-memoize",
        ))
        .unwrap();
        let Command::Mine(args) = cmd else { panic!() };
        assert_eq!(args.config.kernel, ScanKernel::Bitmask);
    }

    #[test]
    fn mine_full_flags() {
        let cmd = parse_command(&argv(
            "mine --input - --schema a:q,b:c --minsup 0.1 --minconf 0.6 --maxsup 0.3 \
             --intervals 8 --strategy kmeans --interest 1.5 --interest-mode and \
             --max-size 3 --top 10 --all-rules --no-memoize",
        ))
        .unwrap();
        let Command::Mine(args) = cmd else { panic!() };
        assert_eq!(args.config.min_support, 0.1);
        assert_eq!(args.config.partitioning, PartitionSpec::FixedIntervals(8));
        assert_eq!(args.config.partition_strategy, PartitionStrategy::KMeans);
        let interest = args.config.interest.unwrap();
        assert_eq!(interest.level, 1.5);
        assert_eq!(interest.mode, InterestMode::SupportAndConfidence);
        assert!(interest.prune_candidates);
        assert_eq!(args.config.max_itemset_size, 3);
        assert_eq!(args.config.kernel, ScanKernel::Direct);
        assert!(!args.interesting_only);
        assert_eq!(args.format, OutputFormat::Text);
    }

    #[test]
    fn format_flag() {
        for (flag, want) in [
            ("csv", OutputFormat::Csv),
            ("json", OutputFormat::Json),
            ("text", OutputFormat::Text),
        ] {
            let cmd = parse_command(&argv(&format!(
                "mine --input f --schema a:q --format {flag}"
            )))
            .unwrap();
            let Command::Mine(args) = cmd else { panic!() };
            assert_eq!(args.format, want);
        }
        assert!(parse_command(&argv("mine --input f --schema a:q --format yaml")).is_err());
    }

    #[test]
    fn csv_format_end_to_end() {
        let gen = GenerateArgs {
            dataset: "people".into(),
            records: 0,
            seed: 0,
            output: "-".into(),
        };
        let mut csv_bytes = Vec::new();
        run_generate(&gen, &mut csv_bytes).expect("generate");
        let decls = parse_schema_decls("Age:quant,Married:cat,NumCars:quant").unwrap();
        let schema = build_schema(&decls).unwrap();
        let table = csv::read_table(csv_bytes.as_slice(), &schema).unwrap();
        let cmd = parse_command(&argv(
            "mine --input - --schema Age:quant,Married:cat,NumCars:quant \
             --minsup 0.4 --minconf 0.5 --maxsup 1.0 --no-partition --format csv",
        ))
        .unwrap();
        let Command::Mine(args) = cmd else { panic!() };
        let mut report = Vec::new();
        run_mine_on_table(&table, &args, &mut report).expect("mine");
        let text = String::from_utf8(report).unwrap();
        assert!(text.starts_with("antecedent,consequent,"), "{text}");
        assert!(text.contains("Married=Yes,NumCars=2,2,0.400000,1.000000"));
    }

    #[test]
    fn mine_rejects_bad_input() {
        assert!(parse_command(&argv("mine --schema a:q")).is_err()); // no input
        assert!(parse_command(&argv("mine --input f")).is_err()); // no schema
        assert!(parse_command(&argv("mine --input f --schema a:bogus")).is_err());
        assert!(parse_command(&argv("mine --input f --schema a:q --minsup nope")).is_err());
        assert!(parse_command(&argv("mine --input f --schema a:q --minsup 2.0")).is_err());
        assert!(parse_command(&argv("mine --input f --schema a:q --strategy diagonal")).is_err());
        assert!(parse_command(&argv("frobnicate")).is_err());
    }

    #[test]
    fn fuzz_defaults_and_flags() {
        let cmd = parse_command(&argv("fuzz")).unwrap();
        assert_eq!(
            cmd,
            Command::Fuzz(FuzzArgs {
                iters: 200,
                seed: 42,
                out: "tests/fuzz_repros".into(),
            })
        );
        let cmd = parse_command(&argv("fuzz --iters 1000 --seed 7 --out /tmp/repros")).unwrap();
        assert_eq!(
            cmd,
            Command::Fuzz(FuzzArgs {
                iters: 1000,
                seed: 7,
                out: "/tmp/repros".into(),
            })
        );
        assert!(parse_command(&argv("fuzz --iters 0")).is_err());
        assert!(parse_command(&argv("fuzz --iters nope")).is_err());
        assert!(parse_command(&argv("fuzz --input f")).is_err());
    }

    /// A short in-process fuzz run through the CLI plumbing: clean repo,
    /// zero divergences, nothing written to the fixture directory.
    #[test]
    fn run_fuzz_smoke_reports_clean() {
        let args = FuzzArgs {
            iters: 30,
            seed: 0xCAFE,
            out: "target/test-fuzz-out-should-not-exist".into(),
        };
        let mut report = Vec::new();
        let divergences = run_fuzz(&args, &mut report).expect("fuzz runs");
        let text = String::from_utf8(report).unwrap();
        assert_eq!(divergences, 0, "{text}");
        assert!(text.contains("all paths agreed"), "{text}");
        assert!(
            !std::path::Path::new(&args.out).exists(),
            "clean run must not create the fixture directory"
        );
    }

    #[test]
    fn schema_decl_parsing() {
        let decls = parse_schema_decls("age:quant, income :q,city:cat,flag:c").unwrap();
        assert_eq!(decls.len(), 4);
        assert!(decls[0].1 && decls[1].1);
        assert!(!decls[2].1 && !decls[3].1);
        assert_eq!(decls[1].0, "income");
        assert!(parse_schema_decls("x").is_err());
        assert!(parse_schema_decls(":q").is_err());
        let schema = build_schema(&decls).unwrap();
        assert_eq!(schema.len(), 4);
    }

    #[test]
    fn taxonomy_flag_parses_and_repeats() {
        let cmd = parse_command(&argv(
            "mine --input f --schema a:c,b:c --taxonomy a=ta.txt --taxonomy b=tb.txt",
        ))
        .unwrap();
        let Command::Mine(args) = cmd else { panic!() };
        assert_eq!(
            args.taxonomy_files,
            vec![
                ("a".to_string(), "ta.txt".to_string()),
                ("b".to_string(), "tb.txt".to_string())
            ]
        );
        assert!(parse_command(&argv("mine --input f --schema a:c --taxonomy nofile")).is_err());
    }

    #[test]
    fn taxonomy_file_parsing() {
        let tax = parse_taxonomy("# comment\nCA,West\nWA,West\n\nWest,USA\n").unwrap();
        assert!(tax.is_ancestor("USA", "CA"));
        assert!(parse_taxonomy("").is_err());
        assert!(parse_taxonomy("justoneword\n").is_err());
        assert!(parse_taxonomy("a,b\nb,a\n").is_err()); // cycle
    }

    #[test]
    fn generate_parsing() {
        let cmd = parse_command(&argv("generate credit --records 500 --seed 7")).unwrap();
        let Command::Generate(args) = cmd else {
            panic!()
        };
        assert_eq!(args.dataset, "credit");
        assert_eq!(args.records, 500);
        assert_eq!(args.seed, 7);
        assert_eq!(args.output, "-");
        assert!(parse_command(&argv("generate nonsense")).is_err());
        assert!(parse_command(&argv("generate")).is_err());
    }

    #[test]
    fn trace_and_deadline_flags() {
        let cmd = parse_command(&argv(
            "mine --input f --schema a:q --trace json --deadline 2.5",
        ))
        .unwrap();
        let Command::Mine(args) = cmd else { panic!() };
        assert_eq!(args.trace, Some(TraceFormat::Json));
        assert_eq!(args.deadline, Some(2.5));
        assert!(parse_command(&argv("mine --input f --schema a:q --trace yaml")).is_err());
        assert!(parse_command(&argv("mine --input f --schema a:q --deadline 0")).is_err());
        assert!(parse_command(&argv("mine --input f --schema a:q --deadline -1")).is_err());
    }

    #[test]
    fn trace_check_parsing_and_validation() {
        let cmd = parse_command(&argv("trace-check")).unwrap();
        assert_eq!(
            cmd,
            Command::TraceCheck(TraceCheckArgs {
                input: "-".into(),
                schema: None
            })
        );
        // Positional input: a file path or `-` for stdin.
        let cmd = parse_command(&argv("trace-check run.jsonl --schema custom.json")).unwrap();
        let Command::TraceCheck(args) = cmd else {
            panic!()
        };
        assert_eq!(args.input, "run.jsonl");
        assert_eq!(args.schema.as_deref(), Some("custom.json"));
        let cmd = parse_command(&argv("trace-check -")).unwrap();
        let Command::TraceCheck(args) = cmd else {
            panic!()
        };
        assert_eq!(args.input, "-");

        let schema_text = include_str!("../schemas/trace_events.schema.json");
        let good = "{\"event\":\"pass_started\",\"pass\":2,\"candidates\":7}\n";
        let mut out = Vec::new();
        run_trace_check(schema_text, good, &mut out).expect("valid stream");
        let report = String::from_utf8(out).unwrap();
        assert!(report.starts_with("1 events valid"), "{report}");
        assert!(report.contains("pass_started: 1"), "{report}");

        let bad = "{\"event\":\"pass_started\",\"pass\":2}\n";
        assert!(run_trace_check(schema_text, bad, &mut Vec::new()).is_err());
        assert!(run_trace_check("not json", good, &mut Vec::new()).is_err());
    }

    #[test]
    fn json_format_includes_pass_stats() {
        let gen = GenerateArgs {
            dataset: "people".into(),
            records: 0,
            seed: 0,
            output: "-".into(),
        };
        let mut csv_bytes = Vec::new();
        run_generate(&gen, &mut csv_bytes).expect("generate");
        let decls = parse_schema_decls("Age:quant,Married:cat,NumCars:quant").unwrap();
        let schema = build_schema(&decls).unwrap();
        let table = csv::read_table(csv_bytes.as_slice(), &schema).unwrap();
        let cmd = parse_command(&argv(
            "mine --input - --schema Age:quant,Married:cat,NumCars:quant \
             --minsup 0.4 --minconf 0.5 --maxsup 1.0 --no-partition --format json",
        ))
        .unwrap();
        let Command::Mine(args) = cmd else { panic!() };
        let mut report = Vec::new();
        run_mine_on_table(&table, &args, &mut report).expect("mine");
        let text = String::from_utf8(report).unwrap();
        let doc = qar_trace::json::parse(&text).expect("valid JSON output");
        let obj = doc.as_object().expect("top-level object");
        let stats = obj["stats"].as_object().expect("stats object");
        assert!(!stats["passes"].as_array().expect("passes").is_empty());
        assert!(!obj["rules"].as_array().expect("rules array").is_empty());
    }

    #[test]
    fn generate_then_mine_round_trip() {
        // people -> CSV -> parse -> mine, all through the CLI layer.
        let gen = GenerateArgs {
            dataset: "people".into(),
            records: 0,
            seed: 0,
            output: "-".into(),
        };
        let mut csv_bytes = Vec::new();
        run_generate(&gen, &mut csv_bytes).expect("generate");

        let decls =
            parse_schema_decls("Age:quant,Married:cat,NumCars:quant").expect("schema decls");
        let schema = build_schema(&decls).expect("schema");
        let table = csv::read_table(csv_bytes.as_slice(), &schema).expect("read generated CSV");

        let cmd = parse_command(&argv(
            "mine --input - --schema Age:quant,Married:cat,NumCars:quant \
             --minsup 0.4 --minconf 0.5 --maxsup 1.0 --no-partition --top 0",
        ))
        .expect("parse");
        let Command::Mine(args) = cmd else { panic!() };
        let mut report = Vec::new();
        run_mine_on_table(&table, &args, &mut report).expect("mine");
        let text = String::from_utf8(report).expect("utf8");
        assert!(text.contains("⟨Married: Yes⟩ ⇒ ⟨NumCars: 2⟩"), "{text}");
    }

    #[test]
    fn query_parsing() {
        let cmd = parse_command(&argv("query cat.qarcat")).unwrap();
        let Command::Query(args) = cmd else { panic!() };
        assert_eq!(args.catalog, "cat.qarcat");
        assert!(args.record.is_none() && args.range.is_none());
        assert!(args.by.is_none() && args.top_k.is_none());
        assert_eq!(args.format, OutputFormat::Text);

        let cmd = parse_command(&argv(
            "query - --record Age=30,Married=Yes --top-k 5 --by interest --format json",
        ))
        .unwrap();
        let Command::Query(args) = cmd else { panic!() };
        assert_eq!(args.catalog, "-"); // stdin
        assert_eq!(args.record.as_deref(), Some("Age=30,Married=Yes"));
        assert_eq!(args.top_k, Some(5));
        assert_eq!(args.by, Some(RankBy::Interest));
        assert_eq!(args.format, OutputFormat::Json);

        let cmd = parse_command(&argv("query c.qarcat --range Age=30..40")).unwrap();
        let Command::Query(args) = cmd else { panic!() };
        assert_eq!(args.range.as_deref(), Some("Age=30..40"));

        assert!(parse_command(&argv("query")).is_err()); // catalog required
        assert!(parse_command(&argv("query c --record a=1 --range a=1..2")).is_err());
        assert!(parse_command(&argv("query c --by niceness")).is_err());
        assert!(parse_command(&argv("query c --top-k lots")).is_err());
        assert!(parse_command(&argv("query c --format yaml")).is_err());
    }

    #[test]
    fn store_check_parsing() {
        let cmd = parse_command(&argv("store-check")).unwrap();
        assert_eq!(
            cmd,
            Command::StoreCheck(StoreCheckArgs { input: "-".into() })
        );
        let cmd = parse_command(&argv("store-check cat.qarcat")).unwrap();
        assert_eq!(
            cmd,
            Command::StoreCheck(StoreCheckArgs {
                input: "cat.qarcat".into()
            })
        );
        assert!(parse_command(&argv("store-check cat.qarcat --verbose yes")).is_err());
    }

    #[test]
    fn mine_store_query_end_to_end() {
        let gen = GenerateArgs {
            dataset: "people".into(),
            records: 0,
            seed: 0,
            output: "-".into(),
        };
        let mut csv_bytes = Vec::new();
        run_generate(&gen, &mut csv_bytes).expect("generate");
        let decls = parse_schema_decls("Age:quant,Married:cat,NumCars:quant").unwrap();
        let schema = build_schema(&decls).unwrap();
        let table = csv::read_table(csv_bytes.as_slice(), &schema).unwrap();

        let store_path =
            std::env::temp_dir().join(format!("qar-cli-end-to-end-{}.qarcat", std::process::id()));
        let cmd = parse_command(&argv(
            "mine --input - --schema Age:quant,Married:cat,NumCars:quant \
             --minsup 0.4 --minconf 0.5 --maxsup 1.0 --no-partition --format json",
        ))
        .unwrap();
        let Command::Mine(mut args) = cmd else {
            panic!()
        };
        args.store = Some(store_path.to_str().unwrap().to_string());
        let mut mine_out = Vec::new();
        run_mine_on_table(&table, &args, &mut mine_out).expect("mine");
        let mine_text = String::from_utf8(mine_out).unwrap();
        let bytes = std::fs::read(&store_path).expect("catalog written");
        std::fs::remove_file(&store_path).ok();

        // `qar store-check` accepts the pristine catalog, leading with
        // the section inventory...
        let mut check_out = Vec::new();
        run_store_check(&bytes, &mut check_out).expect("store-check");
        let check_text = String::from_utf8(check_out).unwrap();
        assert!(check_text.starts_with("sections:"), "{check_text}");
        assert!(check_text.contains("catalog OK:"), "{check_text}");
        assert!(check_text.contains("rules (tag 2):"), "{check_text}");
        assert!(
            check_text.contains("0 unknown section(s) skipped"),
            "{check_text}"
        );
        assert!(check_text.contains("analytics: none"), "{check_text}");

        // ...and rejects a bit-flipped copy.
        let mut corrupt = bytes.clone();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0x01;
        assert!(run_store_check(&corrupt, &mut Vec::new()).is_err());

        // An unfiltered JSON query reproduces the mined rules array
        // byte-for-byte — the contract the CI store-smoke step relies on.
        let cmd = parse_command(&argv("query - --format json")).unwrap();
        let Command::Query(qargs) = cmd else { panic!() };
        let mut query_out = Vec::new();
        run_query(&bytes, &qargs, &mut query_out).expect("query");
        let query_text = String::from_utf8(query_out).unwrap();
        let rules_at = mine_text.find("\"rules\":").expect("rules key") + "\"rules\":".len();
        let mined_rules = &mine_text[rules_at..mine_text.len() - "}\n".len()];
        assert_eq!(query_text, mined_rules);

        // A record query returns only rules whose antecedents cover it.
        let cmd = parse_command(&argv("query - --record Married=Yes,NumCars=2")).unwrap();
        let Command::Query(qargs) = cmd else { panic!() };
        let mut rec_out = Vec::new();
        run_query(&bytes, &qargs, &mut rec_out).expect("record query");
        let rec_text = String::from_utf8(rec_out).unwrap();
        assert!(rec_text.contains("fire for the record"), "{rec_text}");
        assert!(rec_text.contains("⟨Married: Yes⟩"), "{rec_text}");

        // A range query mentions the interval; an unknown label errors.
        let cmd = parse_command(&argv("query - --range Age=20..30 --top-k 3")).unwrap();
        let Command::Query(qargs) = cmd else { panic!() };
        run_query(&bytes, &qargs, &mut Vec::new()).expect("range query");
        let cmd = parse_command(&argv("query - --record Married=Perhaps")).unwrap();
        let Command::Query(qargs) = cmd else { panic!() };
        assert!(run_query(&bytes, &qargs, &mut Vec::new()).is_err());
        let cmd = parse_command(&argv("query - --range Married=1..2")).unwrap();
        let Command::Query(qargs) = cmd else { panic!() };
        assert!(run_query(&bytes, &qargs, &mut Vec::new()).is_err());
    }

    #[test]
    fn serve_defaults_and_flags() {
        let cmd = parse_command(&argv("serve cat.qarcat")).unwrap();
        assert_eq!(
            cmd,
            Command::Serve(ServeArgs {
                catalogs: vec!["cat.qarcat".into()],
                port: 0,
                threads: 0,
                trace: None,
            })
        );
        let cmd = parse_command(&argv(
            "serve a.qarcat b.qarcat --port 9999 --threads 4 --trace json",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Serve(ServeArgs {
                catalogs: vec!["a.qarcat".into(), "b.qarcat".into()],
                port: 9999,
                threads: 4,
                trace: Some(TraceFormat::Json),
            })
        );
        assert!(parse_command(&argv("serve")).is_err());
        assert!(parse_command(&argv("serve --port 1234")).is_err());
        assert!(parse_command(&argv("serve cat.qarcat --port 70000")).is_err());
        assert!(parse_command(&argv("serve cat.qarcat --bogus 1")).is_err());
    }

    #[test]
    fn bench_serve_defaults_and_flags() {
        let cmd = parse_command(&argv("bench-serve")).unwrap();
        assert_eq!(
            cmd,
            Command::BenchServe(BenchServeArgs {
                addr: None,
                catalog: None,
                clients: 8,
                requests: 2000,
                threads: 0,
                floor: 50_000.0,
                shutdown: false,
                out: None,
            })
        );
        let cmd = parse_command(&argv(
            "bench-serve --addr 127.0.0.1:7000 --catalog cat.qarcat --clients 2 \
             --requests 10 --threads 3 --floor 0 --shutdown --out b.json",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::BenchServe(BenchServeArgs {
                addr: Some("127.0.0.1:7000".into()),
                catalog: Some("cat.qarcat".into()),
                clients: 2,
                requests: 10,
                threads: 3,
                floor: 0.0,
                shutdown: true,
                out: Some("b.json".into()),
            })
        );
        // --shutdown is meaningless without --addr: self-hosted servers
        // are always stopped.
        assert!(parse_command(&argv("bench-serve --shutdown")).is_err());
        assert!(parse_command(&argv("bench-serve --clients 0")).is_err());
        assert!(parse_command(&argv("bench-serve --bogus 1")).is_err());
    }

    #[test]
    fn catalog_slots_use_file_stems() {
        let slots = catalog_slots(&["rules/cat.qarcat".into(), "other.qarcat".into()]).unwrap();
        assert_eq!(
            slots,
            vec![
                ("cat".to_string(), PathBuf::from("rules/cat.qarcat")),
                ("other".to_string(), PathBuf::from("other.qarcat")),
            ]
        );
        assert!(catalog_slots(&["..".into()]).is_err());
    }

    #[test]
    fn bench_workload_is_deterministic_and_mixed() {
        let space = QuerySpace::generic();
        let a = bench_workload(&space, "cat", 32, 7);
        let b = bench_workload(&space, "cat", 32, 7);
        assert_eq!(a, b);
        let kind = |r: &Request| match r {
            Request::Batch { .. } => "batch",
            Request::Query { query, .. } => query.kind(),
            _ => "other",
        };
        for want in ["point", "range", "top_k", "batch"] {
            assert!(a.iter().any(|r| kind(r) == want), "missing {want}");
        }
        // Every seventh request carries a deadline.
        let with_deadline = a
            .iter()
            .filter(|r| match r {
                Request::Query { deadline_ms, .. } | Request::Batch { deadline_ms, .. } => {
                    deadline_ms.is_some()
                }
                _ => false,
            })
            .count();
        assert_eq!(with_deadline, 32 / 7);
    }

    #[test]
    fn analytics_flag_requires_store() {
        let cmd = parse_command(&argv(
            "mine --input f --schema a:q --analytics --store cat.qarcat",
        ))
        .unwrap();
        let Command::Mine(args) = cmd else { panic!() };
        assert!(args.analytics);
        assert!(args.warnings.is_empty());
        let cmd = parse_command(&argv("mine --input f --schema a:q --store cat.qarcat")).unwrap();
        let Command::Mine(args) = cmd else { panic!() };
        assert!(!args.analytics);
        let e = parse_command(&argv("mine --input f --schema a:q --analytics")).unwrap_err();
        assert!(e.to_string().contains("--store"), "{e}");
    }

    /// `--no-memoize` still parses (as `--kernel direct`) but now earns
    /// a deprecation warning the binary prints to stderr.
    #[test]
    fn no_memoize_earns_deprecation_warning() {
        let cmd = parse_command(&argv("mine --input f --schema a:q --no-memoize")).unwrap();
        let Command::Mine(args) = cmd else { panic!() };
        assert_eq!(args.config.kernel, ScanKernel::Direct);
        assert_eq!(args.warnings.len(), 1, "{:?}", args.warnings);
        assert!(
            args.warnings[0].contains("deprecated"),
            "{:?}",
            args.warnings
        );
        assert!(
            args.warnings[0].contains("--kernel direct"),
            "{:?}",
            args.warnings
        );
        let cmd = parse_command(&argv("mine --input f --schema a:q --kernel direct")).unwrap();
        let Command::Mine(args) = cmd else { panic!() };
        assert!(args.warnings.is_empty(), "{:?}", args.warnings);
    }

    #[test]
    fn analyze_parsing() {
        let cmd = parse_command(&argv("analyze cat.qarcat --input data.csv")).unwrap();
        let Command::Analyze(args) = cmd else {
            panic!()
        };
        assert_eq!(args.catalog, "cat.qarcat");
        assert_eq!(args.input, "data.csv");
        assert_eq!(args.samples, AnalyticsConfig::default().shapley_samples);
        assert_eq!(args.seed, AnalyticsConfig::default().seed);
        assert!(args.output.is_none() && args.trace.is_none());

        let cmd = parse_command(&argv(
            "analyze cat.qarcat --input - --samples 16 --seed 7 --output new.qarcat --trace json",
        ))
        .unwrap();
        let Command::Analyze(args) = cmd else {
            panic!()
        };
        assert_eq!(args.samples, 16);
        assert_eq!(args.seed, 7);
        assert_eq!(args.output.as_deref(), Some("new.qarcat"));
        assert_eq!(args.trace, Some(TraceFormat::Json));

        assert!(parse_command(&argv("analyze --input d.csv")).is_err()); // catalog required
        assert!(parse_command(&argv("analyze - --input d.csv")).is_err()); // no stdin catalog
        assert!(parse_command(&argv("analyze cat.qarcat")).is_err()); // input required
        assert!(parse_command(&argv("analyze cat.qarcat --input d --samples 0")).is_err());
        assert!(parse_command(&argv("analyze cat.qarcat --input d --bogus 1")).is_err());
    }

    #[test]
    fn query_analytics_flags_parse() {
        let cmd = parse_command(&argv(
            "query cat.qarcat --by lift --min-lift 1.5 --max-p 0.05",
        ))
        .unwrap();
        let Command::Query(args) = cmd else { panic!() };
        assert_eq!(args.by, Some(RankBy::Lift));
        assert_eq!(args.min_lift, Some(1.5));
        assert_eq!(args.max_p, Some(0.05));
        for by in ["conviction", "chi2", "jmeasure"] {
            let cmd = parse_command(&argv(&format!("query c --by {by}"))).unwrap();
            let Command::Query(args) = cmd else { panic!() };
            assert!(args.by.is_some(), "--by {by}");
        }
        assert!(parse_command(&argv("query c --min-lift lots")).is_err());
        assert!(parse_command(&argv("query c --max-p often")).is_err());
    }

    #[test]
    fn bench_analytics_parsing() {
        let cmd = parse_command(&argv("bench-analytics")).unwrap();
        assert_eq!(
            cmd,
            Command::BenchAnalytics(BenchAnalyticsArgs {
                records: 5_000,
                samples: 64,
                floor: 500.0,
                out: None,
            })
        );
        let cmd = parse_command(&argv(
            "bench-analytics --records 100 --samples 8 --floor 0 --out b.json",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::BenchAnalytics(BenchAnalyticsArgs {
                records: 100,
                samples: 8,
                floor: 0.0,
                out: Some("b.json".into()),
            })
        );
        assert!(parse_command(&argv("bench-analytics --records 0")).is_err());
        assert!(parse_command(&argv("bench-analytics --samples 0")).is_err());
        assert!(parse_command(&argv("bench-analytics --bogus 1")).is_err());
    }

    /// The full analytics lifecycle through the CLI layer: mine with
    /// `--analytics`, inventory the stored sections, rank and filter by
    /// the new metrics, refuse them on an analytics-less catalog, and
    /// prove `qar analyze` backfills a byte-identical catalog.
    #[test]
    fn mine_analytics_analyze_query_end_to_end() {
        let gen = GenerateArgs {
            dataset: "people".into(),
            records: 0,
            seed: 0,
            output: "-".into(),
        };
        let mut csv_bytes = Vec::new();
        run_generate(&gen, &mut csv_bytes).expect("generate");
        let decls = parse_schema_decls("Age:quant,Married:cat,NumCars:quant").unwrap();
        let schema = build_schema(&decls).unwrap();
        let table = csv::read_table(csv_bytes.as_slice(), &schema).unwrap();

        let pid = std::process::id();
        let with_path = std::env::temp_dir().join(format!("qar-cli-analytics-{pid}.qarcat"));
        let plain_path = std::env::temp_dir().join(format!("qar-cli-plain-{pid}.qarcat"));
        let base = "mine --input - --schema Age:quant,Married:cat,NumCars:quant \
                    --minsup 0.4 --minconf 0.5 --maxsup 1.0 --no-partition";
        for (flags, path) in [(" --analytics", &with_path), ("", &plain_path)] {
            let cmd = parse_command(&argv(&format!(
                "{base}{flags} --store {}",
                path.to_str().unwrap()
            )))
            .unwrap();
            let Command::Mine(args) = cmd else { panic!() };
            run_mine_on_table(&table, &args, &mut Vec::new()).expect("mine");
        }
        let with_bytes = std::fs::read(&with_path).expect("analytics catalog written");
        let plain_bytes = std::fs::read(&plain_path).expect("plain catalog written");
        std::fs::remove_file(&with_path).ok();
        std::fs::remove_file(&plain_path).ok();

        // store-check inventories the ANALYTICS section on one catalog
        // and reports its absence on the other.
        let mut check_out = Vec::new();
        run_store_check(&with_bytes, &mut check_out).expect("store-check");
        let check_text = String::from_utf8(check_out).unwrap();
        assert!(check_text.contains("analytics (tag 4):"), "{check_text}");
        assert!(check_text.contains("Shapley sample(s)"), "{check_text}");
        let mut check_out = Vec::new();
        run_store_check(&plain_bytes, &mut check_out).expect("store-check");
        let check_text = String::from_utf8(check_out).unwrap();
        assert!(!check_text.contains("analytics (tag 4):"), "{check_text}");
        assert!(check_text.contains("analytics: none"), "{check_text}");

        // Analytics rankings and filters work on the annotated catalog...
        for spec in [
            "query - --by lift",
            "query - --by conviction --top-k 2",
            "query - --by chi2 --max-p 1.0",
            "query - --by jmeasure --min-lift 0",
            "query - --record Married=Yes --by lift --min-lift 0 --max-p 1.0",
        ] {
            let cmd = parse_command(&argv(spec)).unwrap();
            let Command::Query(qargs) = cmd else { panic!() };
            let mut out = Vec::new();
            run_query(&with_bytes, &qargs, &mut out).expect(spec);
            assert!(String::from_utf8(out).unwrap().contains("rules"), "{spec}");
        }

        // ...and are refused with a pointer at the backfill path on the
        // plain catalog, which keeps answering classic queries.
        for spec in ["query - --by lift", "query - --min-lift 1.0"] {
            let cmd = parse_command(&argv(spec)).unwrap();
            let Command::Query(qargs) = cmd else { panic!() };
            let e = run_query(&plain_bytes, &qargs, &mut Vec::new()).unwrap_err();
            assert!(e.to_string().contains("qar analyze"), "{spec}: {e}");
        }
        let cmd = parse_command(&argv("query - --by confidence --top-k 3")).unwrap();
        let Command::Query(qargs) = cmd else { panic!() };
        run_query(&plain_bytes, &qargs, &mut Vec::new()).expect("classic ranking");

        // `qar analyze` backfills the plain catalog into a byte-for-byte
        // copy of what `mine --analytics` stored (same defaults, same
        // deterministic sampler).
        let cmd = parse_command(&argv("analyze plain.qarcat --input -")).unwrap();
        let Command::Analyze(aargs) = cmd else {
            panic!()
        };
        let mut analyze_out = Vec::new();
        let annotated =
            run_analyze(&plain_bytes, &csv_bytes, &aargs, &mut analyze_out).expect("analyze");
        let analyze_text = String::from_utf8(analyze_out).unwrap();
        assert!(
            analyze_text.contains("backfilled analytics for"),
            "{analyze_text}"
        );
        // The annotated catalog is the plain one with the ANALYTICS
        // section spliced in before COUNTS — and that section is
        // byte-identical to what `mine --analytics` stored (the whole
        // files can't be compared: the two mines' STATS sections carry
        // different wall times).
        fn section_ranges(bytes: &[u8]) -> Vec<(u32, std::ops::Range<usize>)> {
            let sections = qar_store::section_inventory(bytes).expect("catalog walks");
            let mut offset = qar_store::format::MAGIC.len() + 4;
            sections
                .iter()
                .map(|s| {
                    let start = offset;
                    offset += 4 + 8 + 4 + s.len as usize;
                    (s.tag, start..offset)
                })
                .collect()
        }
        let analytics_of = |bytes: &[u8]| -> std::ops::Range<usize> {
            section_ranges(bytes)
                .into_iter()
                .find(|(tag, _)| *tag == 4)
                .expect("ANALYTICS section present")
                .1
        };
        let ann_range = analytics_of(&annotated);
        assert_eq!(
            annotated[ann_range.clone()],
            with_bytes[analytics_of(&with_bytes)],
            "backfilled ANALYTICS section is byte-identical"
        );
        let mut without_analytics = annotated.clone();
        without_analytics.drain(ann_range);
        assert_eq!(
            without_analytics, plain_bytes,
            "annotated catalog is the plain one plus the ANALYTICS section"
        );

        // A row-count mismatch is rejected before any annotation.
        let truncated_csv = {
            let text = String::from_utf8(csv_bytes.clone()).unwrap();
            let mut lines: Vec<&str> = text.lines().collect();
            lines.pop();
            lines.join("\n") + "\n"
        };
        let e = run_analyze(
            &plain_bytes,
            truncated_csv.as_bytes(),
            &aargs,
            &mut Vec::new(),
        )
        .unwrap_err();
        assert!(e.to_string().contains("row"), "{e}");
    }

    /// `bench-analytics` produces sane numbers and a parseable summary
    /// line at smoke scale.
    #[test]
    fn bench_analytics_smoke() {
        let out_path = std::env::temp_dir().join(format!(
            "qar-bench-analytics-test-{}.json",
            std::process::id()
        ));
        let args = BenchAnalyticsArgs {
            records: 400,
            samples: 8,
            floor: 0.0,
            out: Some(out_path.to_str().unwrap().to_string()),
        };
        let mut report = Vec::new();
        let rps = run_bench_analytics(&args, &mut report).expect("bench runs");
        assert!(rps > 0.0);
        let text = String::from_utf8(report).unwrap();
        assert!(text.contains("closed-form measures:"), "{text}");
        assert!(text.contains("Shapley attribution:"), "{text}");
        let json = std::fs::read_to_string(&out_path).expect("summary written");
        std::fs::remove_file(&out_path).ok();
        let doc = qar_trace::json::parse(&json).expect("valid JSON");
        let obj = doc.as_object().expect("object");
        assert_eq!(obj["suite"].as_str(), Some("bench_analytics"));
        for key in ["closed_form_rules_per_sec", "shapley_samples_per_sec"] {
            let qar_trace::json::Json::Num(v) = obj[key] else {
                panic!("{key} is not a number");
            };
            assert!(v > 0.0, "{key} = {v}");
        }
    }

    #[test]
    fn percentiles_of_latency_samples() {
        let mut empty: Vec<u64> = Vec::new();
        assert_eq!(percentile_us(&mut empty, 50.0), 0);
        let mut one = vec![42];
        assert_eq!(percentile_us(&mut one, 99.0), 42);
        let mut sample: Vec<u64> = (1..=100).rev().collect();
        // Nearest-rank on 100 samples: rank round(0.5 * 99) = 50.
        assert_eq!(percentile_us(&mut sample, 50.0), 51);
        assert_eq!(percentile_us(&mut sample, 99.0), 99);
        assert_eq!(percentile_us(&mut sample, 100.0), 100);
    }

    #[test]
    fn dist_mine_flags_parse() {
        let cmd = parse_command(&argv(
            "mine --input f --schema a:q --workers 3 --chunk-rows 512 --normalize-stats",
        ))
        .unwrap();
        let Command::Mine(args) = cmd else { panic!() };
        assert_eq!(args.workers, 3);
        assert_eq!(args.chunk_rows, 512);
        assert!(args.normalize_stats);
        // Defaults: serial, in-memory, raw stats.
        let cmd = parse_command(&argv("mine --input f --schema a:q")).unwrap();
        let Command::Mine(args) = cmd else { panic!() };
        assert_eq!(args.workers, 0);
        assert_eq!(args.chunk_rows, 0);
        assert!(!args.normalize_stats);
        // Analytics need the full in-memory table on the coordinator.
        for flags in ["--workers 2", "--chunk-rows 64"] {
            let e = parse_command(&argv(&format!(
                "mine --input f --schema a:q --store c.qarcat --analytics {flags}"
            )))
            .unwrap_err();
            assert!(e.to_string().contains("qar analyze"), "{flags}: {e}");
        }
        // The chunked path reads the file twice, so stdin is out.
        let e = parse_command(&argv("mine --input - --schema a:q --chunk-rows 64")).unwrap_err();
        assert!(e.to_string().contains("stdin"), "{e}");
        assert!(parse_command(&argv("mine --input f --schema a:q --workers lots")).is_err());
    }

    #[test]
    fn worker_parsing() {
        let cmd = parse_command(&argv("worker --connect 127.0.0.1:7001")).unwrap();
        assert_eq!(
            cmd,
            Command::Worker(WorkerArgs {
                connect: "127.0.0.1:7001".into(),
                threads: 0,
                kernel: ScanKernel::Auto,
            })
        );
        let cmd =
            parse_command(&argv("worker --connect h:1 --threads 2 --kernel bitmask")).unwrap();
        assert_eq!(
            cmd,
            Command::Worker(WorkerArgs {
                connect: "h:1".into(),
                threads: 2,
                kernel: ScanKernel::Bitmask,
            })
        );
        let e = parse_command(&argv("worker")).unwrap_err();
        assert!(e.to_string().contains("--connect"), "{e}");
        assert!(parse_command(&argv("worker --connect h:1 --kernel turbo")).is_err());
        assert!(parse_command(&argv("worker --connect h:1 --bogus 1")).is_err());
    }

    #[test]
    fn bench_dist_parsing() {
        let cmd = parse_command(&argv("bench-dist")).unwrap();
        assert_eq!(
            cmd,
            Command::BenchDist(BenchDistArgs {
                records: 10_000_000,
                workers: 2,
                floor: 1.6,
                out: None,
            })
        );
        let cmd = parse_command(&argv(
            "bench-dist --records 1000 --workers 4 --floor 0 --out b.json",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::BenchDist(BenchDistArgs {
                records: 1000,
                workers: 4,
                floor: 0.0,
                out: Some("b.json".into()),
            })
        );
        assert!(parse_command(&argv("bench-dist --records 0")).is_err());
        let e = parse_command(&argv("bench-dist --workers 1")).unwrap_err();
        assert!(e.to_string().contains("at least 2"), "{e}");
        assert!(parse_command(&argv("bench-dist --bogus 1")).is_err());
    }

    /// Count-distribution over in-process worker threads reproduces the
    /// serial miner's JSON report and stored catalog byte-for-byte
    /// (`--normalize-stats` zeroes the volatile timings on both sides).
    #[test]
    fn distributed_mine_matches_serial_byte_for_byte() {
        let gen = GenerateArgs {
            dataset: "people".into(),
            records: 0,
            seed: 0,
            output: "-".into(),
        };
        let mut csv_bytes = Vec::new();
        run_generate(&gen, &mut csv_bytes).expect("generate");
        let decls = parse_schema_decls("Age:quant,Married:cat,NumCars:quant").unwrap();
        let schema = build_schema(&decls).unwrap();
        let table = csv::read_table(csv_bytes.as_slice(), &schema).unwrap();

        let pid = std::process::id();
        let mut outputs = Vec::new();
        for workers in [0usize, 2, 3] {
            let path = std::env::temp_dir().join(format!("qar-cli-dist-{pid}-{workers}.qarcat"));
            let cmd = parse_command(&argv(
                "mine --input - --schema Age:quant,Married:cat,NumCars:quant \
                 --minsup 0.4 --minconf 0.5 --maxsup 1.0 --no-partition \
                 --normalize-stats --format json",
            ))
            .unwrap();
            let Command::Mine(mut args) = cmd else {
                panic!()
            };
            args.workers = workers;
            args.store = Some(path.to_str().unwrap().to_string());
            let spawn =
                (workers > 0).then(|| WorkerSpawn::Threads(qar_dist::WorkerOptions::default()));
            let mut report = Vec::new();
            run_mine_on_table_spawn(&table, &args, spawn, &mut report)
                .unwrap_or_else(|e| panic!("{workers} workers: {e}"));
            let catalog = std::fs::read(&path).expect("catalog written");
            std::fs::remove_file(&path).ok();
            outputs.push((workers, report, catalog));
        }
        let (_, serial_report, serial_catalog) = &outputs[0];
        assert!(!serial_catalog.is_empty());
        assert!(qar_trace::json::parse(&String::from_utf8(serial_report.clone()).unwrap()).is_ok());
        for (workers, report, catalog) in &outputs[1..] {
            assert_eq!(report, serial_report, "{workers} workers: report differs");
            assert_eq!(
                catalog, serial_catalog,
                "{workers} workers: catalog differs"
            );
        }
    }

    /// An out-of-core mine at an adversarially tiny chunk size — serial
    /// and distributed over worker threads — reproduces the in-memory
    /// catalog and report byte-for-byte (the issue's acceptance bar).
    #[test]
    fn chunked_mine_matches_in_memory_byte_for_byte() {
        let gen = GenerateArgs {
            dataset: "people".into(),
            records: 0,
            seed: 0,
            output: "-".into(),
        };
        let mut csv_bytes = Vec::new();
        run_generate(&gen, &mut csv_bytes).expect("generate");
        let decls = parse_schema_decls("Age:quant,Married:cat,NumCars:quant").unwrap();
        let schema = build_schema(&decls).unwrap();
        let table = csv::read_table(csv_bytes.as_slice(), &schema).unwrap();

        let pid = std::process::id();
        let csv_path = std::env::temp_dir().join(format!("qar-cli-chunked-{pid}.csv"));
        std::fs::write(&csv_path, &csv_bytes).expect("write CSV");
        let parse_mine = || {
            let cmd = parse_command(&argv(
                "mine --input - --schema Age:quant,Married:cat,NumCars:quant \
                 --minsup 0.4 --minconf 0.5 --maxsup 1.0 --no-partition \
                 --normalize-stats --format json",
            ))
            .unwrap();
            let Command::Mine(args) = cmd else { panic!() };
            args
        };

        // In-memory reference run.
        let ref_path = std::env::temp_dir().join(format!("qar-cli-chunked-{pid}-ref.qarcat"));
        let mut args = parse_mine();
        args.store = Some(ref_path.to_str().unwrap().to_string());
        let mut ref_report = Vec::new();
        run_mine_on_table(&table, &args, &mut ref_report).expect("in-memory mine");
        let ref_catalog = std::fs::read(&ref_path).expect("reference catalog");
        std::fs::remove_file(&ref_path).ok();

        // Out-of-core runs: 3-row chunks force many spill files; the
        // distributed variant hands whole chunks to worker threads.
        for workers in [0usize, 2] {
            let path = std::env::temp_dir().join(format!("qar-cli-chunked-{pid}-{workers}.qarcat"));
            let mut args = parse_mine();
            args.input = csv_path.to_str().unwrap().to_string();
            args.chunk_rows = 3;
            args.workers = workers;
            args.store = Some(path.to_str().unwrap().to_string());
            let spawn =
                (workers > 0).then(|| WorkerSpawn::Threads(qar_dist::WorkerOptions::default()));
            let mut report = Vec::new();
            run_mine_chunked_spawn(&args, spawn, &mut report)
                .unwrap_or_else(|e| panic!("chunked, {workers} workers: {e}"));
            let catalog = std::fs::read(&path).expect("chunked catalog");
            std::fs::remove_file(&path).ok();
            assert_eq!(report, ref_report, "chunked report, {workers} workers");
            assert_eq!(catalog, ref_catalog, "chunked catalog, {workers} workers");
        }
        std::fs::remove_file(&csv_path).ok();
    }

    #[test]
    fn update_flag_parsing() {
        let cmd = parse_command(&argv("mine --input d.csv --update c.qarcat")).unwrap();
        let Command::Mine(args) = cmd else { panic!() };
        assert_eq!(args.update.as_deref(), Some("c.qarcat"));
        assert!(args.schema.is_empty(), "schema comes from the catalog");

        // The schema, thresholds, and partitioning are the catalog's —
        // every semantic flag is refused in combination with --update.
        for flags in [
            "--schema a:q",
            "--minsup 0.2",
            "--minconf 0.6",
            "--maxsup 0.9",
            "--completeness 2.0",
            "--intervals 5",
            "--no-partition",
            "--strategy depth",
            "--interest 1.1",
            "--interest-mode prune",
            "--max-size 3",
            "--no-memoize",
        ] {
            let e = parse_command(&argv(&format!(
                "mine --input d.csv --update c.qarcat {flags}"
            )))
            .unwrap_err();
            assert!(e.to_string().contains("--update"), "{flags}: {e}");
        }

        // Performance and output knobs still compose, and --analytics is
        // legal without --store: the update rewrites the catalog in place.
        for flags in [
            "--workers 2",
            "--chunk-rows 64",
            "--threads 2",
            "--kernel bitmask",
            "--normalize-stats",
            "--analytics",
            "--analytics --store out.qarcat",
            "--format json",
        ] {
            parse_command(&argv(&format!(
                "mine --input d.csv --update c.qarcat {flags}"
            )))
            .unwrap_or_else(|e| panic!("{flags}: {e}"));
        }
    }

    #[test]
    fn bench_update_parsing() {
        let cmd = parse_command(&argv("bench-update")).unwrap();
        assert_eq!(
            cmd,
            Command::BenchUpdate(BenchUpdateArgs {
                records: 1_000_000,
                delta: 0.01,
                floor: 5.0,
                out: None,
            })
        );
        let cmd = parse_command(&argv(
            "bench-update --records 1000 --delta 0.5 --floor 0 --out b.json",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::BenchUpdate(BenchUpdateArgs {
                records: 1000,
                delta: 0.5,
                floor: 0.0,
                out: Some("b.json".into()),
            })
        );
        assert!(parse_command(&argv("bench-update --records 0")).is_err());
        for delta in ["0", "-0.1", "1.5", "nan"] {
            assert!(
                parse_command(&argv(&format!("bench-update --delta {delta}"))).is_err(),
                "--delta {delta} accepted"
            );
        }
        assert!(parse_command(&argv("bench-update --bogus 1")).is_err());
    }

    /// Write the paper's people table and a delta of rows copied from it
    /// (copies are always encodable under the base catalog's value-list
    /// encoders) to temp files, returning
    /// `(base_csv, delta_csv, combined_csv)` paths plus the base table.
    fn update_fixture(tag: &str, delta_rows: usize) -> (PathBuf, PathBuf, PathBuf, Table) {
        let gen = GenerateArgs {
            dataset: "people".into(),
            records: 0,
            seed: 0,
            output: "-".into(),
        };
        let mut csv_bytes = Vec::new();
        run_generate(&gen, &mut csv_bytes).expect("generate");
        let text = String::from_utf8(csv_bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        let (header, rows) = (lines[0], &lines[1..]);
        assert!(delta_rows <= rows.len());
        let base_csv = text.clone();
        let delta_csv = std::iter::once(header)
            .chain(rows[..delta_rows].iter().copied())
            .collect::<Vec<_>>()
            .join("\n")
            + "\n";
        let combined_csv = text.clone() + &rows[..delta_rows].join("\n") + "\n";

        let decls = parse_schema_decls("Age:quant,Married:cat,NumCars:quant").unwrap();
        let schema = build_schema(&decls).unwrap();
        let table = csv::read_table(base_csv.as_bytes(), &schema).unwrap();

        let pid = std::process::id();
        let dir = std::env::temp_dir();
        let base_path = dir.join(format!("qar-cli-update-{tag}-{pid}-base.csv"));
        let delta_path = dir.join(format!("qar-cli-update-{tag}-{pid}-delta.csv"));
        let combined_path = dir.join(format!("qar-cli-update-{tag}-{pid}-combined.csv"));
        std::fs::write(&base_path, &base_csv).expect("write base CSV");
        std::fs::write(&delta_path, &delta_csv).expect("write delta CSV");
        std::fs::write(&combined_path, &combined_csv).expect("write combined CSV");
        (base_path, delta_path, combined_path, table)
    }

    const UPDATE_MINE_FLAGS: &str = "--minsup 0.4 --minconf 0.5 --maxsup 1.0 --no-partition \
                                     --normalize-stats --format json";

    /// `qar mine --update` across every topology — serial, worker
    /// threads, tiny chunks, and chunked+distributed — reproduces the
    /// from-scratch mine of base+delta byte-for-byte: same JSON report,
    /// same stored catalog including the merged COUNTS section. An empty
    /// delta reproduces the base catalog unchanged.
    #[test]
    fn mine_update_matches_scratch_mine_byte_for_byte() {
        let (base_path, delta_path, combined_path, table) = update_fixture("exact", 2);
        let pid = std::process::id();
        let dir = std::env::temp_dir();

        // From-scratch reference over base+delta.
        let decls = parse_schema_decls("Age:quant,Married:cat,NumCars:quant").unwrap();
        let schema = build_schema(&decls).unwrap();
        let combined_bytes = std::fs::read(&combined_path).unwrap();
        let combined = csv::read_table(combined_bytes.as_slice(), &schema).unwrap();
        let scratch_path = dir.join(format!("qar-cli-update-exact-{pid}-scratch.qarcat"));
        let cmd = parse_command(&argv(&format!(
            "mine --input - --schema Age:quant,Married:cat,NumCars:quant {UPDATE_MINE_FLAGS}"
        )))
        .unwrap();
        let Command::Mine(mut args) = cmd else {
            panic!()
        };
        args.store = Some(scratch_path.to_str().unwrap().to_string());
        let mut scratch_report = Vec::new();
        run_mine_on_table(&combined, &args, &mut scratch_report).expect("scratch mine");
        let scratch_catalog = std::fs::read(&scratch_path).expect("scratch catalog");
        std::fs::remove_file(&scratch_path).ok();

        // Base catalog with persisted counts.
        let base_cat_path = dir.join(format!("qar-cli-update-exact-{pid}-base.qarcat"));
        args.store = Some(base_cat_path.to_str().unwrap().to_string());
        run_mine_on_table(&table, &args, &mut Vec::new()).expect("base mine");
        let base_catalog = std::fs::read(&base_cat_path).expect("base catalog");
        std::fs::remove_file(&base_cat_path).ok();

        for (workers, chunk_rows) in [(0usize, 0usize), (2, 0), (0, 3), (2, 3)] {
            let label = format!("workers={workers} chunk_rows={chunk_rows}");
            let cat_path = dir.join(format!(
                "qar-cli-update-exact-{pid}-w{workers}c{chunk_rows}.qarcat"
            ));
            std::fs::write(&cat_path, &base_catalog).expect("seed catalog copy");
            let cmd = parse_command(&argv(&format!(
                "mine --input {} --update {} --normalize-stats --format json",
                delta_path.to_str().unwrap(),
                cat_path.to_str().unwrap(),
            )))
            .unwrap();
            let Command::Mine(mut uargs) = cmd else {
                panic!()
            };
            uargs.workers = workers;
            uargs.chunk_rows = chunk_rows;
            let spawn =
                (workers > 0).then(|| WorkerSpawn::Threads(qar_dist::WorkerOptions::default()));
            let mut report = Vec::new();
            run_mine_update_spawn(&uargs, spawn, &mut report)
                .unwrap_or_else(|e| panic!("{label}: {e}"));
            let updated = std::fs::read(&cat_path).expect("updated catalog");
            std::fs::remove_file(&cat_path).ok();
            assert_eq!(report, scratch_report, "{label}: report differs");
            assert_eq!(updated, scratch_catalog, "{label}: catalog differs");
        }

        // An empty delta (header only) leaves the catalog byte-identical.
        let empty_path = dir.join(format!("qar-cli-update-exact-{pid}-empty.csv"));
        std::fs::write(&empty_path, "Age,Married,NumCars\n").unwrap();
        for (workers, chunk_rows) in [(0usize, 0usize), (0, 3)] {
            let cat_path = dir.join(format!(
                "qar-cli-update-exact-{pid}-noop-w{workers}c{chunk_rows}.qarcat"
            ));
            std::fs::write(&cat_path, &base_catalog).unwrap();
            let cmd = parse_command(&argv(&format!(
                "mine --input {} --update {} --normalize-stats --format json",
                empty_path.to_str().unwrap(),
                cat_path.to_str().unwrap(),
            )))
            .unwrap();
            let Command::Mine(mut uargs) = cmd else {
                panic!()
            };
            uargs.workers = workers;
            uargs.chunk_rows = chunk_rows;
            run_mine_update_spawn(&uargs, None, &mut Vec::new())
                .unwrap_or_else(|e| panic!("empty delta, chunk_rows={chunk_rows}: {e}"));
            let updated = std::fs::read(&cat_path).expect("updated catalog");
            std::fs::remove_file(&cat_path).ok();
            assert_eq!(
                updated, base_catalog,
                "empty delta must be a no-op (chunk_rows={chunk_rows})"
            );
        }
        std::fs::remove_file(&empty_path).ok();
        std::fs::remove_file(&base_path).ok();
        std::fs::remove_file(&delta_path).ok();
        std::fs::remove_file(&combined_path).ok();
    }

    /// `--update` surfaces its guardrails as structured errors: a
    /// counts-less catalog points at `qar mine --store`, and a delta the
    /// base encoders cannot represent reports the incremental fallback
    /// (the CLI never silently re-mines without the base rows).
    #[test]
    fn mine_update_guardrails() {
        let (base_path, delta_path, combined_path, table) = update_fixture("guard", 1);
        let pid = std::process::id();
        let dir = std::env::temp_dir();

        let cmd = parse_command(&argv(&format!(
            "mine --input - --schema Age:quant,Married:cat,NumCars:quant {UPDATE_MINE_FLAGS}"
        )))
        .unwrap();
        let Command::Mine(mut args) = cmd else {
            panic!()
        };
        let cat_path = dir.join(format!("qar-cli-update-guard-{pid}.qarcat"));
        args.store = Some(cat_path.to_str().unwrap().to_string());
        run_mine_on_table(&table, &args, &mut Vec::new()).expect("base mine");
        let base_catalog = std::fs::read(&cat_path).expect("base catalog");

        // No counts → a structured error pointing at the re-mine path.
        let stripped = Catalog::load_bytes(&base_catalog, None)
            .expect("load")
            .without_counts();
        let stripped_path = dir.join(format!("qar-cli-update-guard-{pid}-nocounts.qarcat"));
        stripped
            .save(stripped_path.to_str().unwrap(), None)
            .expect("save");
        let cmd = parse_command(&argv(&format!(
            "mine --input {} --update {}",
            delta_path.to_str().unwrap(),
            stripped_path.to_str().unwrap(),
        )))
        .unwrap();
        let Command::Mine(uargs) = cmd else { panic!() };
        let e = run_mine_update(&uargs, &mut Vec::new()).unwrap_err();
        assert!(e.to_string().contains("no persisted support counts"), "{e}");
        std::fs::remove_file(&stripped_path).ok();

        // A delta with a value the base never saw cannot be encoded under
        // the frozen value-list encoders; without the base rows the CLI
        // reports the fallback instead of guessing.
        let bad_delta_path = dir.join(format!("qar-cli-update-guard-{pid}-bad.csv"));
        std::fs::write(&bad_delta_path, "Age,Married,NumCars\n99,Divorced,7\n").unwrap();
        for chunk_rows in [0usize, 3] {
            let cmd = parse_command(&argv(&format!(
                "mine --input {} --update {}",
                bad_delta_path.to_str().unwrap(),
                cat_path.to_str().unwrap(),
            )))
            .unwrap();
            let Command::Mine(mut uargs) = cmd else {
                panic!()
            };
            uargs.chunk_rows = chunk_rows;
            let e = run_mine_update(&uargs, &mut Vec::new()).unwrap_err();
            assert!(
                e.to_string().contains("base rows unavailable"),
                "chunk_rows={chunk_rows}: {e}"
            );
            let untouched = std::fs::read(&cat_path).expect("catalog survives");
            assert_eq!(untouched, base_catalog, "failed update must not rewrite");
        }
        std::fs::remove_file(&bad_delta_path).ok();
        std::fs::remove_file(&cat_path).ok();
        std::fs::remove_file(&base_path).ok();
        std::fs::remove_file(&delta_path).ok();
        std::fs::remove_file(&combined_path).ok();
    }

    /// Updating a catalog that carries ANALYTICS either recomputes them
    /// (`--analytics`, byte-identical to a from-scratch `mine
    /// --analytics` of base+delta) or drops them, and `store-check`
    /// inventories the COUNTS section either way.
    #[test]
    fn mine_update_analytics_recompute_or_drop() {
        let (base_path, delta_path, combined_path, table) = update_fixture("stale", 2);
        let pid = std::process::id();
        let dir = std::env::temp_dir();

        let decls = parse_schema_decls("Age:quant,Married:cat,NumCars:quant").unwrap();
        let schema = build_schema(&decls).unwrap();
        let combined_bytes = std::fs::read(&combined_path).unwrap();
        let combined = csv::read_table(combined_bytes.as_slice(), &schema).unwrap();

        // From-scratch reference with analytics over base+delta.
        let scratch_path = dir.join(format!("qar-cli-update-stale-{pid}-scratch.qarcat"));
        let cmd = parse_command(&argv(&format!(
            "mine --input - --schema Age:quant,Married:cat,NumCars:quant \
             --analytics --store {} {UPDATE_MINE_FLAGS}",
            scratch_path.to_str().unwrap()
        )))
        .unwrap();
        let Command::Mine(mut args) = cmd else {
            panic!()
        };
        run_mine_on_table(&combined, &args, &mut Vec::new()).expect("scratch mine");
        let scratch_catalog = std::fs::read(&scratch_path).expect("scratch catalog");
        std::fs::remove_file(&scratch_path).ok();

        // Base catalog with analytics and counts.
        let base_cat_path = dir.join(format!("qar-cli-update-stale-{pid}-base.qarcat"));
        args.store = Some(base_cat_path.to_str().unwrap().to_string());
        run_mine_on_table(&table, &args, &mut Vec::new()).expect("base mine");
        let base_catalog = std::fs::read(&base_cat_path).expect("base catalog");
        assert!(Catalog::load_bytes(&base_catalog, None)
            .unwrap()
            .analytics()
            .is_some());

        // --analytics recomputes: byte-identical to the scratch mine.
        let cmd = parse_command(&argv(&format!(
            "mine --input {} --update {} --analytics --normalize-stats --format json",
            delta_path.to_str().unwrap(),
            base_cat_path.to_str().unwrap(),
        )))
        .unwrap();
        let Command::Mine(uargs) = cmd else { panic!() };
        run_mine_update(&uargs, &mut Vec::new()).expect("update with analytics");
        let recomputed = std::fs::read(&base_cat_path).expect("updated catalog");
        assert_eq!(
            recomputed, scratch_catalog,
            "recomputed analytics must match the from-scratch mine"
        );

        // Without --analytics the stale section is dropped (with a
        // warning on stderr), leaving rules+stats+counts only.
        std::fs::write(&base_cat_path, &base_catalog).unwrap();
        let cmd = parse_command(&argv(&format!(
            "mine --input {} --update {} --normalize-stats",
            delta_path.to_str().unwrap(),
            base_cat_path.to_str().unwrap(),
        )))
        .unwrap();
        let Command::Mine(uargs) = cmd else { panic!() };
        run_mine_update(&uargs, &mut Vec::new()).expect("update dropping analytics");
        let dropped_bytes = std::fs::read(&base_cat_path).expect("updated catalog");
        let dropped = Catalog::load_bytes(&dropped_bytes, None).expect("load");
        assert!(dropped.analytics().is_none(), "stale analytics must drop");
        assert!(dropped.counts().is_some(), "counts must persist");

        // store-check inventories the refreshed COUNTS section.
        let mut check_out = Vec::new();
        run_store_check(&dropped_bytes, &mut check_out).expect("store-check");
        let check_text = String::from_utf8(check_out).unwrap();
        assert!(check_text.contains("counts (tag 5):"), "{check_text}");
        assert!(check_text.contains("counts: "), "{check_text}");
        let mut check_out = Vec::new();
        run_store_check(
            &Catalog::load_bytes(&dropped_bytes, None)
                .unwrap()
                .without_counts()
                .encode(),
            &mut check_out,
        )
        .expect("store-check");
        let check_text = String::from_utf8(check_out).unwrap();
        assert!(check_text.contains("counts: none"), "{check_text}");

        std::fs::remove_file(&base_cat_path).ok();
        std::fs::remove_file(&base_path).ok();
        std::fs::remove_file(&delta_path).ok();
        std::fs::remove_file(&combined_path).ok();
    }

    /// `bench-update` produces sane numbers (its internal exactness
    /// gates double as a correctness check) and a parseable summary.
    #[test]
    fn bench_update_smoke() {
        let out_path =
            std::env::temp_dir().join(format!("qar-bench-update-test-{}.json", std::process::id()));
        let args = BenchUpdateArgs {
            records: 2_000,
            delta: 0.01,
            floor: 0.0,
            out: Some(out_path.to_str().unwrap().to_string()),
        };
        let mut report = Vec::new();
        let speedup = run_bench_update(&args, &mut report).expect("bench runs");
        assert!(speedup > 0.0);
        let text = String::from_utf8(report).unwrap();
        assert!(text.contains("speedup"), "{text}");
        let json = std::fs::read_to_string(&out_path).expect("summary written");
        std::fs::remove_file(&out_path).ok();
        let doc = qar_trace::json::parse(&json).expect("valid JSON");
        let obj = doc.as_object().expect("object");
        assert_eq!(obj["suite"].as_str(), Some("bench_update"));
        for key in ["remine_s", "update_s", "speedup"] {
            let qar_trace::json::Json::Num(v) = obj[key] else {
                panic!("{key} is not a number");
            };
            assert!(v > 0.0, "{key} = {v}");
        }
    }

    /// Non-finite analytics values (conviction diverges to +inf at
    /// confidence 1; chi² and its p-values degenerate to NaN) serialize
    /// as `null` in `qar query --format json`, keeping the document
    /// parseable; finite values stay plain numbers.
    #[test]
    fn query_json_nulls_non_finite_analytics() {
        let gen = GenerateArgs {
            dataset: "people".into(),
            records: 0,
            seed: 0,
            output: "-".into(),
        };
        let mut csv_bytes = Vec::new();
        run_generate(&gen, &mut csv_bytes).expect("generate");
        let decls = parse_schema_decls("Age:quant,Married:cat,NumCars:quant").unwrap();
        let schema = build_schema(&decls).unwrap();
        let table = csv::read_table(csv_bytes.as_slice(), &schema).unwrap();
        let path =
            std::env::temp_dir().join(format!("qar-cli-nonfinite-{}.qarcat", std::process::id()));
        let cmd = parse_command(&argv(
            "mine --input - --schema Age:quant,Married:cat,NumCars:quant \
             --minsup 0.4 --minconf 0.5 --maxsup 1.0 --no-partition",
        ))
        .unwrap();
        let Command::Mine(mut args) = cmd else {
            panic!()
        };
        args.store = Some(path.to_str().unwrap().to_string());
        run_mine_on_table(&table, &args, &mut Vec::new()).expect("mine");
        let bytes = std::fs::read(&path).expect("catalog written");
        std::fs::remove_file(&path).ok();

        // Decorate with handcrafted analytics that pin the worst case:
        // +inf conviction and NaN chi²/p on every rule.
        let catalog = Catalog::load_bytes(&bytes, None).expect("load");
        let rules_analytics: Vec<qar_analytics::RuleAnalytics> = catalog
            .rules()
            .iter()
            .map(|rule| qar_analytics::RuleAnalytics {
                count_antecedent: rule.support,
                count_consequent: rule.support,
                lift: 2.5,
                conviction: f64::INFINITY,
                leverage: 0.125,
                chi2: f64::NAN,
                p_value: f64::NAN,
                p_adjusted: f64::NAN,
                jmeasure: 0.5,
                shapley: rule
                    .antecedent
                    .items()
                    .iter()
                    .map(|it| (it.attr, 0.5))
                    .collect(),
            })
            .collect();
        let annotated = catalog
            .with_analytics(qar_analytics::AnalyticsSet {
                shapley_samples: 1,
                seed: 0,
                rules: rules_analytics,
            })
            .expect("valid analytics")
            .encode();

        let cmd = parse_command(&argv("query - --format json")).unwrap();
        let Command::Query(qargs) = cmd else { panic!() };
        let mut out = Vec::new();
        run_query(&annotated, &qargs, &mut out).expect("query");
        let text = String::from_utf8(out).unwrap();
        let doc = qar_trace::json::parse(&text)
            .unwrap_or_else(|e| panic!("JSON stays parseable ({e}): {text}"));
        let rules = doc.as_array().expect("rules array");
        assert!(!rules.is_empty());
        for rule in rules {
            let obj = rule.as_object().expect("rule object");
            assert!(obj["conviction"].is_null(), "{text}");
            assert!(obj["chi2"].is_null(), "{text}");
            assert!(obj["p_value"].is_null(), "{text}");
            assert!(obj["p_adjusted"].is_null(), "{text}");
            let qar_trace::json::Json::Num(lift) = obj["lift"] else {
                panic!("lift is not a number: {text}");
            };
            assert_eq!(lift, 2.5);
        }
        // The raw text never smuggles bare inf/NaN tokens through.
        assert!(!text.contains("inf") && !text.contains("NaN"), "{text}");
    }

    #[test]
    fn panic_detail_extracts_payload_message() {
        let payload = std::thread::spawn(|| panic!("boom {}", 42))
            .join()
            .unwrap_err();
        assert_eq!(panic_detail(&*payload), "thread panicked: boom 42");
        let payload = std::thread::spawn(|| std::panic::panic_any(7u32))
            .join()
            .unwrap_err();
        assert_eq!(
            panic_detail(&*payload),
            "thread panicked (non-string payload)"
        );
    }
}
