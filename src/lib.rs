//! # quantrules — facade crate
//!
//! Re-exports the whole workspace under one roof. See the README for a
//! guided tour; start with [`core`] for the miner itself.

#![warn(missing_docs)]

pub mod cli;

pub use qar_analytics as analytics;
pub use qar_apriori as apriori;
pub use qar_core as core;
pub use qar_datagen as datagen;
pub use qar_dist as dist;
pub use qar_itemset as itemset;
pub use qar_partition as partition;
pub use qar_ps91 as ps91;
pub use qar_rtree as rtree;
pub use qar_store as store;
pub use qar_table as table;
pub use qar_trace as trace;
