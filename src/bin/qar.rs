//! `qar` — mine quantitative association rules from CSV files.
//!
//! See `qar help` or [`quantrules::cli::USAGE`].

use std::fs::File;
use std::io::{BufReader, Read, Write};
use std::process::ExitCode;

use quantrules::cli::{self, Command};
use quantrules::table::csv;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match cli::parse_command(&args) {
        Ok(Command::Help) => {
            print!("{}", cli::USAGE);
            ExitCode::SUCCESS
        }
        Ok(Command::Mine(mine)) => {
            for warning in &mine.warnings {
                eprintln!("qar: warning: {warning}");
            }
            match run_mine(&mine) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => fail(&e.to_string()),
            }
        }
        Ok(Command::Generate(gen)) => match run_generate(&gen) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => fail(&e.to_string()),
        },
        Ok(Command::TraceCheck(check)) => match run_trace_check(&check) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => fail(&e.to_string()),
        },
        Ok(Command::Query(query)) => match run_query(&query) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => fail(&e.to_string()),
        },
        Ok(Command::Analyze(analyze)) => match run_analyze(&analyze) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => fail(&e.to_string()),
        },
        Ok(Command::StoreCheck(check)) => match run_store_check(&check) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => fail(&e.to_string()),
        },
        Ok(Command::Fuzz(fuzz)) => match run_fuzz(&fuzz) {
            Ok(0) => ExitCode::SUCCESS,
            Ok(n) => fail(&format!("{n} divergence(s) found; see fixtures above")),
            Err(e) => fail(&e.to_string()),
        },
        Ok(Command::Serve(serve)) => match run_serve(&serve) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => fail(&e.to_string()),
        },
        Ok(Command::BenchServe(bench)) => match run_bench_serve(&bench) {
            Ok(qps) if bench.floor > 0.0 && qps < bench.floor => fail(&format!(
                "bench-serve: {qps:.0} queries/sec is below the {:.0} floor",
                bench.floor
            )),
            Ok(_) => ExitCode::SUCCESS,
            Err(e) => fail(&e.to_string()),
        },
        Ok(Command::BenchAnalytics(bench)) => match run_bench_analytics(&bench) {
            Ok(rps) if bench.floor > 0.0 && rps < bench.floor => fail(&format!(
                "bench-analytics: {rps:.0} rules/sec is below the {:.0} floor",
                bench.floor
            )),
            Ok(_) => ExitCode::SUCCESS,
            Err(e) => fail(&e.to_string()),
        },
        Ok(Command::BenchDist(bench)) => match run_bench_dist(&bench) {
            Ok(speedup) if bench.floor > 0.0 && speedup < bench.floor => fail(&format!(
                "bench-dist: {speedup:.2}x counting speedup is below the {:.2}x floor",
                bench.floor
            )),
            Ok(_) => ExitCode::SUCCESS,
            Err(e) => fail(&e.to_string()),
        },
        Ok(Command::BenchUpdate(bench)) => match run_bench_update(&bench) {
            Ok(speedup) if bench.floor > 0.0 && speedup < bench.floor => fail(&format!(
                "bench-update: {speedup:.2}x update speedup is below the {:.2}x floor",
                bench.floor
            )),
            Ok(_) => ExitCode::SUCCESS,
            Err(e) => fail(&e.to_string()),
        },
        Ok(Command::Worker(worker)) => {
            let opts = quantrules::dist::WorkerOptions {
                num_threads: worker.threads,
                kernel: worker.kernel,
            };
            match quantrules::dist::run_worker(&worker.connect, &opts) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => fail(&format!("worker: {e}")),
            }
        }
        Err(e) => fail(&e.to_string()),
    }
}

/// Run the rule-serving daemon: print the bound address (port 0 is
/// OS-assigned, so scripts parse this line), then block in the accept
/// loop until a shutdown frame arrives.
fn run_serve(args: &cli::ServeArgs) -> Result<(), Box<dyn std::error::Error>> {
    let slots = cli::catalog_slots(&args.catalogs)?;
    let sink = cli::trace_sink(args.trace);
    let server = quantrules::store::Server::bind(
        &slots,
        &quantrules::store::ServerConfig {
            port: args.port,
            threads: args.threads,
        },
        sink,
    )?;
    println!(
        "listening on {} ({} catalog(s), {} worker(s))",
        server.local_addr(),
        slots.len(),
        server.threads()
    );
    std::io::stdout().flush()?;
    server.serve()?;
    Ok(())
}

fn run_bench_serve(args: &cli::BenchServeArgs) -> Result<f64, Box<dyn std::error::Error>> {
    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    let qps = cli::run_bench_serve(args, &mut lock)?;
    lock.flush()?;
    Ok(qps)
}

/// Read a binary input that may be a path or `-` for stdin.
fn read_input_bytes(path: &str) -> Result<Vec<u8>, Box<dyn std::error::Error>> {
    if path == "-" {
        let mut buf = Vec::new();
        std::io::stdin().read_to_end(&mut buf)?;
        Ok(buf)
    } else {
        Ok(std::fs::read(path)?)
    }
}

fn run_query(args: &cli::QueryArgs) -> Result<(), Box<dyn std::error::Error>> {
    let bytes = read_input_bytes(&args.catalog)?;
    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    cli::run_query(&bytes, args, &mut lock)?;
    lock.flush()?;
    Ok(())
}

fn run_analyze(args: &cli::AnalyzeArgs) -> Result<(), Box<dyn std::error::Error>> {
    let catalog_bytes = std::fs::read(&args.catalog)?;
    let csv_bytes = read_input_bytes(&args.input)?;
    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    let annotated = cli::run_analyze(&catalog_bytes, &csv_bytes, args, &mut lock)?;
    let dest = args.output.as_deref().unwrap_or(&args.catalog);
    std::fs::write(dest, annotated)?;
    writeln!(lock, "annotated catalog written to {dest}")?;
    lock.flush()?;
    Ok(())
}

fn run_bench_analytics(args: &cli::BenchAnalyticsArgs) -> Result<f64, Box<dyn std::error::Error>> {
    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    let rps = cli::run_bench_analytics(args, &mut lock)?;
    lock.flush()?;
    Ok(rps)
}

fn run_bench_dist(args: &cli::BenchDistArgs) -> Result<f64, Box<dyn std::error::Error>> {
    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    let speedup = cli::run_bench_dist(args, &mut lock)?;
    lock.flush()?;
    Ok(speedup)
}

fn run_bench_update(args: &cli::BenchUpdateArgs) -> Result<f64, Box<dyn std::error::Error>> {
    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    let speedup = cli::run_bench_update(args, &mut lock)?;
    lock.flush()?;
    Ok(speedup)
}

fn run_store_check(args: &cli::StoreCheckArgs) -> Result<(), Box<dyn std::error::Error>> {
    let bytes = read_input_bytes(&args.input)?;
    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    cli::run_store_check(&bytes, &mut lock)?;
    lock.flush()?;
    Ok(())
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("qar: {msg}");
    ExitCode::FAILURE
}

fn run_fuzz(args: &cli::FuzzArgs) -> Result<usize, Box<dyn std::error::Error>> {
    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    let divergences = cli::run_fuzz(args, &mut lock)?;
    lock.flush()?;
    Ok(divergences)
}

fn run_mine(args: &cli::MineArgs) -> Result<(), Box<dyn std::error::Error>> {
    let mut args = args.clone();
    for (attr, path) in std::mem::take(&mut args.taxonomy_files) {
        let text = std::fs::read_to_string(&path)?;
        let taxonomy = cli::parse_taxonomy(&text)?;
        args.config.taxonomies.insert(attr, taxonomy);
    }
    let args = &args;
    if args.update.is_some() {
        // Incremental: the schema and configuration come from the catalog,
        // and the CLI layer reads the delta (in memory or spilled) itself.
        let stdout = std::io::stdout();
        let mut lock = stdout.lock();
        cli::run_mine_update(args, &mut lock)?;
        lock.flush()?;
        return Ok(());
    }
    if args.chunk_rows > 0 {
        // Out-of-core: the CLI layer streams the file itself (twice).
        let stdout = std::io::stdout();
        let mut lock = stdout.lock();
        cli::run_mine_chunked(args, &mut lock)?;
        lock.flush()?;
        return Ok(());
    }
    let schema = cli::build_schema(&args.schema)?;
    let table = if args.input == "-" {
        let mut buf = String::new();
        std::io::stdin().read_to_string(&mut buf)?;
        csv::read_table(buf.as_bytes(), &schema)?
    } else {
        let file = File::open(&args.input)?;
        csv::read_table(BufReader::new(file), &schema)?
    };
    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    cli::run_mine_on_table(&table, args, &mut lock)?;
    lock.flush()?;
    Ok(())
}

fn run_trace_check(args: &cli::TraceCheckArgs) -> Result<(), Box<dyn std::error::Error>> {
    let schema_path = args
        .schema
        .as_deref()
        .unwrap_or("schemas/trace_events.schema.json");
    let schema_text = std::fs::read_to_string(schema_path)
        .map_err(|e| format!("cannot read schema `{schema_path}`: {e}"))?;
    let input = if args.input == "-" {
        let mut buf = String::new();
        std::io::stdin().read_to_string(&mut buf)?;
        buf
    } else {
        std::fs::read_to_string(&args.input)
            .map_err(|e| format!("cannot read trace `{}`: {e}", args.input))?
    };
    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    cli::run_trace_check(&schema_text, &input, &mut lock)?;
    lock.flush()?;
    Ok(())
}

fn run_generate(args: &cli::GenerateArgs) -> Result<(), Box<dyn std::error::Error>> {
    if args.output == "-" {
        let stdout = std::io::stdout();
        let mut lock = stdout.lock();
        cli::run_generate(args, &mut lock)?;
        lock.flush()?;
    } else {
        let mut file = std::io::BufWriter::new(File::create(&args.output)?);
        cli::run_generate(args, &mut file)?;
        file.flush()?;
    }
    Ok(())
}
