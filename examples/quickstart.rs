//! Quickstart: mine the paper's five-record People table (Figure 1) and
//! print the rules it reports.
//!
//! Run with: `cargo run --example quickstart`

use quantrules::core::{Miner, MinerConfig, PartitionSpec};
use quantrules::datagen::people_table;

fn main() {
    // The People table from Figure 1 of the paper:
    //   Age (quantitative), Married (categorical), NumCars (quantitative).
    let table = people_table();

    // Figure 1's parameters: minimum support 40 %, minimum confidence 50 %.
    // The table is tiny, so no partitioning and no maximum-support cap.
    let config = MinerConfig {
        min_support: 0.4,
        min_confidence: 0.5,
        max_support: 1.0,
        partitioning: PartitionSpec::None,
        partition_strategy: Default::default(),
        taxonomies: Default::default(),
        interest: None,
        max_itemset_size: 0,
        parallelism: None,
        kernel: Default::default(),
    };

    let output = Miner::new(config)
        .mine(&table)
        .expect("mining the example table succeeds");

    println!("People table: {} records", table.num_rows());
    println!(
        "Frequent itemsets: {} across {} levels",
        output.frequent.total(),
        output.frequent.levels.len()
    );
    println!("Rules at ≥50% confidence:\n");
    for i in 0..output.rules.len() {
        println!("  {}", output.format_rule(i));
    }

    // The paper's headline rule must be among them:
    //   ⟨Age: 30..39⟩ and ⟨Married: Yes⟩ ⇒ ⟨NumCars: 2⟩ (40% sup, 100% conf)
    let headline = (0..output.rules.len())
        .map(|i| output.format_rule(i))
        .find(|r| r.contains("⟨Age: 34..38⟩ and ⟨Married: Yes⟩ ⇒ ⟨NumCars: 2⟩"));
    println!(
        "\nFigure 1 headline rule: {}",
        headline.expect("the paper's rule is found")
    );
}
