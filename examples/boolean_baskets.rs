//! The classical boolean setting the paper builds on: market-basket
//! mining with \[AS94\] Apriori on a Quest-style synthetic dataset,
//! including the AprioriTid variant and rule generation.
//!
//! Run with: `cargo run --release --example boolean_baskets`

use quantrules::apriori::{apriori, apriori_tid, generate_rules};
use quantrules::datagen::{QuestConfig, QuestDataset};
use std::time::Instant;

fn main() {
    let data = QuestDataset::generate(QuestConfig {
        num_transactions: 20_000,
        num_items: 1_000,
        avg_transaction_len: 10,
        avg_pattern_len: 4,
        num_patterns: 200,
        seed: 94,
    });
    println!(
        "T10.I4-style baskets: {} transactions over {} items",
        data.db.len(),
        data.db.num_items()
    );

    let minsup = 0.01;
    let t0 = Instant::now();
    let frequent = apriori(&data.db, minsup);
    let t_apriori = t0.elapsed();
    let t1 = Instant::now();
    let frequent_tid = apriori_tid(&data.db, minsup);
    let t_tid = t1.elapsed();
    assert_eq!(frequent.total(), frequent_tid.total(), "variants agree");

    println!(
        "frequent itemsets at {:.0}% support: {} (per size: {:?})",
        minsup * 100.0,
        frequent.total(),
        frequent.by_size.iter().map(|l| l.len()).collect::<Vec<_>>()
    );
    println!("Apriori: {t_apriori:?}, AprioriTid: {t_tid:?}");

    let rules = generate_rules(&frequent, 0.7);
    println!("\n{} rules at 70% confidence; strongest:", rules.len());
    let mut by_conf: Vec<_> = rules.iter().collect();
    by_conf.sort_by(|a, b| b.confidence.total_cmp(&a.confidence));
    for r in by_conf.iter().take(10) {
        println!(
            "  {:?} ⇒ {:?}  (support {}, confidence {:.1}%)",
            r.antecedent,
            r.consequent,
            r.support,
            r.confidence * 100.0
        );
    }
}
