//! A marketing-survey scenario: who owns how many cars?
//!
//! Demonstrates the knobs the paper introduces — maximum support,
//! partial-completeness-driven partitioning, and the interest measure —
//! on a synthetic survey with planted demographics, including recovery of
//! the planted ground-truth rules.
//!
//! Run with: `cargo run --release --example marketing_survey`

use quantrules::core::{InterestConfig, InterestMode, Miner, MinerConfig, PartitionSpec};
use quantrules::datagen::{PlantedConfig, PlantedDataset};

fn main() {
    // A survey with two planted patterns:
    //   x0 ∈ [20..39]  ⇒  c = "A"        (90 % confidence)
    //   x0 ∈ [60..79]  ⇒  x1 ∈ [10..19]  (85 % confidence)
    let data = PlantedDataset::generate(PlantedConfig {
        num_records: 20_000,
        seed: 2026,
    });
    println!(
        "Survey: {} records, planted rules: {:#?}",
        data.table.num_rows(),
        data.rules
    );

    let config = MinerConfig {
        min_support: 0.1,
        min_confidence: 0.6,
        max_support: 0.3,
        partitioning: PartitionSpec::None, // x-attributes have 100 values
        partition_strategy: Default::default(),
        taxonomies: Default::default(),
        interest: Some(InterestConfig {
            level: 1.2,
            mode: InterestMode::SupportOrConfidence,
            prune_candidates: false,
        }),
        max_itemset_size: 2,
        parallelism: None,
        kernel: Default::default(),
    };
    let output = Miner::new(config)
        .mine(&data.table)
        .expect("mining succeeds");
    println!(
        "\n{} rules at ≥60% confidence, {} interesting.",
        output.stats.rules_total, output.stats.rules_interesting
    );

    // Did we recover the planted rules? Look for mined rules whose
    // rendered form names the planted ranges.
    for needle in ["⟨x0: 20..39⟩ ⇒ ⟨c: A⟩", "⟨x0: 60..79⟩ ⇒ ⟨x1: 10..19⟩"] {
        let found = (0..output.rules.len())
            .map(|i| output.format_rule(i))
            .find(|r| r.contains(needle));
        match found {
            Some(r) => println!("recovered: {r}"),
            None => println!("NOT recovered: {needle}"),
        }
    }

    // Show how the interest measure trims near-duplicate range rules.
    let verdicts = output.interest.as_ref().expect("configured");
    let x0_to_c: Vec<usize> = (0..output.rules.len())
        .filter(|&i| {
            let r = &output.rules[i];
            r.antecedent.attributes() == vec![0] && r.consequent.attributes() == vec![3]
        })
        .collect();
    let kept = x0_to_c.iter().filter(|&&i| verdicts[i].interesting).count();
    println!(
        "\nx0 ⇒ c rules: {} mined, {} kept by the interest measure",
        x0_to_c.len(),
        kept
    );
}
