//! Taxonomy-generalized rules: a retail chain's per-store records where no
//! single state clears the support floor, but region-level patterns do.
//!
//! The paper: "the taxonomy can be used to implicitly combine values of a
//! categorical attribute (see [SA95]) ... somewhat similar to considering
//! ranges over quantitative attributes." This implementation makes that
//! literal — states are numbered in taxonomy DFS order, so `West` is a
//! contiguous code range and rides the same machinery as `⟨Age: 30..39⟩`.
//!
//! Run with: `cargo run --release --example retail_regions`

use qar_prng::Prng;
use quantrules::core::{Miner, MinerConfig, PartitionSpec};
use quantrules::table::{Schema, Table, Taxonomy, Value};

fn main() {
    // A three-level taxonomy: states -> regions -> USA.
    let taxonomy = Taxonomy::from_edges(&[
        ("CA", "West"),
        ("WA", "West"),
        ("OR", "West"),
        ("NV", "West"),
        ("NY", "East"),
        ("MA", "East"),
        ("NJ", "East"),
        ("CT", "East"),
        ("West", "USA"),
        ("East", "USA"),
    ])
    .expect("valid taxonomy");

    // Synthetic store records: West stores sell big-ticket items.
    let schema = Schema::builder()
        .categorical("state")
        .quantitative("avg_ticket")
        .quantitative("footfall")
        .build()
        .expect("schema");
    let mut table = Table::new(schema);
    let mut rng = Prng::seed_from_u64(1996);
    let west = ["CA", "WA", "OR", "NV"];
    let east = ["NY", "MA", "NJ", "CT"];
    for _ in 0..30_000 {
        let is_west = rng.gen_bool(0.5);
        let state = if is_west {
            west[rng.gen_range(0..4)]
        } else {
            east[rng.gen_range(0..4)]
        };
        let ticket: i64 = if is_west {
            rng.gen_range(60..120)
        } else {
            rng.gen_range(15..70)
        };
        let footfall: i64 = rng.gen_range(100..1000);
        table
            .push_row(&[Value::from(state), Value::Int(ticket), Value::Int(footfall)])
            .expect("row");
    }

    let mut taxonomies = std::collections::BTreeMap::new();
    taxonomies.insert("state".to_string(), taxonomy);
    let config = MinerConfig {
        min_support: 0.2,
        min_confidence: 0.6,
        max_support: 0.6,
        partitioning: PartitionSpec::FixedIntervals(12),
        partition_strategy: Default::default(),
        taxonomies,
        interest: None,
        max_itemset_size: 2,
        parallelism: None,
        kernel: Default::default(),
    };
    let out = Miner::new(config).mine(&table).expect("mining succeeds");
    println!(
        "{} records, {} frequent itemsets, {} rules\n",
        table.num_rows(),
        out.frequent.total(),
        out.rules.len()
    );

    println!("Region-level rules (each state alone sits at ~12.5% support, below the 20% floor):");
    for i in 0..out.rules.len() {
        let rendered = out.format_rule(i);
        if rendered.contains("West") || rendered.contains("East") {
            println!("  {rendered}");
        }
    }

    let leaf_rules = (0..out.rules.len())
        .map(|i| out.format_rule(i))
        .filter(|r| {
            ["CA", "WA", "OR", "NV", "NY", "MA", "NJ", "CT"]
                .iter()
                .any(|s| r.contains(&format!("⟨state: {s}⟩")))
        })
        .count();
    println!("\nState-level (leaf) rules found: {leaf_rules} — the taxonomy is what makes the pattern visible.");
}
