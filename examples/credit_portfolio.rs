//! Mine a credit-card portfolio — the Section 6 scenario.
//!
//! Generates the simulated "real-life" dataset (five quantitative, two
//! categorical attributes), partitions the quantitative attributes to a
//! chosen partial-completeness level, mines, and prints the interesting
//! rules the greater-than-expected-value measure keeps.
//!
//! Run with: `cargo run --release --example credit_portfolio [records] [K]`

use quantrules::core::{InterestConfig, InterestMode, Miner, MinerConfig, PartitionSpec};
use quantrules::datagen::{CreditConfig, CreditDataset};

fn main() {
    let records: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(50_000);
    let completeness: f64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2.0);

    println!("Generating {records} credit records (seed fixed)...");
    let data = CreditDataset::generate(CreditConfig {
        num_records: records,
        ..CreditConfig::default()
    });

    // Section 6 parameters: minsup 20 %, minconf 25 %, maxsup 40 %.
    let config = MinerConfig {
        min_support: 0.20,
        min_confidence: 0.25,
        max_support: 0.40,
        partitioning: PartitionSpec::CompletenessLevel(completeness),
        partition_strategy: Default::default(),
        taxonomies: Default::default(),
        interest: Some(InterestConfig {
            level: 1.5,
            mode: InterestMode::SupportOrConfidence,
            prune_candidates: false,
        }),
        max_itemset_size: 0,
        parallelism: None,
        kernel: Default::default(),
    };

    let output = Miner::new(config)
        .mine(&data.table)
        .expect("mining succeeds");

    println!(
        "Partial completeness K = {completeness}; intervals per attribute: {:?}",
        output.stats.intervals_per_attribute
    );
    println!(
        "Frequent itemsets per level: {:?}",
        output
            .frequent
            .levels
            .iter()
            .map(|l| l.len())
            .collect::<Vec<_>>()
    );
    println!(
        "{} rules total; {} interesting (interest level 1.5). Mining took {:?}.",
        output.stats.rules_total, output.stats.rules_interesting, output.stats.elapsed_mining
    );

    // Show the most confident interesting rules.
    let verdicts = output.interest.as_ref().expect("interest configured");
    let mut interesting: Vec<usize> = (0..output.rules.len())
        .filter(|&i| verdicts[i].interesting)
        .collect();
    interesting.sort_by(|&a, &b| {
        output.rules[b]
            .confidence
            .total_cmp(&output.rules[a].confidence)
    });
    println!("\nTop interesting rules by confidence:");
    for &i in interesting.iter().take(15) {
        println!("  {}", output.format_rule(i));
    }
}
