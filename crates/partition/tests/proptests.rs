//! Randomized property tests for partitioning invariants (Lemmas 2–4 made
//! executable).

use qar_partition::partitioner::{interval_supports, EquiDepth, EquiWidth, KMeans1D, Partitioner};
use qar_partition::{achieved_level, num_intervals, PartialCompleteness};
use qar_prng::{cases, Prng};

fn count_per_interval(values: &[f64], cuts: &[f64]) -> Vec<usize> {
    let mut counts = vec![0usize; cuts.len() + 1];
    for &v in values {
        counts[cuts.partition_point(|&c| c <= v)] += 1;
    }
    counts
}

fn random_values(rng: &mut Prng, lo: f64, hi: f64, min_len: usize, max_len: usize) -> Vec<f64> {
    let n = rng.gen_range(min_len..max_len);
    (0..n).map(|_| rng.gen_range(lo..hi)).collect()
}

/// A set of distinct integers (as f64s) — the duplicate-free data some
/// lemmas need to hold exactly.
fn random_distinct(rng: &mut Prng, lo: i64, hi: i64, min_len: usize, max_len: usize) -> Vec<f64> {
    let n = rng.gen_range(min_len..max_len);
    let mut seen = std::collections::BTreeSet::new();
    while seen.len() < n {
        seen.insert(rng.gen_range(lo..hi));
    }
    seen.into_iter().map(|v| v as f64).collect()
}

/// Cut points are strictly increasing and lie strictly inside the data
/// range for every strategy.
#[test]
fn cuts_well_formed() {
    cases(64, 0x5EED_9186_0001, |case, rng| {
        let values = random_values(rng, -1000.0, 1000.0, 2, 300);
        let k = rng.gen_range(2..20usize);
        for p in [
            &EquiDepth as &dyn Partitioner,
            &EquiWidth,
            &KMeans1D::default(),
        ] {
            let cuts = p.cut_points(&values, k);
            assert!(cuts.len() < k, "case {case} {}", p.name());
            assert!(
                cuts.windows(2).all(|w| w[0] < w[1]),
                "case {case} {}",
                p.name()
            );
            let min = values.iter().copied().fold(f64::INFINITY, f64::min);
            let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            assert!(
                cuts.iter().all(|&c| c > min && c < max),
                "case {case} {}",
                p.name()
            );
        }
    });
}

/// Every interval induced by the cuts is non-empty (no wasted codes).
#[test]
fn equi_depth_intervals_nonempty() {
    cases(64, 0x5EED_9186_0002, |case, rng| {
        let values = random_values(rng, -100.0, 100.0, 2, 300);
        let k = rng.gen_range(2..20usize);
        let cuts = EquiDepth.cut_points(&values, k);
        let counts = count_per_interval(&values, &cuts);
        assert!(
            counts.iter().all(|&c| c > 0),
            "case {case} counts {counts:?}"
        );
        assert_eq!(counts.iter().sum::<usize>(), values.len(), "case {case}");
    });
}

/// Lemma 4 (the optimality claim behind equi-depth): among the strategies,
/// equi-depth never has a *larger* maximum multi-value interval support...
/// except that ties in the data can force it to; we assert it on
/// duplicate-free data where the claim is exact.
#[test]
fn equi_depth_minimizes_max_support_on_distinct_data() {
    cases(64, 0x5EED_9186_0003, |case, rng| {
        let values = random_distinct(rng, -10_000, 10_000, 10, 200);
        let k = rng.gen_range(2..10usize);
        let d_cuts = EquiDepth.cut_points(&values, k);
        let w_cuts = EquiWidth.cut_points(&values, k);
        // Only comparable when both produced a full set of cuts.
        if d_cuts.len() != k - 1 || w_cuts.len() != k - 1 {
            return;
        }
        let d_max = count_per_interval(&values, &d_cuts)
            .into_iter()
            .max()
            .unwrap();
        let w_max = count_per_interval(&values, &w_cuts)
            .into_iter()
            .max()
            .unwrap();
        assert!(
            d_max <= w_max,
            "case {case}: equi-depth max {d_max} > equi-width max {w_max}"
        );
    });
}

/// Requesting the interval count from Equation (2) and partitioning
/// equi-depth yields an achieved level (Equation 1 over measured supports)
/// no worse than requested — on duplicate-free data, where equi-depth can
/// actually hit its quantiles, modulo the ceil slack.
#[test]
fn requested_level_is_achieved() {
    cases(64, 0x5EED_9186_0004, |case, rng| {
        let values = random_distinct(rng, -100_000, 100_000, 50, 500);
        let level = rng.gen_range(15u32..60) as f64 / 10.0;
        let minsup = 0.1;
        let intervals = num_intervals(1, minsup, level).unwrap();
        if !(2..=values.len()).contains(&intervals) {
            return;
        }
        let cuts = EquiDepth.cut_points(&values, intervals);
        let sups = vec![interval_supports(&values, &cuts)];
        let achieved = achieved_level(1, minsup, &sups);
        // Equi-depth intervals can hold up to ceil(n/k) records; allow the
        // corresponding slack of one record over 1/intervals.
        let slack_support = 1.0 / intervals as f64 + 1.0 / values.len() as f64;
        let bound = PartialCompleteness {
            num_quantitative: 1,
            minsup,
        }
        .level_for_max_support(slack_support);
        assert!(
            achieved <= bound + 1e-9,
            "case {case}: achieved {achieved} > bound {bound}"
        );
    });
}

/// Equation (2) is antitone in the level: higher K (more loss allowed)
/// means fewer intervals.
#[test]
fn intervals_antitone_in_level() {
    cases(64, 0x5EED_9186_0005, |case, rng| {
        let n = rng.gen_range(1..10usize);
        let m = rng.gen_range(1u32..100) as f64 / 100.0;
        let mut last = usize::MAX;
        for level in [1.2, 1.5, 2.0, 3.0, 5.0] {
            let i = num_intervals(n, m, level).unwrap();
            assert!(i <= last, "case {case}");
            last = i;
        }
    });
}
