//! Property tests for partitioning invariants (Lemmas 2–4 made executable).

use proptest::prelude::*;
use qar_partition::partitioner::{interval_supports, EquiDepth, EquiWidth, KMeans1D, Partitioner};
use qar_partition::{achieved_level, num_intervals, PartialCompleteness};

fn count_per_interval(values: &[f64], cuts: &[f64]) -> Vec<usize> {
    let mut counts = vec![0usize; cuts.len() + 1];
    for &v in values {
        counts[cuts.partition_point(|&c| c <= v)] += 1;
    }
    counts
}

proptest! {
    /// Cut points are strictly increasing and lie strictly inside the data
    /// range for every strategy.
    #[test]
    fn cuts_well_formed(
        values in prop::collection::vec(-1000.0_f64..1000.0, 2..300),
        k in 2usize..20,
    ) {
        for p in [&EquiDepth as &dyn Partitioner, &EquiWidth, &KMeans1D::default()] {
            let cuts = p.cut_points(&values, k);
            prop_assert!(cuts.len() < k, "{}", p.name());
            prop_assert!(cuts.windows(2).all(|w| w[0] < w[1]), "{}", p.name());
            let min = values.iter().copied().fold(f64::INFINITY, f64::min);
            let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(cuts.iter().all(|&c| c > min && c < max), "{}", p.name());
        }
    }

    /// Every interval induced by the cuts is non-empty (no wasted codes).
    #[test]
    fn equi_depth_intervals_nonempty(
        values in prop::collection::vec(-100.0_f64..100.0, 2..300),
        k in 2usize..20,
    ) {
        let cuts = EquiDepth.cut_points(&values, k);
        let counts = count_per_interval(&values, &cuts);
        prop_assert!(counts.iter().all(|&c| c > 0), "counts {counts:?}");
        prop_assert_eq!(counts.iter().sum::<usize>(), values.len());
    }

    /// Lemma 4 (the optimality claim behind equi-depth): among the three
    /// strategies, equi-depth never has a *larger* maximum multi-value
    /// interval support... except that ties in the data can force it to;
    /// we assert it on duplicate-free data where the claim is exact.
    #[test]
    fn equi_depth_minimizes_max_support_on_distinct_data(
        seed in prop::collection::hash_set(-10_000i64..10_000, 10..200),
        k in 2usize..10,
    ) {
        let values: Vec<f64> = seed.into_iter().map(|v| v as f64).collect();
        let d_cuts = EquiDepth.cut_points(&values, k);
        let w_cuts = EquiWidth.cut_points(&values, k);
        // Only comparable when both produced a full set of cuts.
        prop_assume!(d_cuts.len() == k - 1 && w_cuts.len() == k - 1);
        let d_max = count_per_interval(&values, &d_cuts).into_iter().max().unwrap();
        let w_max = count_per_interval(&values, &w_cuts).into_iter().max().unwrap();
        prop_assert!(d_max <= w_max, "equi-depth max {d_max} > equi-width max {w_max}");
    }

    /// Requesting the interval count from Equation (2) and partitioning
    /// equi-depth yields an achieved level (Equation 1 over measured
    /// supports) no worse than requested — on duplicate-free data, where
    /// equi-depth can actually hit its quantiles, modulo the ceil slack.
    #[test]
    fn requested_level_is_achieved(
        seed in prop::collection::hash_set(-100_000i64..100_000, 50..500),
        k_times_ten in 15u32..60,
    ) {
        let values: Vec<f64> = seed.into_iter().map(|v| v as f64).collect();
        let level = k_times_ten as f64 / 10.0;
        let minsup = 0.1;
        let intervals = num_intervals(1, minsup, level).unwrap();
        prop_assume!(intervals >= 2 && intervals <= values.len());
        let cuts = EquiDepth.cut_points(&values, intervals);
        let sups = vec![interval_supports(&values, &cuts)];
        let achieved = achieved_level(1, minsup, &sups);
        // Equi-depth intervals can hold up to ceil(n/k) records; allow the
        // corresponding slack of one record over 1/intervals.
        let slack_support = 1.0 / intervals as f64 + 1.0 / values.len() as f64;
        let bound = PartialCompleteness { num_quantitative: 1, minsup }
            .level_for_max_support(slack_support);
        prop_assert!(achieved <= bound + 1e-9, "achieved {achieved} > bound {bound}");
    }

    /// Equation (2) is antitone in the level: higher K (more loss allowed)
    /// means fewer intervals.
    #[test]
    fn intervals_antitone_in_level(n in 1usize..10, m_pct in 1u32..100) {
        let m = m_pct as f64 / 100.0;
        let mut last = usize::MAX;
        for level in [1.2, 1.5, 2.0, 3.0, 5.0] {
            let i = num_intervals(n, m, level).unwrap();
            prop_assert!(i <= last);
            last = i;
        }
    }
}
