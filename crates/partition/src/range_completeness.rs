//! Range-based partial completeness — the first future-work item of the
//! paper's conclusion:
//!
//! > "We may generate a partial completeness measure based on the range of
//! > the attributes in the rules. (For any rule, we will have a
//! > generalization such that the range of each attribute is at most K
//! > times the range of the corresponding attribute in the original
//! > rule.)"
//!
//! Where the support-based measure of Section 3 bounds how much *support*
//! a closest generalization may gain, this measure bounds how much wider
//! its *ranges* may be. The two behave differently on skewed data: a
//! support bound lets intervals stretch across sparse value regions, a
//! range bound does not.
//!
//! For equi-width base intervals of width `w`, any value range of width at
//! least `r_min` generalizes to a union of whole intervals of width at
//! most `r + 2w ≤ r (1 + 2w/r_min)`; requiring that to be ≤ `K·r` yields
//!
//! ```text
//! w ≤ r_min (K − 1) / 2      ⇔      intervals ≥ 2·D / (r_min (K − 1))
//! ```
//!
//! with `D` the attribute's domain width — the exact analogue of
//! Equation (2) with the support quantum replaced by a range quantum.

use crate::completeness::{checked_interval_count, CompletenessError};

/// Number of equi-width intervals needed so that every value range of
/// width ≥ `min_rule_range` has a whole-interval cover of width at most
/// `level ×` its own (range-based K-completeness).
///
/// * `domain_width` — `max − min` of the attribute (must be positive);
/// * `min_rule_range` — the narrowest rule range the guarantee must hold
///   for (must be positive and ≤ `domain_width`);
/// * `level` — the range-completeness level `K > 1`.
pub fn range_intervals(
    domain_width: f64,
    min_rule_range: f64,
    level: f64,
) -> Result<usize, CompletenessError> {
    // `!(level > 1)` rather than `level <= 1` so NaN is rejected too.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    if !(level > 1.0) {
        return Err(CompletenessError::LevelTooLow(level));
    }
    assert!(
        domain_width > 0.0 && min_rule_range > 0.0 && min_rule_range <= domain_width,
        "need 0 < min_rule_range <= domain_width"
    );
    let raw = 2.0 * domain_width / (min_rule_range * (level - 1.0));
    Ok(checked_interval_count(raw)?.max(1))
}

/// The range-completeness level achieved by equi-width intervals of width
/// `interval_width` for rules of range at least `min_rule_range`
/// (Equation 1's analogue): `K = 1 + 2w / r_min`.
pub fn achieved_range_level(interval_width: f64, min_rule_range: f64) -> f64 {
    assert!(interval_width >= 0.0 && min_rule_range > 0.0);
    1.0 + 2.0 * interval_width / min_rule_range
}

/// Interval index of `x`, snapped against representation error: when the
/// quotient `(x - origin) / w` lands within a few ulps of an integer, that
/// integer is the boundary `x` sits on and wins over `floor`/`ceil` —
/// otherwise a boundary value whose quotient computed a hair *above* the
/// true integer would `ceil` a whole spurious interval into the cover (and
/// one a hair below would `floor` one out of it).
fn snap_index(x: f64, origin: f64, w: f64, up: bool) -> f64 {
    let q = (x - origin) / w;
    let r = q.round();
    // Relative tolerance: quotient error from two roundings is a few ulps.
    if (q - r).abs() <= 1e-9 * q.abs().max(1.0) {
        r
    } else if up {
        q.ceil()
    } else {
        q.floor()
    }
}

/// The next float above `x` (toward `+∞`).
fn next_up(x: f64) -> f64 {
    debug_assert!(x.is_finite());
    if x == 0.0 {
        f64::from_bits(1)
    } else if x > 0.0 {
        f64::from_bits(x.to_bits() + 1)
    } else {
        f64::from_bits(x.to_bits() - 1)
    }
}

/// The tightest whole-interval cover of `[lo, hi]` for equi-width
/// intervals of width `w` starting at `origin`: returns the cover's
/// `(lo, hi)`. Used by the property tests to verify the guarantee.
///
/// Guarantees, even at float boundaries:
/// * the cover contains `[lo, hi]` (`c_lo <= lo` and `c_hi >= hi`);
/// * the cover has positive width — `lo == hi` yields (at least) one full
///   interval, including when `w` underflows the ulp of `lo`;
/// * an endpoint sitting exactly on an interval boundary does not gain a
///   spurious extra interval from `floor`/`ceil` rounding error.
pub fn snap_to_intervals(lo: f64, hi: f64, origin: f64, w: f64) -> (f64, f64) {
    assert!(w > 0.0 && hi >= lo);
    let lo_idx = snap_index(lo, origin, w, false);
    let mut hi_idx = snap_index(hi, origin, w, true);
    if hi_idx <= lo_idx {
        // Degenerate range on (or snapped to) a boundary: one interval.
        hi_idx = lo_idx + 1.0;
    }
    let mut snapped_lo = origin + lo_idx * w;
    let mut snapped_hi = origin + hi_idx * w;
    // Boundary snapping must never cost containment: if the tolerance
    // pulled an index inward past the true endpoint, push it back out.
    if snapped_lo > lo {
        snapped_lo = origin + (lo_idx - 1.0) * w;
    }
    if snapped_hi < hi {
        snapped_hi = origin + (hi_idx + 1.0) * w;
    }
    // `w` below the ulp of the endpoints can still collapse the cover
    // (e.g. `origin + (k + 1) * w == origin + k * w`); force positive width.
    if snapped_hi <= snapped_lo {
        snapped_hi = next_up(snapped_lo.max(hi));
    }
    (snapped_lo, snapped_hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formula_matches_hand_computation() {
        // Domain 100 wide, rules at least 10 wide, K = 2:
        // 2·100 / (10·1) = 20 intervals (width 5).
        assert_eq!(range_intervals(100.0, 10.0, 2.0).unwrap(), 20);
        // K = 3 halves the requirement.
        assert_eq!(range_intervals(100.0, 10.0, 3.0).unwrap(), 10);
        // Non-divisible cases round up.
        assert_eq!(range_intervals(100.0, 7.0, 2.0).unwrap(), 29);
    }

    #[test]
    fn level_too_low_rejected() {
        assert!(range_intervals(10.0, 1.0, 1.0).is_err());
        assert!(range_intervals(10.0, 1.0, 0.5).is_err());
    }

    #[test]
    #[should_panic(expected = "min_rule_range")]
    fn degenerate_domain_rejected() {
        let _ = range_intervals(5.0, 10.0, 2.0);
    }

    #[test]
    fn achieved_level_is_consistent_with_interval_count() {
        let domain = 100.0;
        let r_min = 10.0;
        for k in [1.5, 2.0, 4.0] {
            let m = range_intervals(domain, r_min, k).unwrap();
            let w = domain / m as f64;
            let achieved = achieved_range_level(w, r_min);
            assert!(
                achieved <= k + 1e-9,
                "K requested {k}, achieved {achieved} with {m} intervals"
            );
        }
    }

    #[test]
    fn snapped_cover_contains_and_respects_bound() {
        // Exhaustively check the guarantee over a grid of ranges.
        let domain = 100.0;
        let r_min = 8.0;
        let k = 2.0;
        let m = range_intervals(domain, r_min, k).unwrap();
        let w = domain / m as f64;
        let mut lo = 0.0;
        while lo < domain - r_min {
            let mut width = r_min;
            while lo + width <= domain {
                let (c_lo, c_hi) = snap_to_intervals(lo, lo + width, 0.0, w);
                assert!(c_lo <= lo && lo + width <= c_hi, "cover must contain");
                let ratio = (c_hi - c_lo) / width;
                assert!(
                    ratio <= k + 1e-9,
                    "range [{lo}, {}] covered by [{c_lo}, {c_hi}]: ratio {ratio}",
                    lo + width
                );
                width += 3.7;
            }
            lo += 2.3;
        }
    }

    #[test]
    fn snap_basic_cases() {
        assert_eq!(snap_to_intervals(12.0, 18.0, 0.0, 5.0), (10.0, 20.0));
        assert_eq!(snap_to_intervals(10.0, 20.0, 0.0, 5.0), (10.0, 20.0));
        // Degenerate range still gets one full interval.
        assert_eq!(snap_to_intervals(12.0, 12.0, 0.0, 5.0), (10.0, 15.0));
    }

    #[test]
    fn snap_degenerate_range_on_boundary_gets_one_interval() {
        // lo == hi exactly on an interval boundary: exactly one interval,
        // not zero width and not two.
        assert_eq!(snap_to_intervals(10.0, 10.0, 0.0, 5.0), (10.0, 15.0));
        assert_eq!(snap_to_intervals(0.0, 0.0, 0.0, 5.0), (0.0, 5.0));
    }

    #[test]
    fn snap_no_spurious_interval_on_exact_boundary() {
        // 0.7 / 0.07 computes as 10.000000000000002: a raw `ceil` would
        // cover 11 intervals where 10 suffice.
        let w = 0.07;
        let (c_lo, c_hi) = snap_to_intervals(0.0, 0.7, 0.0, w);
        assert_eq!(c_lo, 0.0);
        assert!(c_hi >= 0.7, "cover lost containment: {c_hi}");
        let intervals = (c_hi - c_lo) / w;
        assert!(
            intervals < 10.5,
            "spurious extra interval: {intervals} intervals"
        );
        // Same on the low side: 0.07 * 3 = 0.21000000000000002 as a `lo`
        // must not lose an interval by flooring below index 3.
        let lo = 3.0 * w;
        let (c_lo, c_hi) = snap_to_intervals(lo, 0.7, 0.0, w);
        assert!(c_lo <= lo && c_hi >= 0.7);
        assert!((c_lo / w - 3.0).abs() < 0.5, "low side off: {c_lo}");
    }

    #[test]
    fn snap_survives_width_below_endpoint_ulp() {
        // At 1e16 the float spacing is 2.0, so adding w = 0.5 is a no-op;
        // the cover must still come back with positive width containing
        // the degenerate range.
        let x = 1e16;
        let (c_lo, c_hi) = snap_to_intervals(x, x, 0.0, 0.5);
        assert!(c_lo <= x && c_hi >= x);
        assert!(c_hi > c_lo, "zero-width cover at large magnitude");
    }
}
