//! Range-based partial completeness — the first future-work item of the
//! paper's conclusion:
//!
//! > "We may generate a partial completeness measure based on the range of
//! > the attributes in the rules. (For any rule, we will have a
//! > generalization such that the range of each attribute is at most K
//! > times the range of the corresponding attribute in the original
//! > rule.)"
//!
//! Where the support-based measure of Section 3 bounds how much *support*
//! a closest generalization may gain, this measure bounds how much wider
//! its *ranges* may be. The two behave differently on skewed data: a
//! support bound lets intervals stretch across sparse value regions, a
//! range bound does not.
//!
//! For equi-width base intervals of width `w`, any value range of width at
//! least `r_min` generalizes to a union of whole intervals of width at
//! most `r + 2w ≤ r (1 + 2w/r_min)`; requiring that to be ≤ `K·r` yields
//!
//! ```text
//! w ≤ r_min (K − 1) / 2      ⇔      intervals ≥ 2·D / (r_min (K − 1))
//! ```
//!
//! with `D` the attribute's domain width — the exact analogue of
//! Equation (2) with the support quantum replaced by a range quantum.

use crate::completeness::CompletenessError;

/// Number of equi-width intervals needed so that every value range of
/// width ≥ `min_rule_range` has a whole-interval cover of width at most
/// `level ×` its own (range-based K-completeness).
///
/// * `domain_width` — `max − min` of the attribute (must be positive);
/// * `min_rule_range` — the narrowest rule range the guarantee must hold
///   for (must be positive and ≤ `domain_width`);
/// * `level` — the range-completeness level `K > 1`.
pub fn range_intervals(
    domain_width: f64,
    min_rule_range: f64,
    level: f64,
) -> Result<usize, CompletenessError> {
    // `!(level > 1)` rather than `level <= 1` so NaN is rejected too.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    if !(level > 1.0) {
        return Err(CompletenessError::LevelTooLow(level));
    }
    assert!(
        domain_width > 0.0 && min_rule_range > 0.0 && min_rule_range <= domain_width,
        "need 0 < min_rule_range <= domain_width"
    );
    let raw = 2.0 * domain_width / (min_rule_range * (level - 1.0));
    Ok((raw.ceil() as usize).max(1))
}

/// The range-completeness level achieved by equi-width intervals of width
/// `interval_width` for rules of range at least `min_rule_range`
/// (Equation 1's analogue): `K = 1 + 2w / r_min`.
pub fn achieved_range_level(interval_width: f64, min_rule_range: f64) -> f64 {
    assert!(interval_width >= 0.0 && min_rule_range > 0.0);
    1.0 + 2.0 * interval_width / min_rule_range
}

/// The tightest whole-interval cover of `[lo, hi]` for equi-width
/// intervals of width `w` starting at `origin`: returns the cover's
/// `(lo, hi)`. Used by the property tests to verify the guarantee.
pub fn snap_to_intervals(lo: f64, hi: f64, origin: f64, w: f64) -> (f64, f64) {
    assert!(w > 0.0 && hi >= lo);
    let snapped_lo = origin + ((lo - origin) / w).floor() * w;
    let snapped_hi = origin + ((hi - origin) / w).ceil() * w;
    (snapped_lo, snapped_hi.max(snapped_lo + w))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formula_matches_hand_computation() {
        // Domain 100 wide, rules at least 10 wide, K = 2:
        // 2·100 / (10·1) = 20 intervals (width 5).
        assert_eq!(range_intervals(100.0, 10.0, 2.0).unwrap(), 20);
        // K = 3 halves the requirement.
        assert_eq!(range_intervals(100.0, 10.0, 3.0).unwrap(), 10);
        // Non-divisible cases round up.
        assert_eq!(range_intervals(100.0, 7.0, 2.0).unwrap(), 29);
    }

    #[test]
    fn level_too_low_rejected() {
        assert!(range_intervals(10.0, 1.0, 1.0).is_err());
        assert!(range_intervals(10.0, 1.0, 0.5).is_err());
    }

    #[test]
    #[should_panic(expected = "min_rule_range")]
    fn degenerate_domain_rejected() {
        let _ = range_intervals(5.0, 10.0, 2.0);
    }

    #[test]
    fn achieved_level_is_consistent_with_interval_count() {
        let domain = 100.0;
        let r_min = 10.0;
        for k in [1.5, 2.0, 4.0] {
            let m = range_intervals(domain, r_min, k).unwrap();
            let w = domain / m as f64;
            let achieved = achieved_range_level(w, r_min);
            assert!(
                achieved <= k + 1e-9,
                "K requested {k}, achieved {achieved} with {m} intervals"
            );
        }
    }

    #[test]
    fn snapped_cover_contains_and_respects_bound() {
        // Exhaustively check the guarantee over a grid of ranges.
        let domain = 100.0;
        let r_min = 8.0;
        let k = 2.0;
        let m = range_intervals(domain, r_min, k).unwrap();
        let w = domain / m as f64;
        let mut lo = 0.0;
        while lo < domain - r_min {
            let mut width = r_min;
            while lo + width <= domain {
                let (c_lo, c_hi) = snap_to_intervals(lo, lo + width, 0.0, w);
                assert!(c_lo <= lo && lo + width <= c_hi, "cover must contain");
                let ratio = (c_hi - c_lo) / width;
                assert!(
                    ratio <= k + 1e-9,
                    "range [{lo}, {}] covered by [{c_lo}, {c_hi}]: ratio {ratio}",
                    lo + width
                );
                width += 3.7;
            }
            lo += 2.3;
        }
    }

    #[test]
    fn snap_basic_cases() {
        assert_eq!(snap_to_intervals(12.0, 18.0, 0.0, 5.0), (10.0, 20.0));
        assert_eq!(snap_to_intervals(10.0, 20.0, 0.0, 5.0), (10.0, 20.0));
        // Degenerate range still gets one full interval.
        assert_eq!(snap_to_intervals(12.0, 12.0, 0.0, 5.0), (10.0, 15.0));
    }
}
