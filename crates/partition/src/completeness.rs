//! The partial-completeness measure (Section 3).
//!
//! Partitioning loses information; partial completeness quantifies it. A set
//! of itemsets `P` is *K-complete* w.r.t. the set of all frequent itemsets
//! `C` if every `X ∈ C` has a generalization `X̂ ∈ P` whose support is at
//! most `K·support(X)` — and the same holds for corresponding subsets
//! (Section 3.1). Lemma 3 ties the level to the maximum support of a base
//! interval; Lemma 4 shows equi-depth partitioning minimizes it.

/// Parameters of the partial-completeness computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartialCompleteness {
    /// Number of quantitative attributes that can appear together in a rule
    /// (`n` in the paper; use the schema's quantitative attribute count
    /// unless rules are known to involve fewer).
    pub num_quantitative: usize,
    /// Minimum support as a fraction in `(0, 1]` (`m` in the paper).
    pub minsup: f64,
}

impl PartialCompleteness {
    /// Equation (2): the number of equi-depth intervals needed per
    /// quantitative attribute to guarantee partial completeness level
    /// `level` (K):
    ///
    /// ```text
    /// intervals = 2n / (m * (K - 1))
    /// ```
    ///
    /// rounded *up* (fewer intervals would exceed the target level).
    /// Returns an error for `level <= 1` (K = 1 means no information loss,
    /// which partitioning cannot achieve) or a `minsup` outside `(0, 1]`.
    pub fn intervals_for_level(&self, level: f64) -> Result<usize, CompletenessError> {
        // `!(level > 1)` rather than `level <= 1` so NaN is rejected too.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(level > 1.0) {
            return Err(CompletenessError::LevelTooLow(level));
        }
        if !(self.minsup > 0.0 && self.minsup <= 1.0) {
            return Err(CompletenessError::BadMinsup(self.minsup));
        }
        if self.num_quantitative == 0 {
            return Ok(0);
        }
        let raw = 2.0 * self.num_quantitative as f64 / (self.minsup * (level - 1.0));
        checked_interval_count(raw)
    }

    /// Equation (1): the partial completeness level achieved when the
    /// maximum fractional support of any base interval *containing more
    /// than one value* is `max_interval_support`:
    ///
    /// ```text
    /// K = 1 + 2n·s / m
    /// ```
    pub fn level_for_max_support(&self, max_interval_support: f64) -> f64 {
        1.0 + 2.0 * self.num_quantitative as f64 * max_interval_support / self.minsup
    }
}

/// Convenience wrapper over [`PartialCompleteness::intervals_for_level`].
pub fn num_intervals(
    num_quantitative: usize,
    minsup: f64,
    level: f64,
) -> Result<usize, CompletenessError> {
    PartialCompleteness {
        num_quantitative,
        minsup,
    }
    .intervals_for_level(level)
}

/// The level a concrete partitioning achieves over concrete data
/// (Equation 1 applied to measured interval supports).
///
/// * `interval_supports` — for each attribute, the fractional support of
///   each base interval *paired with* whether the interval holds more than
///   one distinct value. Single-value intervals are exempt per Lemma 2
///   ("either the support of B is less than minsup·(K−1)/2 or B consists of
///   a single value").
pub fn achieved_level(
    num_quantitative: usize,
    minsup: f64,
    interval_supports: &[Vec<(f64, bool)>],
) -> f64 {
    let s = interval_supports
        .iter()
        .flatten()
        .filter(|(_, multi)| *multi)
        .map(|(sup, _)| *sup)
        .fold(0.0_f64, f64::max);
    PartialCompleteness {
        num_quantitative,
        minsup,
    }
    .level_for_max_support(s)
}

/// Largest interval count the formulas will hand back. Anything above
/// this is useless for mining (no dataset has that many distinct values)
/// and signals a degenerate parameter combination.
pub const MAX_INTERVALS: usize = u32::MAX as usize;

/// Convert a raw interval-count formula result into a usable `usize`.
///
/// The quotient `2n / (m·(K−1))` overflows to `inf` when the denominator
/// underflows (legal-but-tiny `minsup` times `K − 1`); letting that reach
/// `ceil() as usize` silently saturates to `usize::MAX` and poisons every
/// downstream capacity computation. Out-of-range results become a
/// structured [`CompletenessError::TooManyIntervals`] instead.
pub(crate) fn checked_interval_count(raw: f64) -> Result<usize, CompletenessError> {
    if !raw.is_finite() || raw > MAX_INTERVALS as f64 {
        return Err(CompletenessError::TooManyIntervals(raw));
    }
    Ok(raw.ceil() as usize)
}

/// Errors from the completeness formulas.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CompletenessError {
    /// The requested level was ≤ 1.
    LevelTooLow(f64),
    /// `minsup` was outside `(0, 1]`.
    BadMinsup(f64),
    /// The parameters demand more intervals than any dataset could use
    /// (more than [`MAX_INTERVALS`], or a non-finite count from
    /// denominator underflow).
    TooManyIntervals(f64),
}

impl std::fmt::Display for CompletenessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompletenessError::LevelTooLow(k) => {
                write!(f, "partial completeness level must exceed 1 (got {k})")
            }
            CompletenessError::BadMinsup(m) => {
                write!(f, "minimum support must be a fraction in (0, 1] (got {m})")
            }
            CompletenessError::TooManyIntervals(raw) => {
                write!(
                    f,
                    "parameters demand {raw} intervals per attribute \
                     (max {MAX_INTERVALS}); raise minsup or the completeness level"
                )
            }
        }
    }
}

impl std::error::Error for CompletenessError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equation_2_matches_paper_parameters() {
        // Section 6: 5 quantitative attributes, minsup 20 %. At K = 1.5 the
        // formula gives 2·5/(0.2·0.5) = 100 intervals.
        assert_eq!(num_intervals(5, 0.2, 1.5).unwrap(), 100);
        assert_eq!(num_intervals(5, 0.2, 2.0).unwrap(), 50);
        assert_eq!(num_intervals(5, 0.2, 3.0).unwrap(), 25);
        assert_eq!(num_intervals(5, 0.2, 5.0).unwrap(), 13); // 12.5 rounded up
    }

    #[test]
    fn equation_1_and_2_are_inverse() {
        let pc = PartialCompleteness {
            num_quantitative: 3,
            minsup: 0.1,
        };
        // With exactly the support bound from Lemma 3 the level round-trips.
        for k in [1.5, 2.0, 4.0] {
            let intervals = pc.intervals_for_level(k).unwrap();
            let s = 1.0 / intervals as f64; // equi-depth: each interval 1/intervals
            let achieved = pc.level_for_max_support(s);
            assert!(
                achieved <= k + 1e-9,
                "achieved {achieved} must not exceed requested {k}"
            );
        }
    }

    #[test]
    fn level_must_exceed_one() {
        assert_eq!(
            num_intervals(2, 0.1, 1.0).unwrap_err(),
            CompletenessError::LevelTooLow(1.0)
        );
        assert!(num_intervals(2, 0.1, 0.5).is_err());
        assert!(num_intervals(2, 0.1, f64::NAN).is_err());
    }

    #[test]
    fn minsup_validated() {
        assert_eq!(
            num_intervals(2, 0.0, 2.0).unwrap_err(),
            CompletenessError::BadMinsup(0.0)
        );
        assert!(num_intervals(2, 1.5, 2.0).is_err());
    }

    #[test]
    fn zero_quantitative_attributes_need_no_intervals() {
        assert_eq!(num_intervals(0, 0.2, 2.0).unwrap(), 0);
    }

    #[test]
    fn degenerate_denominator_is_a_structured_error_not_saturation() {
        // minsup and (K − 1) are each individually legal, but their
        // product underflows to 0: the quotient is +inf, which previously
        // saturated `ceil() as usize` to usize::MAX.
        let err = num_intervals(2, 1e-300, 1.0 + 1e-9).unwrap_err();
        assert!(matches!(err, CompletenessError::TooManyIntervals(raw) if raw.is_infinite()));
        // Finite but absurd counts are rejected too.
        let err = num_intervals(2, 1e-300, 2.0).unwrap_err();
        assert!(matches!(err, CompletenessError::TooManyIntervals(_)));
        // Large-but-usable counts still work.
        assert_eq!(num_intervals(1, 1e-9, 2.0).unwrap(), 2_000_000_000);
    }

    #[test]
    fn achieved_level_ignores_single_value_intervals() {
        // One attribute; a single-value interval with huge support must not
        // count (Lemma 2's exemption), the two-value interval must.
        let sups = vec![vec![(0.6, false), (0.1, true)]];
        let k = achieved_level(1, 0.2, &sups);
        assert!((k - (1.0 + 2.0 * 0.1 / 0.2)).abs() < 1e-12);
    }

    #[test]
    fn achieved_level_takes_max_over_attributes() {
        let sups = vec![vec![(0.05, true)], vec![(0.2, true)]];
        let k = achieved_level(2, 0.1, &sups);
        assert!((k - (1.0 + 2.0 * 2.0 * 0.2 / 0.1)).abs() < 1e-12);
    }

    #[test]
    fn more_intervals_means_lower_level() {
        let pc = PartialCompleteness {
            num_quantitative: 4,
            minsup: 0.05,
        };
        let k_few = pc.level_for_max_support(1.0 / 10.0);
        let k_many = pc.level_for_max_support(1.0 / 100.0);
        assert!(k_many < k_few);
    }

    #[test]
    fn error_display() {
        assert!(CompletenessError::LevelTooLow(1.0)
            .to_string()
            .contains("exceed 1"));
        assert!(CompletenessError::BadMinsup(2.0)
            .to_string()
            .contains("(0, 1]"));
    }
}
