//! # qar-partition — partitioning quantitative attributes (Section 3)
//!
//! Decides *whether* to partition a quantitative attribute, *how many*
//! partitions to use, and *where* to cut:
//!
//! * [`completeness`] — the partial-completeness measure: Equation (2)
//!   (number of intervals for a desired level `K`), Equation (1) (the level
//!   a given partitioning achieves), and an executable check of the
//!   `K`-completeness definition used by the property tests.
//! * [`partitioner`] — cut-point strategies: [`EquiDepth`] (the paper's
//!   choice, optimal by Lemma 4), [`EquiWidth`] (baseline for the ablation),
//!   and [`KMeans1D`] (the clustering approach the paper's future-work
//!   section suggests for skewed data).
//! * [`range_completeness`] — the *range-based* partial completeness
//!   measure sketched in the paper's conclusion, with its interval-count
//!   formula and an executable cover guarantee.
//!
//! Cut points are plain `Vec<f64>` consumed by
//! `qar_table::AttributeEncoder::quant_intervals_from`.
//!
//! [`EquiDepth`]: partitioner::EquiDepth
//! [`EquiWidth`]: partitioner::EquiWidth
//! [`KMeans1D`]: partitioner::KMeans1D

#![warn(missing_docs)]

pub mod completeness;
pub mod partitioner;
pub mod range_completeness;

pub use completeness::{
    achieved_level, num_intervals, CompletenessError, PartialCompleteness, MAX_INTERVALS,
};
pub use partitioner::{EquiDepth, EquiWidth, KMeans1D, Partitioner};
pub use range_completeness::{achieved_range_level, range_intervals};
