//! Cut-point strategies for quantitative attributes.
//!
//! All partitioners return *cut points*: a strictly increasing `Vec<f64>` of
//! length `k-1` for (at most) `k` intervals, where a value `v` falls in
//! interval `i` iff `cuts[i-1] <= v < cuts[i]` (with the obvious open ends).
//! Equal data values can never be separated, so a partitioner may return
//! fewer cuts than requested when the data has heavy duplication.

/// A strategy for choosing cut points over one quantitative column.
pub trait Partitioner {
    /// Compute cut points splitting `values` into at most `k` intervals.
    ///
    /// `values` need not be sorted; implementations sort internally.
    /// Returns an empty vector when `k <= 1` or all values are equal.
    fn cut_points(&self, values: &[f64], k: usize) -> Vec<f64>;

    /// Short name for reports.
    fn name(&self) -> &'static str;
}

fn sorted(values: &[f64]) -> Vec<f64> {
    let mut v = values.to_vec();
    v.sort_by(f64::total_cmp);
    v
}

/// Midpoint between two adjacent distinct values — cut points sit strictly
/// between data values so interval membership is unambiguous.
fn midpoint(a: f64, b: f64) -> f64 {
    a + (b - a) / 2.0
}

/// A cut point `c` with `a < c <= b` for adjacent distinct values `a < b`.
///
/// The plain midpoint is preferred, but when `a` and `b` are so close that
/// `a + (b - a) / 2` rounds back onto `a` (adjacent or near-adjacent
/// floats), the cut falls *on* the left value — and since membership is
/// `v >= cut ⇒ right interval`, every copy of `a` would silently migrate
/// to the right interval, leaving the left one empty. Clamping to `b`
/// keeps the split unambiguous: values `< b` left, values `>= b` right.
fn cut_between(a: f64, b: f64) -> f64 {
    debug_assert!(a < b, "cut_between needs distinct ordered values");
    let mid = midpoint(a, b);
    if mid > a {
        mid
    } else {
        b
    }
}

/// Sorted distinct values of a column.
fn sorted_distinct(values: &[f64]) -> Vec<f64> {
    let mut d = sorted(values);
    d.dedup();
    d
}

/// Full-resolution cuts: one interval per distinct value. The right answer
/// for every strategy when `k` is at least the distinct-value count —
/// anything else either wastes intervals (duplicates) or merges values it
/// had room to separate.
fn full_resolution_cuts(distinct: &[f64]) -> Vec<f64> {
    distinct
        .windows(2)
        .map(|w| cut_between(w[0], w[1]))
        .collect()
}

/// Equi-depth partitioning: each interval receives (as close as possible to)
/// the same number of *records*. The paper proves (Lemma 4) this minimizes
/// the partial completeness level for a given interval count, because it
/// minimizes the maximum interval support.
///
/// Ties: a run of equal values cannot be split, so the cut after a
/// quantile boundary lands at the end of the run. With highly skewed data
/// this can produce fewer than `k` intervals (the paper's future-work
/// section discusses exactly this weakness).
#[derive(Debug, Clone, Copy, Default)]
pub struct EquiDepth;

impl Partitioner for EquiDepth {
    fn cut_points(&self, values: &[f64], k: usize) -> Vec<f64> {
        let n = values.len();
        if k <= 1 || n < 2 {
            return Vec::new();
        }
        let v = sorted(values);
        let distinct = sorted_distinct(&v);
        if distinct.len() <= k {
            // Enough intervals for every distinct value: full resolution.
            // Walking quantile targets here can skip gaps (duplicated
            // intervals) while other targets land inside runs (empty ones).
            return full_resolution_cuts(&distinct);
        }
        let mut cuts = Vec::with_capacity(k - 1);
        for j in 1..k {
            // Records [0, target) should land left of cut j.
            let target = (j * n) / k;
            if target == 0 || target >= n {
                continue;
            }
            // Can't cut inside a run of equal values: advance to the run end.
            let mut pos = target;
            while pos < n && v[pos] == v[target - 1] {
                pos += 1;
            }
            if pos >= n {
                continue;
            }
            let cut = cut_between(v[pos - 1], v[pos]);
            if cuts.last().is_none_or(|&last| cut > last) {
                cuts.push(cut);
            }
        }
        cuts
    }

    fn name(&self) -> &'static str {
        "equi-depth"
    }
}

/// Equi-width partitioning: the value range `[min, max]` is split into `k`
/// intervals of equal width. Baseline for the partitioning ablation — the
/// paper notes it handles skew poorly (a few intervals soak up most
/// records, raising the achieved partial-completeness level).
#[derive(Debug, Clone, Copy, Default)]
pub struct EquiWidth;

impl Partitioner for EquiWidth {
    fn cut_points(&self, values: &[f64], k: usize) -> Vec<f64> {
        if k <= 1 || values.len() < 2 {
            return Vec::new();
        }
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        // `!(max > min)` rather than `max <= min` so NaN bails out too.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(max > min) {
            return Vec::new();
        }
        let width = (max - min) / k as f64;
        let mut cuts = Vec::with_capacity(k - 1);
        for j in 1..k {
            let cut = min + width * j as f64;
            if cuts.last().is_none_or(|&last| cut > last) && cut > min && cut < max {
                cuts.push(cut);
            }
        }
        cuts
    }

    fn name(&self) -> &'static str {
        "equi-width"
    }
}

/// One-dimensional k-means (Lloyd's algorithm over sorted data with
/// quantile initialization). The paper's conclusion suggests clustering for
/// skewed data: "Equi-depth partitioning may not work very well on highly
/// skewed data ... It may be worth exploring the use of clustering
/// algorithms \[JD88\] for partitioning".
///
/// Deterministic: initialization is by quantiles, not random seeding, so
/// repeated runs agree.
#[derive(Debug, Clone, Copy)]
pub struct KMeans1D {
    /// Maximum Lloyd iterations (convergence is typically much faster).
    pub max_iterations: usize,
}

impl Default for KMeans1D {
    fn default() -> Self {
        KMeans1D { max_iterations: 64 }
    }
}

impl Partitioner for KMeans1D {
    fn cut_points(&self, values: &[f64], k: usize) -> Vec<f64> {
        let n = values.len();
        if k <= 1 || n < 2 {
            return Vec::new();
        }
        let v = sorted(values);
        if v[0] == v[n - 1] {
            return Vec::new();
        }
        let distinct = sorted_distinct(&v);
        if distinct.len() <= k {
            // One interval per distinct value; no clustering to do.
            return full_resolution_cuts(&distinct);
        }
        // Quantile init over the *distinct* values. Sampling record
        // quantiles (`v[(j * n + n / 2) / k]`) can land several seeds in
        // one duplicate run on skewed data, collapsing them to a single
        // center and forfeiting intervals the data had room for. Distinct
        // quantiles are guaranteed pairwise different: `distinct.len() > k`
        // makes `(j * distinct.len()) / k` strictly increasing in `j`.
        let mut centers: Vec<f64> = (0..k).map(|j| distinct[(j * distinct.len()) / k]).collect();
        debug_assert!(centers.windows(2).all(|w| w[0] < w[1]));
        let mut boundaries: Vec<usize> = Vec::new(); // index of first element of each cluster but the first
        for _ in 0..self.max_iterations {
            // Assign: in 1-D with sorted data, cluster boundaries are where
            // the midpoint between adjacent centers falls.
            let mut new_boundaries = Vec::with_capacity(centers.len() - 1);
            for w in centers.windows(2) {
                let mid = midpoint(w[0], w[1]);
                new_boundaries.push(v.partition_point(|&x| x < mid));
            }
            // Update centers as cluster means.
            let mut new_centers = Vec::with_capacity(centers.len());
            let mut start = 0usize;
            for &end in new_boundaries.iter().chain(std::iter::once(&n)) {
                if end > start {
                    let mean = v[start..end].iter().sum::<f64>() / (end - start) as f64;
                    new_centers.push(mean);
                }
                start = end;
            }
            new_centers.dedup();
            let converged = new_boundaries == boundaries && new_centers.len() == centers.len();
            boundaries = new_boundaries;
            centers = new_centers;
            if converged {
                break;
            }
        }
        // Convert cluster boundaries to cut points between distinct values.
        let mut cuts = Vec::new();
        for &b in &boundaries {
            if b == 0 || b >= n || v[b - 1] == v[b] {
                continue;
            }
            let cut = cut_between(v[b - 1], v[b]);
            if cuts.last().is_none_or(|&last| cut > last) {
                cuts.push(cut);
            }
        }
        cuts
    }

    fn name(&self) -> &'static str {
        "kmeans-1d"
    }
}

/// Fractional support of each interval induced by `cuts` over `values`,
/// paired with whether the interval contains more than one distinct value —
/// the exact input `qar_partition::achieved_level` expects.
pub fn interval_supports(values: &[f64], cuts: &[f64]) -> Vec<(f64, bool)> {
    let n = values.len();
    let k = cuts.len() + 1;
    let mut counts = vec![0usize; k];
    let mut first_value = vec![f64::NAN; k];
    let mut multi = vec![false; k];
    for &v in values {
        let idx = cuts.partition_point(|&c| c <= v);
        counts[idx] += 1;
        if first_value[idx].is_nan() {
            first_value[idx] = v;
        } else if first_value[idx] != v {
            multi[idx] = true;
        }
    }
    counts
        .into_iter()
        .zip(multi)
        .map(|(c, m)| (if n == 0 { 0.0 } else { c as f64 / n as f64 }, m))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn depth_counts(values: &[f64], cuts: &[f64]) -> Vec<usize> {
        let k = cuts.len() + 1;
        let mut counts = vec![0usize; k];
        for &v in values {
            counts[cuts.partition_point(|&c| c <= v)] += 1;
        }
        counts
    }

    #[test]
    fn equi_depth_splits_uniform_data_evenly() {
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let cuts = EquiDepth.cut_points(&values, 4);
        assert_eq!(cuts.len(), 3);
        assert_eq!(depth_counts(&values, &cuts), vec![25, 25, 25, 25]);
    }

    #[test]
    fn equi_depth_cannot_split_ties() {
        // 90 copies of 1.0 and ten distinct tail values: at most 2 useful cuts.
        let mut values = vec![1.0; 90];
        values.extend((2..12).map(|i| i as f64));
        let cuts = EquiDepth.cut_points(&values, 4);
        // All cuts must be > 1.0 (the run can't be split).
        assert!(cuts.iter().all(|&c| c > 1.0));
        let counts = depth_counts(&values, &cuts);
        assert_eq!(counts[0], 90);
        assert_eq!(counts.iter().sum::<usize>(), 100);
    }

    #[test]
    fn equi_depth_handles_degenerate_inputs() {
        assert!(EquiDepth.cut_points(&[], 4).is_empty());
        assert!(EquiDepth.cut_points(&[1.0], 4).is_empty());
        assert!(EquiDepth.cut_points(&[1.0, 1.0, 1.0], 4).is_empty());
        assert!(EquiDepth.cut_points(&[1.0, 2.0], 1).is_empty());
    }

    #[test]
    fn equi_depth_unsorted_input() {
        let values = vec![5.0, 1.0, 3.0, 2.0, 4.0, 6.0];
        let cuts = EquiDepth.cut_points(&values, 2);
        assert_eq!(cuts.len(), 1);
        assert_eq!(depth_counts(&values, &cuts), vec![3, 3]);
    }

    #[test]
    fn equi_width_splits_range_evenly() {
        let values: Vec<f64> = vec![0.0, 10.0];
        let cuts = EquiWidth.cut_points(&values, 4);
        assert_eq!(cuts, vec![2.5, 5.0, 7.5]);
    }

    #[test]
    fn equi_width_skew_pathology() {
        // 99 values near 0 and one at 100: equi-width piles everything into
        // the first interval; equi-depth spreads records.
        let mut values: Vec<f64> = (0..99).map(|i| i as f64 / 100.0).collect();
        values.push(100.0);
        let w = EquiWidth.cut_points(&values, 4);
        let d = EquiDepth.cut_points(&values, 4);
        let w_max = depth_counts(&values, &w).into_iter().max().unwrap();
        let d_max = depth_counts(&values, &d).into_iter().max().unwrap();
        assert!(
            w_max > d_max,
            "equi-width max {w_max} <= equi-depth max {d_max}"
        );
        assert_eq!(d_max, 25);
    }

    #[test]
    fn equi_width_constant_column() {
        assert!(EquiWidth.cut_points(&[3.0, 3.0, 3.0], 5).is_empty());
    }

    #[test]
    fn kmeans_finds_obvious_clusters() {
        let mut values = Vec::new();
        values.extend((0..50).map(|i| 0.0 + i as f64 * 0.01));
        values.extend((0..50).map(|i| 100.0 + i as f64 * 0.01));
        let cuts = KMeans1D::default().cut_points(&values, 2);
        assert_eq!(cuts.len(), 1);
        assert!(
            cuts[0] > 1.0 && cuts[0] < 100.0,
            "cut {} not in gap",
            cuts[0]
        );
    }

    #[test]
    fn kmeans_degenerate_inputs() {
        assert!(KMeans1D::default().cut_points(&[], 3).is_empty());
        assert!(KMeans1D::default().cut_points(&[2.0, 2.0], 3).is_empty());
    }

    #[test]
    fn kmeans_is_deterministic() {
        let values: Vec<f64> = (0..200).map(|i| ((i * 37) % 101) as f64).collect();
        let a = KMeans1D::default().cut_points(&values, 7);
        let b = KMeans1D::default().cut_points(&values, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn interval_supports_sum_to_one_and_flag_multis() {
        let values = vec![1.0, 1.0, 2.0, 3.0, 3.0, 3.0];
        let cuts = vec![2.5];
        let sups = interval_supports(&values, &cuts);
        assert_eq!(sups.len(), 2);
        let total: f64 = sups.iter().map(|(s, _)| s).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(sups[0], (0.5, true)); // {1,1,2}: two distinct values
        assert_eq!(sups[1], (0.5, false)); // {3,3,3}: single value
    }

    #[test]
    fn cut_points_strictly_increasing_for_all_partitioners() {
        let values: Vec<f64> = (0..500).map(|i| ((i * 17) % 83) as f64).collect();
        for p in [
            &EquiDepth as &dyn Partitioner,
            &EquiWidth,
            &KMeans1D::default(),
        ] {
            for k in [2, 3, 10, 50] {
                let cuts = p.cut_points(&values, k);
                assert!(
                    cuts.windows(2).all(|w| w[0] < w[1]),
                    "{} k={k} produced non-increasing cuts",
                    p.name()
                );
                assert!(cuts.len() < k);
            }
        }
    }

    #[test]
    fn adjacent_float_runs_are_never_split_or_emptied() {
        // `b` is the very next float after `a`: the naive midpoint rounds
        // back onto `a`, which would push every copy of `a` into the right
        // interval and leave the left one empty.
        let a = 1.0_f64;
        let b = f64::from_bits(a.to_bits() + 1);
        for p in [&EquiDepth as &dyn Partitioner, &KMeans1D::default()] {
            let values = [a, a, b, b];
            let cuts = p.cut_points(&values, 2);
            assert_eq!(cuts.len(), 1, "{} found no cut", p.name());
            assert!(
                a < cuts[0] && cuts[0] <= b,
                "{} cut on/outside run",
                p.name()
            );
            assert_eq!(depth_counts(&values, &cuts), vec![2, 2], "{}", p.name());
        }
    }

    #[test]
    fn k_at_least_distinct_count_gives_full_resolution() {
        // k >= number of distinct values: one non-empty interval per
        // distinct value, never an empty or duplicated interval.
        let values = [5.0, 1.0, 1.0, 3.0, 3.0, 3.0, 5.0, 1.0];
        for p in [&EquiDepth as &dyn Partitioner, &KMeans1D::default()] {
            for k in [3, 4, 10] {
                let cuts = p.cut_points(&values, k);
                assert_eq!(cuts.len(), 2, "{} k={k}", p.name());
                let counts = depth_counts(&values, &cuts);
                assert_eq!(counts, vec![3, 3, 2], "{} k={k}", p.name());
            }
        }
    }

    #[test]
    fn kmeans_center_seeds_survive_duplicate_runs() {
        // 1 appears 8 times out of 10: record-quantile seeding would put
        // both centers inside the run of 1s and collapse them, returning
        // no cuts at all even though a 2-way split exists.
        let mut values = vec![0.0];
        values.extend(std::iter::repeat_n(1.0, 8));
        values.push(2.0);
        let cuts = KMeans1D::default().cut_points(&values, 2);
        assert_eq!(cuts.len(), 1, "center collapse lost the split");
        let counts = depth_counts(&values, &cuts);
        assert!(counts.iter().all(|&c| c > 0), "empty interval: {counts:?}");
    }

    #[test]
    fn names() {
        assert_eq!(EquiDepth.name(), "equi-depth");
        assert_eq!(EquiWidth.name(), "equi-width");
        assert_eq!(KMeans1D::default().name(), "kmeans-1d");
    }
}
