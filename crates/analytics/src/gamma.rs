//! Regularized incomplete gamma function, implemented in-repo so the
//! chi-square p-values need no external math crate.
//!
//! `gamma_q(a, x)` is the upper regularized incomplete gamma function
//! Q(a, x) = Γ(a, x) / Γ(a), evaluated by the classic pair of expansions:
//! the power series for P(a, x) when `x < a + 1` (where it converges
//! fast) and the Lentz continued fraction for Q(a, x) otherwise. The
//! survival function of a chi-square variable with one degree of freedom
//! is Q(1/2, x/2), which is all the analytics subsystem needs, but the
//! implementation is the general one so it can be tested against
//! closed-form anchors at several parameters.

use std::f64::consts::PI;

/// Relative accuracy target for the series / continued fraction.
const EPS: f64 = 1.0e-15;
/// Smallest representable scale for Lentz's algorithm.
const FPMIN: f64 = f64::MIN_POSITIVE / EPS;
/// Iteration cap; both expansions converge in well under 200 terms for
/// every reachable `(a, x)`.
const MAX_ITER: usize = 500;

/// Natural log of the gamma function (Lanczos approximation, g = 7).
/// Accurate to ~1e-13 relative over the positive reals.
pub fn ln_gamma(x: f64) -> f64 {
    // Coefficients for g = 7, n = 9 (Godfrey's tabulation), kept at
    // their published precision even where f64 rounds the tail away.
    #[allow(clippy::excessive_precision)]
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_59,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_571_6e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps the series argument above 0.5.
        return PI.ln() - (PI * x).sin().abs().ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEF[0];
    for (i, c) in COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Lower regularized incomplete gamma P(a, x) by its power series
/// (valid and fast for `x < a + 1`).
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * EPS {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Upper regularized incomplete gamma Q(a, x) by Lentz's continued
/// fraction (valid and fast for `x >= a + 1`).
fn gamma_q_contfrac(a: f64, x: f64) -> f64 {
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Upper regularized incomplete gamma Q(a, x) for `a > 0`, `x >= 0`.
/// Returns NaN outside the domain, 1 at `x = 0`, and decreases
/// monotonically to 0 as `x` grows.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    if a.is_nan() || x.is_nan() || a <= 0.0 || x < 0.0 {
        return f64::NAN;
    }
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_contfrac(a, x)
    }
}

/// Survival function of the chi-square distribution with one degree of
/// freedom: the p-value of a 2×2 contingency chi-square statistic.
/// Non-positive statistics (degenerate tables) map to p = 1.
pub fn chi2_p_value(chi2: f64) -> f64 {
    // NaN and non-positive statistics (degenerate tables) map to p = 1.
    if chi2.is_nan() || chi2 <= 0.0 {
        return 1.0;
    }
    gamma_q(0.5, chi2 / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(got: f64, want: f64, tol: f64) {
        assert!(
            (got - want).abs() <= tol * want.abs().max(1.0),
            "got {got}, want {want}"
        );
    }

    #[test]
    fn ln_gamma_anchors() {
        close(ln_gamma(0.5), 0.572_364_942_924_700_1, 1e-12); // ln sqrt(pi)
        close(ln_gamma(1.0), 0.0, 1e-12);
        close(ln_gamma(2.0), 0.0, 1e-12);
        close(ln_gamma(5.0), 24.0_f64.ln(), 1e-12);
        // Γ(10.5) = 9.5·8.5·…·0.5·√π ≈ 1.133278389e6.
        close(ln_gamma(10.5), 13.940_625_219_403_763, 1e-12);
    }

    /// Chi-square(1 dof) critical values from standard tables: the
    /// quantiles every statistics textbook pins down to many digits.
    #[test]
    fn chi2_p_value_anchors() {
        assert_eq!(chi2_p_value(0.0), 1.0);
        assert_eq!(chi2_p_value(-3.0), 1.0);
        close(chi2_p_value(3.841_458_820_694_124), 0.05, 1e-9);
        close(chi2_p_value(6.634_896_601_021_213), 0.01, 1e-9);
        close(chi2_p_value(2.705_543_454_095_404), 0.10, 1e-9);
        close(chi2_p_value(10.827_566_170_662_733), 0.001, 1e-9);
        // erfc(1/sqrt(2)) — the one-sigma two-tailed normal mass.
        close(chi2_p_value(1.0), 0.317_310_507_862_914_15, 1e-12);
    }

    #[test]
    fn gamma_q_general_anchors() {
        // Q(1, x) = exp(-x) exactly in the limit of the expansions.
        for x in [0.1, 0.5, 1.0, 2.5, 7.0, 20.0] {
            close(gamma_q(1.0, x), (-x).exp(), 1e-13);
        }
        // Q(2, x) = (1 + x) exp(-x).
        for x in [0.3, 1.0, 3.0, 10.0] {
            close(gamma_q(2.0, x), (1.0 + x) * (-x).exp(), 1e-12);
        }
    }

    #[test]
    fn gamma_q_is_monotone_and_bounded() {
        qar_prng::cases(200, 0xA11A, |_, rng| {
            let a = rng.gen_range(0.05..5.0);
            let x1 = rng.gen_range(0.0..30.0);
            let x2 = x1 + rng.gen_range(0.0..5.0);
            let (q1, q2) = (gamma_q(a, x1), gamma_q(a, x2));
            assert!((0.0..=1.0).contains(&q1), "Q({a}, {x1}) = {q1}");
            assert!(
                q2 <= q1 + 1e-12,
                "Q not monotone: Q({a},{x1})={q1} < Q({a},{x2})={q2}"
            );
        });
    }

    #[test]
    fn domain_errors_are_nan() {
        assert!(gamma_q(0.0, 1.0).is_nan());
        assert!(gamma_q(-1.0, 1.0).is_nan());
        assert!(gamma_q(0.5, -1.0).is_nan());
        assert!(gamma_q(f64::NAN, 1.0).is_nan());
    }
}
