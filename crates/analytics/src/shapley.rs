//! Monte-Carlo Shapley attribution over antecedent attributes.
//!
//! The coalition game: players are the antecedent's attributes, and the
//! payoff of a coalition `T` is the J-measure of the restricted rule
//! `antecedent|T ⇒ consequent` (with `v(∅) = 0`). The Shapley value of
//! each attribute — its average marginal contribution over all join
//! orders — is estimated by sampling uniform random permutations with a
//! deterministic [`qar_prng::Prng`], so the same seed always produces
//! bit-identical attributions.
//!
//! Within one permutation the marginal contributions telescope to
//! `v(full) − v(∅)`, so the estimate is *efficient by construction*: the
//! attributions sum to the rule's J-measure up to float addition order,
//! regardless of how few samples were drawn.

use qar_prng::Prng;
use std::collections::HashMap;

/// Estimate Shapley values for a `k`-player game with `samples` sampled
/// permutations. `payoff` maps a coalition bitmask over the player
/// indices `0..k` to its value; it is memoized, so at most `2^k` distinct
/// evaluations happen no matter how many samples run. Requires `k ≤ 64`.
pub fn shapley_values<F>(k: usize, samples: u32, rng: &mut Prng, mut payoff: F) -> Vec<f64>
where
    F: FnMut(u64) -> f64,
{
    assert!(k <= 64, "coalition bitmask holds at most 64 players");
    if k == 0 {
        return Vec::new();
    }
    let mut cache: HashMap<u64, f64> = HashMap::new();
    let mut value = |mask: u64, payoff: &mut F| -> f64 {
        if mask == 0 {
            return 0.0;
        }
        *cache.entry(mask).or_insert_with(|| payoff(mask))
    };
    let full = if k == 64 { u64::MAX } else { (1u64 << k) - 1 };
    // One player takes the whole payoff in every permutation; skip the
    // sampling loop (and its RNG draws) entirely.
    if k == 1 {
        return vec![value(full, &mut payoff)];
    }
    let samples = samples.max(1);
    let mut totals = vec![0.0f64; k];
    let mut perm: Vec<usize> = (0..k).collect();
    for _ in 0..samples {
        rng.shuffle(&mut perm);
        let mut mask = 0u64;
        let mut prev = 0.0;
        for &player in &perm {
            mask |= 1u64 << player;
            let cur = value(mask, &mut payoff);
            totals[player] += cur - prev;
            prev = cur;
        }
    }
    let inv = 1.0 / samples as f64;
    totals.iter().map(|t| t * inv).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_single_player_games() {
        let mut rng = Prng::seed_from_u64(1);
        assert!(shapley_values(0, 16, &mut rng, |_| 7.0).is_empty());
        let v = shapley_values(1, 16, &mut rng, |m| {
            assert_eq!(m, 1);
            3.25
        });
        assert_eq!(v, vec![3.25]);
    }

    /// Additive games have an exact closed form: each player's Shapley
    /// value is its own weight, for any sampling.
    #[test]
    fn additive_game_is_exact() {
        let weights = [2.0, -1.0, 0.5, 4.0];
        let mut rng = Prng::seed_from_u64(99);
        let payoff = |mask: u64| -> f64 {
            (0..4)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| weights[i as usize])
                .sum()
        };
        let v = shapley_values(4, 8, &mut rng, payoff);
        for (got, want) in v.iter().zip(weights) {
            assert!((got - want).abs() < 1e-12, "{v:?}");
        }
    }

    /// Symmetric players split the payoff evenly once enough samples
    /// average out the permutation noise — and the unanimity game's value
    /// is exactly 1/k per player in *every* permutation, so even one
    /// sample is exact... for the grand coalition term. Use the exact
    /// one: v(T) = 1 iff T is the full set.
    #[test]
    fn unanimity_game_splits_evenly() {
        let k = 3;
        let mut rng = Prng::seed_from_u64(7);
        let v = shapley_values(k, 32, &mut rng, |mask| {
            if mask == (1 << k) - 1 {
                1.0
            } else {
                0.0
            }
        });
        // Only the last player in each permutation gets the marginal 1;
        // with sampling the split is approximate but sums exactly.
        let sum: f64 = v.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12, "{v:?}");
        for x in &v {
            assert!((0.0..=1.0).contains(x), "{v:?}");
        }
    }

    /// Efficiency holds by telescoping for arbitrary games.
    #[test]
    fn attributions_sum_to_grand_coalition_value() {
        qar_prng::cases(64, 0x5A9, |_, rng| {
            let k = rng.gen_range(1..7usize);
            let table: Vec<f64> = (0..(1u64 << k)).map(|_| rng.gen_range(-4.0..4.0)).collect();
            let samples = rng.gen_range(1..20u32);
            let full = table[(1usize << k) - 1];
            let mut game_rng = rng.fork();
            let v = shapley_values(k, samples, &mut game_rng, |mask| table[mask as usize]);
            let sum: f64 = v.iter().sum();
            assert!(
                (sum - full).abs() < 1e-9 * full.abs().max(1.0),
                "sum {sum} != v(full) {full} at k={k}, samples={samples}"
            );
        });
    }

    /// Same seed, same attributions — bit for bit.
    #[test]
    fn sampling_is_deterministic() {
        let table: Vec<f64> = (0..32).map(|i| (i as f64).sqrt()).collect();
        let run = || {
            let mut rng = Prng::seed_from_u64(0xDE7);
            shapley_values(5, 11, &mut rng, |mask| table[mask as usize])
        };
        let (a, b) = (run(), run());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// The memo cache caps payoff evaluations at one per distinct
    /// coalition, however many samples run.
    #[test]
    fn payoff_is_memoized() {
        let mut calls = 0u32;
        let mut rng = Prng::seed_from_u64(3);
        shapley_values(4, 200, &mut rng, |_| {
            calls += 1;
            1.0
        });
        assert!(calls <= 15, "{calls} payoff calls for 2^4 − 1 coalitions");
    }
}
