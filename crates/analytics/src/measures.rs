//! Closed-form rule-quality measures over a 2×2 contingency table.
//!
//! Every measure is a deterministic function of four exact integer
//! counts ([`RuleFacts`]). The fuzz oracle recomputes each formula from
//! independently obtained counts and demands bit-identical results, so
//! the exact operation order written here is part of the contract: a
//! reordering that changes rounding is an observable change.

use crate::gamma::chi2_p_value;

/// The support counts a rule's quality measures derive from. All four
/// come straight from the miner's frequent-itemset counts — computing
/// them needs no table re-scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleFacts {
    /// Total rows in the mined table.
    pub n: u64,
    /// Rows matching the antecedent.
    pub count_a: u64,
    /// Rows matching the consequent.
    pub count_c: u64,
    /// Rows matching both sides (the rule's support count).
    pub count_ac: u64,
}

/// The closed-form measures of one rule (everything except the
/// ruleset-level Benjamini–Hochberg adjustment and the sampled Shapley
/// attribution).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measures {
    /// Observed-over-expected co-occurrence: `n·n_AC / (n_A·n_C)`.
    pub lift: f64,
    /// `(1 − P(C)) / (1 − conf)`; +∞ for a perfect (conf = 1) rule.
    pub conviction: f64,
    /// `P(AC) − P(A)·P(C)`.
    pub leverage: f64,
    /// 2×2 contingency chi-square statistic (0 for degenerate margins).
    pub chi2: f64,
    /// Chi-square survival at 1 dof: `Q(1/2, χ²/2)`.
    pub p_value: f64,
    /// Smyth–Goodman J-measure (expected information of the rule), bits.
    pub jmeasure: f64,
}

/// One term of the J-measure's relative entropy, with the `0·log 0 = 0`
/// convention.
fn jterm(p: f64, q: f64) -> f64 {
    if p == 0.0 {
        0.0
    } else {
        p * (p / q).log2()
    }
}

/// The J-measure of a rule with the given counts:
/// `P(A)·[P(C|A)·log₂(P(C|A)/P(C)) + (1−P(C|A))·log₂((1−P(C|A))/(1−P(C)))]`.
///
/// Also the Shapley coalition payoff, with `count_a`/`count_ac` replaced
/// by the restricted antecedent's counts. Zero-support antecedents pay 0.
pub fn jmeasure(facts: &RuleFacts) -> f64 {
    if facts.count_a == 0 || facts.n == 0 {
        return 0.0;
    }
    let n = facts.n as f64;
    let pa = facts.count_a as f64 / n;
    let pc = facts.count_c as f64 / n;
    let pca = facts.count_ac as f64 / facts.count_a as f64;
    pa * (jterm(pca, pc) + jterm(1.0 - pca, 1.0 - pc))
}

impl Measures {
    /// Compute every closed-form measure from the counts.
    pub fn from_facts(facts: &RuleFacts) -> Measures {
        let n = facts.n as f64;
        let ca = facts.count_a as f64;
        let cc = facts.count_c as f64;
        let cac = facts.count_ac as f64;

        let lift = if facts.count_a == 0 || facts.count_c == 0 {
            f64::NAN
        } else {
            (cac * n) / (ca * cc)
        };

        let conviction = if facts.count_a == 0 {
            f64::NAN
        } else if facts.count_ac == facts.count_a {
            f64::INFINITY
        } else {
            (1.0 - cc / n) / (1.0 - cac / ca)
        };

        let leverage = if facts.n == 0 {
            f64::NAN
        } else {
            cac / n - (ca / n) * (cc / n)
        };

        // Degenerate margins (an all-rows or no-rows side) have no
        // variation to test: chi2 = 0, p = 1.
        let degenerate = facts.count_a == 0
            || facts.count_a == facts.n
            || facts.count_c == 0
            || facts.count_c == facts.n;
        let chi2 = if degenerate {
            0.0
        } else {
            let o11 = cac;
            let o12 = ca - cac;
            let o21 = cc - cac;
            let o22 = n - ca - cc + cac;
            let det = o11 * o22 - o12 * o21;
            (n * det * det) / (ca * cc * (n - ca) * (n - cc))
        };
        let p_value = chi2_p_value(chi2);

        Measures {
            lift,
            conviction,
            leverage,
            chi2,
            p_value,
            jmeasure: jmeasure(facts),
        }
    }
}

/// Benjamini–Hochberg step-up adjustment: given the raw p-values of a
/// ruleset, return the adjusted p-values (q-values) in the same order.
///
/// With the p-values sorted ascending, `adj_(i) = min_{j ≥ i} (m·p_(j)/j)`
/// clamped to 1. Ties and the sort are resolved by `total_cmp` then
/// original index, so the output is deterministic for any input,
/// including repeated p-values.
pub fn bh_adjust(p: &[f64]) -> Vec<f64> {
    let m = p.len();
    let mut order: Vec<usize> = (0..m).collect();
    order.sort_by(|&a, &b| p[a].total_cmp(&p[b]).then(a.cmp(&b)));
    let mut adjusted = vec![0.0; m];
    let mut running = f64::INFINITY;
    for rank in (0..m).rev() {
        let i = order[rank];
        // Ratio first: `m/(rank+1)` is exactly 1.0 at the last rank and
        // strictly above 1 before it, so `scaled >= p[i]` holds exactly
        // (the `p*m/(rank+1)` order can round one ulp below `p`).
        let scaled = p[i] * (m as f64 / (rank + 1) as f64);
        if scaled < running {
            running = scaled;
        }
        adjusted[i] = if running > 1.0 { 1.0 } else { running };
    }
    adjusted
}

#[cfg(test)]
mod tests {
    use super::*;

    fn facts(n: u64, a: u64, c: u64, ac: u64) -> RuleFacts {
        RuleFacts {
            n,
            count_a: a,
            count_c: c,
            count_ac: ac,
        }
    }

    #[test]
    fn independent_sides_have_unit_lift_and_zero_chi2() {
        // P(A) = 1/2, P(C) = 1/2, P(AC) = 1/4 over 100 rows: exactly
        // independent.
        let m = Measures::from_facts(&facts(100, 50, 50, 25));
        assert_eq!(m.lift, 1.0);
        assert_eq!(m.leverage, 0.0);
        assert_eq!(m.chi2, 0.0);
        assert_eq!(m.p_value, 1.0);
        assert_eq!(m.conviction, 1.0);
        assert!(m.jmeasure.abs() < 1e-15, "{}", m.jmeasure);
    }

    #[test]
    fn perfect_implication() {
        // Every antecedent row is a consequent row.
        let m = Measures::from_facts(&facts(100, 20, 40, 20));
        assert_eq!(m.lift, 2.5);
        assert_eq!(m.conviction, f64::INFINITY);
        assert!(m.chi2 > 0.0);
        assert!(m.p_value < 0.001, "{}", m.p_value);
        assert!(m.jmeasure > 0.0);
    }

    #[test]
    fn perfect_negative_association() {
        // A and C never co-occur.
        let m = Measures::from_facts(&facts(100, 50, 50, 0));
        assert_eq!(m.lift, 0.0);
        assert!(m.leverage < 0.0);
        assert_eq!(m.chi2, 100.0); // n·(0·0 − 50·50)²/50⁴ = n
        assert!(m.conviction < 1.0);
    }

    #[test]
    fn degenerate_margins_are_untestable() {
        for f in [
            facts(10, 10, 4, 4), // antecedent covers every row
            facts(10, 4, 10, 4), // consequent covers every row
            facts(10, 0, 4, 0),  // empty antecedent
            facts(10, 4, 0, 0),  // empty consequent
        ] {
            let m = Measures::from_facts(&f);
            assert_eq!(m.chi2, 0.0, "{f:?}");
            assert_eq!(m.p_value, 1.0, "{f:?}");
        }
    }

    #[test]
    fn chi2_is_symmetric_in_the_sides() {
        let a = Measures::from_facts(&facts(200, 60, 90, 45));
        let b = Measures::from_facts(&facts(200, 90, 60, 45));
        assert_eq!(a.chi2.to_bits(), b.chi2.to_bits());
        assert_eq!(a.lift.to_bits(), b.lift.to_bits());
    }

    /// Known worked example: 2×2 table [[30, 10], [20, 40]] (n = 100,
    /// n_A = 40, n_C = 50, n_AC = 30); χ² = 100·(30·40−10·20)²/
    /// (40·50·60·50) = 100·1_000_000/6_000_000.
    #[test]
    fn chi2_worked_example() {
        let m = Measures::from_facts(&facts(100, 40, 50, 30));
        assert!((m.chi2 - 100.0 / 6.0).abs() < 1e-12, "{}", m.chi2);
        assert_eq!(m.lift, 1.5);
    }

    #[test]
    fn jmeasure_decomposes_per_textbook() {
        let f = facts(100, 40, 50, 30);
        let pa: f64 = 0.4;
        let pca: f64 = 0.75;
        let pc: f64 = 0.5;
        let want = pa * (pca * (pca / pc).log2() + (1.0 - pca) * ((1.0 - pca) / (1.0 - pc)).log2());
        assert!((jmeasure(&f) - want).abs() < 1e-15);
    }

    #[test]
    fn bh_identity_on_single_p() {
        assert_eq!(bh_adjust(&[0.03]), vec![0.03]);
        assert_eq!(bh_adjust(&[]), Vec::<f64>::new());
    }

    #[test]
    fn bh_worked_example() {
        // Classic example: p = [0.01, 0.02, 0.03, 0.04] with m = 4:
        // adj = [0.04, 0.04, 0.04, 0.04].
        let adj = bh_adjust(&[0.01, 0.02, 0.03, 0.04]);
        for a in &adj {
            assert!((a - 0.04).abs() < 1e-15, "{adj:?}");
        }
        // And a case where the running minimum actually steps:
        // p = [0.005, 0.04, 0.8] → scaled = [0.015, 0.06, 0.8].
        let adj = bh_adjust(&[0.8, 0.005, 0.04]);
        assert!((adj[1] - 0.015).abs() < 1e-15, "{adj:?}");
        assert!((adj[2] - 0.06).abs() < 1e-15, "{adj:?}");
        assert!((adj[0] - 0.8).abs() < 1e-15, "{adj:?}");
    }

    #[test]
    fn bh_properties_hold_on_random_inputs() {
        qar_prng::cases(128, 0xB41, |_, rng| {
            let m = rng.gen_range(1..40usize);
            let p: Vec<f64> = (0..m)
                .map(|_| {
                    if rng.gen_bool(0.2) {
                        *rng.choose(&[0.0, 1.0, 0.05]).unwrap()
                    } else {
                        rng.gen_f64()
                    }
                })
                .collect();
            let adj = bh_adjust(&p);
            let mut order: Vec<usize> = (0..m).collect();
            order.sort_by(|&a, &b| p[a].total_cmp(&p[b]).then(a.cmp(&b)));
            let mut prev = 0.0;
            for &i in &order {
                assert!(adj[i] >= p[i], "adjusted below raw: {adj:?} vs {p:?}");
                assert!(adj[i] <= 1.0, "adjusted above 1: {adj:?}");
                assert!(
                    adj[i] >= prev,
                    "adjusted not monotone in p order: {adj:?} vs {p:?}"
                );
                prev = adj[i];
            }
        });
    }
}
