//! # qar-analytics — rule-quality statistics
//!
//! The paper prunes rules by support, confidence, and its
//! greater-than-expected interest measure; this crate answers the
//! production question "which of the surviving rules are statistically
//! *real*?" For each rule it computes, from the 2×2 contingency counts
//! the miner already has:
//!
//! * **lift**, **conviction**, and **leverage** — the classical
//!   correlation measures;
//! * the **chi-square statistic** with its **p-value** (regularized
//!   incomplete gamma implemented in-repo, [`mod@gamma`]) and a
//!   ruleset-wide **Benjamini–Hochberg** multiple-testing adjustment;
//! * the **J-measure** (expected information content);
//! * a **Monte-Carlo Shapley attribution** ranking each antecedent
//!   attribute's contribution to the rule's J-measure, sampled with a
//!   deterministic seed ([`mod@shapley`]).
//!
//! The crate is pure math over counts: callers supply support counts via
//! a closure (on the mine path that is a frequent-itemset lookup — no
//! table re-scan), and persistence lives in `qar-store`'s `ANALYTICS`
//! catalog section.

#![warn(missing_docs)]

pub mod gamma;
pub mod measures;
pub mod shapley;

pub use gamma::{chi2_p_value, gamma_q, ln_gamma};
pub use measures::{bh_adjust, jmeasure, Measures, RuleFacts};
pub use shapley::shapley_values;

use qar_itemset::Itemset;
use qar_prng::Prng;

/// Shapley permutation samples used when the caller does not choose.
pub const DEFAULT_SHAPLEY_SAMPLES: u32 = 64;
/// Shapley seed used when the caller does not choose.
pub const DEFAULT_SEED: u64 = 42;

/// Per-rule seed mixing constant (golden-ratio increment), so every
/// rule's sampler is independent of the ruleset's order and length.
const RULE_SEED_MIX: u64 = 0x9E37_79B9_7F4A_7C15;

/// Tuning for [`compute_ruleset`].
#[derive(Debug, Clone, Copy)]
pub struct AnalyticsConfig {
    /// Permutations sampled per rule for the Shapley attribution
    /// (clamped to at least 1).
    pub shapley_samples: u32,
    /// Base seed for the deterministic Shapley sampler.
    pub seed: u64,
}

impl Default for AnalyticsConfig {
    fn default() -> Self {
        AnalyticsConfig {
            shapley_samples: DEFAULT_SHAPLEY_SAMPLES,
            seed: DEFAULT_SEED,
        }
    }
}

/// One rule, as the computation needs it: both sides plus the exact
/// support count of their union.
#[derive(Debug, Clone, Copy)]
pub struct RuleSides<'a> {
    /// The rule's antecedent itemset.
    pub antecedent: &'a Itemset,
    /// The rule's consequent itemset.
    pub consequent: &'a Itemset,
    /// Rows supporting `antecedent ∪ consequent`.
    pub support: u64,
}

/// Everything computed for one rule, in a form ready to persist.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleAnalytics {
    /// Rows matching the antecedent.
    pub count_antecedent: u64,
    /// Rows matching the consequent.
    pub count_consequent: u64,
    /// Observed-over-expected co-occurrence.
    pub lift: f64,
    /// `(1 − P(C)) / (1 − conf)`; +∞ for perfect rules.
    pub conviction: f64,
    /// `P(AC) − P(A)·P(C)`.
    pub leverage: f64,
    /// 2×2 contingency chi-square statistic.
    pub chi2: f64,
    /// Raw chi-square p-value (1 dof).
    pub p_value: f64,
    /// Benjamini–Hochberg adjusted p-value across the whole ruleset.
    pub p_adjusted: f64,
    /// J-measure, bits.
    pub jmeasure: f64,
    /// Per-attribute Shapley contribution to the J-measure, one entry
    /// per antecedent attribute in ascending attribute order.
    pub shapley: Vec<(u32, f64)>,
}

impl RuleAnalytics {
    /// Bit-exact equality (NaN-tolerant, unlike `PartialEq` on floats):
    /// the relation the catalog round-trip tests compare under.
    pub fn bits_eq(&self, other: &RuleAnalytics) -> bool {
        self.count_antecedent == other.count_antecedent
            && self.count_consequent == other.count_consequent
            && self.lift.to_bits() == other.lift.to_bits()
            && self.conviction.to_bits() == other.conviction.to_bits()
            && self.leverage.to_bits() == other.leverage.to_bits()
            && self.chi2.to_bits() == other.chi2.to_bits()
            && self.p_value.to_bits() == other.p_value.to_bits()
            && self.p_adjusted.to_bits() == other.p_adjusted.to_bits()
            && self.jmeasure.to_bits() == other.jmeasure.to_bits()
            && self.shapley.len() == other.shapley.len()
            && self
                .shapley
                .iter()
                .zip(&other.shapley)
                .all(|((aa, av), (ba, bv))| aa == ba && av.to_bits() == bv.to_bits())
    }
}

/// The analytics of a whole ruleset, aligned index-for-index with the
/// catalog's rules, plus the sampling provenance needed to reproduce the
/// Shapley attributions exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyticsSet {
    /// Shapley permutation samples drawn per rule.
    pub shapley_samples: u32,
    /// Base seed of the Shapley sampler.
    pub seed: u64,
    /// Per-rule analytics, in rule order.
    pub rules: Vec<RuleAnalytics>,
}

impl AnalyticsSet {
    /// Bit-exact equality over every float (see
    /// [`RuleAnalytics::bits_eq`]).
    pub fn bits_eq(&self, other: &AnalyticsSet) -> bool {
        self.shapley_samples == other.shapley_samples
            && self.seed == other.seed
            && self.rules.len() == other.rules.len()
            && self
                .rules
                .iter()
                .zip(&other.rules)
                .all(|(a, b)| a.bits_eq(b))
    }
}

/// The deterministic per-rule sampler seed: mixing by rule index keeps
/// each rule's attribution independent of every other rule.
pub fn rule_seed(base: u64, rule_index: usize) -> u64 {
    base ^ (rule_index as u64).wrapping_mul(RULE_SEED_MIX)
}

/// Compute the full analytics of a ruleset over a table of `num_rows`
/// rows. `support` must return the exact support count of any sub-itemset
/// of a rule's `antecedent ∪ consequent` — on the mine path that is a
/// frequent-itemset lookup (every such subset is frequent by
/// anti-monotonicity), on the backfill path a direct count.
pub fn compute_ruleset<S>(
    num_rows: u64,
    rules: &[RuleSides<'_>],
    config: &AnalyticsConfig,
    mut support: S,
) -> AnalyticsSet
where
    S: FnMut(&Itemset) -> u64,
{
    let samples = config.shapley_samples.max(1);
    let mut out: Vec<RuleAnalytics> = Vec::with_capacity(rules.len());
    for (index, rule) in rules.iter().enumerate() {
        let count_a = support(rule.antecedent);
        let count_c = support(rule.consequent);
        let facts = RuleFacts {
            n: num_rows,
            count_a,
            count_c,
            count_ac: rule.support,
        };
        let m = Measures::from_facts(&facts);

        // Shapley: players are the antecedent's items (one per
        // attribute); a coalition's payoff is the J-measure of the
        // restricted rule.
        let ant_items = rule.antecedent.items();
        let k = ant_items.len();
        let cons_items = rule.consequent.items();
        let mut rng = Prng::seed_from_u64(rule_seed(config.seed, index));
        let values = shapley_values(k, samples, &mut rng, |mask| {
            let selected: Vec<qar_itemset::Item> = (0..k)
                .filter(|i| mask & (1u64 << i) != 0)
                .map(|i| ant_items[i])
                .collect();
            let count_t = support(&Itemset::new(selected.clone()));
            if count_t == 0 {
                return 0.0;
            }
            let mut union = selected;
            union.extend_from_slice(cons_items);
            let count_tc = support(&Itemset::new(union));
            jmeasure(&RuleFacts {
                n: num_rows,
                count_a: count_t,
                count_c,
                count_ac: count_tc,
            })
        });
        let shapley = ant_items
            .iter()
            .zip(values)
            .map(|(item, v)| (item.attr, v))
            .collect();

        out.push(RuleAnalytics {
            count_antecedent: count_a,
            count_consequent: count_c,
            lift: m.lift,
            conviction: m.conviction,
            leverage: m.leverage,
            chi2: m.chi2,
            p_value: m.p_value,
            p_adjusted: 0.0, // filled in below, ruleset-wide
            jmeasure: m.jmeasure,
            shapley,
        });
    }
    let raw: Vec<f64> = out.iter().map(|r| r.p_value).collect();
    for (rule, adjusted) in out.iter_mut().zip(bh_adjust(&raw)) {
        rule.p_adjusted = adjusted;
    }
    AnalyticsSet {
        shapley_samples: samples,
        seed: config.seed,
        rules: out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qar_itemset::Item;
    use std::collections::HashMap;

    /// A tiny synthetic table as explicit row code tuples, counted the
    /// obvious way — the closure every test hands to `compute_ruleset`.
    fn count_in(rows: &[Vec<u32>]) -> impl FnMut(&Itemset) -> u64 + '_ {
        |set: &Itemset| rows.iter().filter(|r| set.supported_by(r)).count() as u64
    }

    fn two_attr_rows() -> Vec<Vec<u32>> {
        // 10 rows over (a0, a1): a0 = 0 strongly implies a1 = 0.
        vec![
            vec![0, 0],
            vec![0, 0],
            vec![0, 0],
            vec![0, 1],
            vec![1, 1],
            vec![1, 1],
            vec![1, 0],
            vec![1, 1],
            vec![1, 1],
            vec![1, 1],
        ]
    }

    #[test]
    fn end_to_end_on_a_planted_rule() {
        let rows = two_attr_rows();
        let ant = Itemset::new(vec![Item::value(0, 0)]);
        let cons = Itemset::new(vec![Item::value(1, 0)]);
        let support = rows
            .iter()
            .filter(|r| ant.supported_by(r) && cons.supported_by(r))
            .count() as u64;
        assert_eq!(support, 3);
        let set = compute_ruleset(
            rows.len() as u64,
            &[RuleSides {
                antecedent: &ant,
                consequent: &cons,
                support,
            }],
            &AnalyticsConfig::default(),
            count_in(&rows),
        );
        let r = &set.rules[0];
        assert_eq!(r.count_antecedent, 4);
        assert_eq!(r.count_consequent, 4);
        // conf = 3/4 vs P(C) = 0.4: a strong positive association.
        assert!(r.lift > 1.5, "{}", r.lift);
        assert!(r.leverage > 0.0);
        assert!(r.chi2 > 0.0);
        assert!(r.p_value < 0.5 && r.p_value > 0.0);
        assert_eq!(r.p_adjusted.to_bits(), r.p_value.to_bits()); // m = 1
        assert!(r.jmeasure > 0.0);
        // One antecedent attribute: its Shapley value IS the J-measure.
        assert_eq!(r.shapley.len(), 1);
        assert_eq!(r.shapley[0].0, 0);
        assert_eq!(r.shapley[0].1.to_bits(), r.jmeasure.to_bits());
    }

    #[test]
    fn shapley_attributions_are_efficient_and_deterministic() {
        // 3-attribute antecedent over a 4-attribute synthetic table.
        let mut rows = Vec::new();
        for i in 0..24u32 {
            rows.push(vec![i % 2, i % 3, (i / 3) % 2, u32::from(i % 6 == 0)]);
        }
        let ant = Itemset::new(vec![
            Item::value(0, 0),
            Item::value(1, 0),
            Item::value(2, 0),
        ]);
        let cons = Itemset::new(vec![Item::value(3, 1)]);
        let support = rows
            .iter()
            .filter(|r| ant.supported_by(r) && cons.supported_by(r))
            .count() as u64;
        let rule = RuleSides {
            antecedent: &ant,
            consequent: &cons,
            support,
        };
        let cfg = AnalyticsConfig {
            shapley_samples: 16,
            seed: 7,
        };
        let a = compute_ruleset(rows.len() as u64, &[rule], &cfg, count_in(&rows));
        let b = compute_ruleset(rows.len() as u64, &[rule], &cfg, count_in(&rows));
        assert!(a.bits_eq(&b), "same seed must be bit-identical");
        let r = &a.rules[0];
        let sum: f64 = r.shapley.iter().map(|(_, v)| v).sum();
        assert!(
            (sum - r.jmeasure).abs() < 1e-12,
            "attributions {sum} do not sum to J-measure {}",
            r.jmeasure
        );
        let attrs: Vec<u32> = r.shapley.iter().map(|(a, _)| *a).collect();
        assert_eq!(attrs, vec![0, 1, 2]);
    }

    #[test]
    fn different_seeds_differ_but_stay_efficient() {
        let rows = two_attr_rows();
        let ant = Itemset::new(vec![Item::value(0, 1), Item::value(1, 1)]);
        let cons_rows: Vec<Vec<u32>> = rows.iter().map(|r| vec![r[0], r[1], r[0] ^ r[1]]).collect();
        let cons = Itemset::new(vec![Item::value(2, 0)]);
        let support = cons_rows
            .iter()
            .filter(|r| ant.supported_by(r) && cons.supported_by(r))
            .count() as u64;
        let rule = RuleSides {
            antecedent: &ant,
            consequent: &cons,
            support,
        };
        for seed in [1u64, 2, 3] {
            let cfg = AnalyticsConfig {
                shapley_samples: 4,
                seed,
            };
            let set = compute_ruleset(cons_rows.len() as u64, &[rule], &cfg, count_in(&cons_rows));
            let r = &set.rules[0];
            let sum: f64 = r.shapley.iter().map(|(_, v)| v).sum();
            assert!((sum - r.jmeasure).abs() < 1e-12, "seed {seed}");
        }
    }

    #[test]
    fn bh_adjustment_spans_the_ruleset() {
        // Three copies of the same weak rule: BH multiplies the shared
        // p-value by m/rank.
        let rows = two_attr_rows();
        let ant = Itemset::new(vec![Item::value(0, 0)]);
        let cons = Itemset::new(vec![Item::value(1, 0)]);
        let support = 3;
        let rule = RuleSides {
            antecedent: &ant,
            consequent: &cons,
            support,
        };
        let set = compute_ruleset(
            rows.len() as u64,
            &[rule, rule, rule],
            &AnalyticsConfig::default(),
            count_in(&rows),
        );
        // Identical p-values: every adjusted value is p·m/m = p.
        for r in &set.rules {
            assert_eq!(r.p_adjusted.to_bits(), set.rules[0].p_adjusted.to_bits());
            assert!(r.p_adjusted >= r.p_value);
        }
    }

    #[test]
    fn support_closure_sees_only_rule_subsets() {
        let rows = two_attr_rows();
        let ant = Itemset::new(vec![Item::value(0, 0)]);
        let cons = Itemset::new(vec![Item::value(1, 0)]);
        let mut seen: HashMap<Vec<(u32, u32, u32)>, u32> = HashMap::new();
        compute_ruleset(
            rows.len() as u64,
            &[RuleSides {
                antecedent: &ant,
                consequent: &cons,
                support: 3,
            }],
            &AnalyticsConfig::default(),
            |set| {
                let key: Vec<(u32, u32, u32)> =
                    set.items().iter().map(|i| (i.attr, i.lo, i.hi)).collect();
                *seen.entry(key).or_insert(0) += 1;
                rows.iter().filter(|r| set.supported_by(r)).count() as u64
            },
        );
        // Every queried itemset is a subset of antecedent ∪ consequent.
        for key in seen.keys() {
            for (attr, lo, hi) in key {
                assert!(*attr <= 1 && lo == hi && *lo == 0, "{key:?}");
            }
        }
    }
}
