//! Randomized property tests: the hash tree must agree with a naive subset
//! scan, and the two counting backends must agree with each other and with
//! a direct per-record scan.

use qar_itemset::{CounterKind, HashTree, Item, Itemset, RectCounter};
use qar_prng::{cases, Prng};
use std::collections::BTreeSet;

/// A random sorted key of `len` distinct elements drawn from `0..domain`.
fn random_key(rng: &mut Prng, domain: u64, len: usize) -> Vec<u64> {
    let mut set = BTreeSet::new();
    while set.len() < len {
        set.insert(rng.gen_range(0..domain));
    }
    set.into_iter().collect()
}

fn random_subset(rng: &mut Prng, domain: u64, max_len: usize) -> BTreeSet<u64> {
    let len = rng.gen_range(0..max_len + 1);
    let mut set = BTreeSet::new();
    for _ in 0..len {
        set.insert(rng.gen_range(0..domain));
    }
    set
}

/// Hash-tree subset enumeration == brute force, under heavy collisions.
#[test]
fn hash_tree_equals_naive() {
    cases(128, 0x5EED_17E3_0001, |case, rng| {
        let num_keys = rng.gen_range(1..120usize);
        let keys: Vec<Vec<u64>> = {
            let mut set = BTreeSet::new();
            for _ in 0..num_keys {
                set.insert(random_key(rng, 30, 3));
            }
            set.into_iter().collect()
        };
        let mut tree = HashTree::new();
        for (i, k) in keys.iter().enumerate() {
            tree.insert(k.clone(), i);
        }
        let num_records = rng.gen_range(1..20usize);
        for _ in 0..num_records {
            let record = random_subset(rng, 30, 14);
            let rec: Vec<u64> = record.iter().copied().collect();
            let mut got: Vec<usize> = Vec::new();
            tree.for_each_subset_of(&rec, |_, &mut i| got.push(i));
            got.sort_unstable();
            let want: Vec<usize> = keys
                .iter()
                .enumerate()
                .filter(|(_, k)| k.iter().all(|x| record.contains(x)))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(got, want, "case {case}");
        }
    });
}

/// Array counting == R*-tree counting == naive scan on random rects and
/// points.
#[test]
fn counters_agree_with_naive() {
    cases(128, 0x5EED_17E3_0002, |case, rng| {
        let d = rng.gen_range(1..4usize);
        let dims: Vec<u32> = (0..d).map(|_| rng.gen_range(2..12u32)).collect();
        let num_rects = rng.gen_range(1..25usize);
        let rects: Vec<(Vec<u32>, Vec<u32>)> = (0..num_rects)
            .map(|_| {
                let mut lo = Vec::with_capacity(d);
                let mut hi = Vec::with_capacity(d);
                for &dim in &dims {
                    let x = rng.gen_range(0..dim);
                    let y = rng.gen_range(0..dim);
                    lo.push(x.min(y));
                    hi.push(x.max(y));
                }
                (lo, hi)
            })
            .collect();
        let num_points = rng.gen_range(1..80usize);
        let points: Vec<Vec<u32>> = (0..num_points)
            .map(|_| dims.iter().map(|&dim| rng.gen_range(0..dim)).collect())
            .collect();

        let mut array = RectCounter::build_with(CounterKind::Array, &dims, rects.clone());
        let mut rtree = RectCounter::build_with(CounterKind::RTree, &dims, rects.clone());
        for p in &points {
            array.count_record(p);
            rtree.count_record(p);
        }
        let ca = array.finish();
        let cr = rtree.finish();
        let naive: Vec<u64> = rects
            .iter()
            .map(|(lo, hi)| {
                points
                    .iter()
                    .filter(|p| (0..d).all(|j| lo[j] <= p[j] && p[j] <= hi[j]))
                    .count() as u64
            })
            .collect();
        assert_eq!(ca, naive, "case {case} (array)");
        assert_eq!(cr, naive, "case {case} (rtree)");
    });
}

/// Merging shard counters == one counter over the concatenated stream, for
/// any split point and both backends (the parallel-scan correctness core).
#[test]
fn counter_merge_equals_concatenated_stream() {
    cases(64, 0x5EED_17E3_0006, |case, rng| {
        let d = rng.gen_range(1..4usize);
        let dims: Vec<u32> = (0..d).map(|_| rng.gen_range(2..10u32)).collect();
        let num_rects = rng.gen_range(1..15usize);
        let rects: Vec<(Vec<u32>, Vec<u32>)> = (0..num_rects)
            .map(|_| {
                let mut lo = Vec::with_capacity(d);
                let mut hi = Vec::with_capacity(d);
                for &dim in &dims {
                    let x = rng.gen_range(0..dim);
                    let y = rng.gen_range(0..dim);
                    lo.push(x.min(y));
                    hi.push(x.max(y));
                }
                (lo, hi)
            })
            .collect();
        let num_points = rng.gen_range(0..60usize);
        let points: Vec<Vec<u32>> = (0..num_points)
            .map(|_| dims.iter().map(|&dim| rng.gen_range(0..dim)).collect())
            .collect();
        let split = if points.is_empty() {
            0
        } else {
            rng.gen_range(0..points.len() + 1)
        };
        for kind in [CounterKind::Array, CounterKind::RTree] {
            let mut whole = RectCounter::build_with(kind, &dims, rects.clone());
            for p in &points {
                whole.count_record(p);
            }
            let mut left = RectCounter::build_with(kind, &dims, rects.clone());
            let mut right = RectCounter::build_with(kind, &dims, rects.clone());
            for p in &points[..split] {
                left.count_record(p);
            }
            for p in &points[split..] {
                right.count_record(p);
            }
            left.merge_from(right);
            assert_eq!(
                left.finish(),
                whole.finish(),
                "case {case} {kind:?} split {split}/{}",
                points.len()
            );
        }
    });
}

/// Generalization is a partial order on same-attribute itemsets.
#[test]
fn generalization_is_partial_order() {
    cases(128, 0x5EED_17E3_0003, |case, rng| {
        let n = rng.gen_range(1..5usize);
        let a: Itemset = (0..n)
            .map(|i| {
                let x = rng.gen_range(0..20u32);
                let y = rng.gen_range(0..20u32);
                Item::range(i as u32, x.min(y), x.max(y))
            })
            .collect();
        // b widens every range of a => b generalizes a.
        let b: Itemset = a
            .items()
            .iter()
            .map(|item| {
                let dl = rng.gen_range(0..3u32);
                let dr = rng.gen_range(0..3u32);
                Item::range(item.attr, item.lo.saturating_sub(dl), item.hi + dr)
            })
            .collect();
        assert!(b.generalizes(&a), "case {case}");
        // Reflexive.
        assert!(a.generalizes(&a), "case {case}");
        // Antisymmetric: mutual generalization implies equality.
        if a.generalizes(&b) {
            assert_eq!(a, b, "case {case}");
        }
        // c widening b keeps transitivity.
        let c: Itemset = b
            .items()
            .iter()
            .map(|item| Item::range(item.attr, item.lo.saturating_sub(1), item.hi + 1))
            .collect();
        assert!(c.generalizes(&a), "case {case}");
    });
}

/// `supported_by` is monotone under generalization: if a record supports X,
/// it supports every generalization of X.
#[test]
fn support_monotone_under_generalization() {
    cases(128, 0x5EED_17E3_0004, |case, rng| {
        let record: Vec<u32> = (0..3).map(|_| rng.gen_range(0..20u32)).collect();
        let x: Itemset = (0..3)
            .map(|i| {
                let a = rng.gen_range(0..20u32);
                let b = rng.gen_range(0..20u32);
                Item::range(i as u32, a.min(b), a.max(b))
            })
            .collect();
        let wider: Itemset = x
            .items()
            .iter()
            .map(|i| Item::range(i.attr, i.lo.saturating_sub(2), i.hi + 2))
            .collect();
        if x.supported_by(&record) {
            assert!(wider.supported_by(&record), "case {case}");
        }
    });
}

/// Hash-tree visit counts are exact (each contained key once) even for
/// adversarial records; validated by counting into values.
#[test]
fn hash_tree_counts_are_exact() {
    cases(128, 0x5EED_17E3_0005, |case, rng| {
        let num_keys = rng.gen_range(1..60usize);
        let keys: Vec<Vec<u64>> = {
            let mut set = BTreeSet::new();
            for _ in 0..num_keys {
                set.insert(random_key(rng, 16, 2));
            }
            set.into_iter().collect()
        };
        let mut tree = HashTree::new();
        for k in &keys {
            tree.insert(k.clone(), 0u32);
        }
        let rec_set = random_subset(rng, 16, 15);
        let rec: Vec<u64> = rec_set.iter().copied().collect();
        tree.for_each_subset_of(&rec, |_, v| *v += 1);
        for (k, v) in tree.into_entries() {
            let contained = k.iter().all(|x| rec_set.contains(x));
            assert_eq!(v, u32::from(contained), "case {case} key {k:?}");
        }
    });
}
