//! Property tests: the hash tree must agree with a naive subset scan, and
//! the two counting backends must agree with each other and with a direct
//! per-record scan.

use proptest::prelude::*;
use qar_itemset::{CounterKind, HashTree, Item, Itemset, RectCounter};
use std::collections::BTreeSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Hash-tree subset enumeration == brute force, under heavy collisions.
    #[test]
    fn hash_tree_equals_naive(
        keys in prop::collection::btree_set(
            prop::collection::btree_set(0u64..30, 3), 1..120),
        records in prop::collection::vec(
            prop::collection::btree_set(0u64..30, 0..15), 1..20),
    ) {
        let keys: Vec<Vec<u64>> = keys.into_iter()
            .map(|s| s.into_iter().collect())
            .collect();
        let mut tree = HashTree::new();
        for (i, k) in keys.iter().enumerate() {
            tree.insert(k.clone(), i);
        }
        for record in &records {
            let rec: Vec<u64> = record.iter().copied().collect();
            let mut got: Vec<usize> = Vec::new();
            tree.for_each_subset_of(&rec, |_, &mut i| got.push(i));
            got.sort_unstable();
            let want: Vec<usize> = keys.iter().enumerate()
                .filter(|(_, k)| k.iter().all(|x| record.contains(x)))
                .map(|(i, _)| i)
                .collect();
            prop_assert_eq!(got, want);
        }
    }

    /// Array counting == R*-tree counting == naive scan on random rects and
    /// points.
    #[test]
    fn counters_agree_with_naive(
        dims in prop::collection::vec(2u32..12, 1..4),
        rect_seeds in prop::collection::vec((0u32..12, 0u32..12, 0u32..12, 0u32..12), 1..25),
        point_seeds in prop::collection::vec((0u32..12, 0u32..12, 0u32..12), 1..80),
    ) {
        let d = dims.len();
        let rects: Vec<(Vec<u32>, Vec<u32>)> = rect_seeds.iter().map(|&(a, b, c, e)| {
            let seeds = [a, b, c, e];
            let mut lo = Vec::with_capacity(d);
            let mut hi = Vec::with_capacity(d);
            for j in 0..d {
                let x = seeds[j % 4] % dims[j];
                let y = seeds[(j + 1) % 4] % dims[j];
                lo.push(x.min(y));
                hi.push(x.max(y));
            }
            (lo, hi)
        }).collect();
        let points: Vec<Vec<u32>> = point_seeds.iter().map(|&(a, b, c)| {
            let seeds = [a, b, c];
            (0..d).map(|j| seeds[j % 3] % dims[j]).collect()
        }).collect();

        let mut array = RectCounter::build_with(CounterKind::Array, &dims, rects.clone());
        let mut rtree = RectCounter::build_with(CounterKind::RTree, &dims, rects.clone());
        for p in &points {
            array.count_record(p);
            rtree.count_record(p);
        }
        let ca = array.finish();
        let cr = rtree.finish();
        let naive: Vec<u64> = rects.iter().map(|(lo, hi)| {
            points.iter()
                .filter(|p| (0..d).all(|j| lo[j] <= p[j] && p[j] <= hi[j]))
                .count() as u64
        }).collect();
        prop_assert_eq!(&ca, &naive);
        prop_assert_eq!(&cr, &naive);
    }

    /// Generalization is a partial order on same-attribute itemsets.
    #[test]
    fn generalization_is_partial_order(
        ranges_a in prop::collection::vec((0u32..20, 0u32..20), 1..5),
        deltas in prop::collection::vec((0u32..3, 0u32..3), 1..5),
    ) {
        prop_assume!(ranges_a.len() == deltas.len());
        let a: Itemset = ranges_a.iter().enumerate()
            .map(|(i, &(x, y))| Item::range(i as u32, x.min(y), x.max(y)))
            .collect();
        // b widens every range of a => b generalizes a.
        let b: Itemset = a.items().iter().zip(&deltas)
            .map(|(item, &(dl, dr))| {
                Item::range(item.attr, item.lo.saturating_sub(dl), item.hi + dr)
            })
            .collect();
        prop_assert!(b.generalizes(&a));
        // Reflexive.
        prop_assert!(a.generalizes(&a));
        // Antisymmetric: mutual generalization implies equality.
        if a.generalizes(&b) {
            prop_assert_eq!(&a, &b);
        }
        // c widening b keeps transitivity.
        let c: Itemset = b.items().iter()
            .map(|item| Item::range(item.attr, item.lo.saturating_sub(1), item.hi + 1))
            .collect();
        prop_assert!(c.generalizes(&a));
    }

    /// `supported_by` is monotone under generalization: if a record
    /// supports X, it supports every generalization of X.
    #[test]
    fn support_monotone_under_generalization(
        record in prop::collection::vec(0u32..20, 3),
        ranges in prop::collection::vec((0u32..20, 0u32..20), 3),
    ) {
        let x: Itemset = ranges.iter().enumerate()
            .map(|(i, &(a, b))| Item::range(i as u32, a.min(b), a.max(b)))
            .collect();
        let wider: Itemset = x.items().iter()
            .map(|i| Item::range(i.attr, i.lo.saturating_sub(2), i.hi + 2))
            .collect();
        if x.supported_by(&record) {
            prop_assert!(wider.supported_by(&record));
        }
    }

    /// Hash-tree visit counts are exact (each contained key once) even for
    /// adversarial records; validated by counting into values.
    #[test]
    fn hash_tree_counts_are_exact(
        keys in prop::collection::btree_set(
            prop::collection::btree_set(0u64..16, 2), 1..60),
        record in prop::collection::btree_set(0u64..16, 0..16),
    ) {
        let mut tree = HashTree::new();
        let keys: Vec<Vec<u64>> = keys.into_iter().map(|s| s.into_iter().collect()).collect();
        for k in &keys {
            tree.insert(k.clone(), 0u32);
        }
        let rec: Vec<u64> = record.iter().copied().collect();
        tree.for_each_subset_of(&rec, |_, v| *v += 1);
        let rec_set: BTreeSet<u64> = record;
        for (k, v) in tree.into_entries() {
            let contained = k.iter().all(|x| rec_set.contains(x));
            prop_assert_eq!(v, u32::from(contained), "key {:?}", k);
        }
    }
}
