//! The hash tree of \[AS94\], used to find which candidate itemsets are
//! contained in a record without testing every candidate.
//!
//! Keys are sorted sequences of abstract item ids (`u64`); every key in one
//! tree must have the same length `k` (Apriori processes one candidate size
//! per pass, and the quantitative miner builds one tree per categorical-part
//! size). Interior nodes hash the next item id; leaves hold the candidate
//! keys and their values.
//!
//! The subset walk follows the paper: at the root, hash every item of the
//! record; at an interior node reached by hashing item `t[i]`, hash every
//! item after `t[i]`; at a leaf, check the stored keys against the whole
//! record. Because hash collisions can route two different record items into
//! the same subtree, a leaf may be reached more than once per record — each
//! leaf carries a visit stamp so its candidates are examined exactly once
//! per walk (otherwise supports would be double-counted).

const BRANCH: usize = 8;
const LEAF_CAPACITY: usize = 8;

fn bucket(id: u64) -> usize {
    // Fibonacci hashing; cheap and good enough for dense small ids.
    ((id.wrapping_mul(0x9E3779B97F4A7C15)) >> 32) as usize % BRANCH
}

#[derive(Debug, Clone)]
enum Node<V> {
    Leaf {
        entries: Vec<(Vec<u64>, V)>,
        stamp: u64,
        /// Dense-ish slot index into a [`VisitScratch`] stamp table, so
        /// shared (read-only) walks can dedupe leaf visits without
        /// mutating the tree.
        id: usize,
    },
    Interior {
        children: Vec<Option<Box<Node<V>>>>,
    },
}

impl<V> Node<V> {
    fn new_leaf(id: usize) -> Self {
        Node::Leaf {
            entries: Vec::new(),
            stamp: 0,
            id,
        }
    }
}

/// Per-walker scratch state for [`HashTree::for_each_subset_of_shared`]:
/// the visit stamps that [`HashTree::for_each_subset_of`] keeps inside the
/// tree's leaves, externalized so many walkers (e.g. parallel scan shards)
/// can share one read-only tree.
///
/// A scratch is tied to the tree it was first used with — reusing it
/// across *different* trees within its lifetime would let stale stamps
/// suppress leaf visits. Allocate one scratch per (tree, walker) pair.
#[derive(Debug, Clone, Default)]
pub struct VisitScratch {
    stamps: Vec<u64>,
    walk: u64,
}

impl VisitScratch {
    /// A fresh scratch, usable with any one tree.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A hash tree mapping fixed-length sorted `u64` keys to values, supporting
/// "visit every entry whose key is a subset of this record" in sublinear
/// time.
///
/// ```
/// use qar_itemset::HashTree;
///
/// let mut tree = HashTree::new();
/// tree.insert(vec![1, 3], "a");
/// tree.insert(vec![2, 5], "b");
/// tree.insert(vec![3, 9], "c");
/// let mut found = Vec::new();
/// tree.for_each_subset_of(&[1, 2, 3, 9], |_, v| found.push(*v));
/// found.sort();
/// assert_eq!(found, ["a", "c"]);
/// ```
#[derive(Debug, Clone)]
pub struct HashTree<V> {
    root: Node<V>,
    key_len: Option<usize>,
    len: usize,
    walk_stamp: u64,
    /// High-water mark of leaf slot ids: the stamp-table size a
    /// [`VisitScratch`] needs for this tree. Splits retire a leaf's slot
    /// without reusing it, so this can exceed the live leaf count.
    leaf_slots: usize,
}

impl<V> Default for HashTree<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> HashTree<V> {
    /// An empty tree.
    pub fn new() -> Self {
        HashTree {
            root: Node::new_leaf(0),
            key_len: None,
            len: 0,
            walk_stamp: 0,
            leaf_slots: 1,
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The uniform key length, once the first key was inserted.
    pub fn key_len(&self) -> Option<usize> {
        self.key_len
    }

    /// Total nodes (interior + leaf) in the tree — the structural size
    /// reported in per-pass trace events.
    pub fn node_count(&self) -> usize {
        fn count<V>(node: &Node<V>) -> usize {
            match node {
                Node::Leaf { .. } => 1,
                Node::Interior { children } => {
                    1 + children
                        .iter()
                        .flatten()
                        .map(|child| count(child))
                        .sum::<usize>()
                }
            }
        }
        count(&self.root)
    }

    /// Insert `key` (sorted, strictly increasing) with `value`.
    ///
    /// Panics if the key is unsorted or its length differs from previously
    /// inserted keys.
    pub fn insert(&mut self, key: Vec<u64>, value: V) {
        assert!(
            key.windows(2).all(|w| w[0] < w[1]),
            "keys must be sorted and duplicate-free"
        );
        match self.key_len {
            None => self.key_len = Some(key.len()),
            Some(k) => assert_eq!(k, key.len(), "all keys in a tree share one length"),
        }
        let key_len = key.len();
        Self::insert_at(&mut self.root, key, value, 0, key_len, &mut self.leaf_slots);
        self.len += 1;
    }

    fn insert_at(
        node: &mut Node<V>,
        key: Vec<u64>,
        value: V,
        depth: usize,
        key_len: usize,
        leaf_slots: &mut usize,
    ) {
        let alloc_slot = |slots: &mut usize| {
            let id = *slots;
            *slots += 1;
            id
        };
        match node {
            Node::Leaf { entries, .. } => {
                entries.push((key, value));
                // Split when over capacity, unless every key item is already
                // consumed by the path (then the leaf just grows).
                if entries.len() > LEAF_CAPACITY && depth < key_len {
                    let moved = std::mem::take(entries);
                    let mut children: Vec<Option<Box<Node<V>>>> =
                        (0..BRANCH).map(|_| None).collect();
                    for (k, v) in moved {
                        let b = bucket(k[depth]);
                        let child = children[b].get_or_insert_with(|| {
                            Box::new(Node::new_leaf(alloc_slot(leaf_slots)))
                        });
                        Self::insert_at(child, k, v, depth + 1, key_len, leaf_slots);
                    }
                    *node = Node::Interior { children };
                }
            }
            Node::Interior { children } => {
                let b = bucket(key[depth]);
                let child = children[b]
                    .get_or_insert_with(|| Box::new(Node::new_leaf(alloc_slot(leaf_slots))));
                Self::insert_at(child, key, value, depth + 1, key_len, leaf_slots);
            }
        }
    }

    /// Mutable reference to the value stored under `key` (the first match
    /// in insertion order when duplicates exist), or `None`.
    pub fn get_mut(&mut self, key: &[u64]) -> Option<&mut V> {
        if self.key_len != Some(key.len()) {
            return None;
        }
        let mut node = &mut self.root;
        let mut depth = 0;
        loop {
            match node {
                Node::Leaf { entries, .. } => {
                    return entries
                        .iter_mut()
                        .find(|(k, _)| k.as_slice() == key)
                        .map(|(_, v)| v);
                }
                Node::Interior { children } => {
                    node = children[bucket(key[depth])].as_deref_mut()?;
                    depth += 1;
                }
            }
        }
    }

    /// Fold `other` into this tree: entries whose key already exists are
    /// combined with `combine(existing, incoming)`; new keys are inserted.
    ///
    /// This is the shard-merge primitive for trees whose values are
    /// per-shard tallies. The merge is deterministic: a hash tree's entry
    /// order is a pure function of its insertion sequence, so two trees
    /// built by the same deterministic procedure merge identically on
    /// every run, regardless of how many shards the scan used.
    ///
    /// When duplicate keys exist, every incoming duplicate combines into
    /// the first matching entry of `self` — counting trees insert each
    /// candidate key once, so the distinction never arises there.
    pub fn merge_from(&mut self, other: HashTree<V>, mut combine: impl FnMut(&mut V, V)) {
        for (key, value) in other.into_entries() {
            match self.get_mut(&key) {
                Some(existing) => combine(existing, value),
                None => self.insert(key, value),
            }
        }
    }

    /// Visit every `(key, value)` whose key is a subset of `record`.
    /// `record` must be sorted and duplicate-free. Values are borrowed
    /// mutably so support counters can be incremented in place.
    pub fn for_each_subset_of(&mut self, record: &[u64], mut visit: impl FnMut(&[u64], &mut V)) {
        debug_assert!(
            record.windows(2).all(|w| w[0] < w[1]),
            "record must be sorted"
        );
        let Some(key_len) = self.key_len else { return };
        if key_len > record.len() {
            return;
        }
        self.walk_stamp += 1;
        let stamp = self.walk_stamp;
        Self::walk(&mut self.root, record, record, stamp, &mut visit);
    }

    fn walk(
        node: &mut Node<V>,
        full_record: &[u64],
        remaining: &[u64],
        walk_stamp: u64,
        visit: &mut impl FnMut(&[u64], &mut V),
    ) {
        match node {
            Node::Leaf { entries, stamp, .. } => {
                if *stamp == walk_stamp {
                    return; // already examined for this record
                }
                *stamp = walk_stamp;
                // Check against the FULL record, exactly as [AS94] states.
                // Hash collisions can route the walk to this leaf through
                // items other than a key's own, so the carried suffix may
                // lack earlier key members; the full record never does.
                for (key, value) in entries {
                    if Self::is_subset(key, full_record) {
                        visit(key, value);
                    }
                }
            }
            Node::Interior { children } => {
                for (i, &id) in remaining.iter().enumerate() {
                    if let Some(child) = &mut children[bucket(id)] {
                        Self::walk(child, full_record, &remaining[i + 1..], walk_stamp, visit);
                    }
                }
            }
        }
    }

    /// [`HashTree::for_each_subset_of`] without mutating the tree: the
    /// per-walk leaf visit stamps live in `scratch` instead of the leaves,
    /// so one tree can be shared read-only by many concurrent walkers,
    /// each with its own scratch. Values are borrowed immutably.
    ///
    /// `scratch` must be dedicated to this tree (see [`VisitScratch`]);
    /// `record` must be sorted and duplicate-free.
    pub fn for_each_subset_of_shared(
        &self,
        scratch: &mut VisitScratch,
        record: &[u64],
        mut visit: impl FnMut(&[u64], &V),
    ) {
        debug_assert!(
            record.windows(2).all(|w| w[0] < w[1]),
            "record must be sorted"
        );
        let Some(key_len) = self.key_len else { return };
        if key_len > record.len() {
            return;
        }
        if scratch.stamps.len() < self.leaf_slots {
            scratch.stamps.resize(self.leaf_slots, 0);
        }
        scratch.walk += 1;
        let walk = scratch.walk;
        Self::walk_shared(
            &self.root,
            record,
            record,
            walk,
            &mut scratch.stamps,
            &mut visit,
        );
    }

    fn walk_shared(
        node: &Node<V>,
        full_record: &[u64],
        remaining: &[u64],
        walk_stamp: u64,
        stamps: &mut [u64],
        visit: &mut impl FnMut(&[u64], &V),
    ) {
        match node {
            Node::Leaf { entries, id, .. } => {
                if stamps[*id] == walk_stamp {
                    return; // already examined for this record
                }
                stamps[*id] = walk_stamp;
                for (key, value) in entries {
                    if Self::is_subset(key, full_record) {
                        visit(key, value);
                    }
                }
            }
            Node::Interior { children } => {
                for (i, &id) in remaining.iter().enumerate() {
                    if let Some(child) = &children[bucket(id)] {
                        Self::walk_shared(
                            child,
                            full_record,
                            &remaining[i + 1..],
                            walk_stamp,
                            stamps,
                            visit,
                        );
                    }
                }
            }
        }
    }

    /// Two-pointer subset check over sorted sequences.
    fn is_subset(key: &[u64], within: &[u64]) -> bool {
        let mut w = within.iter();
        'outer: for k in key {
            for x in w.by_ref() {
                match x.cmp(k) {
                    std::cmp::Ordering::Less => continue,
                    std::cmp::Ordering::Equal => continue 'outer,
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// Iterate over all `(key, value)` pairs (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = (&[u64], &V)> {
        let mut stack = vec![&self.root];
        std::iter::from_fn(move || loop {
            let node = stack.pop()?;
            match node {
                Node::Leaf { entries, .. } => {
                    if !entries.is_empty() {
                        // Flatten lazily: push a sentinel-free approach by
                        // returning entries through a nested iterator is
                        // awkward without allocation; collect leaf refs.
                        return Some(entries.iter().map(|(k, v)| (k.as_slice(), v)));
                    }
                }
                Node::Interior { children } => {
                    for child in children.iter().flatten() {
                        stack.push(child);
                    }
                }
            }
        })
        .flatten()
    }

    /// Consume the tree, yielding all `(key, value)` pairs.
    pub fn into_entries(self) -> Vec<(Vec<u64>, V)> {
        let mut out = Vec::with_capacity(self.len);
        let mut stack = vec![self.root];
        while let Some(node) = stack.pop() {
            match node {
                Node::Leaf { entries, .. } => out.extend(entries),
                Node::Interior { children } => {
                    stack.extend(children.into_iter().flatten().map(|b| *b))
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive reference: linear subset scan.
    fn naive_subsets<'a>(entries: &'a [(Vec<u64>, u32)], record: &[u64]) -> Vec<&'a Vec<u64>> {
        entries
            .iter()
            .filter(|(k, _)| k.iter().all(|i| record.contains(i)))
            .map(|(k, _)| k)
            .collect()
    }

    #[test]
    fn node_count_grows_with_splits() {
        let mut t: HashTree<u32> = HashTree::new();
        assert_eq!(t.node_count(), 1, "empty tree is one leaf");
        t.insert(vec![1, 2], 0);
        assert_eq!(t.node_count(), 1, "still within leaf capacity");
        // Enough keys to force interior splits.
        for a in 0u64..12 {
            for b in (a + 1)..12 {
                t.insert(vec![a, b], 0);
            }
        }
        assert!(t.node_count() > 1, "splits create interior nodes");
    }

    #[test]
    fn empty_tree_visits_nothing() {
        let mut t: HashTree<u32> = HashTree::new();
        let mut n = 0;
        t.for_each_subset_of(&[1, 2, 3], |_, _| n += 1);
        assert_eq!(n, 0);
        assert!(t.is_empty());
    }

    #[test]
    fn zero_length_keys_always_match() {
        let mut t = HashTree::new();
        t.insert(vec![], 1u32);
        let mut hits = 0;
        t.for_each_subset_of(&[5, 9], |_, v| {
            hits += 1;
            *v += 1;
        });
        t.for_each_subset_of(&[], |_, _| hits += 1);
        assert_eq!(hits, 2);
    }

    #[test]
    fn exact_counts_no_double_visits() {
        // Force many collisions with a tiny value domain and enough keys
        // to trigger splits.
        let mut t = HashTree::new();
        let mut all = Vec::new();
        for a in 0u64..12 {
            for b in (a + 1)..12 {
                t.insert(vec![a, b], 0u32);
                all.push((vec![a, b], 0u32));
            }
        }
        let record: Vec<u64> = (0..12).collect();
        let mut visits = 0;
        t.for_each_subset_of(&record, |_, v| {
            *v += 1;
            visits += 1;
        });
        assert_eq!(visits, all.len(), "every pair contained exactly once");
        // Every value got exactly one increment.
        let entries = t.into_entries();
        assert!(entries.iter().all(|(_, v)| *v == 1));
    }

    #[test]
    fn subsets_match_naive_reference() {
        let mut t = HashTree::new();
        let mut entries = Vec::new();
        // 3-item keys over a domain of 15 with collisions.
        let mut id = 0u32;
        for a in 0u64..15 {
            for b in (a + 1)..15 {
                for c in (b + 1)..15 {
                    if (a + 2 * b + 3 * c) % 7 == 0 {
                        t.insert(vec![a, b, c], id);
                        entries.push((vec![a, b, c], id));
                        id += 1;
                    }
                }
            }
        }
        for record in [
            vec![0, 1, 2, 3, 4, 5, 6],
            vec![2, 5, 7, 9, 11, 13],
            vec![0, 14],
            vec![],
            (0..15).collect::<Vec<u64>>(),
        ] {
            let mut got: Vec<Vec<u64>> = Vec::new();
            t.for_each_subset_of(&record, |k, _| got.push(k.to_vec()));
            got.sort();
            let mut want: Vec<Vec<u64>> = naive_subsets(&entries, &record)
                .into_iter()
                .cloned()
                .collect();
            want.sort();
            assert_eq!(got, want, "record {record:?}");
        }
    }

    #[test]
    fn record_shorter_than_keys_is_cheap_no_match() {
        let mut t = HashTree::new();
        t.insert(vec![1, 2, 3], ());
        let mut n = 0;
        t.for_each_subset_of(&[1, 2], |_, _| n += 1);
        assert_eq!(n, 0);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_key_rejected() {
        let mut t = HashTree::new();
        t.insert(vec![3, 1], ());
    }

    #[test]
    #[should_panic(expected = "one length")]
    fn mixed_key_lengths_rejected() {
        let mut t = HashTree::new();
        t.insert(vec![1], ());
        t.insert(vec![1, 2], ());
    }

    #[test]
    fn iter_and_into_entries_agree() {
        let mut t = HashTree::new();
        for i in 0u64..40 {
            t.insert(vec![i, i + 100], i as u32);
        }
        assert_eq!(t.len(), 40);
        let mut via_iter: Vec<u32> = t.iter().map(|(_, v)| *v).collect();
        via_iter.sort();
        let mut via_into: Vec<u32> = t.into_entries().into_iter().map(|(_, v)| v).collect();
        via_into.sort();
        assert_eq!(via_iter, via_into);
        assert_eq!(via_iter.len(), 40);
    }

    #[test]
    fn get_mut_finds_existing_keys_only() {
        let mut t = HashTree::new();
        for a in 0u64..20 {
            t.insert(vec![a, a + 50], a as u32);
        }
        assert_eq!(t.get_mut(&[3, 53]), Some(&mut 3));
        assert_eq!(t.get_mut(&[3, 54]), None);
        assert_eq!(t.get_mut(&[3]), None, "wrong key length");
        *t.get_mut(&[7, 57]).unwrap() += 100;
        assert_eq!(t.get_mut(&[7, 57]), Some(&mut 107));
    }

    #[test]
    fn merge_combines_shared_keys_and_inserts_new() {
        let mut a = HashTree::new();
        let mut b = HashTree::new();
        // Overlapping and disjoint keys, enough to force splits in both.
        for i in 0u64..30 {
            a.insert(vec![i, i + 40], 1u64);
        }
        for i in 15u64..45 {
            b.insert(vec![i, i + 40], 10u64);
        }
        a.merge_from(b, |x, y| *x += y);
        assert_eq!(a.len(), 45);
        let entries = a.into_entries();
        for (key, v) in entries {
            let i = key[0];
            let want = if i < 15 {
                1
            } else if i < 30 {
                11
            } else {
                10
            };
            assert_eq!(v, want, "key {key:?}");
        }
    }

    #[test]
    fn merge_is_shard_count_exact() {
        // Simulate a sharded counting pass: each shard counts subset hits
        // of its records into its own tree; merged totals must equal one
        // serial pass over all records.
        let keys: Vec<Vec<u64>> = (0u64..10)
            .flat_map(|a| ((a + 1)..10).map(move |b| vec![a, b]))
            .collect();
        let records: Vec<Vec<u64>> = (0..40u64)
            .map(|r| {
                let mut rec: Vec<u64> = (0..10).filter(|x| (r + x) % 3 != 0).collect();
                rec.sort_unstable();
                rec
            })
            .collect();
        let build = || {
            let mut t = HashTree::new();
            for k in &keys {
                t.insert(k.clone(), 0u64);
            }
            t
        };
        let mut serial = build();
        for r in &records {
            serial.for_each_subset_of(r, |_, v| *v += 1);
        }
        let mut merged = build();
        for shard in records.chunks(7) {
            let mut t = build();
            for r in shard {
                t.for_each_subset_of(r, |_, v| *v += 1);
            }
            merged.merge_from(t, |x, y| *x += y);
        }
        let mut want = serial.into_entries();
        let mut got = merged.into_entries();
        want.sort();
        got.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn merge_into_empty_tree() {
        let mut a: HashTree<u32> = HashTree::new();
        let mut b = HashTree::new();
        b.insert(vec![1, 2], 5u32);
        a.merge_from(b, |x, y| *x += y);
        assert_eq!(a.len(), 1);
        assert_eq!(a.get_mut(&[1, 2]), Some(&mut 5));
        // And merging an empty tree changes nothing.
        a.merge_from(HashTree::new(), |x, y| *x += y);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn shared_walk_matches_mut_walk() {
        let mut t = HashTree::new();
        let mut entries = Vec::new();
        let mut id = 0u32;
        for a in 0u64..14 {
            for b in (a + 1)..14 {
                if (a * 5 + b) % 3 != 1 {
                    t.insert(vec![a, b], id);
                    entries.push((vec![a, b], id));
                    id += 1;
                }
            }
        }
        let mut scratch = VisitScratch::new();
        for record in [
            vec![0, 1, 2, 3, 4, 5, 6],
            vec![2, 5, 7, 9, 11, 13],
            vec![0, 13],
            vec![],
            (0..14).collect::<Vec<u64>>(),
        ] {
            let mut shared: Vec<u32> = Vec::new();
            t.for_each_subset_of_shared(&mut scratch, &record, |_, &v| shared.push(v));
            let mut muts: Vec<u32> = Vec::new();
            t.for_each_subset_of(&record, |_, &mut v| muts.push(v));
            shared.sort_unstable();
            muts.sort_unstable();
            assert_eq!(shared, muts, "record {record:?}");
        }
    }

    #[test]
    fn shared_walk_dedupes_multi_path_leaf_visits() {
        // Same collision-heavy setup as `exact_counts_no_double_visits`,
        // but counting through the read-only walk.
        let mut t = HashTree::new();
        let mut all = 0usize;
        for a in 0u64..12 {
            for b in (a + 1)..12 {
                t.insert(vec![a, b], 0u32);
                all += 1;
            }
        }
        let record: Vec<u64> = (0..12).collect();
        let mut scratch = VisitScratch::new();
        // Two consecutive walks with one scratch: each must see every key
        // exactly once (the walk counter separates them).
        for _ in 0..2 {
            let mut visits = 0usize;
            t.for_each_subset_of_shared(&mut scratch, &record, |_, _| visits += 1);
            assert_eq!(visits, all, "every pair contained exactly once");
        }
    }

    #[test]
    fn fresh_scratch_grows_to_tree_size() {
        let mut t = HashTree::new();
        for i in 0u64..100 {
            t.insert(vec![i, i + 200], i as u32);
        }
        let mut scratch = VisitScratch::new();
        let mut n = 0;
        t.for_each_subset_of_shared(&mut scratch, &[7, 207], |_, _| n += 1);
        assert_eq!(n, 1);
    }

    #[test]
    fn duplicate_keys_both_stored() {
        let mut t = HashTree::new();
        t.insert(vec![1, 2], "a");
        t.insert(vec![1, 2], "b");
        let mut hits = Vec::new();
        t.for_each_subset_of(&[1, 2, 3], |_, v| hits.push(*v));
        hits.sort();
        assert_eq!(hits, vec!["a", "b"]);
    }
}
