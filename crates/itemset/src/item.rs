//! Items and itemsets over encoded attribute codes.

use std::fmt;

/// An item `⟨attribute, lo, hi⟩` (Section 2): a value or inclusive code
/// range of one attribute. Categorical items always have `lo == hi`;
/// quantitative items may span a range of interval/value codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Item {
    /// Attribute id (the `AttributeId` index from `qar-table`).
    pub attr: u32,
    /// Inclusive lower code.
    pub lo: u32,
    /// Inclusive upper code.
    pub hi: u32,
}

impl Item {
    /// A single-code item (categorical value, or a one-code quantitative
    /// range).
    pub fn value(attr: u32, code: u32) -> Self {
        Item {
            attr,
            lo: code,
            hi: code,
        }
    }

    /// A range item over `[lo, hi]` (inclusive). Panics if `lo > hi`.
    pub fn range(attr: u32, lo: u32, hi: u32) -> Self {
        assert!(lo <= hi, "item range inverted: {lo} > {hi}");
        Item { attr, lo, hi }
    }

    /// Does a record value `code` of this attribute support the item?
    #[inline]
    pub fn matches(&self, code: u32) -> bool {
        self.lo <= code && code <= self.hi
    }

    /// Is `self` a generalization of `other` (same attribute, containing
    /// range)?
    pub fn generalizes(&self, other: &Item) -> bool {
        self.attr == other.attr && self.lo <= other.lo && other.hi <= self.hi
    }

    /// Number of codes the item covers.
    pub fn width(&self) -> u32 {
        self.hi - self.lo + 1
    }
}

impl fmt::Display for Item {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.lo == self.hi {
            write!(f, "⟨#{}: {}⟩", self.attr, self.lo)
        } else {
            write!(f, "⟨#{}: {}..{}⟩", self.attr, self.lo, self.hi)
        }
    }
}

/// A set of items with *distinct attributes*, kept sorted by attribute id.
///
/// The paper's records contain each attribute at most once, so an itemset
/// with two items of the same attribute could never be supported; the
/// constructor rejects them.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Itemset {
    items: Vec<Item>,
}

impl Itemset {
    /// Build from items; sorts by attribute and rejects duplicates.
    pub fn new(mut items: Vec<Item>) -> Self {
        items.sort();
        assert!(
            items.windows(2).all(|w| w[0].attr != w[1].attr),
            "itemset has two items of the same attribute: {items:?}"
        );
        Itemset { items }
    }

    /// The empty itemset.
    pub fn empty() -> Self {
        Itemset { items: Vec::new() }
    }

    /// A singleton itemset.
    pub fn singleton(item: Item) -> Self {
        Itemset { items: vec![item] }
    }

    /// The items, sorted by attribute id.
    pub fn items(&self) -> &[Item] {
        &self.items
    }

    /// Number of items (the `k` in `k`-itemset).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True for the empty itemset.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The attribute ids, sorted.
    pub fn attributes(&self) -> Vec<u32> {
        self.items.iter().map(|i| i.attr).collect()
    }

    /// The item of attribute `attr`, if present.
    pub fn item_for(&self, attr: u32) -> Option<&Item> {
        self.items
            .binary_search_by_key(&attr, |i| i.attr)
            .ok()
            .map(|pos| &self.items[pos])
    }

    /// Does a full record (code per attribute, indexed by attribute id)
    /// support every item?
    pub fn supported_by(&self, record: &[u32]) -> bool {
        self.items
            .iter()
            .all(|i| i.matches(record[i.attr as usize]))
    }

    /// Is `self` a generalization of `other`? Requires identical attribute
    /// sets and containing ranges (Section 2's definition).
    pub fn generalizes(&self, other: &Itemset) -> bool {
        self.len() == other.len()
            && self
                .items
                .iter()
                .zip(other.items.iter())
                .all(|(a, b)| a.generalizes(b))
    }

    /// Is `self` a *strict* generalization (generalizes and differs)?
    pub fn strictly_generalizes(&self, other: &Itemset) -> bool {
        self != other && self.generalizes(other)
    }

    /// The itemset with the item at `pos` removed — the `(k-1)`-subsets
    /// used by the subset-prune step.
    pub fn without_index(&self, pos: usize) -> Itemset {
        let mut items = self.items.clone();
        items.remove(pos);
        Itemset { items }
    }

    /// All `(k-1)`-subsets, in item order.
    pub fn subsets_dropping_one(&self) -> impl Iterator<Item = Itemset> + '_ {
        (0..self.items.len()).map(|i| self.without_index(i))
    }

    /// Union of two itemsets with disjoint attributes. Panics when the
    /// attribute sets overlap.
    pub fn union_disjoint(&self, other: &Itemset) -> Itemset {
        let mut items = self.items.clone();
        items.extend_from_slice(&other.items);
        Itemset::new(items)
    }

    /// Restrict to the items whose attributes appear in `attrs` (sorted).
    pub fn project(&self, attrs: &[u32]) -> Itemset {
        Itemset {
            items: self
                .items
                .iter()
                .filter(|i| attrs.binary_search(&i.attr).is_ok())
                .copied()
                .collect(),
        }
    }

    /// Is every item of `self` also an item of `other` (exact match)?
    /// This is plain set containment, *not* generalization.
    pub fn is_subset_of(&self, other: &Itemset) -> bool {
        self.items.iter().all(|i| other.item_for(i.attr) == Some(i))
    }

    /// The items of `self` whose attributes are not in `other`.
    pub fn minus_attributes(&self, other: &Itemset) -> Itemset {
        Itemset {
            items: self
                .items
                .iter()
                .filter(|i| other.item_for(i.attr).is_none())
                .copied()
                .collect(),
        }
    }
}

impl fmt::Display for Itemset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{item}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<Item> for Itemset {
    fn from_iter<I: IntoIterator<Item = Item>>(iter: I) -> Self {
        Itemset::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn item_basics() {
        let i = Item::range(0, 2, 5);
        assert!(i.matches(2) && i.matches(5) && !i.matches(6) && !i.matches(1));
        assert_eq!(i.width(), 4);
        assert_eq!(Item::value(1, 3).width(), 1);
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_range_panics() {
        let _ = Item::range(0, 5, 2);
    }

    #[test]
    fn item_generalization() {
        let wide = Item::range(0, 1, 8);
        let narrow = Item::range(0, 2, 5);
        assert!(wide.generalizes(&narrow));
        assert!(!narrow.generalizes(&wide));
        assert!(wide.generalizes(&wide));
        assert!(!Item::range(1, 1, 8).generalizes(&narrow)); // different attr
    }

    #[test]
    fn itemset_sorted_and_deduped_by_attr() {
        let s = Itemset::new(vec![Item::value(2, 0), Item::range(0, 1, 3)]);
        assert_eq!(s.attributes(), vec![0, 2]);
        assert_eq!(s.item_for(0), Some(&Item::range(0, 1, 3)));
        assert_eq!(s.item_for(1), None);
    }

    #[test]
    #[should_panic(expected = "same attribute")]
    fn duplicate_attribute_panics() {
        let _ = Itemset::new(vec![Item::value(0, 1), Item::value(0, 2)]);
    }

    #[test]
    fn support_check_against_record() {
        // Record: attr0=4, attr1=0, attr2=7.
        let record = vec![4, 0, 7];
        let s = Itemset::new(vec![Item::range(0, 2, 5), Item::value(2, 7)]);
        assert!(s.supported_by(&record));
        let s2 = Itemset::new(vec![Item::range(0, 2, 5), Item::value(1, 1)]);
        assert!(!s2.supported_by(&record));
        assert!(Itemset::empty().supported_by(&record));
    }

    #[test]
    fn itemset_generalization_paper_example() {
        // {⟨Age: 30..39⟩, ⟨Married: Yes⟩} generalizes
        // {⟨Age: 30..35⟩, ⟨Married: Yes⟩}.
        let general = Itemset::new(vec![Item::range(0, 30, 39), Item::value(1, 1)]);
        let special = Itemset::new(vec![Item::range(0, 30, 35), Item::value(1, 1)]);
        assert!(general.generalizes(&special));
        assert!(general.strictly_generalizes(&special));
        assert!(!special.generalizes(&general));
        assert!(!general.strictly_generalizes(&general));
    }

    #[test]
    fn generalization_requires_same_attributes() {
        let a = Itemset::new(vec![Item::range(0, 0, 9)]);
        let b = Itemset::new(vec![Item::range(0, 2, 3), Item::value(1, 0)]);
        assert!(!a.generalizes(&b));
    }

    #[test]
    fn k_minus_1_subsets() {
        let s = Itemset::new(vec![
            Item::value(0, 1),
            Item::value(1, 2),
            Item::value(2, 3),
        ]);
        let subs: Vec<Itemset> = s.subsets_dropping_one().collect();
        assert_eq!(subs.len(), 3);
        assert!(subs.iter().all(|x| x.len() == 2));
        assert!(subs.iter().all(|x| x.is_subset_of(&s)));
    }

    #[test]
    fn union_and_projection() {
        let a = Itemset::new(vec![Item::value(0, 1)]);
        let b = Itemset::new(vec![Item::value(2, 3), Item::value(1, 0)]);
        let u = a.union_disjoint(&b);
        assert_eq!(u.len(), 3);
        assert_eq!(u.attributes(), vec![0, 1, 2]);
        assert_eq!(u.project(&[0, 2]).attributes(), vec![0, 2]);
        assert_eq!(u.minus_attributes(&a).attributes(), vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "same attribute")]
    fn union_overlapping_attributes_panics() {
        let a = Itemset::new(vec![Item::value(0, 1)]);
        let b = Itemset::new(vec![Item::value(0, 2)]);
        let _ = a.union_disjoint(&b);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Item::value(3, 7).to_string(), "⟨#3: 7⟩");
        assert_eq!(Item::range(0, 1, 4).to_string(), "⟨#0: 1..4⟩");
        let s = Itemset::new(vec![Item::value(0, 1), Item::value(1, 0)]);
        assert_eq!(s.to_string(), "{⟨#0: 1⟩, ⟨#1: 0⟩}");
    }

    #[test]
    fn subset_is_exact_not_generalization() {
        let wide = Itemset::new(vec![Item::range(0, 0, 9)]);
        let narrow = Itemset::new(vec![Item::range(0, 2, 3)]);
        assert!(!narrow.is_subset_of(&wide));
        assert!(wide.generalizes(&narrow));
    }
}
