//! The n-dimensional array support counter of Section 5.2.
//!
//! For a super-candidate over quantitative attributes with small code
//! domains, the paper counts supports in an n-dimensional array: "the
//! number of array cells in the j-th dimension equals the number of
//! partitions for the attribute corresponding to the j-th dimension. ...
//! The amount of work done per record is only O(number-of-dimensions). At
//! the end of the pass over the database, we iterate over all the cells
//! covered by each of the rectangles and sum up the support counts."
//!
//! This implementation offers both the paper's cell-iteration sum and an
//! inclusion–exclusion prefix-sum variant that answers each rectangle in
//! O(2^n) regardless of its size; the two are verified equal in tests and
//! compared in the `ablation` bench.

/// Dense counter over the cross product of per-dimension code domains.
#[derive(Debug, Clone)]
pub struct MultiDimCounter {
    dims: Vec<u32>,
    strides: Vec<usize>,
    counts: Vec<u64>,
    prefixed: bool,
}

impl MultiDimCounter {
    /// Create a zeroed counter; `dims[j]` is the code domain size of
    /// dimension `j`. Panics on empty dims, zero-sized dimensions, or a
    /// cell count above `max_cells` (guards against accidental memory
    /// blow-up — the caller's heuristic should have chosen the R*-tree).
    pub fn new(dims: &[u32], max_cells: usize) -> Self {
        assert!(!dims.is_empty(), "at least one dimension required");
        assert!(dims.iter().all(|&d| d > 0), "zero-sized dimension");
        let mut strides = vec![0usize; dims.len()];
        let mut total: usize = 1;
        // Row-major: last dimension contiguous.
        for j in (0..dims.len()).rev() {
            strides[j] = total;
            total = total
                .checked_mul(dims[j] as usize)
                .expect("cell count overflow");
        }
        assert!(
            total <= max_cells,
            "counter would need {total} cells (> {max_cells})"
        );
        MultiDimCounter {
            dims: dims.to_vec(),
            strides,
            counts: vec![0; total],
            prefixed: false,
        }
    }

    /// Number of cells.
    pub fn num_cells(&self) -> usize {
        self.counts.len()
    }

    /// Heap footprint of the count array in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.counts.len() * std::mem::size_of::<u64>()
    }

    /// Estimated bytes for a counter with the given dimensions, without
    /// allocating it — the input to the paper's structure-choice heuristic.
    pub fn estimate_bytes(dims: &[u32]) -> Option<usize> {
        let mut total: usize = std::mem::size_of::<u64>();
        for &d in dims {
            total = total.checked_mul(d as usize)?;
        }
        Some(total)
    }

    #[inline]
    fn offset(&self, point: &[u32]) -> usize {
        debug_assert_eq!(point.len(), self.dims.len());
        let mut off = 0usize;
        for ((&p, &dim), &stride) in point.iter().zip(&self.dims).zip(&self.strides) {
            debug_assert!(p < dim, "coordinate out of range");
            off += p as usize * stride;
        }
        off
    }

    /// Add one to the cell at `point`. O(dims) per record, as the paper
    /// promises. Panics after [`MultiDimCounter::build_prefix_sums`].
    #[inline]
    pub fn increment(&mut self, point: &[u32]) {
        assert!(
            !self.prefixed,
            "cannot increment after building prefix sums"
        );
        let off = self.offset(point);
        self.counts[off] += 1;
    }

    /// Raw count at `point` (pre-prefix) or prefix value (post-prefix).
    pub fn cell(&self, point: &[u32]) -> u64 {
        self.counts[self.offset(point)]
    }

    /// The paper's end-of-pass summation: iterate every cell covered by
    /// `[lo, hi]` (inclusive) and add its count. Only valid before
    /// [`MultiDimCounter::build_prefix_sums`].
    pub fn rect_sum_by_iteration(&self, lo: &[u32], hi: &[u32]) -> u64 {
        assert!(!self.prefixed, "cells were replaced by prefix sums");
        debug_assert_eq!(lo.len(), self.dims.len());
        debug_assert_eq!(hi.len(), self.dims.len());
        debug_assert!((0..lo.len()).all(|j| lo[j] <= hi[j] && hi[j] < self.dims[j]));
        let mut point: Vec<u32> = lo.to_vec();
        let mut total = 0u64;
        loop {
            total += self.counts[self.offset(&point)];
            // Odometer increment within [lo, hi].
            let mut j = self.dims.len();
            loop {
                if j == 0 {
                    return total;
                }
                j -= 1;
                if point[j] < hi[j] {
                    point[j] += 1;
                    break;
                }
                point[j] = lo[j];
            }
        }
    }

    /// Add another counter's cells into this one (the parallel-shard merge:
    /// each worker counts its row range into a private counter, and the
    /// shards are summed cell-wise before the rectangle readout).
    ///
    /// Panics if the shapes differ or either counter already holds prefix
    /// sums — merging is only meaningful over raw cell counts.
    pub fn merge_from(&mut self, other: &MultiDimCounter) {
        assert_eq!(
            self.dims, other.dims,
            "cannot merge counters of different shape"
        );
        assert!(
            !self.prefixed && !other.prefixed,
            "cannot merge after building prefix sums"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }

    /// Convert cells to inclusive prefix sums in place (O(dims × cells)).
    /// After this, [`MultiDimCounter::rect_sum`] answers any rectangle in
    /// O(2^dims).
    pub fn build_prefix_sums(&mut self) {
        assert!(!self.prefixed, "prefix sums already built");
        for j in 0..self.dims.len() {
            let stride = self.strides[j];
            let dim = self.dims[j] as usize;
            // For every cell whose j-th coordinate is > 0, add the cell one
            // step back along j. Iterate in blocks so the scan is linear.
            let block = stride * dim; // cells spanned by a full cycle of dim j
            let n = self.counts.len();
            let mut base = 0;
            while base < n {
                for c in 1..dim {
                    let row = base + c * stride;
                    for i in 0..stride {
                        self.counts[row + i] += self.counts[row + i - stride];
                    }
                }
                base += block;
            }
        }
        self.prefixed = true;
    }

    /// Inclusion–exclusion rectangle sum over `[lo, hi]` (inclusive).
    /// Requires [`MultiDimCounter::build_prefix_sums`] to have run.
    pub fn rect_sum(&self, lo: &[u32], hi: &[u32]) -> u64 {
        assert!(self.prefixed, "call build_prefix_sums first");
        debug_assert!((0..lo.len()).all(|j| lo[j] <= hi[j] && hi[j] < self.dims[j]));
        let d = self.dims.len();
        let mut total: i64 = 0;
        // Each corner picks hi[j] (bit 0) or lo[j]-1 (bit 1); a corner with
        // any lo[j] == 0 on a "lo-1" pick contributes nothing.
        'corner: for mask in 0u32..(1 << d) {
            let mut off = 0usize;
            let mut sign = 1i64;
            for j in 0..d {
                if mask & (1 << j) == 0 {
                    off += hi[j] as usize * self.strides[j];
                } else {
                    if lo[j] == 0 {
                        continue 'corner;
                    }
                    off += (lo[j] as usize - 1) * self.strides[j];
                    sign = -sign;
                }
            }
            total += sign * self.counts[off] as i64;
        }
        debug_assert!(total >= 0, "inclusion-exclusion went negative");
        total as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled_2d() -> MultiDimCounter {
        // 3x4 grid; cell (i,j) incremented i + 2j times.
        let mut c = MultiDimCounter::new(&[3, 4], 1 << 20);
        for i in 0..3u32 {
            for j in 0..4u32 {
                for _ in 0..(i + 2 * j) {
                    c.increment(&[i, j]);
                }
            }
        }
        c
    }

    #[test]
    fn increment_and_cell() {
        let mut c = MultiDimCounter::new(&[2, 2], 100);
        c.increment(&[0, 1]);
        c.increment(&[0, 1]);
        c.increment(&[1, 0]);
        assert_eq!(c.cell(&[0, 1]), 2);
        assert_eq!(c.cell(&[1, 0]), 1);
        assert_eq!(c.cell(&[0, 0]), 0);
        assert_eq!(c.num_cells(), 4);
    }

    #[test]
    fn iteration_sum_matches_manual() {
        let c = filled_2d();
        // Sum over i in 1..=2, j in 1..=3: Σ (i + 2j).
        let mut manual = 0u64;
        for i in 1..=2u64 {
            for j in 1..=3u64 {
                manual += i + 2 * j;
            }
        }
        assert_eq!(c.rect_sum_by_iteration(&[1, 1], &[2, 3]), manual);
        // Whole grid.
        let all: u64 = (0..3u64)
            .flat_map(|i| (0..4u64).map(move |j| i + 2 * j))
            .sum();
        assert_eq!(c.rect_sum_by_iteration(&[0, 0], &[2, 3]), all);
    }

    #[test]
    fn prefix_sums_agree_with_iteration_everywhere() {
        let plain = filled_2d();
        let mut pre = plain.clone();
        pre.build_prefix_sums();
        for lo0 in 0..3u32 {
            for hi0 in lo0..3 {
                for lo1 in 0..4u32 {
                    for hi1 in lo1..4 {
                        assert_eq!(
                            plain.rect_sum_by_iteration(&[lo0, lo1], &[hi0, hi1]),
                            pre.rect_sum(&[lo0, lo1], &[hi0, hi1]),
                            "rect [{lo0},{lo1}]..[{hi0},{hi1}]"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn three_dims_prefix_agree() {
        let mut c = MultiDimCounter::new(&[4, 3, 5], 1 << 20);
        // Deterministic scatter.
        let mut state = 1234u64;
        for _ in 0..2000 {
            state = state.wrapping_mul(48271).wrapping_add(11);
            let p = [
                ((state >> 3) % 4) as u32,
                ((state >> 13) % 3) as u32,
                ((state >> 23) % 5) as u32,
            ];
            c.increment(&p);
        }
        let mut pre = c.clone();
        pre.build_prefix_sums();
        for (lo, hi) in [
            ([0, 0, 0], [3, 2, 4]),
            ([1, 1, 1], [2, 2, 3]),
            ([3, 0, 4], [3, 2, 4]),
            ([0, 2, 0], [0, 2, 0]),
        ] {
            assert_eq!(c.rect_sum_by_iteration(&lo, &hi), pre.rect_sum(&lo, &hi));
        }
        // Full-grid prefix equals total increments.
        assert_eq!(pre.rect_sum(&[0, 0, 0], &[3, 2, 4]), 2000);
    }

    #[test]
    fn one_dim_counter() {
        let mut c = MultiDimCounter::new(&[10], 100);
        for v in [0u32, 5, 5, 9] {
            c.increment(&[v]);
        }
        assert_eq!(c.rect_sum_by_iteration(&[0], &[4]), 1);
        c.build_prefix_sums();
        assert_eq!(c.rect_sum(&[5], &[5]), 2);
        assert_eq!(c.rect_sum(&[0], &[9]), 4);
        assert_eq!(c.rect_sum(&[6], &[9]), 1);
    }

    #[test]
    fn merge_is_cellwise_sum() {
        let mut a = filled_2d();
        let b = filled_2d();
        a.merge_from(&b);
        for i in 0..3u32 {
            for j in 0..4u32 {
                assert_eq!(a.cell(&[i, j]), 2 * (i + 2 * j) as u64);
            }
        }
        // Prefix sums over the merged counter still answer rectangles.
        a.build_prefix_sums();
        let whole: u64 = (0..3u64)
            .flat_map(|i| (0..4u64).map(move |j| i + 2 * j))
            .sum();
        assert_eq!(a.rect_sum(&[0, 0], &[2, 3]), 2 * whole);
    }

    #[test]
    #[should_panic(expected = "different shape")]
    fn merge_shape_mismatch_rejected() {
        let mut a = MultiDimCounter::new(&[3, 4], 100);
        let b = MultiDimCounter::new(&[4, 3], 100);
        a.merge_from(&b);
    }

    #[test]
    #[should_panic(expected = "prefix sums")]
    fn merge_after_prefix_rejected() {
        let mut a = MultiDimCounter::new(&[2, 2], 100);
        let mut b = MultiDimCounter::new(&[2, 2], 100);
        b.build_prefix_sums();
        a.merge_from(&b);
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn oversized_counter_rejected() {
        let _ = MultiDimCounter::new(&[1000, 1000, 1000], 1 << 20);
    }

    #[test]
    #[should_panic(expected = "prefix")]
    fn increment_after_prefix_panics() {
        let mut c = MultiDimCounter::new(&[2], 10);
        c.build_prefix_sums();
        c.increment(&[0]);
    }

    #[test]
    fn estimate_matches_reality() {
        let est = MultiDimCounter::estimate_bytes(&[7, 11]).unwrap();
        let c = MultiDimCounter::new(&[7, 11], 1 << 20);
        assert_eq!(est, c.approx_bytes());
        assert!(MultiDimCounter::estimate_bytes(&[u32::MAX, u32::MAX, u32::MAX]).is_none());
    }
}
