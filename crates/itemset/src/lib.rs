//! # qar-itemset — itemset machinery shared by the miners
//!
//! An *item* in the quantitative setting is a triple `⟨attribute, lo, hi⟩`:
//! a categorical attribute with a single value (`lo == hi`) or a
//! quantitative attribute with an inclusive range over encoded codes
//! (Section 2 of the paper). This crate provides:
//!
//! * [`item`] — [`Item`] and [`Itemset`] with the paper's
//!   generalization/specialization relation,
//! * [`hash_tree`] — the hash-tree subset index of \[AS94\], reused here to
//!   match super-candidates' categorical parts against records
//!   (Section 5.2) and by the boolean Apriori baseline,
//! * [`ndcounter`] — the n-dimensional array support counter with
//!   inclusion–exclusion prefix sums,
//! * [`counter`] — [`RectCounter`], the array-vs-R*-tree choice the paper
//!   makes per super-candidate based on expected memory use.
//!
//! [`Item`]: item::Item
//! [`Itemset`]: item::Itemset
//! [`RectCounter`]: counter::RectCounter

#![warn(missing_docs)]

pub mod counter;
pub mod hash_tree;
pub mod item;
pub mod ndcounter;

pub use counter::{CounterKind, RectCounter};
pub use hash_tree::{HashTree, VisitScratch};
pub use item::{Item, Itemset};
pub use ndcounter::MultiDimCounter;
