//! Per-super-candidate range counting: multi-dimensional array vs. R*-tree.
//!
//! Section 5.2: "Using a multi-dimensional array is cheaper than using an
//! R*-tree, in terms of CPU time. However, as the number of attributes
//! (dimensions) in a super-candidate increases, the multi-dimensional array
//! approach will need a huge amount of memory. Thus there is a tradeoff
//! ... We use a heuristic based on the ratio of the expected memory use of
//! the R*-tree to that of the multi-dimensional array to decide which data
//! structure to use."

use crate::ndcounter::MultiDimCounter;
use qar_rtree::{RStarTree, Rect};
use std::sync::Arc;

/// Which structure backs a [`RectCounter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterKind {
    /// Dense n-dimensional count array + prefix-sum rectangle readout.
    Array,
    /// R*-tree over the candidate rectangles; each record point-queries it.
    RTree,
}

/// Estimated heap bytes of an R*-tree over `num_rects` rectangles
/// (items + ~fanout-compensated node overhead).
fn rtree_estimate_bytes(num_rects: usize) -> usize {
    // One item slot (Rect ≈ 136 B + value) plus amortized node share.
    num_rects * 200
}

enum Backend {
    Array {
        counter: MultiDimCounter,
        rects: Arc<[(Vec<u32>, Vec<u32>)]>,
    },
    RTree {
        tree: RStarTree<usize>,
        counts: Vec<u64>,
        point_buf: Vec<f64>,
    },
}

/// Counts, for a fixed set of inclusive integer rectangles, how many of the
/// points fed to [`RectCounter::count_record`] fall inside each.
///
/// ```
/// use qar_itemset::{CounterKind, RectCounter};
///
/// // Two 1-D ranges over a domain of 10 codes: [0..4] and [3..9].
/// let rects = vec![(vec![0], vec![4]), (vec![3], vec![9])];
/// let mut counter = RectCounter::build(&[10], rects.clone());
/// for code in [0u32, 3, 4, 8] {
///     counter.count_record(&[code]);
/// }
/// assert_eq!(counter.finish(), vec![3, 3]);
/// ```
pub struct RectCounter {
    backend: Backend,
    kind: CounterKind,
}

impl RectCounter {
    /// Maximum array cells the auto-chooser will consider (beyond this the
    /// R*-tree is forced regardless of the ratio heuristic).
    pub const MAX_ARRAY_CELLS: usize = 1 << 22;

    /// Build with the paper's memory-ratio heuristic choosing the backend.
    ///
    /// * `dims[j]` — code domain size of quantitative dimension `j`;
    /// * `rects` — inclusive `(lo, hi)` code rectangles, one per candidate.
    pub fn build(dims: &[u32], rects: Vec<(Vec<u32>, Vec<u32>)>) -> Self {
        let kind = Self::choose_kind(dims, rects.len());
        Self::build_with(kind, dims, rects)
    }

    /// The paper's memory-ratio heuristic, exposed so a caller that builds
    /// one counter per data shard can pin a single backend choice for all
    /// of them (per-shard decisions would agree anyway — the inputs are
    /// record-independent — but deciding once keeps that invariant
    /// explicit and the statistics exact).
    pub fn choose_kind(dims: &[u32], num_rects: usize) -> CounterKind {
        match MultiDimCounter::estimate_bytes(dims) {
            Some(bytes)
                if bytes <= rtree_estimate_bytes(num_rects)
                    && bytes / std::mem::size_of::<u64>() <= Self::MAX_ARRAY_CELLS =>
            {
                CounterKind::Array
            }
            _ => CounterKind::RTree,
        }
    }

    /// Estimated heap bytes a counter of `kind` over `dims` and
    /// `num_rects` rectangles will use — the number the choice heuristic
    /// compares, exposed so the miner can report peak counting memory in
    /// its trace events. Returns `usize::MAX` when an array over `dims`
    /// would overflow the address space.
    pub fn estimated_bytes(kind: CounterKind, dims: &[u32], num_rects: usize) -> usize {
        match kind {
            CounterKind::Array => MultiDimCounter::estimate_bytes(dims).unwrap_or(usize::MAX),
            CounterKind::RTree => rtree_estimate_bytes(num_rects),
        }
    }

    /// Build with an explicit backend (used by tests and the ablation
    /// bench).
    pub fn build_with(kind: CounterKind, dims: &[u32], rects: Vec<(Vec<u32>, Vec<u32>)>) -> Self {
        Self::build_shared(kind, dims, rects.into())
    }

    /// [`RectCounter::build_with`] over a *shared* rectangle set: the
    /// parallel scan builds one counter per data shard from a single
    /// [`Arc`]'d plan, so construction is O(1) in the rectangle count
    /// instead of a deep clone per shard.
    pub fn build_shared(
        kind: CounterKind,
        dims: &[u32],
        rects: Arc<[(Vec<u32>, Vec<u32>)]>,
    ) -> Self {
        for (lo, hi) in rects.iter() {
            assert_eq!(lo.len(), dims.len(), "rect dimensionality");
            assert_eq!(hi.len(), dims.len(), "rect dimensionality");
            for j in 0..dims.len() {
                assert!(lo[j] <= hi[j] && hi[j] < dims[j], "rect out of domain");
            }
        }
        let backend = match kind {
            CounterKind::Array => Backend::Array {
                counter: MultiDimCounter::new(dims, usize::MAX),
                rects,
            },
            CounterKind::RTree => {
                let items: Vec<(Rect, usize)> = rects
                    .iter()
                    .enumerate()
                    .map(|(i, (lo, hi))| {
                        let lo_f: Vec<f64> = lo.iter().map(|&c| c as f64).collect();
                        let hi_f: Vec<f64> = hi.iter().map(|&c| c as f64).collect();
                        (Rect::new(&lo_f, &hi_f), i)
                    })
                    .collect();
                Backend::RTree {
                    counts: vec![0; items.len()],
                    tree: RStarTree::bulk_load(items),
                    point_buf: vec![0.0; dims.len()],
                }
            }
        };
        RectCounter { backend, kind }
    }

    /// Which backend was chosen.
    pub fn kind(&self) -> CounterKind {
        self.kind
    }

    /// Feed one record's quantitative codes (same dimension order as the
    /// rectangles).
    #[inline]
    pub fn count_record(&mut self, point: &[u32]) {
        match &mut self.backend {
            Backend::Array { counter, .. } => counter.increment(point),
            Backend::RTree {
                tree,
                counts,
                point_buf,
            } => {
                for (slot, &c) in point_buf.iter_mut().zip(point) {
                    *slot = c as f64;
                }
                // Collect matches first: query borrows the tree immutably.
                let mut hits: Vec<usize> = Vec::new();
                tree.query_point(point_buf, |&idx| hits.push(idx));
                for idx in hits {
                    counts[idx] += 1;
                }
            }
        }
    }

    /// Fold another counter's record tallies into this one. Both counters
    /// must have been built over the same rectangles with the same backend
    /// (the parallel scan guarantees this by constructing every shard's
    /// counter from one shared plan). After the merge, [`RectCounter::finish`]
    /// reports counts as if this counter had seen both record streams.
    pub fn merge_from(&mut self, other: RectCounter) {
        match (&mut self.backend, other.backend) {
            (
                Backend::Array { counter, rects },
                Backend::Array {
                    counter: other_counter,
                    rects: other_rects,
                },
            ) => {
                debug_assert_eq!(*rects, other_rects, "merging counters over different rects");
                counter.merge_from(&other_counter);
            }
            (
                Backend::RTree { counts, .. },
                Backend::RTree {
                    counts: other_counts,
                    ..
                },
            ) => {
                assert_eq!(counts.len(), other_counts.len(), "rect count mismatch");
                for (a, b) in counts.iter_mut().zip(other_counts) {
                    *a += b;
                }
            }
            _ => panic!("cannot merge counters with different backends"),
        }
    }

    /// Final per-rectangle counts, in the order the rectangles were given.
    pub fn finish(self) -> Vec<u64> {
        match self.backend {
            Backend::Array { mut counter, rects } => {
                counter.build_prefix_sums();
                rects
                    .iter()
                    .map(|(lo, hi)| counter.rect_sum(lo, hi))
                    .collect()
            }
            Backend::RTree { counts, .. } => counts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_rects() -> Vec<(Vec<u32>, Vec<u32>)> {
        vec![
            (vec![0, 0], vec![4, 9]),
            (vec![2, 3], vec![7, 5]),
            (vec![9, 9], vec![9, 9]),
        ]
    }

    fn feed(counter: &mut RectCounter) {
        let points = [[0u32, 0], [4, 9], [3, 4], [7, 5], [9, 9], [9, 8], [2, 3]];
        for p in points {
            counter.count_record(&p);
        }
    }

    #[test]
    fn array_and_rtree_agree() {
        let mut a = RectCounter::build_with(CounterKind::Array, &[10, 10], demo_rects());
        let mut r = RectCounter::build_with(CounterKind::RTree, &[10, 10], demo_rects());
        feed(&mut a);
        feed(&mut r);
        let ca = a.finish();
        let cr = r.finish();
        assert_eq!(ca, cr);
        // Manual: rect0 contains (0,0),(4,9),(3,4),(2,3); rect1 contains
        // (3,4),(7,5),(2,3); rect2 contains (9,9).
        assert_eq!(ca, vec![4, 3, 1]);
    }

    #[test]
    fn heuristic_prefers_array_for_small_domains() {
        // 10x10 = 100 cells (800 B) vs 3 rects * 200 B: array loses 800>600?
        // With 5 rects the tree estimate is 1000 B > 800 B -> array.
        let mut rects = demo_rects();
        rects.push((vec![1, 1], vec![2, 2]));
        rects.push((vec![0, 5], vec![3, 8]));
        let c = RectCounter::build(&[10, 10], rects);
        assert_eq!(c.kind(), CounterKind::Array);
    }

    #[test]
    fn heuristic_prefers_rtree_for_huge_domains() {
        let rects = vec![(vec![0, 0, 0], vec![1, 1, 1])];
        let c = RectCounter::build(&[1000, 1000, 1000], rects);
        assert_eq!(c.kind(), CounterKind::RTree);
    }

    #[test]
    fn empty_rect_set() {
        let mut c = RectCounter::build(&[5], vec![]);
        c.count_record(&[3]);
        assert_eq!(c.finish(), Vec::<u64>::new());
    }

    #[test]
    fn overlapping_rects_each_counted() {
        let rects = vec![(vec![0], vec![9]), (vec![0], vec![9])];
        for kind in [CounterKind::Array, CounterKind::RTree] {
            let mut c = RectCounter::build_with(kind, &[10], rects.clone());
            c.count_record(&[5]);
            assert_eq!(c.finish(), vec![1, 1], "{kind:?}");
        }
    }

    #[test]
    fn merge_equals_single_stream() {
        // Split the record stream in two; merged shard counters must equal
        // one counter that saw everything.
        let points: Vec<[u32; 2]> = (0..40u32).map(|i| [i % 10, (i * 7) % 10]).collect();
        for kind in [CounterKind::Array, CounterKind::RTree] {
            let mut whole = RectCounter::build_with(kind, &[10, 10], demo_rects());
            for p in &points {
                whole.count_record(p);
            }
            let mut left = RectCounter::build_with(kind, &[10, 10], demo_rects());
            let mut right = RectCounter::build_with(kind, &[10, 10], demo_rects());
            for p in &points[..13] {
                left.count_record(p);
            }
            for p in &points[13..] {
                right.count_record(p);
            }
            left.merge_from(right);
            assert_eq!(left.finish(), whole.finish(), "{kind:?}");
        }
    }

    #[test]
    fn merge_with_empty_shard_is_identity() {
        let mut a = RectCounter::build_with(CounterKind::Array, &[10, 10], demo_rects());
        feed(&mut a);
        let b = RectCounter::build_with(CounterKind::Array, &[10, 10], demo_rects());
        a.merge_from(b);
        assert_eq!(a.finish(), vec![4, 3, 1]);
    }

    #[test]
    #[should_panic(expected = "different backends")]
    fn merge_kind_mismatch_rejected() {
        let mut a = RectCounter::build_with(CounterKind::Array, &[10, 10], demo_rects());
        let b = RectCounter::build_with(CounterKind::RTree, &[10, 10], demo_rects());
        a.merge_from(b);
    }

    #[test]
    fn estimated_bytes_matches_heuristic_inputs() {
        // 10x10 array: 100 cells of u64.
        assert_eq!(
            RectCounter::estimated_bytes(CounterKind::Array, &[10, 10], 3),
            800
        );
        assert_eq!(
            RectCounter::estimated_bytes(CounterKind::RTree, &[10, 10], 3),
            600
        );
        // A domain too large for the address space saturates.
        assert_eq!(
            RectCounter::estimated_bytes(CounterKind::Array, &[u32::MAX, u32::MAX, u32::MAX], 1),
            usize::MAX
        );
    }

    #[test]
    fn choose_kind_matches_build() {
        for (dims, n) in [(vec![10u32, 10], 5usize), (vec![1000, 1000, 1000], 1)] {
            let rects = vec![(vec![0; dims.len()], vec![0; dims.len()]); n];
            assert_eq!(
                RectCounter::choose_kind(&dims, n),
                RectCounter::build(&dims, rects).kind()
            );
        }
    }

    #[test]
    fn shared_rects_agree_with_owned_build() {
        let shared: Arc<[(Vec<u32>, Vec<u32>)]> = demo_rects().into();
        for kind in [CounterKind::Array, CounterKind::RTree] {
            let mut a = RectCounter::build_shared(kind, &[10, 10], Arc::clone(&shared));
            let mut b = RectCounter::build_with(kind, &[10, 10], demo_rects());
            feed(&mut a);
            feed(&mut b);
            assert_eq!(a.finish(), b.finish(), "{kind:?}");
        }
        // Both counters above dropped their clones; the original handle
        // still owns the one shared allocation.
        assert_eq!(Arc::strong_count(&shared), 1);
    }

    #[test]
    #[should_panic(expected = "out of domain")]
    fn rect_outside_domain_rejected() {
        let _ = RectCounter::build_with(CounterKind::Array, &[5], vec![(vec![0], vec![5])]);
    }
}
