//! Validation of trace-event JSON lines against a checked-in schema.
//!
//! The schema file (`schemas/trace_events.schema.json`) is written in a
//! small subset of JSON Schema draft-07 — enough to pin down the event
//! vocabulary and catch drift in CI:
//!
//! * top level: `{"oneOf": [branch, ...]}`;
//! * each branch: `"type": "object"`, `"properties"` (each either a
//!   `{"const": "..."}` string pin or a `{"type": ...}` where type is
//!   `"integer"`, `"boolean"`, `"string"`, or
//!   `{"type": "array", "items": {"type": "integer"}}`),
//!   `"required"` listing every mandatory key, and
//!   `"additionalProperties": false`.
//!
//! Keeping the validator in-repo (instead of depending on a JSON Schema
//! crate) is deliberate: the build is offline, and the subset above is
//! all the event vocabulary needs. Anything outside the subset is a
//! schema-load error, not a silent pass.

use std::fmt;

use crate::json::{parse, Json, ParseError};

/// A compiled trace-event schema: one compiled branch per event type.
#[derive(Debug, Clone)]
pub struct Schema {
    branches: Vec<Branch>,
}

/// One `oneOf` branch: the shape of a single event type.
#[derive(Debug, Clone)]
struct Branch {
    /// The pinned `"event"` const, used to pick the branch and in errors.
    event: String,
    properties: Vec<(String, PropType)>,
    required: Vec<String>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum PropType {
    /// `{"const": "..."}` — the value must equal this string.
    Const(String),
    Integer,
    Boolean,
    String,
    IntegerArray,
}

impl PropType {
    fn check(&self, value: &Json) -> bool {
        match self {
            PropType::Const(expected) => value.as_str() == Some(expected),
            PropType::Integer => value.is_integer(),
            PropType::Boolean => matches!(value, Json::Bool(_)),
            PropType::String => matches!(value, Json::Str(_)),
            PropType::IntegerArray => value
                .as_array()
                .is_some_and(|items| items.iter().all(Json::is_integer)),
        }
    }

    fn describe(&self) -> String {
        match self {
            PropType::Const(expected) => format!("the constant \"{expected}\""),
            PropType::Integer => "an integer".into(),
            PropType::Boolean => "a boolean".into(),
            PropType::String => "a string".into(),
            PropType::IntegerArray => "an array of integers".into(),
        }
    }
}

/// Why a schema file could not be compiled.
#[derive(Debug, Clone, PartialEq)]
pub enum SchemaError {
    /// The schema file is not valid JSON.
    Parse(ParseError),
    /// The schema is valid JSON but outside the supported subset.
    Unsupported(String),
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::Parse(e) => write!(f, "schema is not valid JSON: {e}"),
            SchemaError::Unsupported(msg) => write!(f, "unsupported schema construct: {msg}"),
        }
    }
}

impl std::error::Error for SchemaError {}

/// Why an event line failed validation.
#[derive(Debug, Clone, PartialEq)]
pub enum ValidationError {
    /// The line is not valid JSON.
    Parse(ParseError),
    /// The line is valid JSON but violates the schema.
    Invalid(String),
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::Parse(e) => write!(f, "{e}"),
            ValidationError::Invalid(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for ValidationError {}

impl std::str::FromStr for Schema {
    type Err = SchemaError;

    /// Compile a schema document from its JSON text.
    fn from_str(text: &str) -> Result<Schema, SchemaError> {
        let doc = parse(text).map_err(SchemaError::Parse)?;
        let root = doc
            .as_object()
            .ok_or_else(|| SchemaError::Unsupported("top level must be an object".into()))?;
        let one_of = root
            .get("oneOf")
            .and_then(Json::as_array)
            .ok_or_else(|| SchemaError::Unsupported("top level must have a oneOf array".into()))?;
        let mut branches = Vec::with_capacity(one_of.len());
        for branch in one_of {
            branches.push(compile_branch(branch)?);
        }
        if branches.is_empty() {
            return Err(SchemaError::Unsupported("oneOf must not be empty".into()));
        }
        Ok(Schema { branches })
    }
}

impl Schema {
    /// Event names this schema accepts, in declaration order.
    pub fn event_names(&self) -> Vec<&str> {
        self.branches.iter().map(|b| b.event.as_str()).collect()
    }

    /// Validate one JSON line. On success returns the event name the line
    /// matched.
    pub fn validate_line(&self, line: &str) -> Result<String, ValidationError> {
        let doc = parse(line).map_err(ValidationError::Parse)?;
        let obj = doc.as_object().ok_or_else(|| {
            ValidationError::Invalid(format!("event must be an object, got {}", doc.type_name()))
        })?;
        let event = obj.get("event").and_then(Json::as_str).ok_or_else(|| {
            ValidationError::Invalid("event object is missing a string \"event\" field".into())
        })?;
        let branch = self
            .branches
            .iter()
            .find(|b| b.event == event)
            .ok_or_else(|| {
                ValidationError::Invalid(format!(
                    "unknown event \"{event}\" (schema knows: {})",
                    self.event_names().join(", ")
                ))
            })?;
        for key in &branch.required {
            if !obj.contains_key(key) {
                return Err(ValidationError::Invalid(format!(
                    "event \"{event}\" is missing required field \"{key}\""
                )));
            }
        }
        for (key, value) in obj {
            let Some((_, prop)) = branch.properties.iter().find(|(name, _)| name == key) else {
                return Err(ValidationError::Invalid(format!(
                    "event \"{event}\" has unexpected field \"{key}\""
                )));
            };
            if !prop.check(value) {
                return Err(ValidationError::Invalid(format!(
                    "event \"{event}\" field \"{key}\" must be {}, got {}",
                    prop.describe(),
                    value.type_name()
                )));
            }
        }
        Ok(event.to_string())
    }
}

fn compile_branch(branch: &Json) -> Result<Branch, SchemaError> {
    let obj = branch
        .as_object()
        .ok_or_else(|| SchemaError::Unsupported("oneOf branch must be an object".into()))?;
    if obj.get("type").and_then(Json::as_str) != Some("object") {
        return Err(SchemaError::Unsupported(
            "each branch must declare \"type\": \"object\"".into(),
        ));
    }
    if obj.get("additionalProperties") != Some(&Json::Bool(false)) {
        return Err(SchemaError::Unsupported(
            "each branch must set \"additionalProperties\": false".into(),
        ));
    }
    let props = obj
        .get("properties")
        .and_then(Json::as_object)
        .ok_or_else(|| SchemaError::Unsupported("branch is missing \"properties\"".into()))?;
    let mut properties = Vec::with_capacity(props.len());
    let mut event = None;
    for (name, spec) in props {
        let prop = compile_property(name, spec)?;
        if name == "event" {
            match &prop {
                PropType::Const(value) => event = Some(value.clone()),
                _ => {
                    return Err(SchemaError::Unsupported(
                        "the \"event\" property must be a const string".into(),
                    ))
                }
            }
        }
        properties.push((name.clone(), prop));
    }
    let event = event.ok_or_else(|| {
        SchemaError::Unsupported("branch has no \"event\" const discriminator".into())
    })?;
    let required = obj
        .get("required")
        .and_then(Json::as_array)
        .ok_or_else(|| SchemaError::Unsupported("branch is missing \"required\"".into()))?
        .iter()
        .map(|v| {
            v.as_str().map(str::to_string).ok_or_else(|| {
                SchemaError::Unsupported("\"required\" entries must be strings".into())
            })
        })
        .collect::<Result<Vec<_>, _>>()?;
    for key in &required {
        if !properties.iter().any(|(name, _)| name == key) {
            return Err(SchemaError::Unsupported(format!(
                "required field \"{key}\" is not declared in properties"
            )));
        }
    }
    Ok(Branch {
        event,
        properties,
        required,
    })
}

fn compile_property(name: &str, spec: &Json) -> Result<PropType, SchemaError> {
    let obj = spec.as_object().ok_or_else(|| {
        SchemaError::Unsupported(format!("property \"{name}\" spec must be an object"))
    })?;
    if let Some(value) = obj.get("const") {
        let value = value.as_str().ok_or_else(|| {
            SchemaError::Unsupported(format!("property \"{name}\" const must be a string"))
        })?;
        return Ok(PropType::Const(value.to_string()));
    }
    match obj.get("type").and_then(Json::as_str) {
        Some("integer") => Ok(PropType::Integer),
        Some("boolean") => Ok(PropType::Boolean),
        Some("string") => Ok(PropType::String),
        Some("array") => {
            let items = obj.get("items").and_then(Json::as_object).ok_or_else(|| {
                SchemaError::Unsupported(format!("array property \"{name}\" needs \"items\""))
            })?;
            if items.get("type").and_then(Json::as_str) == Some("integer") {
                Ok(PropType::IntegerArray)
            } else {
                Err(SchemaError::Unsupported(format!(
                    "array property \"{name}\" items must be integers"
                )))
            }
        }
        other => Err(SchemaError::Unsupported(format!(
            "property \"{name}\" has unsupported type {other:?}"
        ))),
    }
}

/// Validate a whole JSON-lines document (blank lines are skipped).
/// Returns per-event-name counts on success, or the 1-based line number
/// and error of the first invalid line.
pub fn validate_lines(
    schema: &Schema,
    input: &str,
) -> Result<Vec<(String, usize)>, (usize, ValidationError)> {
    let mut counts: Vec<(String, usize)> = schema
        .event_names()
        .iter()
        .map(|name| (name.to_string(), 0))
        .collect();
    for (idx, line) in input.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let event = schema.validate_line(line).map_err(|e| (idx + 1, e))?;
        if let Some(entry) = counts.iter_mut().find(|(name, _)| *name == event) {
            entry.1 += 1;
        }
    }
    Ok(counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;
    use std::str::FromStr;

    fn mini_schema() -> Schema {
        Schema::from_str(
            r#"{
              "oneOf": [
                {
                  "type": "object",
                  "properties": {
                    "event": {"const": "ping"},
                    "pass": {"type": "integer"},
                    "deadline": {"type": "boolean"},
                    "times": {"type": "array", "items": {"type": "integer"}}
                  },
                  "required": ["event", "pass"],
                  "additionalProperties": false
                }
              ]
            }"#,
        )
        .expect("mini schema compiles")
    }

    #[test]
    fn accepts_conforming_lines() {
        let schema = mini_schema();
        assert_eq!(
            schema
                .validate_line(r#"{"event":"ping","pass":3}"#)
                .unwrap(),
            "ping"
        );
        schema
            .validate_line(r#"{"event":"ping","pass":3,"deadline":true,"times":[1,2]}"#)
            .unwrap();
    }

    #[test]
    fn rejects_violations_with_reasons() {
        let schema = mini_schema();
        let cases = [
            (r#"{"pass":3}"#, "missing a string \"event\""),
            (r#"{"event":"pong","pass":3}"#, "unknown event"),
            (r#"{"event":"ping"}"#, "missing required field \"pass\""),
            (r#"{"event":"ping","pass":3,"extra":1}"#, "unexpected field"),
            (r#"{"event":"ping","pass":"three"}"#, "must be an integer"),
            (
                r#"{"event":"ping","pass":3,"times":[1,"x"]}"#,
                "array of integers",
            ),
            ("[1,2]", "must be an object"),
        ];
        for (line, needle) in cases {
            let err = schema.validate_line(line).unwrap_err().to_string();
            assert!(err.contains(needle), "line {line:?} gave: {err}");
        }
        assert!(matches!(
            schema.validate_line("{not json"),
            Err(ValidationError::Parse(_))
        ));
    }

    #[test]
    fn rejects_schemas_outside_the_subset() {
        for (doc, needle) in [
            ("[]", "must be an object"),
            ("{}", "oneOf"),
            (r#"{"oneOf": []}"#, "must not be empty"),
            (
                r#"{"oneOf": [{"type": "object", "properties": {}, "required": [], "additionalProperties": false}]}"#,
                "no \"event\" const",
            ),
            (
                r#"{"oneOf": [{"type": "object", "properties": {"event": {"const": "x"}, "n": {"type": "number"}}, "required": [], "additionalProperties": false}]}"#,
                "unsupported type",
            ),
            (
                r#"{"oneOf": [{"type": "object", "properties": {"event": {"const": "x"}}, "required": ["ghost"], "additionalProperties": false}]}"#,
                "not declared in properties",
            ),
        ] {
            let err = Schema::from_str(doc).unwrap_err().to_string();
            assert!(err.contains(needle), "schema {doc:?} gave: {err}");
        }
    }

    #[test]
    fn validate_lines_counts_and_reports_line_numbers() {
        let schema = mini_schema();
        let ok = "{\"event\":\"ping\",\"pass\":1}\n\n{\"event\":\"ping\",\"pass\":2}\n";
        let counts = validate_lines(&schema, ok).unwrap();
        assert_eq!(counts, vec![("ping".to_string(), 2)]);

        let bad = "{\"event\":\"ping\",\"pass\":1}\n{\"event\":\"ping\"}\n";
        let (line, _) = validate_lines(&schema, bad).unwrap_err();
        assert_eq!(line, 2);
    }

    /// The real schema file must accept every event the crate can emit —
    /// this is the drift guard the CI job builds on.
    #[test]
    fn checked_in_schema_accepts_all_event_variants() {
        let text = include_str!("../../../schemas/trace_events.schema.json");
        let schema = Schema::from_str(text).expect("checked-in schema compiles");
        let events = [
            TraceEvent::RunStarted {
                rows: 10,
                attributes: 3,
                min_count: 2,
                max_count: 5,
                parallelism: 2,
            },
            TraceEvent::PassStarted {
                pass: 1,
                candidates: 0,
            },
            TraceEvent::PassFinished {
                pass: 2,
                candidates: 9,
                frequent: 4,
                pruned: 1,
                super_candidates: 2,
                array_backed: 1,
                rtree_backed: 1,
                hash_tree_nodes: 3,
                counter_bytes: 512,
                scan_us: 40,
                merge_us: 2,
                shard_scan_us: vec![20, 19],
                pooled: true,
                memoized: true,
                distinct_tuples: 4,
                memo_hits: 6,
                kernel: "memoized".to_string(),
            },
            TraceEvent::RunFinished {
                passes: 2,
                frequent_total: 11,
                elapsed_us: 99,
            },
            TraceEvent::Cancelled {
                pass: 2,
                deadline: false,
            },
            TraceEvent::CatalogSaved {
                rules: 7,
                bytes: 2048,
                elapsed_us: 120,
            },
            TraceEvent::CatalogLoaded {
                rules: 7,
                bytes: 2048,
                elapsed_us: 80,
            },
            TraceEvent::IndexBuilt {
                rules: 7,
                posting_entries: 12,
                interval_entries: 5,
                elapsed_us: 33,
            },
            TraceEvent::ServerStarted {
                port: 7979,
                threads: 4,
                catalogs: 1,
            },
            TraceEvent::ConnectionOpened { conn: 1 },
            TraceEvent::ConnectionClosed {
                conn: 1,
                requests: 9,
            },
            TraceEvent::RequestServed {
                conn: 1,
                kind: "point".into(),
                ok: true,
                items: 1,
                results: 4,
                elapsed_us: 12,
            },
            TraceEvent::AnalyticsComputed {
                rules: 7,
                shapley_samples: 64,
                elapsed_us: 900,
            },
            TraceEvent::WorkerJoined {
                worker: 0,
                addr: "127.0.0.1:5001".into(),
                rows: 500,
            },
            TraceEvent::PassMerged {
                pass: 2,
                workers: 2,
                candidates: 9,
                elapsed_us: 70,
            },
            TraceEvent::WorkerLost {
                worker: 1,
                pass: 3,
                detail: "connection reset".into(),
            },
            TraceEvent::CountsSaved {
                passes: 3,
                itemsets: 120,
                bytes: 4096,
            },
            TraceEvent::CountsLoaded {
                passes: 3,
                itemsets: 120,
                rows: 500,
            },
            TraceEvent::IncrementalUpdate {
                base_rows: 500,
                delta_rows: 5,
                total_rows: 505,
                passes: 3,
                elapsed_us: 800,
            },
            TraceEvent::IncrementalFallback {
                reason: "encoding fingerprint mismatch".into(),
            },
            TraceEvent::CatalogReloaded {
                catalog: "planted".into(),
                generation: 2,
                rules: 7,
                elapsed_us: 450,
            },
        ];
        for event in events {
            schema
                .validate_line(&event.to_json())
                .unwrap_or_else(|e| panic!("{}: {e}", event.name()));
        }
        assert_eq!(schema.event_names().len(), 21);
    }
}
