//! A minimal JSON parser for reading trace events back.
//!
//! Events are hand-serialized (see [`crate::event::TraceEvent::to_json`]);
//! this parser exists so tests and the `qar trace-check` validator can
//! consume them without an external JSON crate. It accepts standard JSON
//! (RFC 8259) with the usual escape sequences; numbers are parsed as
//! `f64`, which is lossless for every count the miner emits (all well
//! below 2^53).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Num(f64),
    /// A string (escapes already decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is not preserved (sorted by key).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean value, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The fields, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// True when this is an integer-valued number (no fractional part).
    pub fn is_integer(&self) -> bool {
        matches!(self, Json::Num(n) if n.fract() == 0.0)
    }

    /// True when this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Short name of the value's JSON type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "boolean",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }
}

/// A parse failure, with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document; trailing whitespace is allowed,
/// trailing garbage is not.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.error(format!("unexpected character '{}'", other as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut fields = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.error("bad escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by `\u` and a low surrogate.
                            let ch = if (0xD800..0xDC00).contains(&code) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let low = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(self.error("invalid low surrogate"));
                                    }
                                    let combined =
                                        0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(combined)
                                        .ok_or_else(|| self.error("invalid surrogate pair"))?
                                } else {
                                    return Err(self.error("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&code) {
                                return Err(self.error("lone low surrogate"));
                            } else {
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid \\u escape"))?
                            };
                            out.push(ch);
                        }
                        other => {
                            return Err(self.error(format!("invalid escape '\\{}'", other as char)))
                        }
                    }
                }
                Some(byte) if byte < 0x20 => {
                    return Err(self.error("raw control character in string"))
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so the byte
                    // sequence is guaranteed valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.peek().is_some_and(|b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("input came from a &str"),
                    );
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.error("non-ASCII in \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.error("non-hex in \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.error(format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(parse("-3.5e2").unwrap(), Json::Num(-350.0));
        assert_eq!(parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let doc = parse(r#"{"a": [1, 2, {"b": null}], "c": "d"}"#).unwrap();
        let obj = doc.as_object().unwrap();
        let arr = obj.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[1].as_u64(), Some(2));
        assert_eq!(arr[2].as_object().unwrap().get("b"), Some(&Json::Null));
        assert_eq!(obj.get("c").unwrap().as_str(), Some("d"));
    }

    #[test]
    fn decodes_escapes() {
        assert_eq!(
            parse(r#""a\nb\t\"\\Aé""#).unwrap(),
            Json::Str("a\nb\t\"\\Aé".into())
        );
        // Surrogate pair for 😀 (U+1F600), raw and escaped.
        assert_eq!(parse(r#""😀""#).unwrap(), Json::Str("😀".into()));
        assert_eq!(parse("\"\\ud83d\\ude00\"").unwrap(), Json::Str("😀".into()));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\":}",
            "[1 2]",
            r#""\q""#,
            r#""\ud83d""#,
            "nul",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn integer_detection() {
        assert!(parse("7").unwrap().is_integer());
        assert!(parse("7.0").unwrap().is_integer());
        assert!(!parse("7.5").unwrap().is_integer());
        assert_eq!(parse("-1").unwrap().as_u64(), None);
    }
}
