//! # qar-trace — pipeline observability without external dependencies
//!
//! The miner runs long passes over large tables; a server-grade deployment
//! has to be able to *watch* a run (per-pass candidate counts, prune
//! effectiveness, per-shard scan times), *bound* it (deadlines), and
//! *abort* it (cooperative cancellation) — without pulling in `tracing`,
//! `serde`, or `tokio`, none of which are available to this offline build.
//! Like `qar-prng`, this crate reimplements the small slice the workspace
//! actually needs:
//!
//! * [`TraceEvent`] — one structured event per pipeline milestone (run
//!   started, pass started/finished, run finished, cancelled), with
//!   one-line JSON and human-readable text renderings;
//! * [`ProgressSink`] — the callback trait a mining run emits events into,
//!   with [`NullSink`], [`CollectingSink`], and [`WriterSink`]
//!   implementations;
//! * [`CancelToken`] — a cloneable cancellation flag with optional
//!   deadline, checked cooperatively at pass and shard boundaries;
//! * [`json`] — a minimal JSON value parser (events are hand-serialized;
//!   the parser exists so tests and the `qar trace-check` validator can
//!   read them back);
//! * [`schema`] — a validator for the checked-in trace-event JSON schema
//!   (`schemas/trace_events.schema.json`), used by CI to catch silent
//!   event drift.
//!
//! [`TraceEvent`]: event::TraceEvent
//! [`ProgressSink`]: sink::ProgressSink
//! [`NullSink`]: sink::NullSink
//! [`CollectingSink`]: sink::CollectingSink
//! [`WriterSink`]: sink::WriterSink
//! [`CancelToken`]: cancel::CancelToken

#![warn(missing_docs)]

pub mod cancel;
pub mod event;
pub mod json;
pub mod schema;
pub mod sink;

pub use cancel::CancelToken;
pub use event::TraceEvent;
pub use schema::Schema;
pub use sink::{CollectingSink, NullSink, ProgressSink, TraceFormat, WriterSink};
