//! Progress sinks: where a mining run sends its [`TraceEvent`]s.

use std::fmt;
use std::io::Write;
use std::str::FromStr;
use std::sync::Mutex;

use crate::event::TraceEvent;

/// Receiver for trace events emitted during a mining run.
///
/// Implementations must be `Send + Sync` because counting passes run on
/// scoped worker threads; events themselves are only emitted from the
/// coordinating thread, but the sink travels with the run. `on_event`
/// must not panic — the miner treats sinks as pure observers.
pub trait ProgressSink: Send + Sync {
    /// Called once per event, in emission order.
    fn on_event(&self, event: &TraceEvent);
}

/// A sink that discards every event.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl ProgressSink for NullSink {
    fn on_event(&self, _event: &TraceEvent) {}
}

/// A sink that buffers every event in memory, for tests and callers that
/// want to inspect a run after the fact.
#[derive(Debug, Default)]
pub struct CollectingSink {
    events: Mutex<Vec<TraceEvent>>,
}

impl CollectingSink {
    /// An empty sink.
    pub fn new() -> Self {
        CollectingSink::default()
    }

    /// A copy of every event received so far.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().expect("sink mutex poisoned").clone()
    }

    /// Remove and return the buffered events, leaving the sink empty.
    pub fn drain(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.events.lock().expect("sink mutex poisoned"))
    }

    /// Number of events buffered.
    pub fn len(&self) -> usize {
        self.events.lock().expect("sink mutex poisoned").len()
    }

    /// True when no events have been received (or all were drained).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl ProgressSink for CollectingSink {
    fn on_event(&self, event: &TraceEvent) {
        self.events
            .lock()
            .expect("sink mutex poisoned")
            .push(event.clone());
    }
}

/// Rendering used by [`WriterSink`] and the CLI's `--trace` flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// One JSON object per line (machine-readable, schema-checked).
    Json,
    /// One human-readable line per event.
    Text,
}

impl FromStr for TraceFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "json" => Ok(TraceFormat::Json),
            "text" => Ok(TraceFormat::Text),
            other => Err(format!(
                "unknown trace format '{other}' (expected json|text)"
            )),
        }
    }
}

impl fmt::Display for TraceFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TraceFormat::Json => "json",
            TraceFormat::Text => "text",
        })
    }
}

/// A sink that writes each event as one line to a [`Write`] target.
///
/// Write errors are deliberately swallowed: tracing is an observer and
/// must never abort the mining run it is watching (e.g. when stderr is a
/// closed pipe).
pub struct WriterSink<W: Write + Send> {
    format: TraceFormat,
    writer: Mutex<W>,
}

impl<W: Write + Send> WriterSink<W> {
    /// Wrap `writer`, rendering each event in `format`.
    pub fn new(format: TraceFormat, writer: W) -> Self {
        WriterSink {
            format,
            writer: Mutex::new(writer),
        }
    }

    /// Unwrap the inner writer (flushing is the caller's business).
    pub fn into_inner(self) -> W {
        self.writer.into_inner().expect("sink mutex poisoned")
    }
}

impl<W: Write + Send> ProgressSink for WriterSink<W> {
    fn on_event(&self, event: &TraceEvent) {
        let line = match self.format {
            TraceFormat::Json => event.to_json(),
            TraceFormat::Text => event.to_string(),
        };
        let mut writer = self.writer.lock().expect("sink mutex poisoned");
        let _ = writeln!(writer, "{line}");
    }
}

impl<W: Write + Send> fmt::Debug for WriterSink<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WriterSink")
            .field("format", &self.format)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceEvent {
        TraceEvent::PassStarted {
            pass: 2,
            candidates: 7,
        }
    }

    #[test]
    fn collecting_sink_preserves_order_and_drains() {
        let sink = CollectingSink::new();
        assert!(sink.is_empty());
        sink.on_event(&sample());
        sink.on_event(&TraceEvent::RunFinished {
            passes: 2,
            frequent_total: 3,
            elapsed_us: 10,
        });
        assert_eq!(sink.len(), 2);
        let events = sink.drain();
        assert_eq!(events[0], sample());
        assert_eq!(events[1].name(), "run_finished");
        assert!(sink.is_empty());
    }

    #[test]
    fn writer_sink_renders_one_line_per_event() {
        let json = WriterSink::new(TraceFormat::Json, Vec::new());
        json.on_event(&sample());
        json.on_event(&sample());
        let out = String::from_utf8(json.into_inner()).unwrap();
        assert_eq!(out.lines().count(), 2);
        assert!(out.starts_with("{\"event\":\"pass_started\""), "{out}");

        let text = WriterSink::new(TraceFormat::Text, Vec::new());
        text.on_event(&sample());
        let out = String::from_utf8(text.into_inner()).unwrap();
        assert!(out.contains("pass 2"), "{out}");
    }

    #[test]
    fn trace_format_parses() {
        assert_eq!("json".parse::<TraceFormat>(), Ok(TraceFormat::Json));
        assert_eq!("text".parse::<TraceFormat>(), Ok(TraceFormat::Text));
        assert!("yaml".parse::<TraceFormat>().is_err());
        assert_eq!(TraceFormat::Json.to_string(), "json");
    }

    #[test]
    fn null_sink_is_send_sync() {
        fn assert_sink<S: ProgressSink>(_: &S) {}
        assert_sink(&NullSink);
        assert_sink(&CollectingSink::new());
    }
}
