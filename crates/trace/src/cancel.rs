//! Cooperative cancellation with optional deadlines.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cloneable cancellation flag, optionally armed with a deadline.
///
/// Cancellation is *cooperative*: the miner checks the token at pass
/// boundaries and periodically inside each shard's record scan, so a
/// cancelled run stops within roughly one check interval of work and
/// returns the statistics of the passes it completed. Cloning is cheap
/// (one `Arc`); all clones observe the same flag.
///
/// ```
/// use qar_trace::CancelToken;
///
/// let token = CancelToken::new();
/// let observer = token.clone();
/// assert!(!observer.is_cancelled());
/// token.cancel();
/// assert!(observer.is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that only cancels when [`CancelToken::cancel`] is called.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// A token that additionally reports cancelled once `timeout` has
    /// elapsed from now.
    pub fn with_deadline(timeout: Duration) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Some(Instant::now() + timeout),
            }),
        }
    }

    /// Request cancellation. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// True once [`CancelToken::cancel`] was called or the deadline (if
    /// any) has passed.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Acquire) || self.deadline_exceeded()
    }

    /// True when this token has a deadline and it has passed — lets
    /// reporting distinguish "aborted by the caller" from "timed out".
    pub fn deadline_exceeded(&self) -> bool {
        self.inner.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_cancel_propagates_to_clones() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled() && !b.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled());
        assert!(!a.deadline_exceeded());
    }

    #[test]
    fn zero_deadline_is_immediately_cancelled() {
        let t = CancelToken::with_deadline(Duration::ZERO);
        assert!(t.is_cancelled());
        assert!(t.deadline_exceeded());
    }

    #[test]
    fn far_deadline_is_not_cancelled_yet() {
        let t = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!t.is_cancelled());
        t.cancel();
        assert!(t.is_cancelled());
        assert!(!t.deadline_exceeded());
    }
}
