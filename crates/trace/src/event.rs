//! Structured trace events emitted by a mining run.
//!
//! One event per pipeline milestone. The JSON rendering is one object per
//! line (JSON-lines) with an `"event"` discriminator, matching the
//! checked-in schema in `schemas/trace_events.schema.json`; the text
//! rendering (via [`std::fmt::Display`]) is for humans watching a run.
//!
//! Durations are reported in integer microseconds so events stay exact
//! under JSON's double-precision numbers.

use std::fmt;
use std::time::Duration;

/// Convert a duration to whole microseconds (the unit every event uses).
pub fn micros(d: Duration) -> u64 {
    d.as_micros() as u64
}

/// One observability event from the mining pipeline.
///
/// Pass numbering is 1-based and matches the paper: pass 1 counts single
/// values/ranges, pass `k ≥ 2` counts the `C_k` candidates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A mining run began (emitted before pass 1).
    RunStarted {
        /// Records in the encoded table.
        rows: u64,
        /// Attributes in the schema.
        attributes: usize,
        /// Absolute minimum support count derived from `min_support`.
        min_count: u64,
        /// Absolute maximum combined-range support count.
        max_count: u64,
        /// Worker threads the counting passes may use.
        parallelism: usize,
    },
    /// A pass is about to scan the table. `candidates` is `|C_k|` for
    /// `k ≥ 2` and 0 for pass 1 (pass 1 has no candidate set — every
    /// value is counted).
    PassStarted {
        /// 1-based pass number (= itemset size `k`).
        pass: usize,
        /// Candidates to be counted this pass.
        candidates: usize,
    },
    /// A pass completed, with its statistics.
    PassFinished {
        /// 1-based pass number.
        pass: usize,
        /// Candidates counted (0 for pass 1).
        candidates: usize,
        /// Itemsets that met minimum support.
        frequent: usize,
        /// Frequent items deleted by the Lemma 5 interest prune (pass 1
        /// only; 0 elsewhere).
        pruned: usize,
        /// Super-candidates formed (0 for pass 1).
        super_candidates: usize,
        /// Super-candidates counted by the dense-array backend.
        array_backed: usize,
        /// Super-candidates counted by the R*-tree backend.
        rtree_backed: usize,
        /// Total nodes across the pass's categorical hash trees.
        hash_tree_nodes: usize,
        /// Estimated peak bytes of counting structures across all shards.
        counter_bytes: usize,
        /// Wall-clock of the record scan, µs.
        scan_us: u64,
        /// Wall-clock of merging per-shard tallies, µs (0 when serial).
        merge_us: u64,
        /// Per-shard busy time of the scan, µs, in shard order.
        shard_scan_us: Vec<u64>,
        /// True when the scan ran its shards on the persistent worker
        /// pool (more than one shard); false for a serial scan.
        pooled: bool,
        /// True when the categorical-tuple memo cache was enabled.
        memoized: bool,
        /// Distinct categorical tuples admitted to the memo caches,
        /// summed over shards (0 when memoization was off).
        distinct_tuples: usize,
        /// Rows answered from a memo cache instead of a hash-tree walk,
        /// summed over shards.
        memo_hits: u64,
        /// Scan kernel that counted the pass: `"direct"`, `"memoized"`, or
        /// `"bitmask"` when every shard resolved the same way, `"mixed"`
        /// otherwise.
        kernel: String,
    },
    /// The run completed (all frequent itemsets found).
    RunFinished {
        /// Number of passes executed (including pass 1).
        passes: usize,
        /// Total frequent itemsets across all levels.
        frequent_total: usize,
        /// Wall-clock of the whole frequent-itemset phase, µs.
        elapsed_us: u64,
    },
    /// The run was cancelled before completing.
    Cancelled {
        /// Pass during (or before) which cancellation was observed.
        pass: usize,
        /// True when a deadline expired, false for an explicit abort.
        deadline: bool,
    },
    /// A rule catalog was serialized (`qar-store`'s `.qarcat` format).
    CatalogSaved {
        /// Rules written to the catalog.
        rules: usize,
        /// Total encoded size in bytes (header + sections).
        bytes: u64,
        /// Wall-clock of encode + write, µs.
        elapsed_us: u64,
    },
    /// A rule catalog was opened and decoded (checksums verified).
    CatalogLoaded {
        /// Rules the catalog holds.
        rules: usize,
        /// Total encoded size in bytes.
        bytes: u64,
        /// Wall-clock of read + decode, µs.
        elapsed_us: u64,
    },
    /// The in-memory query index over a catalog was built.
    IndexBuilt {
        /// Rules indexed.
        rules: usize,
        /// Entries across the categorical posting lists.
        posting_entries: usize,
        /// Entries across the R*-tree interval indexes.
        interval_entries: usize,
        /// Wall-clock of the index build, µs.
        elapsed_us: u64,
    },
    /// The rule-serving daemon (`qar serve`) is listening.
    ServerStarted {
        /// TCP port the listener bound (the OS's pick when `--port 0`).
        port: u16,
        /// Worker threads carrying connections.
        threads: usize,
        /// Catalogs loaded at startup.
        catalogs: usize,
    },
    /// A client connection was accepted.
    ConnectionOpened {
        /// Server-assigned connection number (1-based, monotonic).
        conn: u64,
    },
    /// A client connection ended (clean close or error).
    ConnectionClosed {
        /// Connection number from [`TraceEvent::ConnectionOpened`].
        conn: u64,
        /// Requests the connection served, including failed ones.
        requests: u64,
    },
    /// One request was answered (every request emits exactly one).
    RequestServed {
        /// Connection number serving the request.
        conn: u64,
        /// Request kind: `ping`, `point`, `range`, `top_k`, `batch`,
        /// `reload`, `info`, or `shutdown`.
        kind: String,
        /// False when the response was a structured error.
        ok: bool,
        /// Queries inside the request (1, or the batch length).
        items: usize,
        /// Rule ids returned across all queries in the request.
        results: usize,
        /// Wall-clock from decoded request to encoded response, µs.
        elapsed_us: u64,
    },
    /// Rule-quality analytics (lift, conviction, chi², J-measure,
    /// Shapley attribution) were computed for a ruleset — on the mine
    /// path (`qar mine --analytics`) or as a backfill (`qar analyze`).
    AnalyticsComputed {
        /// Rules the analytics cover.
        rules: usize,
        /// Monte-Carlo permutation samples per Shapley estimate.
        shapley_samples: u32,
        /// Wall-clock of the whole analytics computation, µs.
        elapsed_us: u64,
    },
    /// A distributed-mining worker connected and received its row
    /// partition (count-distribution coordinator side).
    WorkerJoined {
        /// 0-based worker index at the coordinator.
        worker: usize,
        /// Peer address the worker connected from.
        addr: String,
        /// Rows in the partition streamed to the worker.
        rows: u64,
    },
    /// The coordinator merged one pass's count vectors from all workers.
    PassMerged {
        /// 1-based pass number (matches [`TraceEvent::PassStarted`]).
        pass: usize,
        /// Workers whose counts were merged.
        workers: usize,
        /// Candidates counted this pass (0 for pass 1's histograms).
        candidates: usize,
        /// Wall-clock from dispatch to merged tallies, µs.
        elapsed_us: u64,
    },
    /// A worker connection failed mid-run; the coordinator recovers by
    /// recounting the lost partition locally.
    WorkerLost {
        /// 0-based worker index at the coordinator.
        worker: usize,
        /// Pass during which the loss was observed.
        pass: usize,
        /// Human-readable failure reason.
        detail: String,
    },
    /// A catalog's `COUNTS` section (persisted raw support tallies for
    /// incremental updates) was written.
    CountsSaved {
        /// Counting passes the section records (pass 1 histograms plus
        /// each candidate pass).
        passes: usize,
        /// Candidate itemsets tallied across all counting passes.
        itemsets: usize,
        /// Encoded size of the section payload in bytes.
        bytes: u64,
    },
    /// A catalog's `COUNTS` section was decoded (checksums verified).
    CountsLoaded {
        /// Counting passes the section records.
        passes: usize,
        /// Candidate itemsets tallied across all counting passes.
        itemsets: usize,
        /// Rows of the table the counts were taken over.
        rows: u64,
    },
    /// An incremental update merged persisted base counts with a
    /// delta-only scan (no base row was re-read).
    IncrementalUpdate {
        /// Rows covered by the persisted base counts.
        base_rows: u64,
        /// Appended rows scanned by this update.
        delta_rows: u64,
        /// Rows covered by the refreshed counts (base + delta).
        total_rows: u64,
        /// Passes of the merged run (pass 1 plus candidate passes).
        passes: usize,
        /// Wall-clock of the whole update, µs.
        elapsed_us: u64,
    },
    /// An incremental update could not proceed and fell back to a full
    /// re-mine (or failed, when no base rows were available).
    IncrementalFallback {
        /// Why the persisted counts could not be updated in place.
        reason: String,
    },
    /// A `RELOAD` control frame swapped in a fresh catalog.
    CatalogReloaded {
        /// Name of the reloaded catalog slot.
        catalog: String,
        /// Generation number after the swap (starts at 1 on load).
        generation: u64,
        /// Rules in the new catalog.
        rules: usize,
        /// Wall-clock of load + index rebuild + swap, µs.
        elapsed_us: u64,
    },
}

/// Render a string as a JSON string literal (quotes included), escaping
/// per RFC 8259.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl TraceEvent {
    /// The event's JSON-lines discriminator (`"event"` field value).
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::RunStarted { .. } => "run_started",
            TraceEvent::PassStarted { .. } => "pass_started",
            TraceEvent::PassFinished { .. } => "pass_finished",
            TraceEvent::RunFinished { .. } => "run_finished",
            TraceEvent::Cancelled { .. } => "cancelled",
            TraceEvent::CatalogSaved { .. } => "catalog_saved",
            TraceEvent::CatalogLoaded { .. } => "catalog_loaded",
            TraceEvent::IndexBuilt { .. } => "index_built",
            TraceEvent::ServerStarted { .. } => "server_started",
            TraceEvent::ConnectionOpened { .. } => "connection_opened",
            TraceEvent::ConnectionClosed { .. } => "connection_closed",
            TraceEvent::RequestServed { .. } => "request_served",
            TraceEvent::AnalyticsComputed { .. } => "analytics_computed",
            TraceEvent::WorkerJoined { .. } => "worker_joined",
            TraceEvent::PassMerged { .. } => "pass_merged",
            TraceEvent::WorkerLost { .. } => "worker_lost",
            TraceEvent::CountsSaved { .. } => "counts_saved",
            TraceEvent::CountsLoaded { .. } => "counts_loaded",
            TraceEvent::IncrementalUpdate { .. } => "incremental_update",
            TraceEvent::IncrementalFallback { .. } => "incremental_fallback",
            TraceEvent::CatalogReloaded { .. } => "catalog_reloaded",
        }
    }

    /// Render as a single JSON-lines object (no trailing newline).
    pub fn to_json(&self) -> String {
        match self {
            TraceEvent::RunStarted {
                rows,
                attributes,
                min_count,
                max_count,
                parallelism,
            } => format!(
                "{{\"event\":\"run_started\",\"rows\":{rows},\"attributes\":{attributes},\
                 \"min_count\":{min_count},\"max_count\":{max_count},\"parallelism\":{parallelism}}}"
            ),
            TraceEvent::PassStarted { pass, candidates } => format!(
                "{{\"event\":\"pass_started\",\"pass\":{pass},\"candidates\":{candidates}}}"
            ),
            TraceEvent::PassFinished {
                pass,
                candidates,
                frequent,
                pruned,
                super_candidates,
                array_backed,
                rtree_backed,
                hash_tree_nodes,
                counter_bytes,
                scan_us,
                merge_us,
                shard_scan_us,
                pooled,
                memoized,
                distinct_tuples,
                memo_hits,
                kernel,
            } => {
                let shards: Vec<String> =
                    shard_scan_us.iter().map(|us| us.to_string()).collect();
                format!(
                    "{{\"event\":\"pass_finished\",\"pass\":{pass},\"candidates\":{candidates},\
                     \"frequent\":{frequent},\"pruned\":{pruned},\
                     \"super_candidates\":{super_candidates},\"array_backed\":{array_backed},\
                     \"rtree_backed\":{rtree_backed},\"hash_tree_nodes\":{hash_tree_nodes},\
                     \"counter_bytes\":{counter_bytes},\"scan_us\":{scan_us},\
                     \"merge_us\":{merge_us},\"shard_scan_us\":[{}],\
                     \"pooled\":{pooled},\"memoized\":{memoized},\
                     \"distinct_tuples\":{distinct_tuples},\"memo_hits\":{memo_hits},\
                     \"kernel\":{}}}",
                    shards.join(","),
                    json_str(kernel)
                )
            }
            TraceEvent::RunFinished {
                passes,
                frequent_total,
                elapsed_us,
            } => format!(
                "{{\"event\":\"run_finished\",\"passes\":{passes},\
                 \"frequent_total\":{frequent_total},\"elapsed_us\":{elapsed_us}}}"
            ),
            TraceEvent::Cancelled { pass, deadline } => format!(
                "{{\"event\":\"cancelled\",\"pass\":{pass},\"deadline\":{deadline}}}"
            ),
            TraceEvent::CatalogSaved {
                rules,
                bytes,
                elapsed_us,
            } => format!(
                "{{\"event\":\"catalog_saved\",\"rules\":{rules},\"bytes\":{bytes},\
                 \"elapsed_us\":{elapsed_us}}}"
            ),
            TraceEvent::CatalogLoaded {
                rules,
                bytes,
                elapsed_us,
            } => format!(
                "{{\"event\":\"catalog_loaded\",\"rules\":{rules},\"bytes\":{bytes},\
                 \"elapsed_us\":{elapsed_us}}}"
            ),
            TraceEvent::IndexBuilt {
                rules,
                posting_entries,
                interval_entries,
                elapsed_us,
            } => format!(
                "{{\"event\":\"index_built\",\"rules\":{rules},\
                 \"posting_entries\":{posting_entries},\
                 \"interval_entries\":{interval_entries},\"elapsed_us\":{elapsed_us}}}"
            ),
            TraceEvent::ServerStarted {
                port,
                threads,
                catalogs,
            } => format!(
                "{{\"event\":\"server_started\",\"port\":{port},\"threads\":{threads},\
                 \"catalogs\":{catalogs}}}"
            ),
            TraceEvent::ConnectionOpened { conn } => {
                format!("{{\"event\":\"connection_opened\",\"conn\":{conn}}}")
            }
            TraceEvent::ConnectionClosed { conn, requests } => format!(
                "{{\"event\":\"connection_closed\",\"conn\":{conn},\"requests\":{requests}}}"
            ),
            TraceEvent::RequestServed {
                conn,
                kind,
                ok,
                items,
                results,
                elapsed_us,
            } => format!(
                "{{\"event\":\"request_served\",\"conn\":{conn},\"kind\":{},\
                 \"ok\":{ok},\"items\":{items},\"results\":{results},\
                 \"elapsed_us\":{elapsed_us}}}",
                json_str(kind)
            ),
            TraceEvent::AnalyticsComputed {
                rules,
                shapley_samples,
                elapsed_us,
            } => format!(
                "{{\"event\":\"analytics_computed\",\"rules\":{rules},\
                 \"shapley_samples\":{shapley_samples},\"elapsed_us\":{elapsed_us}}}"
            ),
            TraceEvent::WorkerJoined { worker, addr, rows } => format!(
                "{{\"event\":\"worker_joined\",\"worker\":{worker},\"addr\":{},\
                 \"rows\":{rows}}}",
                json_str(addr)
            ),
            TraceEvent::PassMerged {
                pass,
                workers,
                candidates,
                elapsed_us,
            } => format!(
                "{{\"event\":\"pass_merged\",\"pass\":{pass},\"workers\":{workers},\
                 \"candidates\":{candidates},\"elapsed_us\":{elapsed_us}}}"
            ),
            TraceEvent::WorkerLost {
                worker,
                pass,
                detail,
            } => format!(
                "{{\"event\":\"worker_lost\",\"worker\":{worker},\"pass\":{pass},\
                 \"detail\":{}}}",
                json_str(detail)
            ),
            TraceEvent::CountsSaved {
                passes,
                itemsets,
                bytes,
            } => format!(
                "{{\"event\":\"counts_saved\",\"passes\":{passes},\
                 \"itemsets\":{itemsets},\"bytes\":{bytes}}}"
            ),
            TraceEvent::CountsLoaded {
                passes,
                itemsets,
                rows,
            } => format!(
                "{{\"event\":\"counts_loaded\",\"passes\":{passes},\
                 \"itemsets\":{itemsets},\"rows\":{rows}}}"
            ),
            TraceEvent::IncrementalUpdate {
                base_rows,
                delta_rows,
                total_rows,
                passes,
                elapsed_us,
            } => format!(
                "{{\"event\":\"incremental_update\",\"base_rows\":{base_rows},\
                 \"delta_rows\":{delta_rows},\"total_rows\":{total_rows},\
                 \"passes\":{passes},\"elapsed_us\":{elapsed_us}}}"
            ),
            TraceEvent::IncrementalFallback { reason } => format!(
                "{{\"event\":\"incremental_fallback\",\"reason\":{}}}",
                json_str(reason)
            ),
            TraceEvent::CatalogReloaded {
                catalog,
                generation,
                rules,
                elapsed_us,
            } => format!(
                "{{\"event\":\"catalog_reloaded\",\"catalog\":{},\
                 \"generation\":{generation},\"rules\":{rules},\
                 \"elapsed_us\":{elapsed_us}}}",
                json_str(catalog)
            ),
        }
    }
}

fn fmt_us(us: u64) -> String {
    if us < 1_000 {
        format!("{us} µs")
    } else if us < 1_000_000 {
        format!("{:.2} ms", us as f64 / 1e3)
    } else {
        format!("{:.3} s", us as f64 / 1e6)
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::RunStarted {
                rows,
                attributes,
                min_count,
                max_count,
                parallelism,
            } => write!(
                f,
                "run started: {rows} rows × {attributes} attributes, \
                 min count {min_count}, max count {max_count}, {parallelism} thread(s)"
            ),
            TraceEvent::PassStarted { pass, candidates } => {
                if *candidates == 0 {
                    write!(f, "pass {pass}: counting single values/ranges")
                } else {
                    write!(f, "pass {pass}: counting {candidates} candidates")
                }
            }
            TraceEvent::PassFinished {
                pass,
                candidates,
                frequent,
                pruned,
                super_candidates,
                array_backed,
                rtree_backed,
                hash_tree_nodes,
                counter_bytes,
                scan_us,
                merge_us,
                shard_scan_us,
                pooled: _,
                memoized,
                distinct_tuples: _,
                memo_hits,
                kernel,
            } => {
                write!(
                    f,
                    "pass {pass} done: {candidates} candidates -> {frequent} frequent"
                )?;
                if *pruned > 0 {
                    write!(f, " ({pruned} interest-pruned)")?;
                }
                if *super_candidates > 0 {
                    write!(
                        f,
                        " | {super_candidates} super-candidates \
                         ({array_backed} array, {rtree_backed} rtree)"
                    )?;
                }
                write!(
                    f,
                    " | scan {} over {} shard(s)",
                    fmt_us(*scan_us),
                    shard_scan_us.len().max(1)
                )?;
                if *merge_us > 0 {
                    write!(f, " | merge {}", fmt_us(*merge_us))?;
                }
                if *hash_tree_nodes > 0 {
                    write!(f, " | tree nodes {hash_tree_nodes}")?;
                }
                if *counter_bytes > 0 {
                    write!(f, " | counters ~{} KiB", counter_bytes / 1024)?;
                }
                if *memoized && *memo_hits > 0 {
                    write!(f, " | memo hits {memo_hits}")?;
                }
                if !kernel.is_empty() {
                    write!(f, " | kernel {kernel}")?;
                }
                Ok(())
            }
            TraceEvent::RunFinished {
                passes,
                frequent_total,
                elapsed_us,
            } => write!(
                f,
                "run finished: {frequent_total} frequent itemsets over \
                 {passes} pass(es) in {}",
                fmt_us(*elapsed_us)
            ),
            TraceEvent::Cancelled { pass, deadline } => write!(
                f,
                "run cancelled during pass {pass} ({})",
                if *deadline {
                    "deadline exceeded"
                } else {
                    "caller abort"
                }
            ),
            TraceEvent::CatalogSaved {
                rules,
                bytes,
                elapsed_us,
            } => write!(
                f,
                "catalog saved: {rules} rule(s), {bytes} bytes in {}",
                fmt_us(*elapsed_us)
            ),
            TraceEvent::CatalogLoaded {
                rules,
                bytes,
                elapsed_us,
            } => write!(
                f,
                "catalog loaded: {rules} rule(s), {bytes} bytes in {}",
                fmt_us(*elapsed_us)
            ),
            TraceEvent::IndexBuilt {
                rules,
                posting_entries,
                interval_entries,
                elapsed_us,
            } => write!(
                f,
                "index built: {rules} rule(s), {posting_entries} posting + \
                 {interval_entries} interval entries in {}",
                fmt_us(*elapsed_us)
            ),
            TraceEvent::ServerStarted {
                port,
                threads,
                catalogs,
            } => write!(
                f,
                "server started: port {port}, {threads} worker(s), \
                 {catalogs} catalog(s)"
            ),
            TraceEvent::ConnectionOpened { conn } => {
                write!(f, "connection {conn} opened")
            }
            TraceEvent::ConnectionClosed { conn, requests } => {
                write!(f, "connection {conn} closed after {requests} request(s)")
            }
            TraceEvent::RequestServed {
                conn,
                kind,
                ok,
                items,
                results,
                elapsed_us,
            } => write!(
                f,
                "conn {conn}: {kind} x{items} -> {} ({results} id(s)) in {}",
                if *ok { "ok" } else { "error" },
                fmt_us(*elapsed_us)
            ),
            TraceEvent::AnalyticsComputed {
                rules,
                shapley_samples,
                elapsed_us,
            } => write!(
                f,
                "analytics computed: {rules} rule(s), \
                 {shapley_samples} Shapley sample(s) in {}",
                fmt_us(*elapsed_us)
            ),
            TraceEvent::WorkerJoined { worker, addr, rows } => write!(
                f,
                "worker {worker} joined from {addr}: {rows} row(s) assigned"
            ),
            TraceEvent::PassMerged {
                pass,
                workers,
                candidates,
                elapsed_us,
            } => write!(
                f,
                "pass {pass} merged from {workers} worker(s) \
                 ({candidates} candidate(s)) in {}",
                fmt_us(*elapsed_us)
            ),
            TraceEvent::WorkerLost {
                worker,
                pass,
                detail,
            } => write!(f, "worker {worker} lost during pass {pass}: {detail}"),
            TraceEvent::CountsSaved {
                passes,
                itemsets,
                bytes,
            } => write!(
                f,
                "support counts saved: {passes} pass(es), \
                 {itemsets} itemset tally(ies), {bytes} bytes"
            ),
            TraceEvent::CountsLoaded {
                passes,
                itemsets,
                rows,
            } => write!(
                f,
                "support counts loaded: {passes} pass(es), \
                 {itemsets} itemset tally(ies) over {rows} row(s)"
            ),
            TraceEvent::IncrementalUpdate {
                base_rows,
                delta_rows,
                total_rows,
                passes,
                elapsed_us,
            } => write!(
                f,
                "incremental update: {base_rows} base + {delta_rows} delta \
                 -> {total_rows} row(s), {passes} pass(es) in {}",
                fmt_us(*elapsed_us)
            ),
            TraceEvent::IncrementalFallback { reason } => {
                write!(
                    f,
                    "incremental update fell back to a full re-mine: {reason}"
                )
            }
            TraceEvent::CatalogReloaded {
                catalog,
                generation,
                rules,
                elapsed_us,
            } => write!(
                f,
                "catalog \"{catalog}\" reloaded: generation {generation}, \
                 {rules} rule(s) in {}",
                fmt_us(*elapsed_us)
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Json};

    fn sample_pass_finished() -> TraceEvent {
        TraceEvent::PassFinished {
            pass: 2,
            candidates: 120,
            frequent: 14,
            pruned: 0,
            super_candidates: 6,
            array_backed: 5,
            rtree_backed: 1,
            hash_tree_nodes: 9,
            counter_bytes: 4096,
            scan_us: 1500,
            merge_us: 20,
            shard_scan_us: vec![700, 750],
            pooled: true,
            memoized: true,
            distinct_tuples: 40,
            memo_hits: 3800,
            kernel: "memoized".to_string(),
        }
    }

    #[test]
    fn json_round_trips_through_parser() {
        let events = [
            TraceEvent::RunStarted {
                rows: 4000,
                attributes: 4,
                min_count: 400,
                max_count: 1200,
                parallelism: 4,
            },
            TraceEvent::PassStarted {
                pass: 2,
                candidates: 120,
            },
            sample_pass_finished(),
            TraceEvent::RunFinished {
                passes: 3,
                frequent_total: 44,
                elapsed_us: 9001,
            },
            TraceEvent::Cancelled {
                pass: 3,
                deadline: true,
            },
            TraceEvent::CatalogSaved {
                rules: 44,
                bytes: 18_000,
                elapsed_us: 210,
            },
            TraceEvent::CatalogLoaded {
                rules: 44,
                bytes: 18_000,
                elapsed_us: 95,
            },
            TraceEvent::IndexBuilt {
                rules: 44,
                posting_entries: 30,
                interval_entries: 52,
                elapsed_us: 40,
            },
            TraceEvent::ServerStarted {
                port: 7979,
                threads: 4,
                catalogs: 2,
            },
            TraceEvent::ConnectionOpened { conn: 3 },
            TraceEvent::ConnectionClosed {
                conn: 3,
                requests: 17,
            },
            TraceEvent::RequestServed {
                conn: 3,
                kind: "batch".into(),
                ok: true,
                items: 16,
                results: 240,
                elapsed_us: 85,
            },
            TraceEvent::AnalyticsComputed {
                rules: 44,
                shapley_samples: 64,
                elapsed_us: 1200,
            },
            TraceEvent::WorkerJoined {
                worker: 1,
                addr: "127.0.0.1:4921".into(),
                rows: 5000,
            },
            TraceEvent::PassMerged {
                pass: 2,
                workers: 2,
                candidates: 120,
                elapsed_us: 800,
            },
            TraceEvent::WorkerLost {
                worker: 1,
                pass: 3,
                detail: "read timed out".into(),
            },
            TraceEvent::CountsSaved {
                passes: 3,
                itemsets: 310,
                bytes: 5200,
            },
            TraceEvent::CountsLoaded {
                passes: 3,
                itemsets: 310,
                rows: 4000,
            },
            TraceEvent::IncrementalUpdate {
                base_rows: 4000,
                delta_rows: 40,
                total_rows: 4040,
                passes: 3,
                elapsed_us: 900,
            },
            TraceEvent::IncrementalFallback {
                reason: "attribute \"x\" is interval-partitioned".into(),
            },
            TraceEvent::CatalogReloaded {
                catalog: "cat \"v2\"\\planted".into(),
                generation: 2,
                rules: 44,
                elapsed_us: 310,
            },
        ];
        for event in events {
            let parsed = parse(&event.to_json()).expect("event JSON parses");
            let obj = parsed.as_object().expect("event is an object");
            assert_eq!(
                obj.get("event").and_then(Json::as_str),
                Some(event.name()),
                "{event:?}"
            );
        }
    }

    #[test]
    fn string_fields_are_escaped() {
        let event = TraceEvent::CatalogReloaded {
            catalog: "a\"b\\c\n\u{1}".into(),
            generation: 1,
            rules: 0,
            elapsed_us: 0,
        };
        let parsed = parse(&event.to_json()).expect("escaped JSON parses");
        assert_eq!(
            parsed
                .as_object()
                .unwrap()
                .get("catalog")
                .and_then(Json::as_str),
            Some("a\"b\\c\n\u{1}")
        );
    }

    #[test]
    fn pass_finished_fields_survive() {
        let parsed = parse(&sample_pass_finished().to_json()).unwrap();
        let obj = parsed.as_object().unwrap();
        assert_eq!(obj.get("pass").unwrap().as_u64(), Some(2));
        assert_eq!(obj.get("candidates").unwrap().as_u64(), Some(120));
        assert_eq!(obj.get("counter_bytes").unwrap().as_u64(), Some(4096));
        let shards = obj.get("shard_scan_us").unwrap().as_array().unwrap();
        assert_eq!(shards.len(), 2);
        assert_eq!(shards[0].as_u64(), Some(700));
        assert_eq!(obj.get("pooled").unwrap().as_bool(), Some(true));
        assert_eq!(obj.get("memoized").unwrap().as_bool(), Some(true));
        assert_eq!(obj.get("distinct_tuples").unwrap().as_u64(), Some(40));
        assert_eq!(obj.get("memo_hits").unwrap().as_u64(), Some(3800));
        assert_eq!(
            obj.get("kernel").unwrap().as_str(),
            Some("memoized"),
            "pass_finished must carry the resolved scan kernel"
        );
    }

    #[test]
    fn text_rendering_mentions_the_pass() {
        let text = sample_pass_finished().to_string();
        assert!(text.contains("pass 2"), "{text}");
        assert!(text.contains("120 candidates"), "{text}");
        assert!(text.contains("2 shard(s)"), "{text}");
        assert!(text.contains("memo hits 3800"), "{text}");
        assert!(text.contains("kernel memoized"), "{text}");
        let cancelled = TraceEvent::Cancelled {
            pass: 4,
            deadline: false,
        }
        .to_string();
        assert!(cancelled.contains("pass 4"), "{cancelled}");
        assert!(cancelled.contains("caller abort"), "{cancelled}");
    }

    #[test]
    fn analytics_computed_fields_survive() {
        let event = TraceEvent::AnalyticsComputed {
            rules: 44,
            shapley_samples: 64,
            elapsed_us: 1200,
        };
        let parsed = parse(&event.to_json()).unwrap();
        let obj = parsed.as_object().unwrap();
        assert_eq!(obj.get("rules").unwrap().as_u64(), Some(44));
        assert_eq!(obj.get("shapley_samples").unwrap().as_u64(), Some(64));
        assert_eq!(obj.get("elapsed_us").unwrap().as_u64(), Some(1200));
        let text = event.to_string();
        assert!(text.contains("44 rule(s)"), "{text}");
        assert!(text.contains("64 Shapley sample(s)"), "{text}");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_us(999), "999 µs");
        assert_eq!(fmt_us(1500), "1.50 ms");
        assert_eq!(fmt_us(2_500_000), "2.500 s");
    }
}
