//! The `qar serve` wire protocol: length-prefixed, CRC-framed request/
//! response messages over TCP.
//!
//! Frame layout (all integers little-endian, reusing the `.qarcat`
//! framing discipline from [`mod@crate::format`]):
//!
//! ```text
//! magic    4 bytes   "QRP" ++ 0x01  (protocol version baked into the magic)
//! tag      u32       message type (request tags 1.., response tags 101..)
//! len      u32       payload length in bytes (<= MAX_PAYLOAD)
//! crc      u32       CRC-32 (IEEE) over tag bytes ++ payload
//! payload  len bytes
//! ```
//!
//! The CRC covers the tag so a bit flip cannot turn one message type into
//! another and still checksum clean — the same argument as the catalog's
//! section framing. Decoding is *canonical and strict*: a payload must be
//! consumed exactly (no trailing bytes), bools must be 0 or 1, and counts
//! are bounded by the remaining input, so `encode → decode → encode` is
//! byte-identical and every single-byte corruption of a valid frame is a
//! structured [`ProtocolError`], never a panic. Floats travel as raw
//! IEEE-754 bits and round-trip bit-exactly (NaN bounds included; the
//! index treats them as matching nothing, same as the CLI).

use crate::error::StoreError;
use crate::format::{crc32, Reader, Writer};
use crate::index::RankBy;
use std::fmt;
use std::io::{self, Read, Write};

/// Frame magic: ASCII "QRP" plus the protocol version byte.
pub const MAGIC: [u8; 4] = *b"QRP\x01";

/// Bytes in the fixed frame header (magic + tag + len + crc).
pub const HEADER_LEN: usize = 16;

/// Hard ceiling on a frame payload (16 MiB) — anything larger is
/// rejected *before* allocation, so a corrupted or hostile length field
/// cannot drive an OOM.
pub const MAX_PAYLOAD: u32 = 1 << 24;

/// Message tags. Requests count from 1, responses from 101, so a peer
/// replaying a request at a client (or vice versa) is a
/// [`ProtocolError::UnknownTag`], not a confused decode.
pub mod tag {
    /// Liveness probe.
    pub const REQ_PING: u32 = 1;
    /// One query against one catalog.
    pub const REQ_QUERY: u32 = 2;
    /// Several queries against one catalog in one round trip.
    pub const REQ_BATCH: u32 = 3;
    /// Reload a catalog slot from its backing file.
    pub const REQ_RELOAD: u32 = 4;
    /// Describe the loaded catalogs.
    pub const REQ_INFO: u32 = 5;
    /// Stop the server.
    pub const REQ_SHUTDOWN: u32 = 6;

    /// Reply to [`REQ_PING`].
    pub const RESP_PONG: u32 = 101;
    /// Rule ids answering a [`REQ_QUERY`].
    pub const RESP_IDS: u32 = 102;
    /// Per-query results answering a [`REQ_BATCH`].
    pub const RESP_BATCH: u32 = 103;
    /// Acknowledges a completed [`REQ_RELOAD`].
    pub const RESP_RELOADED: u32 = 104;
    /// Catalog descriptions answering [`REQ_INFO`].
    pub const RESP_INFO: u32 = 105;
    /// A structured failure (any request can earn one).
    pub const RESP_ERROR: u32 = 106;
    /// Acknowledges a [`REQ_SHUTDOWN`]; the connection closes after.
    pub const RESP_SHUTDOWN: u32 = 107;
}

/// Why a frame or message could not be decoded. Mirrors
/// [`StoreError`]'s taxonomy for the protocol surface.
#[derive(Debug)]
pub enum ProtocolError {
    /// The underlying socket read or write failed.
    Io(io::Error),
    /// The frame does not start with the `QRP` magic/version.
    BadMagic,
    /// The declared payload length exceeds [`MAX_PAYLOAD`].
    Oversized {
        /// The declared length.
        len: u32,
    },
    /// The input ended before the frame or a value was complete.
    Truncated {
        /// Byte offset at which the read was attempted.
        offset: usize,
        /// Bytes needed beyond what remained.
        needed: usize,
    },
    /// The frame CRC does not match tag ++ payload.
    ChecksumMismatch,
    /// The tag names no known message type.
    UnknownTag(u32),
    /// The payload decoded to something structurally invalid.
    Corrupt {
        /// What was wrong.
        detail: String,
    },
    /// A well-formed message was followed by extra payload bytes.
    TrailingBytes {
        /// Offset of the first unexpected byte.
        offset: usize,
    },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Io(e) => write!(f, "protocol I/O error: {e}"),
            ProtocolError::BadMagic => write!(f, "not a qar-serve frame (bad magic)"),
            ProtocolError::Oversized { len } => {
                write!(f, "frame payload of {len} bytes exceeds {MAX_PAYLOAD}")
            }
            ProtocolError::Truncated { offset, needed } => write!(
                f,
                "frame truncated at byte {offset} ({needed} more byte(s) needed)"
            ),
            ProtocolError::ChecksumMismatch => write!(f, "frame checksum mismatch"),
            ProtocolError::UnknownTag(t) => write!(f, "unknown message tag {t}"),
            ProtocolError::Corrupt { detail } => write!(f, "corrupt message: {detail}"),
            ProtocolError::TrailingBytes { offset } => {
                write!(f, "trailing bytes after message (offset {offset})")
            }
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ProtocolError {
    fn from(e: io::Error) -> Self {
        ProtocolError::Io(e)
    }
}

impl From<StoreError> for ProtocolError {
    fn from(e: StoreError) -> Self {
        match e {
            StoreError::Truncated { offset, needed } => ProtocolError::Truncated { offset, needed },
            StoreError::Corrupt { detail, .. } => ProtocolError::Corrupt { detail },
            other => ProtocolError::Corrupt {
                detail: other.to_string(),
            },
        }
    }
}

/// Machine-readable reason on a [`Response::Error`] — the part a client
/// can dispatch on (the message is for humans).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The named catalog slot is not loaded.
    UnknownCatalog = 1,
    /// The request decoded but is semantically invalid.
    BadRequest = 2,
    /// The request's deadline expired before it finished.
    DeadlineExceeded = 3,
    /// A reload failed; the previous catalog generation is still served.
    ReloadFailed = 4,
    /// The frame carried a tag the server does not understand.
    UnknownRequest = 5,
    /// The frame itself was malformed (bad magic, CRC, length).
    BadFrame = 6,
    /// The server failed internally.
    Internal = 7,
}

impl ErrorCode {
    fn from_u8(v: u8) -> Option<ErrorCode> {
        Some(match v {
            1 => ErrorCode::UnknownCatalog,
            2 => ErrorCode::BadRequest,
            3 => ErrorCode::DeadlineExceeded,
            4 => ErrorCode::ReloadFailed,
            5 => ErrorCode::UnknownRequest,
            6 => ErrorCode::BadFrame,
            7 => ErrorCode::Internal,
            _ => return None,
        })
    }
}

/// A structured error on the wire: code for machines, message for logs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Dispatchable reason.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl WireError {
    /// Convenience constructor.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        WireError {
            code,
            message: message.into(),
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}: {}", self.code, self.message)
    }
}

/// Ranking/truncation options shared by point and range queries,
/// mirroring the CLI's `--by` / `--top-k` flags exactly: ranking kicks in
/// when either is set (`--top-k` alone ranks by confidence), and `k = 0`
/// truncates to nothing. The analytics filters run *before* ranking and
/// truncation; they (and the analytics rankings) need the served catalog
/// to carry an analytics section — probe via [`CatalogInfo::analytics`]
/// in the [`Response::Info`] answer, or expect a
/// [`ErrorCode::BadRequest`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct QueryOptions {
    /// Rank matches by this measure before returning.
    pub by: Option<RankBy>,
    /// Keep only the first `k` (after ranking).
    pub top_k: Option<u32>,
    /// Keep only rules with `lift >= min_lift` (NaN lift never passes).
    pub min_lift: Option<f64>,
    /// Keep only rules with BH-adjusted p-value `<= max_p`.
    pub max_p: Option<f64>,
}

/// One query against a catalog's [`crate::RuleIndex`].
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// Rules whose antecedent+consequent all hold for the record
    /// (`RuleIndex::query_record`). Entries are `(attribute, code)`.
    Point {
        /// The record's attribute/code pairs.
        record: Vec<(u32, u32)>,
        /// Ranking/truncation.
        opts: QueryOptions,
    },
    /// Rules mentioning `attr` with an interval overlapping `[lo, hi]`
    /// (`RuleIndex::query_range`).
    Range {
        /// Attribute id.
        attr: u32,
        /// Inclusive lower bound.
        lo: f64,
        /// Inclusive upper bound.
        hi: f64,
        /// Ranking/truncation.
        opts: QueryOptions,
    },
    /// The `k` best rules catalog-wide by one measure
    /// (`RuleIndex::top_k`).
    TopK {
        /// Measure to rank by.
        by: RankBy,
        /// Number of rules to return.
        k: u32,
    },
}

impl Query {
    /// Short name used in `request_served` trace events.
    pub fn kind(&self) -> &'static str {
        match self {
            Query::Point { .. } => "point",
            Query::Range { .. } => "range",
            Query::TopK { .. } => "top_k",
        }
    }
}

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe; answered with [`Response::Pong`].
    Ping,
    /// One query against the named catalog.
    Query {
        /// Catalog slot name.
        catalog: String,
        /// Per-request deadline in milliseconds (`Some(0)` is already
        /// expired — useful for deterministic deadline tests).
        deadline_ms: Option<u32>,
        /// The query.
        query: Query,
    },
    /// Several queries against the named catalog, answered item by item
    /// in one [`Response::Batch`].
    Batch {
        /// Catalog slot name.
        catalog: String,
        /// Deadline shared by the whole batch.
        deadline_ms: Option<u32>,
        /// The queries, answered in order.
        queries: Vec<Query>,
    },
    /// Reload the named catalog slot from its backing `.qarcat` file.
    Reload {
        /// Catalog slot name.
        catalog: String,
    },
    /// Describe every loaded catalog.
    Info,
    /// Stop the server after acknowledging.
    Shutdown,
}

/// Description of one loaded catalog in a [`Response::Info`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatalogInfo {
    /// Slot name (the file stem by default).
    pub name: String,
    /// Reload generation (1 on first load).
    pub generation: u64,
    /// Rules in the currently served generation.
    pub rules: u64,
    /// Whether the served catalog carries an analytics section — the
    /// capability gate for analytics rankings and filters.
    pub analytics: bool,
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Reply to [`Request::Ping`].
    Pong,
    /// Rule ids answering a single query.
    Ids {
        /// Catalog generation that answered (proves which reload a
        /// response saw).
        generation: u64,
        /// Matching rule ids.
        ids: Vec<u32>,
    },
    /// Per-query results answering a [`Request::Batch`]; one entry per
    /// query, in request order.
    Batch {
        /// Catalog generation that answered the whole batch.
        generation: u64,
        /// Each query's ids, or its structured failure.
        items: Vec<Result<Vec<u32>, WireError>>,
    },
    /// A reload completed.
    Reloaded {
        /// Slot that was reloaded.
        catalog: String,
        /// New generation now being served.
        generation: u64,
        /// Rules in the new generation.
        rules: u64,
    },
    /// Catalog descriptions answering [`Request::Info`].
    Info {
        /// One entry per loaded catalog, sorted by name.
        catalogs: Vec<CatalogInfo>,
    },
    /// The request failed; the connection stays usable unless the error
    /// is [`ErrorCode::BadFrame`].
    Error(WireError),
    /// Shutdown acknowledged; no further responses will arrive.
    ShuttingDown,
}

fn rank_by_code(by: RankBy) -> u8 {
    match by {
        RankBy::Support => 1,
        RankBy::Confidence => 2,
        RankBy::Interest => 3,
        RankBy::Lift => 4,
        RankBy::Conviction => 5,
        RankBy::Chi2 => 6,
        RankBy::JMeasure => 7,
    }
}

fn rank_by_from(code: u8, r: &Reader<'_>) -> Result<RankBy, ProtocolError> {
    Ok(match code {
        1 => RankBy::Support,
        2 => RankBy::Confidence,
        3 => RankBy::Interest,
        4 => RankBy::Lift,
        5 => RankBy::Conviction,
        6 => RankBy::Chi2,
        7 => RankBy::JMeasure,
        other => return Err(r.corrupt(format!("unknown rank-by code {other}")).into()),
    })
}

fn put_opt_u32(w: &mut Writer, v: Option<u32>) {
    match v {
        Some(v) => {
            w.put_bool(true);
            w.put_u32(v);
        }
        None => w.put_bool(false),
    }
}

fn get_opt_u32(r: &mut Reader<'_>) -> Result<Option<u32>, ProtocolError> {
    Ok(if r.get_bool()? {
        Some(r.get_u32()?)
    } else {
        None
    })
}

fn put_opt_f64(w: &mut Writer, v: Option<f64>) {
    match v {
        Some(v) => {
            w.put_bool(true);
            w.put_f64(v);
        }
        None => w.put_bool(false),
    }
}

fn get_opt_f64(r: &mut Reader<'_>) -> Result<Option<f64>, ProtocolError> {
    Ok(if r.get_bool()? {
        Some(r.get_f64()?)
    } else {
        None
    })
}

fn put_opts(w: &mut Writer, opts: QueryOptions) {
    w.put_u8(opts.by.map_or(0, rank_by_code));
    put_opt_u32(w, opts.top_k);
    put_opt_f64(w, opts.min_lift);
    put_opt_f64(w, opts.max_p);
}

fn get_opts(r: &mut Reader<'_>) -> Result<QueryOptions, ProtocolError> {
    let by = match r.get_u8()? {
        0 => None,
        code => Some(rank_by_from(code, r)?),
    };
    let top_k = get_opt_u32(r)?;
    let min_lift = get_opt_f64(r)?;
    let max_p = get_opt_f64(r)?;
    Ok(QueryOptions {
        by,
        top_k,
        min_lift,
        max_p,
    })
}

fn put_query(w: &mut Writer, q: &Query) {
    match q {
        Query::Point { record, opts } => {
            w.put_u8(0);
            w.put_u64(record.len() as u64);
            for &(attr, code) in record {
                w.put_u32(attr);
                w.put_u32(code);
            }
            put_opts(w, *opts);
        }
        Query::Range { attr, lo, hi, opts } => {
            w.put_u8(1);
            w.put_u32(*attr);
            w.put_f64(*lo);
            w.put_f64(*hi);
            put_opts(w, *opts);
        }
        Query::TopK { by, k } => {
            w.put_u8(2);
            w.put_u8(rank_by_code(*by));
            w.put_u32(*k);
        }
    }
}

fn get_query(r: &mut Reader<'_>) -> Result<Query, ProtocolError> {
    Ok(match r.get_u8()? {
        0 => {
            let n = r.get_count(8)?;
            let mut record = Vec::with_capacity(n);
            for _ in 0..n {
                record.push((r.get_u32()?, r.get_u32()?));
            }
            Query::Point {
                record,
                opts: get_opts(r)?,
            }
        }
        1 => Query::Range {
            attr: r.get_u32()?,
            lo: r.get_f64()?,
            hi: r.get_f64()?,
            opts: get_opts(r)?,
        },
        2 => {
            let code = r.get_u8()?;
            Query::TopK {
                by: rank_by_from(code, r)?,
                k: r.get_u32()?,
            }
        }
        other => return Err(r.corrupt(format!("unknown query kind {other}")).into()),
    })
}

fn put_wire_error(w: &mut Writer, e: &WireError) {
    w.put_u8(e.code as u8);
    w.put_str(&e.message);
}

fn get_wire_error(r: &mut Reader<'_>) -> Result<WireError, ProtocolError> {
    let raw = r.get_u8()?;
    let code = ErrorCode::from_u8(raw)
        .ok_or_else(|| ProtocolError::from(r.corrupt(format!("unknown error code {raw}"))))?;
    Ok(WireError {
        code,
        message: r.get_str()?,
    })
}

impl Request {
    /// This message's frame tag.
    pub fn tag(&self) -> u32 {
        match self {
            Request::Ping => tag::REQ_PING,
            Request::Query { .. } => tag::REQ_QUERY,
            Request::Batch { .. } => tag::REQ_BATCH,
            Request::Reload { .. } => tag::REQ_RELOAD,
            Request::Info => tag::REQ_INFO,
            Request::Shutdown => tag::REQ_SHUTDOWN,
        }
    }

    /// Encode just the payload bytes (no frame header).
    pub fn payload(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            Request::Ping | Request::Info | Request::Shutdown => {}
            Request::Query {
                catalog,
                deadline_ms,
                query,
            } => {
                w.put_str(catalog);
                put_opt_u32(&mut w, *deadline_ms);
                put_query(&mut w, query);
            }
            Request::Batch {
                catalog,
                deadline_ms,
                queries,
            } => {
                w.put_str(catalog);
                put_opt_u32(&mut w, *deadline_ms);
                w.put_u64(queries.len() as u64);
                for q in queries {
                    put_query(&mut w, q);
                }
            }
            Request::Reload { catalog } => w.put_str(catalog),
        }
        w.into_bytes()
    }

    /// Encode as a complete frame, ready for the socket.
    /// [`ProtocolError::Oversized`] when the payload exceeds
    /// [`MAX_PAYLOAD`].
    pub fn to_frame(&self) -> Result<Vec<u8>, ProtocolError> {
        encode_frame(self.tag(), &self.payload())
    }

    /// Decode from a frame's tag + payload. Strict: the payload must be
    /// consumed exactly.
    pub fn decode(tag: u32, payload: &[u8]) -> Result<Request, ProtocolError> {
        let mut r = Reader::new(payload);
        let req = match tag {
            tag::REQ_PING => Request::Ping,
            tag::REQ_QUERY => Request::Query {
                catalog: r.get_str()?,
                deadline_ms: get_opt_u32(&mut r)?,
                query: get_query(&mut r)?,
            },
            tag::REQ_BATCH => {
                let catalog = r.get_str()?;
                let deadline_ms = get_opt_u32(&mut r)?;
                // A query is at least 6 bytes (kind + rank-by + k), so the
                // count can never demand more than the payload holds.
                let n = r.get_count(6)?;
                let mut queries = Vec::with_capacity(n);
                for _ in 0..n {
                    queries.push(get_query(&mut r)?);
                }
                Request::Batch {
                    catalog,
                    deadline_ms,
                    queries,
                }
            }
            tag::REQ_RELOAD => Request::Reload {
                catalog: r.get_str()?,
            },
            tag::REQ_INFO => Request::Info,
            tag::REQ_SHUTDOWN => Request::Shutdown,
            other => return Err(ProtocolError::UnknownTag(other)),
        };
        finish(r)?;
        Ok(req)
    }
}

impl Response {
    /// This message's frame tag.
    pub fn tag(&self) -> u32 {
        match self {
            Response::Pong => tag::RESP_PONG,
            Response::Ids { .. } => tag::RESP_IDS,
            Response::Batch { .. } => tag::RESP_BATCH,
            Response::Reloaded { .. } => tag::RESP_RELOADED,
            Response::Info { .. } => tag::RESP_INFO,
            Response::Error(_) => tag::RESP_ERROR,
            Response::ShuttingDown => tag::RESP_SHUTDOWN,
        }
    }

    /// Encode just the payload bytes (no frame header).
    pub fn payload(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            Response::Pong | Response::ShuttingDown => {}
            Response::Ids { generation, ids } => {
                w.put_u64(*generation);
                w.put_u64(ids.len() as u64);
                for &id in ids {
                    w.put_u32(id);
                }
            }
            Response::Batch { generation, items } => {
                w.put_u64(*generation);
                w.put_u64(items.len() as u64);
                for item in items {
                    match item {
                        Ok(ids) => {
                            w.put_bool(true);
                            w.put_u64(ids.len() as u64);
                            for &id in ids {
                                w.put_u32(id);
                            }
                        }
                        Err(e) => {
                            w.put_bool(false);
                            put_wire_error(&mut w, e);
                        }
                    }
                }
            }
            Response::Reloaded {
                catalog,
                generation,
                rules,
            } => {
                w.put_str(catalog);
                w.put_u64(*generation);
                w.put_u64(*rules);
            }
            Response::Info { catalogs } => {
                w.put_u64(catalogs.len() as u64);
                for c in catalogs {
                    w.put_str(&c.name);
                    w.put_u64(c.generation);
                    w.put_u64(c.rules);
                    w.put_bool(c.analytics);
                }
            }
            Response::Error(e) => put_wire_error(&mut w, e),
        }
        w.into_bytes()
    }

    /// Encode as a complete frame, ready for the socket.
    /// [`ProtocolError::Oversized`] when the payload exceeds
    /// [`MAX_PAYLOAD`].
    pub fn to_frame(&self) -> Result<Vec<u8>, ProtocolError> {
        encode_frame(self.tag(), &self.payload())
    }

    /// Decode from a frame's tag + payload. Strict: the payload must be
    /// consumed exactly.
    pub fn decode(tag: u32, payload: &[u8]) -> Result<Response, ProtocolError> {
        let mut r = Reader::new(payload);
        let resp = match tag {
            tag::RESP_PONG => Response::Pong,
            tag::RESP_IDS => {
                let generation = r.get_u64()?;
                let n = r.get_count(4)?;
                let mut ids = Vec::with_capacity(n);
                for _ in 0..n {
                    ids.push(r.get_u32()?);
                }
                Response::Ids { generation, ids }
            }
            tag::RESP_BATCH => {
                let generation = r.get_u64()?;
                // Each item is at least 1 byte (its ok flag).
                let n = r.get_count(1)?;
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    items.push(if r.get_bool()? {
                        let m = r.get_count(4)?;
                        let mut ids = Vec::with_capacity(m);
                        for _ in 0..m {
                            ids.push(r.get_u32()?);
                        }
                        Ok(ids)
                    } else {
                        Err(get_wire_error(&mut r)?)
                    });
                }
                Response::Batch { generation, items }
            }
            tag::RESP_RELOADED => Response::Reloaded {
                catalog: r.get_str()?,
                generation: r.get_u64()?,
                rules: r.get_u64()?,
            },
            tag::RESP_INFO => {
                // A catalog entry is at least its name length prefix.
                let n = r.get_count(8)?;
                let mut catalogs = Vec::with_capacity(n);
                for _ in 0..n {
                    catalogs.push(CatalogInfo {
                        name: r.get_str()?,
                        generation: r.get_u64()?,
                        rules: r.get_u64()?,
                        analytics: r.get_bool()?,
                    });
                }
                Response::Info { catalogs }
            }
            tag::RESP_ERROR => Response::Error(get_wire_error(&mut r)?),
            tag::RESP_SHUTDOWN => Response::ShuttingDown,
            other => return Err(ProtocolError::UnknownTag(other)),
        };
        finish(r)?;
        Ok(resp)
    }
}

/// Reject unconsumed payload bytes (canonical decode).
fn finish(r: Reader<'_>) -> Result<(), ProtocolError> {
    if r.remaining() > 0 {
        return Err(ProtocolError::TrailingBytes { offset: r.pos() });
    }
    Ok(())
}

/// Frame a tag + payload: magic, tag, length, CRC over tag ++ payload,
/// then the payload.
///
/// A payload larger than [`MAX_PAYLOAD`] is a structured
/// [`ProtocolError::Oversized`] — the same error the decode side would
/// raise — so a message that cannot possibly be read is rejected before
/// a single byte hits the socket, instead of panicking the sender.
pub fn encode_frame(tag: u32, payload: &[u8]) -> Result<Vec<u8>, ProtocolError> {
    if payload.len() as u64 > MAX_PAYLOAD as u64 {
        return Err(ProtocolError::Oversized {
            len: u32::try_from(payload.len()).unwrap_or(u32::MAX),
        });
    }
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&tag.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    let mut crc_input = Vec::with_capacity(4 + payload.len());
    crc_input.extend_from_slice(&tag.to_le_bytes());
    crc_input.extend_from_slice(payload);
    out.extend_from_slice(&crc32(&crc_input).to_le_bytes());
    out.extend_from_slice(payload);
    Ok(out)
}

/// Decode one frame from a complete buffer. Strict: `bytes` must be
/// exactly one frame (no trailing bytes). Returns the tag and payload;
/// the CRC has been verified.
pub fn decode_frame(bytes: &[u8]) -> Result<(u32, &[u8]), ProtocolError> {
    if bytes.len() < HEADER_LEN {
        return Err(ProtocolError::Truncated {
            offset: bytes.len(),
            needed: HEADER_LEN - bytes.len(),
        });
    }
    if bytes[..4] != MAGIC {
        return Err(ProtocolError::BadMagic);
    }
    let tag = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    let len = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if len > MAX_PAYLOAD {
        return Err(ProtocolError::Oversized { len });
    }
    let crc = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
    let body = &bytes[HEADER_LEN..];
    let len = len as usize;
    if body.len() < len {
        return Err(ProtocolError::Truncated {
            offset: bytes.len(),
            needed: len - body.len(),
        });
    }
    if body.len() > len {
        return Err(ProtocolError::TrailingBytes {
            offset: HEADER_LEN + len,
        });
    }
    let payload = &body[..len];
    let mut crc_input = Vec::with_capacity(4 + len);
    crc_input.extend_from_slice(&tag.to_le_bytes());
    crc_input.extend_from_slice(payload);
    if crc32(&crc_input) != crc {
        return Err(ProtocolError::ChecksumMismatch);
    }
    Ok((tag, payload))
}

/// Decode a complete request frame (header verification + strict payload
/// decode).
pub fn decode_request(bytes: &[u8]) -> Result<Request, ProtocolError> {
    let (tag, payload) = decode_frame(bytes)?;
    Request::decode(tag, payload)
}

/// Decode a complete response frame.
pub fn decode_response(bytes: &[u8]) -> Result<Response, ProtocolError> {
    let (tag, payload) = decode_frame(bytes)?;
    Response::decode(tag, payload)
}

/// Read one frame from a stream. `Ok(None)` is a clean EOF *at a frame
/// boundary* (the peer closed between requests); EOF anywhere inside a
/// frame is [`ProtocolError::Truncated`]. The payload CRC is verified
/// before returning.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<(u32, Vec<u8>)>, ProtocolError> {
    let mut header = [0u8; HEADER_LEN];
    let mut filled = 0;
    while filled < HEADER_LEN {
        match r.read(&mut header[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(None);
                }
                return Err(ProtocolError::Truncated {
                    offset: filled,
                    needed: HEADER_LEN - filled,
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    if header[..4] != MAGIC {
        return Err(ProtocolError::BadMagic);
    }
    let tag = u32::from_le_bytes(header[4..8].try_into().unwrap());
    let len = u32::from_le_bytes(header[8..12].try_into().unwrap());
    if len > MAX_PAYLOAD {
        return Err(ProtocolError::Oversized { len });
    }
    let crc = u32::from_le_bytes(header[12..16].try_into().unwrap());
    let mut payload = vec![0u8; len as usize];
    let mut read = 0;
    while read < payload.len() {
        match r.read(&mut payload[read..]) {
            Ok(0) => {
                return Err(ProtocolError::Truncated {
                    offset: HEADER_LEN + read,
                    needed: payload.len() - read,
                })
            }
            Ok(n) => read += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    let mut crc_input = Vec::with_capacity(4 + payload.len());
    crc_input.extend_from_slice(&tag.to_le_bytes());
    crc_input.extend_from_slice(&payload);
    if crc32(&crc_input) != crc {
        return Err(ProtocolError::ChecksumMismatch);
    }
    Ok(Some((tag, payload)))
}

/// Write one complete frame to a stream (single `write_all`).
/// [`ProtocolError::Oversized`] when the payload exceeds
/// [`MAX_PAYLOAD`] — nothing is written in that case.
pub fn write_frame<W: Write>(w: &mut W, tag: u32, payload: &[u8]) -> Result<(), ProtocolError> {
    w.write_all(&encode_frame(tag, payload)?)?;
    Ok(())
}

/// Read the next [`Request`] from a stream; `Ok(None)` is a clean EOF at
/// a frame boundary.
pub fn read_request<R: Read>(r: &mut R) -> Result<Option<Request>, ProtocolError> {
    match read_frame(r)? {
        Some((tag, payload)) => Ok(Some(Request::decode(tag, &payload)?)),
        None => Ok(None),
    }
}

/// Read the next [`Response`] from a stream; `Ok(None)` is a clean EOF
/// at a frame boundary.
pub fn read_response<R: Read>(r: &mut R) -> Result<Option<Response>, ProtocolError> {
    match read_frame(r)? {
        Some((tag, payload)) => Ok(Some(Response::decode(tag, &payload)?)),
        None => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::Ping,
            Request::Query {
                catalog: "planted".into(),
                deadline_ms: Some(250),
                query: Query::Point {
                    record: vec![(0, 3), (2, 1)],
                    opts: QueryOptions {
                        by: Some(RankBy::Support),
                        top_k: Some(5),
                        min_lift: Some(1.25),
                        max_p: Some(0.05),
                    },
                },
            },
            Request::Batch {
                catalog: "planted".into(),
                deadline_ms: None,
                queries: vec![
                    Query::Range {
                        attr: 1,
                        lo: 20.0,
                        hi: 40.0,
                        opts: QueryOptions::default(),
                    },
                    Query::TopK {
                        by: RankBy::Interest,
                        k: 3,
                    },
                    Query::TopK {
                        by: RankBy::Lift,
                        k: 10,
                    },
                    Query::TopK {
                        by: RankBy::JMeasure,
                        k: 1,
                    },
                ],
            },
            Request::Reload {
                catalog: "planted".into(),
            },
            Request::Info,
            Request::Shutdown,
        ]
    }

    fn sample_responses() -> Vec<Response> {
        vec![
            Response::Pong,
            Response::Ids {
                generation: 2,
                ids: vec![0, 4, 9],
            },
            Response::Batch {
                generation: 1,
                items: vec![
                    Ok(vec![1, 2, 3]),
                    Err(WireError::new(ErrorCode::BadRequest, "attr 99 unknown")),
                ],
            },
            Response::Reloaded {
                catalog: "planted".into(),
                generation: 3,
                rules: 44,
            },
            Response::Info {
                catalogs: vec![CatalogInfo {
                    name: "planted".into(),
                    generation: 1,
                    rules: 44,
                    analytics: true,
                }],
            },
            Response::Error(WireError::new(ErrorCode::UnknownCatalog, "no such slot")),
            Response::ShuttingDown,
        ]
    }

    #[test]
    fn requests_round_trip_byte_exactly() {
        for req in sample_requests() {
            let frame = req.to_frame().unwrap();
            let decoded = decode_request(&frame).expect("frame decodes");
            assert_eq!(decoded, req);
            assert_eq!(decoded.to_frame().unwrap(), frame, "canonical re-encode");
        }
    }

    #[test]
    fn responses_round_trip_byte_exactly() {
        for resp in sample_responses() {
            let frame = resp.to_frame().unwrap();
            let decoded = decode_response(&frame).expect("frame decodes");
            assert_eq!(decoded, resp);
            assert_eq!(decoded.to_frame().unwrap(), frame, "canonical re-encode");
        }
    }

    #[test]
    fn nan_range_bounds_survive_bit_exactly() {
        let req = Request::Query {
            catalog: "c".into(),
            deadline_ms: None,
            query: Query::Range {
                attr: 0,
                lo: f64::NAN,
                hi: f64::NEG_INFINITY,
                opts: QueryOptions::default(),
            },
        };
        let frame = req.to_frame().unwrap();
        match decode_request(&frame).unwrap() {
            Request::Query {
                query: Query::Range { lo, hi, .. },
                ..
            } => {
                assert!(lo.is_nan());
                assert_eq!(hi, f64::NEG_INFINITY);
            }
            other => panic!("wrong decode: {other:?}"),
        }
        assert_eq!(decode_request(&frame).unwrap().to_frame().unwrap(), frame);
    }

    #[test]
    fn unknown_tags_are_structured_errors() {
        let frame = encode_frame(77, b"").unwrap();
        assert!(matches!(
            decode_request(&frame),
            Err(ProtocolError::UnknownTag(77))
        ));
        // A response tag sent where a request is expected is unknown too.
        let frame = encode_frame(tag::RESP_PONG, b"").unwrap();
        assert!(matches!(
            decode_request(&frame),
            Err(ProtocolError::UnknownTag(_))
        ));
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut frame = encode_frame(tag::REQ_PING, b"").unwrap();
        frame[8..12].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        assert!(matches!(
            decode_frame(&frame),
            Err(ProtocolError::Oversized { .. })
        ));
        let mut cursor = std::io::Cursor::new(frame);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(ProtocolError::Oversized { .. })
        ));
    }

    #[test]
    fn stream_reader_round_trips_multiple_frames() {
        let mut buf = Vec::new();
        for req in sample_requests() {
            buf.extend_from_slice(&req.to_frame().unwrap());
        }
        let mut cursor = std::io::Cursor::new(buf);
        let mut seen = Vec::new();
        while let Some(req) = read_request(&mut cursor).expect("stream decodes") {
            seen.push(req);
        }
        assert_eq!(seen, sample_requests());
    }

    #[test]
    fn eof_mid_frame_is_truncated_not_clean() {
        let frame = Request::Info.to_frame().unwrap();
        for cut in 1..frame.len() {
            let mut cursor = std::io::Cursor::new(frame[..cut].to_vec());
            assert!(
                matches!(
                    read_frame(&mut cursor),
                    Err(ProtocolError::Truncated { .. })
                ),
                "cut at {cut} not reported as truncation"
            );
        }
        // Zero bytes is the one clean EOF.
        let mut cursor = std::io::Cursor::new(Vec::new());
        assert!(matches!(read_frame(&mut cursor), Ok(None)));
    }

    #[test]
    fn oversized_payload_is_a_structured_encode_error() {
        // Exactly MAX_PAYLOAD bytes still frames.
        let at_limit = vec![0u8; MAX_PAYLOAD as usize];
        let frame = encode_frame(tag::REQ_PING, &at_limit).unwrap();
        assert_eq!(frame.len(), HEADER_LEN + MAX_PAYLOAD as usize);

        // One byte more is Oversized on the *encode* side — no panic, no
        // bytes produced.
        let too_big = vec![0u8; MAX_PAYLOAD as usize + 1];
        match encode_frame(tag::REQ_PING, &too_big) {
            Err(ProtocolError::Oversized { len }) => {
                assert_eq!(len, MAX_PAYLOAD + 1);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }

        // And the same through a whole message: enough rule ids to blow
        // the 16 MiB ceiling.
        let ids: Vec<u32> = (0..(MAX_PAYLOAD / 4)).collect();
        let response = Response::Ids { generation: 1, ids };
        match response.to_frame() {
            Err(ProtocolError::Oversized { len }) => {
                assert!(len > MAX_PAYLOAD);
            }
            Err(other) => panic!("expected Oversized, got {other:?}"),
            Ok(_) => panic!("oversized response framed"),
        }

        // write_frame refuses before touching the writer.
        let mut sink = Vec::new();
        assert!(matches!(
            write_frame(&mut sink, tag::REQ_PING, &too_big),
            Err(ProtocolError::Oversized { .. })
        ));
        assert!(sink.is_empty());
    }
}
