//! The `qar serve` daemon: a long-lived TCP server answering
//! [`crate::RuleIndex`] queries over the [`mod@crate::protocol`] wire
//! format.
//!
//! # Threading model
//!
//! The accept loop runs on the caller of [`Server::serve`]; every
//! accepted connection becomes one detached job on a
//! [`qar_core::WorkerPool`] ([`WorkerPool::spawn`]) — the same persistent
//! workers that carry a mining run's counting shards. A connection job
//! loops reading frames, answering each request in place, until the
//! client closes or a frame-level error makes the stream untrustworthy.
//!
//! # Catalog slots, generations, hot reload
//!
//! Each catalog loads into a *slot* (named by its file stem) holding an
//! `Arc` of the decoded [`Catalog`] plus its [`RuleIndex`], stamped with
//! a *generation* (1 on first load). A request clones the `Arc` once and
//! answers entirely against that snapshot, so a concurrent `RELOAD`
//! control frame never tears a query: in-flight requests finish on the
//! old generation while later requests see the new one. Every query
//! response carries the generation that answered it, which is what the
//! hot-reload soak test asserts on. A reload that fails to decode —
//! truncated file, checksum mismatch — leaves the slot untouched and
//! returns a structured [`ErrorCode::ReloadFailed`]: the old catalog
//! keeps serving.
//!
//! # Deadlines
//!
//! A request may carry a deadline in milliseconds, mapped onto the
//! miner's cooperative [`CancelToken`]. The token is checked before each
//! query (and between batch items); an expired token earns
//! [`ErrorCode::DeadlineExceeded`]. `deadline_ms = 0` is already expired
//! on arrival — deterministic fodder for the robustness tests.
//!
//! # Error policy
//!
//! * Frame decodes but the request is unanswerable (unknown catalog,
//!   unknown tag, malformed payload): structured [`Response::Error`],
//!   connection stays open.
//! * The frame itself is broken (bad magic, CRC mismatch, oversized
//!   length): best-effort [`ErrorCode::BadFrame`] response, then the
//!   connection closes — the stream can no longer be framed.

use crate::catalog::Catalog;
use crate::error::StoreError;
use crate::index::{RankBy, RuleIndex};
use crate::protocol::{
    self, read_frame, CatalogInfo, ErrorCode, ProtocolError, Query, QueryOptions, Request,
    Response, WireError,
};
use qar_core::WorkerPool;
use qar_trace::event::micros;
use qar_trace::{CancelToken, ProgressSink, TraceEvent};
use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

/// How long an idle connection waits between shutdown-flag polls.
const IDLE_POLL: Duration = Duration::from_millis(100);

/// Tuning for [`Server::bind`].
#[derive(Debug, Clone, Default)]
pub struct ServerConfig {
    /// TCP port to bind on 127.0.0.1 (0 lets the OS pick; see
    /// [`Server::local_addr`]).
    pub port: u16,
    /// Worker threads carrying connections (0 = one per CPU).
    pub threads: usize,
}

/// One immutable catalog snapshot: everything a request needs, behind a
/// single `Arc` clone.
struct ServingCatalog {
    generation: u64,
    catalog: Catalog,
    index: RuleIndex,
}

/// A named, reloadable catalog slot.
struct Slot {
    path: PathBuf,
    current: RwLock<Arc<ServingCatalog>>,
}

/// State shared between the accept loop and every connection job.
struct ServerState {
    slots: BTreeMap<String, Slot>,
    sink: Option<Arc<dyn ProgressSink>>,
    shutdown: AtomicBool,
    addr: SocketAddr,
    connections: AtomicU64,
}

impl ServerState {
    fn emit(&self, event: &TraceEvent) {
        if let Some(sink) = &self.sink {
            sink.on_event(event);
        }
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }
}

/// The rule-serving daemon. Construct with [`Server::bind`], run with
/// [`Server::serve`] (blocking), stop with a [`Request::Shutdown`] frame.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
    pool: WorkerPool,
}

impl Server {
    /// Load every catalog and bind the listener on 127.0.0.1. Slot names
    /// must be unique; loading stops at the first bad catalog.
    pub fn bind(
        catalogs: &[(String, PathBuf)],
        config: &ServerConfig,
        sink: Option<Arc<dyn ProgressSink>>,
    ) -> Result<Server, StoreError> {
        let mut slots = BTreeMap::new();
        for (name, path) in catalogs {
            let catalog = Catalog::load(path, sink.as_deref())?;
            let index = RuleIndex::build(&catalog, sink.as_deref());
            let previous = slots.insert(
                name.clone(),
                Slot {
                    path: path.clone(),
                    current: RwLock::new(Arc::new(ServingCatalog {
                        generation: 1,
                        catalog,
                        index,
                    })),
                },
            );
            if previous.is_some() {
                return Err(StoreError::Corrupt {
                    section: "serve",
                    detail: format!("duplicate catalog slot name \"{name}\""),
                });
            }
        }
        let listener = TcpListener::bind(("127.0.0.1", config.port))?;
        let addr = listener.local_addr()?;
        let threads = if config.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            config.threads
        };
        let state = Arc::new(ServerState {
            slots,
            sink,
            shutdown: AtomicBool::new(false),
            addr,
            connections: AtomicU64::new(0),
        });
        state.emit(&TraceEvent::ServerStarted {
            port: addr.port(),
            threads,
            catalogs: state.slots.len(),
        });
        Ok(Server {
            listener,
            state,
            pool: WorkerPool::new(threads),
        })
    }

    /// The bound address (useful with `port = 0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// Worker threads carrying connections.
    pub fn threads(&self) -> usize {
        self.pool.workers()
    }

    /// Accept connections until a [`Request::Shutdown`] arrives. Each
    /// connection runs as a detached pool job; when this returns, the
    /// pool is joined (dropping `self`) so in-flight connections finish
    /// draining first.
    pub fn serve(self) -> io::Result<()> {
        loop {
            let (stream, _) = self.listener.accept()?;
            if self.state.shutting_down() {
                // The wake-up connection (or a late client); drop it.
                break;
            }
            let conn = self.state.connections.fetch_add(1, Ordering::Relaxed) + 1;
            self.state.emit(&TraceEvent::ConnectionOpened { conn });
            let state = Arc::clone(&self.state);
            self.pool
                .spawn(move || handle_connection(&state, stream, conn));
        }
        Ok(())
    }
}

/// Socket reader that retries timeouts while polling the shutdown flag,
/// so idle connections notice shutdown instead of blocking forever.
/// Reports EOF once shutdown fires: at a frame boundary that is a clean
/// close; mid-frame it surfaces as a truncation error.
struct PatientReader<'a> {
    stream: &'a TcpStream,
    state: &'a ServerState,
}

impl Read for PatientReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        loop {
            if self.state.shutting_down() {
                return Ok(0);
            }
            let mut stream = self.stream;
            match stream.read(buf) {
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock
                            | io::ErrorKind::TimedOut
                            | io::ErrorKind::Interrupted
                    ) => {}
                other => return other,
            }
        }
    }
}

/// Serve one client connection until it closes (or breaks framing).
fn handle_connection(state: &ServerState, stream: TcpStream, conn: u64) {
    let _ = stream.set_read_timeout(Some(IDLE_POLL));
    let _ = stream.set_nodelay(true);
    let mut requests = 0u64;
    loop {
        let frame = {
            let mut reader = PatientReader {
                stream: &stream,
                state,
            };
            read_frame(&mut reader)
        };
        match frame {
            Ok(None) => break, // clean close (or shutdown at a boundary)
            Ok(Some((tag, payload))) => {
                requests += 1;
                let started = Instant::now();
                let (response, kind, items, shutdown_after) = match Request::decode(tag, &payload) {
                    Ok(request) => answer(state, request),
                    Err(ProtocolError::UnknownTag(t)) => (
                        Response::Error(WireError::new(
                            ErrorCode::UnknownRequest,
                            format!("unknown request tag {t}"),
                        )),
                        "invalid",
                        1,
                        false,
                    ),
                    Err(e) => (
                        // CRC-clean frame, malformed payload: the
                        // stream itself is still framed correctly.
                        Response::Error(WireError::new(
                            ErrorCode::BadRequest,
                            format!("malformed request payload: {e}"),
                        )),
                        "invalid",
                        1,
                        false,
                    ),
                };
                let ok = !matches!(response, Response::Error(_));
                let results = match &response {
                    Response::Ids { ids, .. } => ids.len(),
                    Response::Batch { items, .. } => {
                        items.iter().map(|i| i.as_ref().map_or(0, Vec::len)).sum()
                    }
                    _ => 0,
                };
                state.emit(&TraceEvent::RequestServed {
                    conn,
                    kind: kind.to_string(),
                    ok,
                    items,
                    results,
                    elapsed_us: micros(started.elapsed()),
                });
                if write_response(&stream, &response).is_err() {
                    break; // client went away mid-response
                }
                if shutdown_after {
                    initiate_shutdown(state);
                    break;
                }
            }
            Err(ProtocolError::Io(_)) => break, // connection error
            Err(e) => {
                // Bad magic, checksum mismatch, oversized or truncated
                // frame: report once (best effort), then close — the
                // byte stream can no longer be trusted to re-frame.
                let response = Response::Error(WireError::new(
                    ErrorCode::BadFrame,
                    format!("unreadable frame: {e}"),
                ));
                requests += 1;
                state.emit(&TraceEvent::RequestServed {
                    conn,
                    kind: "invalid".to_string(),
                    ok: false,
                    items: 1,
                    results: 0,
                    elapsed_us: 0,
                });
                let _ = write_response(&stream, &response);
                break;
            }
        }
    }
    state.emit(&TraceEvent::ConnectionClosed { conn, requests });
}

fn write_response(mut stream: &TcpStream, response: &Response) -> io::Result<()> {
    // A response that cannot be framed (payload over MAX_PAYLOAD, e.g. a
    // batch with millions of matching ids) degrades to a structured
    // Internal error instead of killing the connection thread — the
    // client learns *why* it got nothing.
    let frame = match response.to_frame() {
        Ok(frame) => frame,
        Err(e) => Response::Error(WireError::new(
            ErrorCode::Internal,
            format!("response could not be framed: {e}"),
        ))
        .to_frame()
        .expect("error responses are small"),
    };
    stream.write_all(&frame)?;
    stream.flush()
}

/// Set the flag and poke our own listener so the blocked `accept` wakes.
fn initiate_shutdown(state: &ServerState) {
    state.shutdown.store(true, Ordering::Release);
    let _ = TcpStream::connect(state.addr);
}

/// Answer one decoded request. Returns the response, the request kind
/// for tracing, the number of queries it contained, and whether the
/// server shuts down after responding.
fn answer(state: &ServerState, request: Request) -> (Response, &'static str, usize, bool) {
    match request {
        Request::Ping => (Response::Pong, "ping", 1, false),
        Request::Info => (
            Response::Info {
                catalogs: state
                    .slots
                    .iter()
                    .map(|(name, slot)| {
                        let current = snapshot(slot);
                        CatalogInfo {
                            name: name.clone(),
                            generation: current.generation,
                            rules: current.catalog.rules().len() as u64,
                            analytics: current.index.has_analytics(),
                        }
                    })
                    .collect(),
            },
            "info",
            1,
            false,
        ),
        Request::Shutdown => (Response::ShuttingDown, "shutdown", 1, true),
        Request::Reload { catalog } => (reload(state, &catalog), "reload", 1, false),
        Request::Query {
            catalog,
            deadline_ms,
            query,
        } => {
            let kind = query.kind();
            let Some(slot) = state.slots.get(&catalog) else {
                return (unknown_catalog(&catalog), kind, 1, false);
            };
            let current = snapshot(slot);
            let cancel = deadline_ms.map(deadline_token);
            let response = match guarded_query(&current.index, &query, cancel.as_ref()) {
                Ok(ids) => Response::Ids {
                    generation: current.generation,
                    ids,
                },
                Err(e) => Response::Error(e),
            };
            (response, kind, 1, false)
        }
        Request::Batch {
            catalog,
            deadline_ms,
            queries,
        } => {
            let n = queries.len();
            let Some(slot) = state.slots.get(&catalog) else {
                return (unknown_catalog(&catalog), "batch", n, false);
            };
            // One snapshot for the whole batch: a reload cannot split it
            // across generations.
            let current = snapshot(slot);
            let cancel = deadline_ms.map(deadline_token);
            let items = queries
                .iter()
                .map(|query| guarded_query(&current.index, query, cancel.as_ref()))
                .collect();
            (
                Response::Batch {
                    generation: current.generation,
                    items,
                },
                "batch",
                n,
                false,
            )
        }
    }
}

fn snapshot(slot: &Slot) -> Arc<ServingCatalog> {
    Arc::clone(
        &slot
            .current
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner),
    )
}

fn unknown_catalog(name: &str) -> Response {
    Response::Error(WireError::new(
        ErrorCode::UnknownCatalog,
        format!("catalog \"{name}\" is not loaded"),
    ))
}

fn deadline_token(ms: u32) -> CancelToken {
    CancelToken::with_deadline(Duration::from_millis(ms as u64))
}

/// Run one query unless its deadline already expired. Checked before the
/// query (and, via the caller's map, between batch items) — queries
/// themselves are microseconds, so cooperative granularity is per item.
fn guarded_query(
    index: &RuleIndex,
    query: &Query,
    cancel: Option<&CancelToken>,
) -> Result<Vec<u32>, WireError> {
    if cancel.is_some_and(CancelToken::is_cancelled) {
        return Err(WireError::new(
            ErrorCode::DeadlineExceeded,
            "deadline expired before the query ran",
        ));
    }
    execute_query(index, query)
}

/// Answer `query` against `index` with exactly the CLI's `qar query`
/// semantics: analytics filters first, then rank when `--by` or
/// `--top-k` is given (defaulting to confidence), then truncate only for
/// `k > 0` (`k = 0` keeps everything). Analytics rankings or filters
/// against a catalog without an analytics section are a structured
/// [`ErrorCode::BadRequest`] — probe [`CatalogInfo::analytics`] first.
/// The soak tests call this directly to compute expected answers.
pub fn execute_query(index: &RuleIndex, query: &Query) -> Result<Vec<u32>, WireError> {
    let (mut ids, opts) = match query {
        Query::Point { record, opts } => (index.query_record(record), *opts),
        Query::Range { attr, lo, hi, opts } => (index.query_range(*attr, *lo, *hi), *opts),
        Query::TopK { by, k } => {
            require_analytics_for(index, Some(*by))?;
            return Ok(index.top_k(*by, *k as usize));
        }
    };
    apply_options(index, &mut ids, opts)?;
    Ok(ids)
}

fn require_analytics_for(index: &RuleIndex, by: Option<RankBy>) -> Result<(), WireError> {
    if by.is_some_and(|by| by.needs_analytics()) && !index.has_analytics() {
        return Err(WireError::new(
            ErrorCode::BadRequest,
            format!(
                "ranking by {} needs analytics: {}",
                by.expect("checked above"),
                crate::index::AnalyticsUnavailable,
            ),
        ));
    }
    Ok(())
}

fn apply_options(
    index: &RuleIndex,
    ids: &mut Vec<u32>,
    opts: QueryOptions,
) -> Result<(), WireError> {
    index
        .filter_analytics(ids, opts.min_lift, opts.max_p)
        .map_err(|e| WireError::new(ErrorCode::BadRequest, e.to_string()))?;
    require_analytics_for(index, opts.by)?;
    if opts.by.is_some() || opts.top_k.is_some() {
        index.rank(ids, opts.by.unwrap_or(RankBy::Confidence));
    }
    if let Some(k) = opts.top_k {
        if k > 0 {
            ids.truncate(k as usize);
        }
    }
    Ok(())
}

/// Reload a slot from its backing file. On any failure the slot is left
/// untouched — the old generation keeps serving — and the error comes
/// back structured.
fn reload(state: &ServerState, name: &str) -> Response {
    let Some(slot) = state.slots.get(name) else {
        return unknown_catalog(name);
    };
    let started = Instant::now();
    let sink = state.sink.as_deref();
    let catalog = match Catalog::load(&slot.path, sink) {
        Ok(catalog) => catalog,
        Err(e) => {
            return Response::Error(WireError::new(
                ErrorCode::ReloadFailed,
                format!("reload of \"{name}\" failed, old catalog still serving: {e}"),
            ))
        }
    };
    let index = RuleIndex::build(&catalog, sink);
    let rules = catalog.rules().len() as u64;
    let generation = {
        let mut guard = slot
            .current
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let generation = guard.generation + 1;
        *guard = Arc::new(ServingCatalog {
            generation,
            catalog,
            index,
        });
        generation
    };
    state.emit(&TraceEvent::CatalogReloaded {
        catalog: name.to_string(),
        generation,
        rules: rules as usize,
        elapsed_us: micros(started.elapsed()),
    });
    Response::Reloaded {
        catalog: name.to_string(),
        generation,
        rules,
    }
}

/// A minimal blocking client for tests and the CLI load generator: one
/// TCP connection, one request/response round trip at a time.
pub struct ServeClient {
    stream: TcpStream,
}

impl ServeClient {
    /// Connect to a running server.
    pub fn connect(addr: impl std::net::ToSocketAddrs) -> io::Result<ServeClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(ServeClient { stream })
    }

    /// Send one request and read its response.
    pub fn request(&mut self, request: &Request) -> Result<Response, ProtocolError> {
        self.stream.write_all(&request.to_frame()?)?;
        match protocol::read_response(&mut self.stream)? {
            Some(response) => Ok(response),
            None => Err(ProtocolError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed before responding",
            ))),
        }
    }

    /// Send raw bytes (corrupt frames, partial frames) — for the
    /// robustness tests.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stream.write_all(bytes)
    }

    /// Read the next response after [`ServeClient::send_raw`];
    /// `Ok(None)` when the server closed the connection instead.
    pub fn read_response(&mut self) -> Result<Option<Response>, ProtocolError> {
        protocol::read_response(&mut self.stream)
    }

    /// Half-close the write side (models a client disconnecting
    /// mid-request).
    pub fn shutdown_write(&mut self) -> io::Result<()> {
        self.stream.shutdown(std::net::Shutdown::Write)
    }
}
