//! The `.qarcat` wire format: primitives, section framing, CRC-32.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic    8 bytes   "QARCAT\r\n"  (catches text-mode CRLF mangling)
//! version  u32       currently 1
//! section  repeated, fixed order: schema (1), rules (2), stats (3),
//!          then optional trailing sections (analytics (4), and any
//!          unknown tag — skipped, but still CRC-verified — so old
//!          readers open new catalogs and vice versa)
//!   tag    u32
//!   len    u64       payload length in bytes
//!   crc    u32       CRC-32 (IEEE) over tag bytes ++ payload
//!   payload
//! ```
//!
//! The CRC covers the tag as well as the payload so a bit flip that turns
//! one section tag into another cannot reframe the file and still
//! checksum clean. `f64`s are stored as raw IEEE-754 bits
//! ([`f64::to_bits`]) so every value — including NaNs and signed zeros —
//! round-trips bit-exactly.

use crate::error::StoreError;

/// File magic: ASCII "QARCAT" plus CRLF, like PNG's header trick.
pub const MAGIC: [u8; 8] = *b"QARCAT\r\n";

/// Current format version. Bump on any layout change.
pub const VERSION: u32 = 1;

/// Section tags, in their required file order.
pub mod tag {
    /// Schema + per-attribute encoders.
    pub const SCHEMA: u32 = 1;
    /// Rules, interest verdicts, row count.
    pub const RULES: u32 = 2;
    /// `MiningStats` provenance.
    pub const STATS: u32 = 3;
    /// Optional rule-quality analytics (lift, conviction, chi-square,
    /// J-measure, Shapley attributions). Trails the mandatory sections.
    pub const ANALYTICS: u32 = 4;
    /// Optional persisted support counts (raw candidate tallies + row
    /// total + encoding fingerprint + mining configuration) powering
    /// incremental updates. Trails the mandatory sections (after
    /// analytics, when both are present).
    pub const COUNTS: u32 = 5;
}

/// Human name of a section tag (for error messages).
pub fn section_name(tag: u32) -> &'static str {
    match tag {
        tag::SCHEMA => "schema",
        tag::RULES => "rules",
        tag::STATS => "stats",
        tag::ANALYTICS => "analytics",
        tag::COUNTS => "counts",
        _ => "unknown",
    }
}

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE 802.3 polynomial) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Append-only encoder for catalog payloads.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Fresh empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bytes written so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Append a little-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an f64 as its raw IEEE-754 bits (little-endian).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Append a `Duration` as whole seconds + subsecond nanos.
    pub fn put_duration(&mut self, d: std::time::Duration) {
        self.put_u64(d.as_secs());
        self.put_u32(d.subsec_nanos());
    }

    /// Append a framed section: tag, payload length, CRC over
    /// tag ++ payload, then the payload itself.
    pub fn put_section(&mut self, tag: u32, payload: &[u8]) {
        let mut crc_input = Vec::with_capacity(4 + payload.len());
        crc_input.extend_from_slice(&tag.to_le_bytes());
        crc_input.extend_from_slice(payload);
        self.put_u32(tag);
        self.put_u64(payload.len() as u64);
        self.put_u32(crc32(&crc_input));
        self.buf.extend_from_slice(payload);
    }
}

/// Bounds-checked cursor over untrusted catalog bytes. Every read
/// returns [`StoreError::Truncated`] instead of slicing out of range.
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Section name used in error messages ("header" before any section).
    section: &'static str,
}

impl<'a> Reader<'a> {
    /// Read from the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader {
            bytes,
            pos: 0,
            section: "header",
        }
    }

    /// Current byte offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Set the section name reported by [`Reader::corrupt`].
    pub fn set_section(&mut self, section: &'static str) {
        self.section = section;
    }

    /// Build a [`StoreError::Corrupt`] for the current section.
    pub fn corrupt(&self, detail: impl Into<String>) -> StoreError {
        StoreError::Corrupt {
            section: self.section,
            detail: detail.into(),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        if self.remaining() < n {
            return Err(StoreError::Truncated {
                offset: self.pos,
                needed: n - self.remaining(),
            });
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    /// Read a bool byte, rejecting anything but 0 or 1.
    pub fn get_bool(&mut self) -> Result<bool, StoreError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(self.corrupt(format!("bool byte is {b}, expected 0 or 1"))),
        }
    }

    /// Read a little-endian u32.
    pub fn get_u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian u64.
    pub fn get_u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read an f64 from its raw bits.
    pub fn get_f64(&mut self) -> Result<f64, StoreError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read an element count that claims `elem_size`-byte elements,
    /// rejecting counts that cannot fit in the remaining input (so a
    /// corrupted count can never drive a huge allocation).
    pub fn get_count(&mut self, elem_size: usize) -> Result<usize, StoreError> {
        let n = self.get_u64()?;
        let max = (self.remaining() / elem_size.max(1)) as u64;
        if n > max {
            return Err(self.corrupt(format!(
                "count {n} exceeds what the remaining {} byte(s) can hold",
                self.remaining()
            )));
        }
        Ok(n as usize)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, StoreError> {
        let len = self.get_count(1)?;
        let offset = self.pos;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| StoreError::Corrupt {
            section: self.section,
            detail: format!("invalid UTF-8 in string at offset {offset}"),
        })
    }

    /// Read a `Duration`, rejecting denormalized subsecond nanos (which
    /// would break bit-exact re-encoding).
    pub fn get_duration(&mut self) -> Result<std::time::Duration, StoreError> {
        let secs = self.get_u64()?;
        let nanos = self.get_u32()?;
        if nanos >= 1_000_000_000 {
            return Err(self.corrupt(format!("duration has {nanos} subsecond nanos")));
        }
        Ok(std::time::Duration::new(secs, nanos))
    }

    /// Read one section's framing, verify its CRC, and return
    /// `(tag, payload)`. The expected tag is enforced by the caller (the
    /// section order is fixed).
    pub fn get_section(&mut self) -> Result<(u32, &'a [u8]), StoreError> {
        self.set_section("header");
        let tag = self.get_u32()?;
        let len = self.get_u64()?;
        let need = len.saturating_add(4); // crc + payload
        if (self.remaining() as u64) < need {
            return Err(StoreError::Truncated {
                offset: self.pos,
                needed: (need - self.remaining() as u64).min(usize::MAX as u64) as usize,
            });
        }
        let crc = self.get_u32()?;
        let payload = self.take(len as usize)?;
        let mut crc_input = Vec::with_capacity(4 + payload.len());
        crc_input.extend_from_slice(&tag.to_le_bytes());
        crc_input.extend_from_slice(payload);
        if crc32(&crc_input) != crc {
            return Err(StoreError::ChecksumMismatch {
                section: section_name(tag),
            });
        }
        Ok((tag, payload))
    }

    /// Read one section's framing like [`Reader::get_section`], but
    /// report a checksum mismatch as data (`crc_ok = false`) instead of
    /// an error — the inventory walk of `qar store-check` wants to list
    /// every section, bad ones included. Truncated framing still errors.
    pub fn get_section_frame(&mut self) -> Result<(u32, u64, bool), StoreError> {
        self.set_section("header");
        let tag = self.get_u32()?;
        let len = self.get_u64()?;
        let need = len.saturating_add(4); // crc + payload
        if (self.remaining() as u64) < need {
            return Err(StoreError::Truncated {
                offset: self.pos,
                needed: (need - self.remaining() as u64).min(usize::MAX as u64) as usize,
            });
        }
        let crc = self.get_u32()?;
        let payload = self.take(len as usize)?;
        let mut crc_input = Vec::with_capacity(4 + payload.len());
        crc_input.extend_from_slice(&tag.to_le_bytes());
        crc_input.extend_from_slice(payload);
        Ok((tag, len, crc32(&crc_input) == crc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_the_standard_check_value() {
        // The canonical CRC-32/IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_bool(true);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_f64(-0.0);
        w.put_f64(f64::NAN);
        w.put_str("héllo");
        w.put_duration(std::time::Duration::new(3, 500));
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.get_f64().unwrap().is_nan());
        assert_eq!(r.get_str().unwrap(), "héllo");
        assert_eq!(r.get_duration().unwrap(), std::time::Duration::new(3, 500));
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn section_round_trips_and_rejects_tampering() {
        let mut w = Writer::new();
        w.put_section(tag::RULES, b"payload bytes");
        let good = w.into_bytes();
        let (tag, payload) = Reader::new(&good).get_section().unwrap();
        assert_eq!(tag, tag::RULES);
        assert_eq!(payload, b"payload bytes");

        // Flip any single byte: either the CRC fails or (for the length
        // field) the framing no longer fits.
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x40;
            assert!(
                Reader::new(&bad).get_section().is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn truncated_reads_report_offsets() {
        let mut r = Reader::new(b"\x01");
        match r.get_u32() {
            Err(StoreError::Truncated {
                offset: 0,
                needed: 3,
            }) => {}
            other => panic!("unexpected: {other:?}"),
        }
        let mut r = Reader::new(&[5, 0, 0, 0, 0, 0, 0, 0, b'a']);
        assert!(matches!(r.get_str(), Err(StoreError::Corrupt { .. })));
    }

    #[test]
    fn counts_cannot_exceed_remaining_input() {
        // Claims 2^40 8-byte elements with nothing behind it.
        let mut w = Writer::new();
        w.put_u64(1 << 40);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.get_count(8), Err(StoreError::Corrupt { .. })));
    }
}
