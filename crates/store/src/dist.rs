//! The count-distribution wire protocol: coordinator ↔ worker messages
//! for distributed mining, on the same length-prefixed CRC-framed
//! transport as the `qar serve` protocol ([`mod@crate::protocol`]).
//!
//! Request tags count from 21 and responses from 121, disjoint from the
//! serve protocol's 1../101.. ranges, so a worker frame replayed at a
//! rule server (or vice versa) is an [`ProtocolError::UnknownTag`] —
//! never a confused decode. Schema/encoder and itemset payloads reuse
//! the `.qarcat` section codecs byte-for-byte, so a worker's view of the
//! table is exactly what a catalog would persist.
//!
//! The conversation (driven entirely by the coordinator):
//!
//! ```text
//! Setup {schema, encoders}        → Ready
//! Rows {columns} ...              → RowsLoaded {total_rows}   (repeated)
//! CountItems                      → ItemCounts {counts}       (pass 1)
//! CountCandidates {pass, cands}   → Counts {counts}           (pass k ≥ 2)
//! Shutdown                        → Bye
//! ```
//!
//! Every count a worker returns is the *raw* tally over its own row
//! partition — never filtered by a support threshold — so the
//! coordinator merges by element-wise `u64` addition and decides
//! frequency globally (the count-distribution invariant that makes the
//! distributed result bit-identical to the serial miner's).
//!
//! Large inputs are the caller's problem by design: a candidate batch or
//! row block that would overflow [`crate::protocol::MAX_PAYLOAD`] is a structured
//! [`ProtocolError::Oversized`] at encode time, and `qar-dist` splits
//! its batches to stay under the ceiling.

use crate::catalog::{
    decode_itemset, decode_schema, encode_itemset, encode_schema_with, validate_catalog_encoders,
};
use crate::format::{Reader, Writer};
use crate::protocol::{encode_frame, read_frame, ProtocolError};
use qar_itemset::Itemset;
use qar_table::{AttributeEncoder, Schema};
use std::io::{Read, Write};

/// Message tags for the distributed-mining protocol. Requests count from
/// 21, responses from 121 (see module docs).
pub mod tag {
    /// Schema + encoders for the table being mined.
    pub const REQ_SETUP: u32 = 21;
    /// One block of encoded rows appended to the worker's partition.
    pub const REQ_ROWS: u32 = 22;
    /// Count the per-attribute value histograms (pass 1).
    pub const REQ_COUNT_ITEMS: u32 = 23;
    /// Count one batch of candidate itemsets (pass k ≥ 2).
    pub const REQ_COUNT_CANDIDATES: u32 = 24;
    /// Stop the worker; it replies and exits.
    pub const REQ_SHUTDOWN: u32 = 25;

    /// Setup accepted.
    pub const RESP_READY: u32 = 121;
    /// Rows appended; carries the partition's running row total.
    pub const RESP_ROWS_LOADED: u32 = 122;
    /// Per-attribute histograms answering [`REQ_COUNT_ITEMS`].
    pub const RESP_ITEM_COUNTS: u32 = 123;
    /// Raw candidate counts answering [`REQ_COUNT_CANDIDATES`].
    pub const RESP_COUNTS: u32 = 124;
    /// Acknowledges [`REQ_SHUTDOWN`]; the connection closes after.
    pub const RESP_BYE: u32 = 125;
    /// The worker failed; carries a human-readable reason.
    pub const RESP_ERROR: u32 = 126;
}

/// A coordinator → worker message.
#[derive(Debug, Clone, PartialEq)]
pub enum DistRequest {
    /// Announce the table: schema and per-attribute encoders. Must be
    /// the first message; resets any previously loaded partition.
    Setup {
        /// Attribute declarations, in table order.
        schema: Schema,
        /// One encoder per attribute, in schema order.
        encoders: Vec<AttributeEncoder>,
    },
    /// Append a block of already-encoded rows to the worker's partition.
    /// `columns[attr][row]` — every column must have the same length.
    Rows {
        /// Column-major encoded codes for this block.
        columns: Vec<Vec<u32>>,
    },
    /// Run pass 1 over the partition: per-attribute value histograms.
    CountItems,
    /// Count a batch of candidate itemsets over the partition.
    CountCandidates {
        /// Pass number `k ≥ 2` (diagnostic; echoed in traces).
        pass: u32,
        /// The candidates, in coordinator order.
        candidates: Vec<Itemset>,
    },
    /// Stop the worker.
    Shutdown,
}

/// A worker → coordinator message.
#[derive(Debug, Clone, PartialEq)]
pub enum DistResponse {
    /// Setup accepted; the worker is ready for rows.
    Ready,
    /// Rows appended.
    RowsLoaded {
        /// Rows in the partition after this block.
        total_rows: u64,
    },
    /// Pass-1 histograms: `counts[attr][code]`, raw tallies over the
    /// worker's partition.
    ItemCounts {
        /// Per-attribute value histograms.
        counts: Vec<Vec<u64>>,
    },
    /// Candidate counts, aligned with the request's candidate order —
    /// raw tallies over the worker's partition.
    Counts {
        /// One count per candidate.
        counts: Vec<u64>,
    },
    /// Shutdown acknowledged.
    Bye,
    /// The worker could not serve the request.
    Error {
        /// Human-readable reason.
        message: String,
    },
}

impl DistRequest {
    /// The frame tag for this message.
    pub fn tag(&self) -> u32 {
        match self {
            DistRequest::Setup { .. } => tag::REQ_SETUP,
            DistRequest::Rows { .. } => tag::REQ_ROWS,
            DistRequest::CountItems => tag::REQ_COUNT_ITEMS,
            DistRequest::CountCandidates { .. } => tag::REQ_COUNT_CANDIDATES,
            DistRequest::Shutdown => tag::REQ_SHUTDOWN,
        }
    }

    /// Encode the payload (everything after the frame header).
    pub fn payload(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            DistRequest::Setup { schema, encoders } => {
                return encode_schema_with(schema, encoders);
            }
            DistRequest::Rows { columns } => {
                w.put_u64(columns.len() as u64);
                for col in columns {
                    w.put_u64(col.len() as u64);
                    for &code in col {
                        w.put_u32(code);
                    }
                }
            }
            DistRequest::CountItems => {}
            DistRequest::CountCandidates { pass, candidates } => {
                w.put_u32(*pass);
                w.put_u64(candidates.len() as u64);
                for c in candidates {
                    encode_itemset(&mut w, c);
                }
            }
            DistRequest::Shutdown => {}
        }
        w.into_bytes()
    }

    /// Encode as a complete frame. [`ProtocolError::Oversized`] when the
    /// payload exceeds [`crate::protocol::MAX_PAYLOAD`].
    pub fn to_frame(&self) -> Result<Vec<u8>, ProtocolError> {
        encode_frame(self.tag(), &self.payload())
    }

    /// Decode from a frame's tag + payload. Strict: the payload must be
    /// consumed exactly.
    pub fn decode(tag_: u32, payload: &[u8]) -> Result<DistRequest, ProtocolError> {
        let mut r = Reader::new(payload);
        let req = match tag_ {
            tag::REQ_SETUP => {
                let (schema, encoders) = decode_schema(payload)?;
                validate_catalog_encoders(&schema, &encoders)?;
                return Ok(DistRequest::Setup { schema, encoders });
            }
            tag::REQ_ROWS => {
                let ncols = r.get_count(8)?;
                let mut columns = Vec::with_capacity(ncols);
                let mut rows: Option<usize> = None;
                for _ in 0..ncols {
                    let n = r.get_count(4)?;
                    if *rows.get_or_insert(n) != n {
                        return Err(ProtocolError::Corrupt {
                            detail: "row block columns have unequal lengths".to_string(),
                        });
                    }
                    let mut col = Vec::with_capacity(n);
                    for _ in 0..n {
                        col.push(r.get_u32()?);
                    }
                    columns.push(col);
                }
                DistRequest::Rows { columns }
            }
            tag::REQ_COUNT_ITEMS => DistRequest::CountItems,
            tag::REQ_COUNT_CANDIDATES => {
                let pass = r.get_u32()?;
                // An itemset is at least its length prefix + one item.
                let n = r.get_count(8 + 12)?;
                let mut candidates = Vec::with_capacity(n);
                for _ in 0..n {
                    candidates.push(decode_itemset(&mut r)?);
                }
                DistRequest::CountCandidates { pass, candidates }
            }
            tag::REQ_SHUTDOWN => DistRequest::Shutdown,
            other => return Err(ProtocolError::UnknownTag(other)),
        };
        finish(r)?;
        Ok(req)
    }
}

impl DistResponse {
    /// The frame tag for this message.
    pub fn tag(&self) -> u32 {
        match self {
            DistResponse::Ready => tag::RESP_READY,
            DistResponse::RowsLoaded { .. } => tag::RESP_ROWS_LOADED,
            DistResponse::ItemCounts { .. } => tag::RESP_ITEM_COUNTS,
            DistResponse::Counts { .. } => tag::RESP_COUNTS,
            DistResponse::Bye => tag::RESP_BYE,
            DistResponse::Error { .. } => tag::RESP_ERROR,
        }
    }

    /// Encode the payload (everything after the frame header).
    pub fn payload(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            DistResponse::Ready | DistResponse::Bye => {}
            DistResponse::RowsLoaded { total_rows } => w.put_u64(*total_rows),
            DistResponse::ItemCounts { counts } => {
                w.put_u64(counts.len() as u64);
                for col in counts {
                    w.put_u64(col.len() as u64);
                    for &c in col {
                        w.put_u64(c);
                    }
                }
            }
            DistResponse::Counts { counts } => {
                w.put_u64(counts.len() as u64);
                for &c in counts {
                    w.put_u64(c);
                }
            }
            DistResponse::Error { message } => w.put_str(message),
        }
        w.into_bytes()
    }

    /// Encode as a complete frame. [`ProtocolError::Oversized`] when the
    /// payload exceeds [`crate::protocol::MAX_PAYLOAD`].
    pub fn to_frame(&self) -> Result<Vec<u8>, ProtocolError> {
        encode_frame(self.tag(), &self.payload())
    }

    /// Decode from a frame's tag + payload. Strict: the payload must be
    /// consumed exactly.
    pub fn decode(tag_: u32, payload: &[u8]) -> Result<DistResponse, ProtocolError> {
        let mut r = Reader::new(payload);
        let resp = match tag_ {
            tag::RESP_READY => DistResponse::Ready,
            tag::RESP_ROWS_LOADED => DistResponse::RowsLoaded {
                total_rows: r.get_u64()?,
            },
            tag::RESP_ITEM_COUNTS => {
                let n = r.get_count(8)?;
                let mut counts = Vec::with_capacity(n);
                for _ in 0..n {
                    let m = r.get_count(8)?;
                    let mut col = Vec::with_capacity(m);
                    for _ in 0..m {
                        col.push(r.get_u64()?);
                    }
                    counts.push(col);
                }
                DistResponse::ItemCounts { counts }
            }
            tag::RESP_COUNTS => {
                let n = r.get_count(8)?;
                let mut counts = Vec::with_capacity(n);
                for _ in 0..n {
                    counts.push(r.get_u64()?);
                }
                DistResponse::Counts { counts }
            }
            tag::RESP_BYE => DistResponse::Bye,
            tag::RESP_ERROR => DistResponse::Error {
                message: r.get_str()?,
            },
            other => return Err(ProtocolError::UnknownTag(other)),
        };
        finish(r)?;
        Ok(resp)
    }
}

/// Reject unconsumed payload bytes (canonical decode).
fn finish(r: Reader<'_>) -> Result<(), ProtocolError> {
    if r.remaining() > 0 {
        return Err(ProtocolError::TrailingBytes { offset: r.pos() });
    }
    Ok(())
}

/// Write one request frame to a stream.
pub fn write_request<W: Write>(w: &mut W, request: &DistRequest) -> Result<(), ProtocolError> {
    w.write_all(&request.to_frame()?)?;
    Ok(())
}

/// Write one response frame to a stream.
pub fn write_response<W: Write>(w: &mut W, response: &DistResponse) -> Result<(), ProtocolError> {
    w.write_all(&response.to_frame()?)?;
    Ok(())
}

/// Read the next request from a stream; `Ok(None)` is a clean EOF at a
/// frame boundary.
pub fn read_request<R: Read>(r: &mut R) -> Result<Option<DistRequest>, ProtocolError> {
    match read_frame(r)? {
        Some((tag_, payload)) => Ok(Some(DistRequest::decode(tag_, &payload)?)),
        None => Ok(None),
    }
}

/// Read the next response from a stream; `Ok(None)` is a clean EOF at a
/// frame boundary.
pub fn read_response<R: Read>(r: &mut R) -> Result<Option<DistResponse>, ProtocolError> {
    match read_frame(r)? {
        Some((tag_, payload)) => Ok(Some(DistResponse::decode(tag_, &payload)?)),
        None => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::decode_frame;
    use qar_itemset::Item;
    use qar_table::Schema;

    fn sample_schema() -> (Schema, Vec<AttributeEncoder>) {
        let schema = Schema::builder()
            .quantitative("age")
            .categorical("married")
            .build()
            .unwrap();
        let encoders = vec![
            AttributeEncoder::quant_intervals_from(&[20.0, 30.0, 40.0], vec![25.0, 35.0], true),
            AttributeEncoder::Categorical {
                labels: vec!["No".to_string(), "Yes".to_string()],
            },
        ];
        (schema, encoders)
    }

    fn sample_requests() -> Vec<DistRequest> {
        let (schema, encoders) = sample_schema();
        vec![
            DistRequest::Setup { schema, encoders },
            DistRequest::Rows {
                columns: vec![vec![0, 1, 2], vec![1, 0, 1]],
            },
            DistRequest::Rows {
                columns: Vec::new(),
            },
            DistRequest::CountItems,
            DistRequest::CountCandidates {
                pass: 2,
                candidates: vec![
                    Itemset::new(vec![Item::range(0, 0, 1), Item::value(1, 1)]),
                    Itemset::new(vec![Item::value(0, 2), Item::value(1, 0)]),
                ],
            },
            DistRequest::Shutdown,
        ]
    }

    fn sample_responses() -> Vec<DistResponse> {
        vec![
            DistResponse::Ready,
            DistResponse::RowsLoaded { total_rows: 3 },
            DistResponse::ItemCounts {
                counts: vec![vec![1, 1, 1], vec![1, 2]],
            },
            DistResponse::Counts {
                counts: vec![2, 0, 17],
            },
            DistResponse::Bye,
            DistResponse::Error {
                message: "partition not loaded".to_string(),
            },
        ]
    }

    #[test]
    fn requests_round_trip() {
        for req in sample_requests() {
            let frame = req.to_frame().unwrap();
            let (tag_, payload) = decode_frame(&frame).unwrap();
            let back = DistRequest::decode(tag_, payload).unwrap();
            assert_eq!(back, req);
            assert_eq!(back.to_frame().unwrap(), frame, "canonical re-encode");
        }
    }

    #[test]
    fn responses_round_trip() {
        for resp in sample_responses() {
            let frame = resp.to_frame().unwrap();
            let (tag_, payload) = decode_frame(&frame).unwrap();
            let back = DistResponse::decode(tag_, payload).unwrap();
            assert_eq!(back, resp);
            assert_eq!(back.to_frame().unwrap(), frame, "canonical re-encode");
        }
    }

    #[test]
    fn stream_io_round_trips() {
        let mut buf = Vec::new();
        for req in sample_requests() {
            write_request(&mut buf, &req).unwrap();
        }
        let mut cursor = std::io::Cursor::new(buf);
        let mut back = Vec::new();
        while let Some(req) = read_request(&mut cursor).unwrap() {
            back.push(req);
        }
        assert_eq!(back, sample_requests());

        let mut buf = Vec::new();
        for resp in sample_responses() {
            write_response(&mut buf, &resp).unwrap();
        }
        let mut cursor = std::io::Cursor::new(buf);
        let mut back = Vec::new();
        while let Some(resp) = read_response(&mut cursor).unwrap() {
            back.push(resp);
        }
        assert_eq!(back, sample_responses());
    }

    #[test]
    fn tags_are_disjoint_from_serve_protocol() {
        let serve_tags = [1u32, 2, 3, 4, 5, 6, 101, 102, 103, 104, 105, 106, 107];
        for req in sample_requests() {
            assert!(!serve_tags.contains(&req.tag()), "tag {}", req.tag());
        }
        for resp in sample_responses() {
            assert!(!serve_tags.contains(&resp.tag()), "tag {}", resp.tag());
        }
        // A dist frame handed to the serve decoder is UnknownTag.
        let frame = DistRequest::CountItems.to_frame().unwrap();
        let (tag_, payload) = decode_frame(&frame).unwrap();
        assert!(matches!(
            crate::protocol::Request::decode(tag_, payload),
            Err(ProtocolError::UnknownTag(_))
        ));
    }

    #[test]
    fn single_byte_corruption_never_decodes() {
        let frame = DistRequest::CountCandidates {
            pass: 3,
            candidates: vec![Itemset::new(vec![Item::range(0, 1, 2)])],
        }
        .to_frame()
        .unwrap();
        for i in 0..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 0x01;
            let result = decode_frame(&bad).and_then(|(t, p)| DistRequest::decode(t, p));
            assert!(result.is_err(), "flip at byte {i} still decoded");
        }
    }

    #[test]
    fn ragged_row_block_rejected() {
        let good = DistRequest::Rows {
            columns: vec![vec![0, 1], vec![2, 3]],
        };
        let mut payload = Writer::new();
        payload.put_u64(2);
        payload.put_u64(2);
        payload.put_u32(0);
        payload.put_u32(1);
        payload.put_u64(1); // second column shorter
        payload.put_u32(2);
        let bad = payload.into_bytes();
        assert!(matches!(
            DistRequest::decode(tag::REQ_ROWS, &bad),
            Err(ProtocolError::Corrupt { .. })
        ));
        // The well-formed equivalent still decodes.
        let frame = good.to_frame().unwrap();
        let (t, p) = decode_frame(&frame).unwrap();
        assert_eq!(DistRequest::decode(t, p).unwrap(), good);
    }

    #[test]
    fn oversized_candidate_batch_is_structured() {
        // ~1.4M two-item candidates ≈ 32 bytes each > 16 MiB.
        let candidates: Vec<Itemset> = (0..1_400_000u32)
            .map(|i| Itemset::new(vec![Item::value(0, i), Item::value(1, i)]))
            .collect();
        match (DistRequest::CountCandidates {
            pass: 2,
            candidates,
        })
        .to_frame()
        {
            Err(ProtocolError::Oversized { .. }) => {}
            Err(other) => panic!("expected Oversized, got {other:?}"),
            Ok(_) => panic!("oversized batch framed"),
        }
    }
}
