//! Glue between the analytics math ([`qar_analytics`]) and the miner's
//! data structures: builds the support-count closure each path needs.
//!
//! Two entry points, one per workflow:
//!
//! * [`analytics_from_mining`] — the `qar mine --analytics` path. Counts
//!   come from the frequent-itemset table the mine already built, so no
//!   table re-scan happens; by anti-monotonicity every sub-itemset of a
//!   rule's `antecedent ∪ consequent` is itself frequent, so the lookup
//!   almost never misses (a direct scan over the encoded table is the
//!   safety net).
//! * [`analytics_from_encoded`] — the `qar analyze` backfill path for
//!   catalogs mined before analytics existed. The original CSV is
//!   re-encoded with the catalog's own encoders and every count is a
//!   direct scan, memoized per distinct itemset.

use std::collections::HashMap;
use std::time::Instant;

use qar_analytics::{compute_ruleset, AnalyticsConfig, AnalyticsSet, RuleSides};
use qar_core::pipeline::MiningOutput;
use qar_core::QuantRule;
use qar_itemset::Itemset;
use qar_table::{AttributeId, EncodedTable};
use qar_trace::{event::micros, ProgressSink, TraceEvent};

/// Count an itemset's support by scanning every encoded record.
fn scan_support(table: &EncodedTable, itemset: &Itemset) -> u64 {
    let mut record: Vec<u32> = vec![0; table.schema().len()];
    let mut count = 0;
    for row in 0..table.num_rows() {
        for (a, slot) in record.iter_mut().enumerate() {
            *slot = table.codes(AttributeId(a))[row];
        }
        if itemset.supported_by(&record) {
            count += 1;
        }
    }
    count
}

fn rule_sides(rules: &[QuantRule]) -> Vec<RuleSides<'_>> {
    rules
        .iter()
        .map(|r| RuleSides {
            antecedent: &r.antecedent,
            consequent: &r.consequent,
            support: r.support,
        })
        .collect()
}

/// Emit the pinned `analytics_computed` trace event for a finished set.
fn report(set: &AnalyticsSet, start: Instant, sink: Option<&dyn ProgressSink>) {
    if let Some(sink) = sink {
        sink.on_event(&TraceEvent::AnalyticsComputed {
            rules: set.rules.len(),
            shapley_samples: set.shapley_samples,
            elapsed_us: micros(start.elapsed()),
        });
    }
}

/// Compute a ruleset's analytics straight off a finished mine, using the
/// frequent-itemset counts already in memory (no table re-scan on the
/// common path).
pub fn analytics_from_mining(
    output: &MiningOutput,
    config: &AnalyticsConfig,
    sink: Option<&dyn ProgressSink>,
) -> AnalyticsSet {
    let start = Instant::now();
    let mut memo: HashMap<Itemset, u64> = HashMap::new();
    let sides = rule_sides(&output.rules);
    let set = compute_ruleset(output.frequent.num_rows, &sides, config, |set| {
        if let Some(count) = output.frequent.support_of(set) {
            return count;
        }
        *memo
            .entry(set.clone())
            .or_insert_with(|| scan_support(&output.encoded, set))
    });
    report(&set, start, sink);
    set
}

/// Compute analytics for an already-persisted ruleset by counting
/// directly over a re-encoded table — the `qar analyze` backfill path.
/// `encoded` must be the rule's source table encoded with the catalog's
/// own encoders, so item codes line up.
pub fn analytics_from_encoded(
    rules: &[QuantRule],
    encoded: &EncodedTable,
    config: &AnalyticsConfig,
    sink: Option<&dyn ProgressSink>,
) -> AnalyticsSet {
    let start = Instant::now();
    let mut memo: HashMap<Itemset, u64> = HashMap::new();
    let sides = rule_sides(rules);
    let set = compute_ruleset(encoded.num_rows() as u64, &sides, config, |set| {
        *memo
            .entry(set.clone())
            .or_insert_with(|| scan_support(encoded, set))
    });
    report(&set, start, sink);
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use qar_core::{Miner, MinerConfig, PartitionSpec};
    use qar_datagen::{PlantedConfig, PlantedDataset};

    fn mined_output() -> MiningOutput {
        let data = PlantedDataset::generate(PlantedConfig {
            num_records: 300,
            seed: 11,
        });
        let config = MinerConfig {
            min_support: 0.05,
            min_confidence: 0.5,
            max_support: 0.5,
            partitioning: PartitionSpec::FixedIntervals(10),
            max_itemset_size: 2,
            ..MinerConfig::default()
        };
        Miner::new(config)
            .mine(&data.table)
            .expect("planted table mines")
    }

    /// The frequent-lookup path and the direct-scan path must agree
    /// bit-for-bit: same counts in, same floats out.
    #[test]
    fn mine_path_and_backfill_path_agree_bitwise() {
        let output = mined_output();
        assert!(!output.rules.is_empty(), "planted mine found no rules");
        let config = AnalyticsConfig::default();
        let sink = qar_trace::CollectingSink::new();
        let from_mine = analytics_from_mining(&output, &config, Some(&sink));
        let from_scan =
            analytics_from_encoded(&output.rules, &output.encoded, &config, Some(&sink));
        assert!(from_mine.bits_eq(&from_scan));

        // Both paths report the pinned trace event.
        let events = sink.events();
        assert_eq!(events.len(), 2);
        for event in events {
            match event {
                TraceEvent::AnalyticsComputed {
                    rules,
                    shapley_samples,
                    ..
                } => {
                    assert_eq!(rules, output.rules.len());
                    assert_eq!(shapley_samples, config.shapley_samples);
                }
                other => panic!("expected analytics_computed, got {other:?}"),
            }
        }
    }

    /// Analytics counts are consistent with the rules they annotate.
    #[test]
    fn counts_are_consistent_with_rule_supports() {
        let output = mined_output();
        let set = analytics_from_mining(&output, &AnalyticsConfig::default(), None);
        assert_eq!(set.rules.len(), output.rules.len());
        let n = output.frequent.num_rows;
        for (entry, rule) in set.rules.iter().zip(&output.rules) {
            assert!(entry.count_antecedent >= rule.support);
            assert!(entry.count_consequent >= rule.support);
            assert!(entry.count_antecedent <= n);
            assert!(entry.count_consequent <= n);
            let sum: f64 = entry.shapley.iter().map(|(_, v)| v).sum();
            assert!(
                (sum - entry.jmeasure).abs() <= 1e-9 * entry.jmeasure.abs().max(1.0),
                "Shapley efficiency violated: {sum} vs {}",
                entry.jmeasure
            );
        }
    }
}
