//! Structured errors for catalog I/O and decoding.
//!
//! Every way a `.qarcat` file can be malformed maps to a variant here —
//! decoding never panics on untrusted bytes, no matter how they were
//! corrupted (the round-trip property test flips bytes at random offsets
//! to enforce this).

use std::fmt;

/// Why a catalog could not be written, read, or decoded.
#[derive(Debug)]
pub enum StoreError {
    /// The underlying read or write failed.
    Io(std::io::Error),
    /// The file does not start with the `QARCAT\r\n` magic — not a
    /// catalog, or mangled by a text-mode transfer.
    BadMagic,
    /// The format version is newer than this build understands.
    UnsupportedVersion(u32),
    /// The input ended before a length-prefixed value was complete.
    Truncated {
        /// Byte offset at which the read was attempted.
        offset: usize,
        /// Bytes the read needed beyond what remained.
        needed: usize,
    },
    /// A section's CRC-32 did not match its framing + payload bytes.
    ChecksumMismatch {
        /// Which section failed (`"schema"`, `"rules"`, `"stats"`).
        section: &'static str,
    },
    /// A section's payload decoded to something structurally invalid
    /// (out-of-range code, unsorted itemset, impossible count, ...).
    Corrupt {
        /// Which section the problem is in.
        section: &'static str,
        /// What was wrong.
        detail: String,
    },
    /// Well-formed sections were followed by extra bytes.
    TrailingBytes {
        /// Offset of the first unexpected byte.
        offset: usize,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "catalog I/O error: {e}"),
            StoreError::BadMagic => {
                write!(f, "not a .qarcat file (bad magic header)")
            }
            StoreError::UnsupportedVersion(v) => {
                write!(f, "unsupported catalog format version {v}")
            }
            StoreError::Truncated { offset, needed } => write!(
                f,
                "catalog truncated at byte {offset} ({needed} more byte(s) needed)"
            ),
            StoreError::ChecksumMismatch { section } => {
                write!(f, "checksum mismatch in {section} section")
            }
            StoreError::Corrupt { section, detail } => {
                write!(f, "corrupt {section} section: {detail}")
            }
            StoreError::TrailingBytes { offset } => {
                write!(f, "trailing bytes after final section (offset {offset})")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}
