//! The persistent rule catalog: everything a mine produced, decodable
//! without the original table.
//!
//! A [`Catalog`] bundles the schema, the per-attribute encoders (so item
//! codes decode back to labels and value bounds), the mined rules with
//! their interest verdicts, and the run's [`MiningStats`] provenance. It
//! serializes to the `.qarcat` format described in [`crate::format`] and
//! round-trips bit-exactly: `encode(decode(bytes)) == bytes`.
//!
//! Decoding validates every structural invariant the in-memory types
//! assume (sorted labels, increasing cuts, in-range item codes, ...) and
//! returns [`StoreError`] — never panics — on any violation, so a catalog
//! from an untrusted source is safe to open.

use std::time::Instant;

use crate::error::StoreError;
use crate::format::{self, Reader, Writer};
use qar_analytics::{AnalyticsSet, RuleAnalytics};
use qar_core::pipeline::{MiningOutput, MiningStats};
use qar_core::supercand::PassStats;
use qar_core::{
    encoding_fingerprint, mine::MineStats, CapturedCounts, CountsConfig, InterestConfig,
    InterestMode, PartitionSpec, PartitionStrategy, QuantRule, RuleDecoder, RuleInterest,
    SupportCounts,
};
use qar_itemset::{Item, Itemset};
use qar_table::encode::IntervalSpec;
use qar_table::{AttributeDef, AttributeEncoder, AttributeId, AttributeKind, Schema};
use qar_trace::{event::micros, ProgressSink, TraceEvent};

/// A mined ruleset with everything needed to query and render it.
#[derive(Debug, Clone)]
pub struct Catalog {
    schema: Schema,
    encoders: Vec<AttributeEncoder>,
    num_rows: u64,
    rules: Vec<QuantRule>,
    interest: Option<Vec<RuleInterest>>,
    stats: MiningStats,
    analytics: Option<AnalyticsSet>,
    counts: Option<SupportCounts>,
}

impl Catalog {
    /// Build a catalog from parts, validating the same invariants
    /// [`Catalog::decode`] enforces.
    pub fn new(
        schema: Schema,
        encoders: Vec<AttributeEncoder>,
        num_rows: u64,
        rules: Vec<QuantRule>,
        interest: Option<Vec<RuleInterest>>,
        stats: MiningStats,
    ) -> Result<Self, StoreError> {
        let catalog = Catalog {
            schema,
            encoders,
            num_rows,
            rules,
            interest,
            stats,
            analytics: None,
            counts: None,
        };
        catalog.validate()?;
        Ok(catalog)
    }

    /// Attach rule-quality analytics, validating that they line up with
    /// the catalog's rules (one entry per rule, Shapley attributions over
    /// exactly the antecedent's attributes).
    pub fn with_analytics(mut self, analytics: AnalyticsSet) -> Result<Self, StoreError> {
        self.analytics = Some(analytics);
        self.validate()?;
        Ok(self)
    }

    /// Attach persisted support counts, validating that they line up with
    /// the catalog (row total, encoding fingerprint, histogram shapes,
    /// in-range candidate codes).
    pub fn with_counts(mut self, counts: SupportCounts) -> Result<Self, StoreError> {
        self.counts = Some(counts);
        self.validate()?;
        Ok(self)
    }

    /// Drop persisted support counts (e.g. when re-saving a catalog whose
    /// counts no longer describe its rules).
    pub fn without_counts(mut self) -> Self {
        self.counts = None;
        self
    }

    /// Capture a finished mine as a catalog.
    ///
    /// # Panics
    /// If the miner produced structurally invalid output — which would be
    /// a bug in the miner, not in the caller.
    pub fn from_mining(output: &MiningOutput) -> Self {
        Catalog::new(
            output.encoded.schema().clone(),
            output.encoded.encoders().to_vec(),
            output.frequent.num_rows,
            output.rules.clone(),
            output.interest.clone(),
            output.stats.clone(),
        )
        .expect("miner output is always a valid catalog")
    }

    /// The schema the rules' attribute ids refer to.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// All per-attribute encoders, in schema order.
    pub fn encoders(&self) -> &[AttributeEncoder] {
        &self.encoders
    }

    /// Rows of the table the rules were mined from.
    pub fn num_rows(&self) -> u64 {
        self.num_rows
    }

    /// The mined rules, in the miner's output order.
    pub fn rules(&self) -> &[QuantRule] {
        &self.rules
    }

    /// Interest verdicts aligned with [`Catalog::rules`], if the mine
    /// computed them.
    pub fn interest(&self) -> Option<&[RuleInterest]> {
        self.interest.as_deref()
    }

    /// The run's statistics.
    pub fn stats(&self) -> &MiningStats {
        &self.stats
    }

    /// Rule-quality analytics aligned with [`Catalog::rules`], if this
    /// catalog carries them (mined with `--analytics` or backfilled with
    /// `qar analyze`).
    pub fn analytics(&self) -> Option<&AnalyticsSet> {
        self.analytics.as_ref()
    }

    /// Persisted support counts, if this catalog carries them (mined with
    /// a counts-capturing run) — the raw tallies `qar mine --update`
    /// merges with a delta-only scan instead of re-scanning the base.
    pub fn counts(&self) -> Option<&SupportCounts> {
        self.counts.as_ref()
    }

    /// True when two catalogs carry the same mining *content*: schema,
    /// encoders, row count, rules (bit-for-bit supports and confidences),
    /// interest verdicts, analytics (bit-for-bit, NaN-tolerant), and
    /// persisted support counts. Run statistics are excluded — they
    /// describe how a mine ran, not what it found. This is the equality a
    /// save→load round trip must preserve.
    pub fn content_eq(&self, other: &Catalog) -> bool {
        let analytics_eq = match (&self.analytics, &other.analytics) {
            (None, None) => true,
            (Some(a), Some(b)) => a.bits_eq(b),
            _ => false,
        };
        self.schema == other.schema
            && self.encoders == other.encoders
            && self.num_rows == other.num_rows
            && self.rules == other.rules
            && self.interest == other.interest
            && analytics_eq
            && self.counts == other.counts
    }

    /// Serialize to `.qarcat` bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        for &b in &format::MAGIC {
            w.put_u8(b);
        }
        w.put_u32(format::VERSION);
        w.put_section(format::tag::SCHEMA, &self.encode_schema());
        w.put_section(format::tag::RULES, &self.encode_rules());
        w.put_section(format::tag::STATS, &self.encode_stats());
        if let Some(analytics) = &self.analytics {
            w.put_section(format::tag::ANALYTICS, &encode_analytics(analytics));
        }
        if let Some(counts) = &self.counts {
            w.put_section(format::tag::COUNTS, &encode_counts(counts));
        }
        w.into_bytes()
    }

    /// Decode a catalog from `.qarcat` bytes, verifying magic, version,
    /// per-section CRCs, and every structural invariant.
    pub fn decode(bytes: &[u8]) -> Result<Self, StoreError> {
        if bytes.len() < format::MAGIC.len() || bytes[..format::MAGIC.len()] != format::MAGIC {
            return Err(StoreError::BadMagic);
        }
        let mut r = Reader::new(&bytes[format::MAGIC.len()..]);
        let version = r.get_u32()?;
        if version != format::VERSION {
            return Err(StoreError::UnsupportedVersion(version));
        }
        let mut sections = Vec::with_capacity(3);
        for expected in [format::tag::SCHEMA, format::tag::RULES, format::tag::STATS] {
            let (tag, payload) = r.get_section()?;
            if tag != expected {
                return Err(StoreError::Corrupt {
                    section: "header",
                    detail: format!(
                        "expected {} section (tag {expected}), found tag {tag}",
                        format::section_name(expected)
                    ),
                });
            }
            sections.push(payload);
        }
        // Optional trailing sections: analytics and counts are decoded
        // (in that canonical order, so re-encoding reproduces the bytes);
        // unknown tags are CRC-verified (a flipped byte is still
        // detected) but their contents skipped, so readers of this
        // version open catalogs written by future ones.
        let mut analytics_payload = None;
        let mut counts_payload = None;
        while r.remaining() > 0 {
            let (tag, payload) = r.get_section()?;
            match tag {
                format::tag::ANALYTICS => {
                    if analytics_payload.is_some() {
                        return Err(StoreError::Corrupt {
                            section: "analytics",
                            detail: "duplicate analytics section".into(),
                        });
                    }
                    if counts_payload.is_some() {
                        return Err(StoreError::Corrupt {
                            section: "analytics",
                            detail: "analytics section after counts section".into(),
                        });
                    }
                    analytics_payload = Some(payload);
                }
                format::tag::COUNTS => {
                    if counts_payload.is_some() {
                        return Err(StoreError::Corrupt {
                            section: "counts",
                            detail: "duplicate counts section".into(),
                        });
                    }
                    counts_payload = Some(payload);
                }
                format::tag::SCHEMA | format::tag::RULES | format::tag::STATS => {
                    return Err(StoreError::Corrupt {
                        section: "header",
                        detail: format!(
                            "duplicate {} section after the mandatory three",
                            format::section_name(tag)
                        ),
                    });
                }
                _ => {} // unknown trailing section: verified, skipped
            }
        }
        let (schema, encoders) = decode_schema(sections[0])?;
        let (num_rows, rules, interest) = decode_rules(sections[1])?;
        let stats = decode_stats(sections[2])?;
        let mut catalog = Catalog::new(schema, encoders, num_rows, rules, interest, stats)?;
        if let Some(payload) = analytics_payload {
            catalog = catalog.with_analytics(decode_analytics(payload)?)?;
        }
        if let Some(payload) = counts_payload {
            catalog = catalog.with_counts(decode_counts(payload)?)?;
        }
        Ok(catalog)
    }

    /// Decode from bytes already in memory (e.g. piped via stdin),
    /// reporting a [`TraceEvent::CatalogLoaded`] to `sink`.
    pub fn load_bytes(bytes: &[u8], sink: Option<&dyn ProgressSink>) -> Result<Self, StoreError> {
        let start = Instant::now();
        let catalog = Catalog::decode(bytes)?;
        if let Some(sink) = sink {
            sink.on_event(&TraceEvent::CatalogLoaded {
                rules: catalog.rules.len(),
                bytes: bytes.len() as u64,
                elapsed_us: micros(start.elapsed()),
            });
            if let Some(counts) = &catalog.counts {
                sink.on_event(&TraceEvent::CountsLoaded {
                    passes: counts.captured.passes.len(),
                    itemsets: counts.total_candidates(),
                    rows: counts.num_rows,
                });
            }
        }
        Ok(catalog)
    }

    /// Read and decode a catalog file.
    pub fn load(
        path: impl AsRef<std::path::Path>,
        sink: Option<&dyn ProgressSink>,
    ) -> Result<Self, StoreError> {
        let bytes = std::fs::read(path)?;
        Catalog::load_bytes(&bytes, sink)
    }

    /// Encode and write a catalog file, reporting a
    /// [`TraceEvent::CatalogSaved`] to `sink`.
    pub fn save(
        &self,
        path: impl AsRef<std::path::Path>,
        sink: Option<&dyn ProgressSink>,
    ) -> Result<(), StoreError> {
        let start = Instant::now();
        let bytes = self.encode();
        std::fs::write(path, &bytes)?;
        if let Some(sink) = sink {
            sink.on_event(&TraceEvent::CatalogSaved {
                rules: self.rules.len(),
                bytes: bytes.len() as u64,
                elapsed_us: micros(start.elapsed()),
            });
            if let Some(counts) = &self.counts {
                sink.on_event(&TraceEvent::CountsSaved {
                    passes: counts.captured.passes.len(),
                    itemsets: counts.total_candidates(),
                    bytes: encode_counts(counts).len() as u64,
                });
            }
        }
        Ok(())
    }

    fn encode_schema(&self) -> Vec<u8> {
        encode_schema_with(&self.schema, &self.encoders)
    }

    fn encode_rules(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u64(self.num_rows);
        w.put_u64(self.rules.len() as u64);
        for rule in &self.rules {
            encode_itemset(&mut w, &rule.antecedent);
            encode_itemset(&mut w, &rule.consequent);
            w.put_u64(rule.support);
            w.put_f64(rule.confidence);
        }
        w.put_bool(self.interest.is_some());
        if let Some(verdicts) = &self.interest {
            for v in verdicts {
                w.put_u8(v.interesting as u8 | (v.has_ancestors as u8) << 1);
            }
        }
        w.into_bytes()
    }

    fn encode_stats(&self) -> Vec<u8> {
        let s = &self.stats;
        let mut w = Writer::new();
        w.put_u64(s.intervals_per_attribute.len() as u64);
        for iv in &s.intervals_per_attribute {
            w.put_bool(iv.is_some());
            if let Some(n) = iv {
                w.put_u64(*n as u64);
            }
        }
        w.put_u64(s.rules_total as u64);
        w.put_u64(s.rules_interesting as u64);
        w.put_duration(s.elapsed);
        w.put_duration(s.elapsed_mining);
        w.put_bool(s.encoding_reused);
        w.put_u64(s.mine.candidates_per_pass.len() as u64);
        for &c in &s.mine.candidates_per_pass {
            w.put_u64(c as u64);
        }
        w.put_u64(s.mine.interest_pruned_items as u64);
        w.put_duration(s.mine.pass1_scan_time);
        w.put_u64(s.mine.parallelism as u64);
        w.put_u64(s.mine.pass_stats.len() as u64);
        for p in &s.mine.pass_stats {
            w.put_u64(p.super_candidates as u64);
            w.put_u64(p.array_backed as u64);
            w.put_u64(p.rtree_backed as u64);
            w.put_u64(p.hash_tree_nodes as u64);
            w.put_u64(p.counter_bytes as u64);
            w.put_duration(p.scan_time);
            w.put_duration(p.merge_time);
            w.put_u64(p.shard_scan_times.len() as u64);
            for &d in &p.shard_scan_times {
                w.put_duration(d);
            }
        }
        w.into_bytes()
    }

    /// Check every invariant decode relies on. `Err` carries the section
    /// the violation would live in on disk.
    fn validate(&self) -> Result<(), StoreError> {
        let corrupt = |section, detail: String| StoreError::Corrupt { section, detail };
        if self.encoders.len() != self.schema.len() {
            return Err(corrupt(
                "schema",
                format!(
                    "{} encoder(s) for {} attribute(s)",
                    self.encoders.len(),
                    self.schema.len()
                ),
            ));
        }
        for (id, def) in self.schema.iter() {
            let enc = &self.encoders[id.index()];
            validate_encoder(def.name(), def.kind(), enc)?;
        }
        if let Some(verdicts) = &self.interest {
            if verdicts.len() != self.rules.len() {
                return Err(corrupt(
                    "rules",
                    format!(
                        "{} interest verdict(s) for {} rule(s)",
                        verdicts.len(),
                        self.rules.len()
                    ),
                ));
            }
        }
        for (i, rule) in self.rules.iter().enumerate() {
            validate_itemset(i, "antecedent", &rule.antecedent, &self.encoders)?;
            validate_itemset(i, "consequent", &rule.consequent, &self.encoders)?;
            let overlap = rule
                .antecedent
                .items()
                .iter()
                .any(|a| rule.consequent.items().iter().any(|c| c.attr == a.attr));
            if overlap {
                return Err(corrupt(
                    "rules",
                    format!("rule {i}: antecedent and consequent share an attribute"),
                ));
            }
        }
        if self.stats.intervals_per_attribute.len() != self.schema.len() {
            return Err(corrupt(
                "stats",
                format!(
                    "{} interval count(s) for {} attribute(s)",
                    self.stats.intervals_per_attribute.len(),
                    self.schema.len()
                ),
            ));
        }
        if let Some(analytics) = &self.analytics {
            if analytics.rules.len() != self.rules.len() {
                return Err(corrupt(
                    "analytics",
                    format!(
                        "{} analytics entr(ies) for {} rule(s)",
                        analytics.rules.len(),
                        self.rules.len()
                    ),
                ));
            }
            for (i, (entry, rule)) in analytics.rules.iter().zip(&self.rules).enumerate() {
                let ant_attrs: Vec<u32> =
                    rule.antecedent.items().iter().map(|it| it.attr).collect();
                let shap_attrs: Vec<u32> = entry.shapley.iter().map(|(a, _)| *a).collect();
                if ant_attrs != shap_attrs {
                    return Err(corrupt(
                        "analytics",
                        format!(
                            "rule {i}: Shapley attributes {shap_attrs:?} do not match \
                             antecedent attributes {ant_attrs:?}"
                        ),
                    ));
                }
            }
        }
        if let Some(counts) = &self.counts {
            self.validate_counts(counts)?;
        }
        Ok(())
    }

    /// Check persisted counts against the catalog they ride in: row total
    /// and encoding fingerprint agree, the config is a valid miner
    /// configuration, histograms span exactly the encoders' code spaces,
    /// and every tallied candidate's codes are in range.
    fn validate_counts(&self, counts: &SupportCounts) -> Result<(), StoreError> {
        let corrupt = |detail: String| StoreError::Corrupt {
            section: "counts",
            detail,
        };
        if counts.num_rows != self.num_rows {
            return Err(corrupt(format!(
                "counts cover {} row(s) but the catalog has {}",
                counts.num_rows, self.num_rows
            )));
        }
        let expected = encoding_fingerprint(&self.schema, &self.encoders);
        if counts.fingerprint != expected {
            return Err(corrupt(
                "encoding fingerprint does not match the catalog's schema and encoders".into(),
            ));
        }
        if let Err(e) = counts.config.miner_config().validate() {
            return Err(corrupt(format!("invalid mining configuration: {e}")));
        }
        if counts.intervals_per_attribute.len() != self.schema.len() {
            return Err(corrupt(format!(
                "{} interval count(s) for {} attribute(s)",
                counts.intervals_per_attribute.len(),
                self.schema.len()
            )));
        }
        if counts.captured.value_counts.len() != self.schema.len() {
            return Err(corrupt(format!(
                "{} histogram(s) for {} attribute(s)",
                counts.captured.value_counts.len(),
                self.schema.len()
            )));
        }
        for (id, _) in self.schema.iter() {
            let have = counts.captured.value_counts[id.index()].len();
            let want = self.encoders[id.index()].cardinality() as usize;
            if have != want {
                return Err(corrupt(format!(
                    "attribute {}: histogram has {have} bucket(s) for cardinality {want}",
                    id.index()
                )));
            }
        }
        for (pass, entries) in &counts.captured.passes {
            for (itemset, _) in entries {
                for item in itemset.items() {
                    let Some(enc) = self.encoders.get(item.attr as usize) else {
                        return Err(corrupt(format!(
                            "pass {pass}: candidate references unknown attribute {}",
                            item.attr
                        )));
                    };
                    if item.hi >= enc.cardinality() {
                        return Err(corrupt(format!(
                            "pass {pass}: candidate codes {}..{} exceed cardinality {} \
                             of attribute {}",
                            item.lo,
                            item.hi,
                            enc.cardinality(),
                            item.attr
                        )));
                    }
                }
            }
        }
        Ok(())
    }
}

/// One section of a `.qarcat` file, as reported by
/// [`section_inventory`]: its framing plus whether the checksum held and
/// whether this reader version understands the tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionInfo {
    /// The section's tag value.
    pub tag: u32,
    /// Human name of the tag ("unknown" for tags this version skips).
    pub name: &'static str,
    /// Payload length in bytes.
    pub len: u64,
    /// Whether the stored CRC matches the payload.
    pub crc_ok: bool,
}

impl SectionInfo {
    /// True when this reader version decodes the section (rather than
    /// skipping it as an unknown trailing section).
    pub fn known(&self) -> bool {
        self.name != "unknown"
    }
}

/// Walk a `.qarcat` file's section framing without decoding payloads,
/// reporting each section's tag, length, and CRC verdict — the engine of
/// `qar store-check`. Unlike [`Catalog::decode`] a checksum mismatch is
/// reported per-section, not fatal; only structurally unwalkable files
/// (bad magic, wrong version, truncated framing) error.
pub fn section_inventory(bytes: &[u8]) -> Result<Vec<SectionInfo>, StoreError> {
    if bytes.len() < format::MAGIC.len() || bytes[..format::MAGIC.len()] != format::MAGIC {
        return Err(StoreError::BadMagic);
    }
    let mut r = Reader::new(&bytes[format::MAGIC.len()..]);
    let version = r.get_u32()?;
    if version != format::VERSION {
        return Err(StoreError::UnsupportedVersion(version));
    }
    let mut out = Vec::new();
    while r.remaining() > 0 {
        let (tag, len, crc_ok) = r.get_section_frame()?;
        out.push(SectionInfo {
            tag,
            name: format::section_name(tag),
            len,
            crc_ok,
        });
    }
    Ok(out)
}

impl RuleDecoder for Catalog {
    fn schema(&self) -> &Schema {
        &self.schema
    }
    fn encoder(&self, id: AttributeId) -> &AttributeEncoder {
        &self.encoders[id.index()]
    }
}

/// Serialize an [`AnalyticsSet`] into the `ANALYTICS` section payload:
/// sampling provenance, then per rule the two marginal counts, the seven
/// measures as raw f64 bits, and the Shapley `(attr, value)` pairs.
fn encode_analytics(set: &AnalyticsSet) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u32(set.shapley_samples);
    w.put_u64(set.seed);
    w.put_u64(set.rules.len() as u64);
    for r in &set.rules {
        w.put_u64(r.count_antecedent);
        w.put_u64(r.count_consequent);
        w.put_f64(r.lift);
        w.put_f64(r.conviction);
        w.put_f64(r.leverage);
        w.put_f64(r.chi2);
        w.put_f64(r.p_value);
        w.put_f64(r.p_adjusted);
        w.put_f64(r.jmeasure);
        w.put_u64(r.shapley.len() as u64);
        for (attr, value) in &r.shapley {
            w.put_u32(*attr);
            w.put_f64(*value);
        }
    }
    w.into_bytes()
}

fn decode_analytics(payload: &[u8]) -> Result<AnalyticsSet, StoreError> {
    let mut r = Reader::new(payload);
    r.set_section("analytics");
    let shapley_samples = r.get_u32()?;
    let seed = r.get_u64()?;
    // Two counts + seven measures + shapley count per rule at minimum.
    let count = r.get_count(2 * 8 + 7 * 8 + 8)?;
    let mut rules = Vec::with_capacity(count);
    for _ in 0..count {
        let count_antecedent = r.get_u64()?;
        let count_consequent = r.get_u64()?;
        let lift = r.get_f64()?;
        let conviction = r.get_f64()?;
        let leverage = r.get_f64()?;
        let chi2 = r.get_f64()?;
        let p_value = r.get_f64()?;
        let p_adjusted = r.get_f64()?;
        let jmeasure = r.get_f64()?;
        let n = r.get_count(12)?;
        let mut shapley = Vec::with_capacity(n);
        let mut prev_attr = None;
        for _ in 0..n {
            let attr = r.get_u32()?;
            if prev_attr.is_some_and(|p| p >= attr) {
                return Err(r.corrupt("Shapley attributes are not strictly increasing"));
            }
            prev_attr = Some(attr);
            shapley.push((attr, r.get_f64()?));
        }
        rules.push(RuleAnalytics {
            count_antecedent,
            count_consequent,
            lift,
            conviction,
            leverage,
            chi2,
            p_value,
            p_adjusted,
            jmeasure,
            shapley,
        });
    }
    if r.remaining() > 0 {
        return Err(r.corrupt(format!("{} unread byte(s) in section", r.remaining())));
    }
    Ok(AnalyticsSet {
        shapley_samples,
        seed,
        rules,
    })
}

/// Serialize [`SupportCounts`] into the `COUNTS` section payload: row
/// total, the two encoding-fingerprint lanes, the semantic mining
/// configuration, the achieved interval counts, the pass-1 histograms,
/// and per counting pass every candidate with its raw tally.
fn encode_counts(counts: &SupportCounts) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u64(counts.num_rows);
    w.put_u64(counts.fingerprint.0);
    w.put_u64(counts.fingerprint.1);
    let c = &counts.config;
    w.put_f64(c.min_support);
    w.put_f64(c.min_confidence);
    w.put_f64(c.max_support);
    w.put_u64(c.max_itemset_size as u64);
    w.put_bool(c.interest.is_some());
    if let Some(interest) = &c.interest {
        w.put_f64(interest.level);
        w.put_u8(match interest.mode {
            InterestMode::SupportAndConfidence => 0,
            InterestMode::SupportOrConfidence => 1,
        });
        w.put_bool(interest.prune_candidates);
    }
    match &c.partitioning {
        PartitionSpec::None => w.put_u8(0),
        PartitionSpec::CompletenessLevel(k) => {
            w.put_u8(1);
            w.put_f64(*k);
        }
        PartitionSpec::FixedIntervals(n) => {
            w.put_u8(2);
            w.put_u64(*n as u64);
        }
        PartitionSpec::PerAttribute(map) => {
            w.put_u8(3);
            w.put_u64(map.len() as u64);
            for (name, n) in map {
                w.put_str(name);
                w.put_u64(*n as u64);
            }
        }
    }
    w.put_u8(match c.partition_strategy {
        PartitionStrategy::EquiDepth => 0,
        PartitionStrategy::EquiWidth => 1,
        PartitionStrategy::KMeans => 2,
    });
    w.put_u64(counts.intervals_per_attribute.len() as u64);
    for iv in &counts.intervals_per_attribute {
        w.put_bool(iv.is_some());
        if let Some(n) = iv {
            w.put_u64(*n as u64);
        }
    }
    w.put_u64(counts.captured.value_counts.len() as u64);
    for hist in &counts.captured.value_counts {
        w.put_u64(hist.len() as u64);
        for &n in hist {
            w.put_u64(n);
        }
    }
    w.put_u64(counts.captured.passes.len() as u64);
    for (pass, entries) in &counts.captured.passes {
        w.put_u32(*pass);
        w.put_u64(entries.len() as u64);
        for (itemset, count) in entries {
            encode_itemset(&mut w, itemset);
            w.put_u64(*count);
        }
    }
    w.into_bytes()
}

fn decode_counts(payload: &[u8]) -> Result<SupportCounts, StoreError> {
    let mut r = Reader::new(payload);
    r.set_section("counts");
    let num_rows = r.get_u64()?;
    let fingerprint = (r.get_u64()?, r.get_u64()?);
    let min_support = r.get_f64()?;
    let min_confidence = r.get_f64()?;
    let max_support = r.get_f64()?;
    let max_itemset_size = r.get_u64()? as usize;
    let interest = if r.get_bool()? {
        let level = r.get_f64()?;
        let mode = match r.get_u8()? {
            0 => InterestMode::SupportAndConfidence,
            1 => InterestMode::SupportOrConfidence,
            b => return Err(r.corrupt(format!("interest mode byte is {b}"))),
        };
        let prune_candidates = r.get_bool()?;
        Some(InterestConfig {
            level,
            mode,
            prune_candidates,
        })
    } else {
        None
    };
    let partitioning = match r.get_u8()? {
        0 => PartitionSpec::None,
        1 => PartitionSpec::CompletenessLevel(r.get_f64()?),
        2 => PartitionSpec::FixedIntervals(r.get_u64()? as usize),
        3 => {
            let n = r.get_count(9)?; // str len prefix + interval count
            let mut map = std::collections::BTreeMap::new();
            let mut prev: Option<String> = None;
            for _ in 0..n {
                let name = r.get_str()?;
                if prev.as_ref().is_some_and(|p| *p >= name) {
                    return Err(r.corrupt("per-attribute names are not strictly increasing"));
                }
                let intervals = r.get_u64()? as usize;
                prev = Some(name.clone());
                map.insert(name, intervals);
            }
            PartitionSpec::PerAttribute(map)
        }
        b => return Err(r.corrupt(format!("partitioning tag byte is {b}"))),
    };
    let partition_strategy = match r.get_u8()? {
        0 => PartitionStrategy::EquiDepth,
        1 => PartitionStrategy::EquiWidth,
        2 => PartitionStrategy::KMeans,
        b => return Err(r.corrupt(format!("partition strategy byte is {b}"))),
    };
    let config = CountsConfig {
        min_support,
        min_confidence,
        max_support,
        max_itemset_size,
        interest,
        partitioning,
        partition_strategy,
    };
    let count = r.get_count(1)?;
    let mut intervals_per_attribute = Vec::with_capacity(count);
    for _ in 0..count {
        intervals_per_attribute.push(if r.get_bool()? {
            Some(r.get_u64()? as usize)
        } else {
            None
        });
    }
    let attrs = r.get_count(8)?;
    let mut value_counts = Vec::with_capacity(attrs);
    for _ in 0..attrs {
        let n = r.get_count(8)?;
        let mut hist = Vec::with_capacity(n);
        for _ in 0..n {
            hist.push(r.get_u64()?);
        }
        value_counts.push(hist);
    }
    let npasses = r.get_count(12)?; // pass number + entry count at minimum
    let mut passes = Vec::with_capacity(npasses);
    let mut prev_pass = None;
    for _ in 0..npasses {
        let pass = r.get_u32()?;
        if pass < 2 {
            return Err(r.corrupt(format!("counting pass number is {pass}")));
        }
        if prev_pass.is_some_and(|p| p >= pass) {
            return Err(r.corrupt("pass numbers are not strictly increasing"));
        }
        prev_pass = Some(pass);
        // Each entry is at least a 1-item itemset plus its tally.
        let n = r.get_count(8 + 12 + 8)?;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let itemset = decode_itemset(&mut r)?;
            let count = r.get_u64()?;
            entries.push((itemset, count));
        }
        passes.push((pass, entries));
    }
    if r.remaining() > 0 {
        return Err(r.corrupt(format!("{} unread byte(s) in section", r.remaining())));
    }
    Ok(SupportCounts {
        num_rows,
        fingerprint,
        config,
        intervals_per_attribute,
        captured: CapturedCounts {
            value_counts,
            passes,
        },
    })
}

pub(crate) fn encode_itemset(w: &mut Writer, itemset: &Itemset) {
    w.put_u64(itemset.items().len() as u64);
    for item in itemset.items() {
        w.put_u32(item.attr);
        w.put_u32(item.lo);
        w.put_u32(item.hi);
    }
}

/// Encode a schema + its encoders in the catalog's schema-section layout
/// (shared with the distributed-mining wire protocol, so a worker's view
/// of the table is bit-identical to what a catalog would persist).
pub(crate) fn encode_schema_with(schema: &Schema, encoders: &[AttributeEncoder]) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u64(schema.len() as u64);
    for (id, def) in schema.iter() {
        w.put_str(def.name());
        w.put_u8(match def.kind() {
            AttributeKind::Quantitative => 0,
            AttributeKind::Categorical => 1,
        });
        encode_encoder(&mut w, &encoders[id.index()]);
    }
    w.into_bytes()
}

pub(crate) fn encode_encoder(w: &mut Writer, enc: &AttributeEncoder) {
    match enc {
        AttributeEncoder::Categorical { labels } => {
            w.put_u8(0);
            w.put_u64(labels.len() as u64);
            for l in labels {
                w.put_str(l);
            }
        }
        AttributeEncoder::QuantValues { values, integral } => {
            w.put_u8(1);
            w.put_u64(values.len() as u64);
            for &v in values {
                w.put_f64(v);
            }
            w.put_bool(*integral);
        }
        AttributeEncoder::QuantIntervals {
            cuts,
            display,
            integral,
        } => {
            w.put_u8(2);
            w.put_u64(cuts.len() as u64);
            for &c in cuts {
                w.put_f64(c);
            }
            w.put_u64(display.len() as u64);
            for spec in display {
                w.put_f64(spec.lo);
                w.put_f64(spec.hi);
            }
            w.put_bool(*integral);
        }
        AttributeEncoder::CategoricalTaxonomy {
            labels,
            sorted_index,
            groups,
        } => {
            w.put_u8(3);
            w.put_u64(labels.len() as u64);
            for l in labels {
                w.put_str(l);
            }
            w.put_u64(sorted_index.len() as u64);
            for &i in sorted_index {
                w.put_u32(i);
            }
            w.put_u64(groups.len() as u64);
            for (name, lo, hi) in groups {
                w.put_str(name);
                w.put_u32(*lo);
                w.put_u32(*hi);
            }
        }
    }
}

pub(crate) fn decode_schema(payload: &[u8]) -> Result<(Schema, Vec<AttributeEncoder>), StoreError> {
    let mut r = Reader::new(payload);
    r.set_section("schema");
    let count = r.get_count(2)?; // name len prefix + kind byte at minimum
    let mut defs = Vec::with_capacity(count);
    let mut encoders = Vec::with_capacity(count);
    for _ in 0..count {
        let name = r.get_str()?;
        let kind = match r.get_u8()? {
            0 => AttributeKind::Quantitative,
            1 => AttributeKind::Categorical,
            b => return Err(r.corrupt(format!("attribute kind byte is {b}"))),
        };
        let def = match kind {
            AttributeKind::Quantitative => AttributeDef::quantitative(name),
            AttributeKind::Categorical => AttributeDef::categorical(name),
        };
        encoders.push(decode_encoder(&mut r)?);
        defs.push(def);
    }
    if r.remaining() > 0 {
        return Err(r.corrupt(format!("{} unread byte(s) in section", r.remaining())));
    }
    let schema = Schema::new(defs).map_err(|e| StoreError::Corrupt {
        section: "schema",
        detail: e.to_string(),
    })?;
    Ok((schema, encoders))
}

pub(crate) fn decode_encoder(r: &mut Reader<'_>) -> Result<AttributeEncoder, StoreError> {
    match r.get_u8()? {
        0 => {
            let n = r.get_count(8)?;
            let mut labels = Vec::with_capacity(n);
            for _ in 0..n {
                labels.push(r.get_str()?);
            }
            Ok(AttributeEncoder::Categorical { labels })
        }
        1 => {
            let n = r.get_count(8)?;
            let mut values = Vec::with_capacity(n);
            for _ in 0..n {
                values.push(r.get_f64()?);
            }
            let integral = r.get_bool()?;
            Ok(AttributeEncoder::QuantValues { values, integral })
        }
        2 => {
            let n = r.get_count(8)?;
            let mut cuts = Vec::with_capacity(n);
            for _ in 0..n {
                cuts.push(r.get_f64()?);
            }
            let n = r.get_count(16)?;
            let mut display = Vec::with_capacity(n);
            for _ in 0..n {
                let lo = r.get_f64()?;
                let hi = r.get_f64()?;
                display.push(IntervalSpec { lo, hi });
            }
            let integral = r.get_bool()?;
            Ok(AttributeEncoder::QuantIntervals {
                cuts,
                display,
                integral,
            })
        }
        3 => {
            let n = r.get_count(8)?;
            let mut labels = Vec::with_capacity(n);
            for _ in 0..n {
                labels.push(r.get_str()?);
            }
            let n = r.get_count(4)?;
            let mut sorted_index = Vec::with_capacity(n);
            for _ in 0..n {
                sorted_index.push(r.get_u32()?);
            }
            let n = r.get_count(16)?;
            let mut groups = Vec::with_capacity(n);
            for _ in 0..n {
                let name = r.get_str()?;
                let lo = r.get_u32()?;
                let hi = r.get_u32()?;
                groups.push((name, lo, hi));
            }
            Ok(AttributeEncoder::CategoricalTaxonomy {
                labels,
                sorted_index,
                groups,
            })
        }
        b => Err(r.corrupt(format!("unknown encoder tag {b}"))),
    }
}

/// Check a full schema/encoder pairing: one encoder per attribute, each
/// satisfying its kind's invariants (shared with the distributed-mining
/// wire protocol's `Setup` decode).
pub(crate) fn validate_catalog_encoders(
    schema: &Schema,
    encoders: &[AttributeEncoder],
) -> Result<(), StoreError> {
    if encoders.len() != schema.len() {
        return Err(StoreError::Corrupt {
            section: "schema",
            detail: format!(
                "{} encoder(s) for {} attribute(s)",
                encoders.len(),
                schema.len()
            ),
        });
    }
    for (id, def) in schema.iter() {
        validate_encoder(def.name(), def.kind(), &encoders[id.index()])?;
    }
    Ok(())
}

/// Check one encoder's internal invariants (the ones `encode`,
/// `describe_range`, and `numeric_bounds` assume).
fn validate_encoder(
    name: &str,
    kind: AttributeKind,
    enc: &AttributeEncoder,
) -> Result<(), StoreError> {
    let corrupt = |detail: String| StoreError::Corrupt {
        section: "schema",
        detail: format!("attribute {name}: {detail}"),
    };
    if enc.is_quantitative() != matches!(kind, AttributeKind::Quantitative) {
        return Err(corrupt(format!(
            "{} encoder on a {} attribute",
            if enc.is_quantitative() {
                "quantitative"
            } else {
                "categorical"
            },
            kind.name()
        )));
    }
    match enc {
        AttributeEncoder::Categorical { labels } => {
            if !labels.windows(2).all(|w| w[0] < w[1]) {
                return Err(corrupt("labels are not sorted and distinct".into()));
            }
        }
        AttributeEncoder::QuantValues { values, .. } => {
            if values.iter().any(|v| !v.is_finite()) {
                return Err(corrupt("non-finite value".into()));
            }
            if !values.windows(2).all(|w| w[0] < w[1]) {
                return Err(corrupt("values are not sorted and distinct".into()));
            }
        }
        AttributeEncoder::QuantIntervals { cuts, display, .. } => {
            if cuts.iter().any(|c| !c.is_finite())
                || display
                    .iter()
                    .any(|s| !s.lo.is_finite() || !s.hi.is_finite())
            {
                return Err(corrupt("non-finite cut or display bound".into()));
            }
            if !cuts.windows(2).all(|w| w[0] < w[1]) {
                return Err(corrupt("cut points are not strictly increasing".into()));
            }
            if display.len() != cuts.len() + 1 {
                return Err(corrupt(format!(
                    "{} display interval(s) for {} cut(s)",
                    display.len(),
                    cuts.len()
                )));
            }
            if display.iter().any(|s| s.lo > s.hi) || display.windows(2).any(|w| w[0].hi > w[1].lo)
            {
                return Err(corrupt("display intervals are not ordered".into()));
            }
        }
        AttributeEncoder::CategoricalTaxonomy {
            labels,
            sorted_index,
            groups,
        } => {
            if sorted_index.len() != labels.len() {
                return Err(corrupt(format!(
                    "sorted index has {} entries for {} label(s)",
                    sorted_index.len(),
                    labels.len()
                )));
            }
            let mut seen = vec![false; labels.len()];
            for &i in sorted_index {
                match seen.get_mut(i as usize) {
                    Some(s) if !*s => *s = true,
                    _ => return Err(corrupt("sorted index is not a permutation".into())),
                }
            }
            let in_order = sorted_index
                .windows(2)
                .all(|w| labels[w[0] as usize] < labels[w[1] as usize]);
            if !in_order {
                return Err(corrupt("sorted index is not in label order".into()));
            }
            for (gname, lo, hi) in groups {
                if lo > hi || *hi as usize >= labels.len() {
                    return Err(corrupt(format!("group {gname} spans {lo}..{hi}")));
                }
            }
        }
    }
    Ok(())
}

pub(crate) fn decode_itemset(r: &mut Reader<'_>) -> Result<Itemset, StoreError> {
    let n = r.get_count(12)?;
    let mut items = Vec::with_capacity(n);
    let mut prev_attr = None;
    for _ in 0..n {
        let attr = r.get_u32()?;
        let lo = r.get_u32()?;
        let hi = r.get_u32()?;
        if lo > hi {
            return Err(r.corrupt(format!("item on attribute {attr} has lo {lo} > hi {hi}")));
        }
        if prev_attr.is_some_and(|p| p >= attr) {
            return Err(r.corrupt("itemset attributes are not strictly increasing"));
        }
        prev_attr = Some(attr);
        items.push(Item::range(attr, lo, hi));
    }
    if items.is_empty() {
        return Err(r.corrupt("empty itemset"));
    }
    Ok(Itemset::new(items))
}

/// Decoded rules-section payload: row count, rules, optional interest
/// verdicts (one per rule when present).
type RulesSection = (u64, Vec<QuantRule>, Option<Vec<RuleInterest>>);

fn decode_rules(payload: &[u8]) -> Result<RulesSection, StoreError> {
    let mut r = Reader::new(payload);
    r.set_section("rules");
    let num_rows = r.get_u64()?;
    let count = r.get_count(12 * 2 + 16)?; // two 1-item itemsets + support + confidence
    let mut rules = Vec::with_capacity(count);
    for _ in 0..count {
        let antecedent = decode_itemset(&mut r)?;
        let consequent = decode_itemset(&mut r)?;
        let support = r.get_u64()?;
        let confidence = r.get_f64()?;
        rules.push(QuantRule {
            antecedent,
            consequent,
            support,
            confidence,
        });
    }
    let interest = if r.get_bool()? {
        let mut verdicts = Vec::with_capacity(rules.len());
        for _ in 0..rules.len() {
            let bits = r.get_u8()?;
            if bits > 0b11 {
                return Err(r.corrupt(format!("interest bits are {bits:#04b}")));
            }
            verdicts.push(RuleInterest {
                interesting: bits & 1 != 0,
                has_ancestors: bits & 2 != 0,
            });
        }
        Some(verdicts)
    } else {
        None
    };
    if r.remaining() > 0 {
        return Err(r.corrupt(format!("{} unread byte(s) in section", r.remaining())));
    }
    Ok((num_rows, rules, interest))
}

fn decode_stats(payload: &[u8]) -> Result<MiningStats, StoreError> {
    let mut r = Reader::new(payload);
    r.set_section("stats");
    let count = r.get_count(1)?;
    let mut intervals_per_attribute = Vec::with_capacity(count);
    for _ in 0..count {
        intervals_per_attribute.push(if r.get_bool()? {
            Some(r.get_u64()? as usize)
        } else {
            None
        });
    }
    let rules_total = r.get_u64()? as usize;
    let rules_interesting = r.get_u64()? as usize;
    let elapsed = r.get_duration()?;
    let elapsed_mining = r.get_duration()?;
    let encoding_reused = r.get_bool()?;
    let count = r.get_count(8)?;
    let mut candidates_per_pass = Vec::with_capacity(count);
    for _ in 0..count {
        candidates_per_pass.push(r.get_u64()? as usize);
    }
    let interest_pruned_items = r.get_u64()? as usize;
    let pass1_scan_time = r.get_duration()?;
    let parallelism = r.get_u64()? as usize;
    let count = r.get_count(5 * 8 + 2 * 12 + 8)?;
    let mut pass_stats = Vec::with_capacity(count);
    for _ in 0..count {
        let super_candidates = r.get_u64()? as usize;
        let array_backed = r.get_u64()? as usize;
        let rtree_backed = r.get_u64()? as usize;
        let hash_tree_nodes = r.get_u64()? as usize;
        let counter_bytes = r.get_u64()? as usize;
        let scan_time = r.get_duration()?;
        let merge_time = r.get_duration()?;
        let shards = r.get_count(12)?;
        let mut shard_scan_times = Vec::with_capacity(shards);
        for _ in 0..shards {
            shard_scan_times.push(r.get_duration()?);
        }
        // Pool/memoization stats are run-shape details the catalog does
        // not persist; they default on load.
        pass_stats.push(PassStats {
            super_candidates,
            array_backed,
            rtree_backed,
            hash_tree_nodes,
            counter_bytes,
            scan_time,
            merge_time,
            shard_scan_times,
            ..PassStats::default()
        });
    }
    if r.remaining() > 0 {
        return Err(r.corrupt(format!("{} unread byte(s) in section", r.remaining())));
    }
    Ok(MiningStats {
        intervals_per_attribute,
        mine: MineStats {
            candidates_per_pass,
            pass_stats,
            interest_pruned_items,
            pass1_scan_time,
            parallelism,
        },
        rules_total,
        rules_interesting,
        elapsed,
        elapsed_mining,
        encoding_reused,
    })
}

/// Check an in-memory itemset against the catalog's encoders: non-empty,
/// every attribute known, every code within the attribute's cardinality.
/// (`Item`/`Itemset` construction already guarantees `lo <= hi` and
/// strictly increasing attributes.)
fn validate_itemset(
    rule: usize,
    side: &str,
    itemset: &Itemset,
    encoders: &[AttributeEncoder],
) -> Result<(), StoreError> {
    let corrupt = |detail: String| StoreError::Corrupt {
        section: "rules",
        detail,
    };
    if itemset.items().is_empty() {
        return Err(corrupt(format!("rule {rule}: empty {side}")));
    }
    for item in itemset.items() {
        let Some(enc) = encoders.get(item.attr as usize) else {
            return Err(corrupt(format!(
                "rule {rule}: {side} references unknown attribute {}",
                item.attr
            )));
        };
        if item.hi >= enc.cardinality() {
            return Err(corrupt(format!(
                "rule {rule}: {side} codes {}..{} exceed cardinality {} of attribute {}",
                item.lo,
                item.hi,
                enc.cardinality(),
                item.attr
            )));
        }
    }
    Ok(())
}
