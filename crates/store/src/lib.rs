//! # qar-store — persistent rule catalog and query engine
//!
//! The miner finds quantitative association rules; this crate makes them
//! a *servable product*. Mine once, write a [`Catalog`] to a `.qarcat`
//! file, then answer queries against it forever without the original
//! table:
//!
//! * [`Catalog`] — schema + encoders + rules + interest verdicts +
//!   [`qar_core::MiningStats`], serialized to a versioned, checksummed,
//!   length-prefixed binary format ([`mod@format`]) that round-trips
//!   bit-exactly and fails loudly ([`StoreError`]) on any corruption.
//! * [`RuleIndex`] — posting lists plus `qar-rtree` interval trees over
//!   the catalog, answering "which rules fire for this record" (point),
//!   "which rules mention age ∈ [30, 40]" (overlap), and top-k by
//!   support / confidence / interest.
//!
//! The `qar` CLI exposes this as `qar mine --store`, `qar query`, and
//! `qar store-check`; store operations report [`qar_trace::TraceEvent`]s
//! (`catalog_saved`, `catalog_loaded`, `index_built`) on the same trace
//! stream as the miner.

#![warn(missing_docs)]

pub mod analytics;
pub mod catalog;
pub mod dist;
pub mod error;
pub mod format;
pub mod index;
pub mod protocol;
pub mod serve;

pub use analytics::{analytics_from_encoded, analytics_from_mining};
pub use catalog::{section_inventory, Catalog, SectionInfo};
pub use error::StoreError;
pub use index::{naive_query_range, naive_query_record, AnalyticsUnavailable, RankBy, RuleIndex};
pub use protocol::{ProtocolError, Request, Response};
pub use serve::{Server, ServerConfig};
