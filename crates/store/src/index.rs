//! The in-memory query engine over a catalog's rules.
//!
//! [`RuleIndex`] answers three query shapes without scanning the ruleset:
//!
//! * **Point** ([`RuleIndex::query_record`]): which rules *fire* for a
//!   record — every antecedent item matched by the record's code on that
//!   attribute. Exact (single-code) antecedent items live in per-code
//!   posting lists; range items live in a per-attribute 1-D
//!   [`RStarTree`] over code space. A per-rule match counter turns the
//!   union of lookups into "all antecedent items matched".
//! * **Overlap** ([`RuleIndex::query_range`]): which rules *mention* a
//!   value range on a quantitative attribute, on either side of the
//!   arrow. These trees are built in raw value space (via
//!   [`AttributeEncoder::numeric_bounds`]) so a query range that falls
//!   between observed values still hits the enclosing intervals.
//! * **Top-k** ([`RuleIndex::top_k`], [`RuleIndex::rank`]): rules by
//!   support, confidence, or interest verdict, precomputed once.
//!
//! Rule ids are indices into [`Catalog::rules`], so every query result
//! can be decoded and rendered through the catalog.

use crate::catalog::Catalog;
use qar_rtree::{RStarTree, Rect};
use qar_table::AttributeEncoder;
use qar_trace::{event::micros, ProgressSink, TraceEvent};
use std::time::Instant;

/// Ranking metric for [`RuleIndex::top_k`] and [`RuleIndex::rank`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankBy {
    /// Support count, descending.
    Support,
    /// Confidence, descending.
    Confidence,
    /// Interesting rules first (per the catalog's verdicts), then by
    /// confidence. Falls back to confidence order when the catalog has
    /// no interest verdicts.
    Interest,
    /// Lift, descending. Needs the catalog's analytics section.
    Lift,
    /// Conviction, descending. Needs analytics.
    Conviction,
    /// Chi-square statistic, descending (equivalently: raw p-value,
    /// ascending). Needs analytics.
    Chi2,
    /// J-measure, descending. Needs analytics.
    JMeasure,
}

impl RankBy {
    /// Does this ranking read the catalog's analytics section? Callers
    /// (CLI, serve) reject such rankings up front on catalogs without
    /// one, pointing at `qar analyze`.
    pub fn needs_analytics(&self) -> bool {
        matches!(
            self,
            RankBy::Lift | RankBy::Conviction | RankBy::Chi2 | RankBy::JMeasure
        )
    }
}

impl std::str::FromStr for RankBy {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "support" => Ok(RankBy::Support),
            "confidence" => Ok(RankBy::Confidence),
            "interest" => Ok(RankBy::Interest),
            "lift" => Ok(RankBy::Lift),
            "conviction" => Ok(RankBy::Conviction),
            "chi2" => Ok(RankBy::Chi2),
            "jmeasure" => Ok(RankBy::JMeasure),
            other => Err(format!(
                "unknown ranking '{other}' (expected support, confidence, interest, \
                 lift, conviction, chi2, or jmeasure)"
            )),
        }
    }
}

impl std::fmt::Display for RankBy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RankBy::Support => "support",
            RankBy::Confidence => "confidence",
            RankBy::Interest => "interest",
            RankBy::Lift => "lift",
            RankBy::Conviction => "conviction",
            RankBy::Chi2 => "chi2",
            RankBy::JMeasure => "jmeasure",
        })
    }
}

/// Requested an analytics-backed ranking or filter on a catalog without
/// an analytics section. The fix is `qar analyze` (backfill) or mining
/// with `--analytics`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalyticsUnavailable;

impl std::fmt::Display for AnalyticsUnavailable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(
            "catalog has no analytics section; backfill it with `qar analyze` \
             or mine with `--analytics`",
        )
    }
}

impl std::error::Error for AnalyticsUnavailable {}

/// Interval-indexed view of one catalog's rules. Build once with
/// [`RuleIndex::build`], query many times.
pub struct RuleIndex {
    /// Antecedent length per rule — the match-count target.
    ant_len: Vec<u32>,
    /// `postings[attr][code]` → rules whose antecedent has the exact
    /// item `⟨attr, code⟩`.
    postings: Vec<Vec<Vec<u32>>>,
    /// Per-attribute interval tree over *code* space for antecedent
    /// range items (`lo < hi`).
    point_trees: Vec<Option<RStarTree<u32>>>,
    /// Per-attribute interval tree over *value* space for every item
    /// (antecedent and consequent) with numeric bounds.
    mention_trees: Vec<Option<RStarTree<u32>>>,
    /// Rule ids in descending order per metric.
    by_support: Vec<u32>,
    by_confidence: Vec<u32>,
    by_interest: Vec<u32>,
    /// Analytics-backed orders and per-rule `(lift, p_adjusted)` filter
    /// values; `None` when the catalog has no analytics section.
    analytics: Option<AnalyticsOrders>,
}

/// The analytics-derived part of the index.
struct AnalyticsOrders {
    by_lift: Vec<u32>,
    by_conviction: Vec<u32>,
    by_chi2: Vec<u32>,
    by_jmeasure: Vec<u32>,
    /// Per-rule `(lift, p_adjusted)` for [`RuleIndex::filter_analytics`].
    filter_values: Vec<(f64, f64)>,
}

impl RuleIndex {
    /// Index `catalog`'s rules, reporting a [`TraceEvent::IndexBuilt`]
    /// to `sink`.
    pub fn build(catalog: &Catalog, sink: Option<&dyn ProgressSink>) -> Self {
        let start = Instant::now();
        let num_attrs = catalog.schema().len();
        let rules = catalog.rules();

        let mut postings: Vec<Vec<Vec<u32>>> = catalog
            .encoders()
            .iter()
            .map(|e| vec![Vec::new(); e.cardinality() as usize])
            .collect();
        let mut point_items: Vec<Vec<(f64, f64, u32)>> = vec![Vec::new(); num_attrs];
        let mut mention_items: Vec<Vec<(f64, f64, u32)>> = vec![Vec::new(); num_attrs];
        let mut ant_len = Vec::with_capacity(rules.len());
        let mut posting_entries = 0usize;

        for (id, rule) in rules.iter().enumerate() {
            let id = id as u32;
            ant_len.push(rule.antecedent.items().len() as u32);
            for item in rule.antecedent.items() {
                if item.lo == item.hi {
                    postings[item.attr as usize][item.lo as usize].push(id);
                    posting_entries += 1;
                } else {
                    point_items[item.attr as usize].push((item.lo as f64, item.hi as f64, id));
                }
            }
            for item in rule
                .antecedent
                .items()
                .iter()
                .chain(rule.consequent.items())
            {
                let enc = &catalog.encoders()[item.attr as usize];
                if let Some((lo, hi)) = enc.numeric_bounds(item.lo, item.hi) {
                    mention_items[item.attr as usize].push((lo, hi, id));
                }
            }
        }

        let interval_entries = point_items.iter().map(Vec::len).sum::<usize>()
            + mention_items.iter().map(Vec::len).sum::<usize>();
        let to_tree = |items: Vec<(f64, f64, u32)>| {
            (!items.is_empty()).then(|| RStarTree::bulk_load_intervals(items))
        };
        let point_trees = point_items.into_iter().map(to_tree).collect();
        let mention_trees = mention_items.into_iter().map(to_tree).collect();

        let ids = || (0..rules.len() as u32).collect::<Vec<u32>>();
        let mut by_support = ids();
        by_support.sort_by(|&a, &b| {
            let (ra, rb) = (&rules[a as usize], &rules[b as usize]);
            rb.support.cmp(&ra.support).then(a.cmp(&b))
        });
        let mut by_confidence = ids();
        by_confidence.sort_by(|&a, &b| {
            let (ra, rb) = (&rules[a as usize], &rules[b as usize]);
            rb.confidence
                .total_cmp(&ra.confidence)
                .then(rb.support.cmp(&ra.support))
                .then(a.cmp(&b))
        });
        let mut by_interest = ids();
        by_interest.sort_by(|&a, &b| {
            let interesting = |i: u32| catalog.interest().is_none_or(|v| v[i as usize].interesting);
            let (ra, rb) = (&rules[a as usize], &rules[b as usize]);
            interesting(b)
                .cmp(&interesting(a))
                .then(rb.confidence.total_cmp(&ra.confidence))
                .then(rb.support.cmp(&ra.support))
                .then(a.cmp(&b))
        });

        // Analytics orders: metric descending (NaN sorts last via
        // total_cmp descending), then support descending, then id — the
        // same tie-break discipline as the confidence order.
        let analytics = catalog.analytics().map(|set| {
            let metric_order = |metric: fn(&qar_analytics::RuleAnalytics) -> f64| {
                let mut o = ids();
                o.sort_by(|&a, &b| {
                    let (ma, mb) = (
                        metric(&set.rules[a as usize]),
                        metric(&set.rules[b as usize]),
                    );
                    let (ra, rb) = (&rules[a as usize], &rules[b as usize]);
                    mb.total_cmp(&ma)
                        .then(rb.support.cmp(&ra.support))
                        .then(a.cmp(&b))
                });
                o
            };
            AnalyticsOrders {
                by_lift: metric_order(|r| r.lift),
                by_conviction: metric_order(|r| r.conviction),
                by_chi2: metric_order(|r| r.chi2),
                by_jmeasure: metric_order(|r| r.jmeasure),
                filter_values: set.rules.iter().map(|r| (r.lift, r.p_adjusted)).collect(),
            }
        });

        let index = RuleIndex {
            ant_len,
            postings,
            point_trees,
            mention_trees,
            by_support,
            by_confidence,
            by_interest,
            analytics,
        };
        if let Some(sink) = sink {
            sink.on_event(&TraceEvent::IndexBuilt {
                rules: rules.len(),
                posting_entries,
                interval_entries,
                elapsed_us: micros(start.elapsed()),
            });
        }
        index
    }

    /// Rules indexed.
    pub fn num_rules(&self) -> usize {
        self.ant_len.len()
    }

    /// Rules that fire for a record given as `(attribute id, code)`
    /// pairs: every antecedent item's attribute is present and its code
    /// range contains the record's code. Returns ascending rule ids.
    ///
    /// Attributes the record does not supply simply fail any rule that
    /// requires them; duplicate attributes keep the first occurrence;
    /// unknown attributes and out-of-range codes match nothing.
    pub fn query_record(&self, record: &[(u32, u32)]) -> Vec<u32> {
        let mut matches = vec![0u32; self.num_rules()];
        let mut seen = vec![false; self.postings.len()];
        for &(attr, code) in record {
            let Some(seen_slot) = seen.get_mut(attr as usize) else {
                continue;
            };
            if std::mem::replace(seen_slot, true) {
                continue;
            }
            if let Some(ids) = self.postings[attr as usize].get(code as usize) {
                for &id in ids {
                    matches[id as usize] += 1;
                }
            }
            if let Some(tree) = &self.point_trees[attr as usize] {
                tree.query_point(&[code as f64], |&id| matches[id as usize] += 1);
            }
        }
        matches
            .iter()
            .enumerate()
            .filter(|&(id, &m)| m == self.ant_len[id])
            .map(|(id, _)| id as u32)
            .collect()
    }

    /// Rules mentioning a value range `[lo, hi]` on a quantitative
    /// attribute (either rule side, bounds inclusive, in raw value
    /// space). Returns ascending rule ids; empty for unknown/categorical
    /// attributes or an empty range (`lo > hi`).
    pub fn query_range(&self, attr: u32, lo: f64, hi: f64) -> Vec<u32> {
        let Some(Some(tree)) = self.mention_trees.get(attr as usize) else {
            return Vec::new();
        };
        if lo > hi || lo.is_nan() || hi.is_nan() {
            return Vec::new();
        }
        let mut ids = Vec::new();
        tree.query_intersecting(&Rect::new(&[lo], &[hi]), |&id| ids.push(id));
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// The first `k` rule ids under `by` (all of them when
    /// `k >= num_rules`).
    pub fn top_k(&self, by: RankBy, k: usize) -> Vec<u32> {
        let order = self.order(by);
        order[..k.min(order.len())].to_vec()
    }

    /// Sort `ids` into the `by` ranking (e.g. to rank the result of a
    /// point or overlap query).
    pub fn rank(&self, ids: &mut [u32], by: RankBy) {
        let order = self.order(by);
        let mut pos = vec![u32::MAX; self.num_rules()];
        for (p, &id) in order.iter().enumerate() {
            pos[id as usize] = p as u32;
        }
        ids.sort_by_key(|&id| pos.get(id as usize).copied().unwrap_or(u32::MAX));
    }

    /// Whether analytics-backed rankings and filters are available (the
    /// indexed catalog carried an `ANALYTICS` section).
    pub fn has_analytics(&self) -> bool {
        self.analytics.is_some()
    }

    /// Drop the rule ids failing the analytics filters: keep rules with
    /// `lift >= min_lift` and `p_adjusted <= max_p` (NaN fails either
    /// test). No-op when both filters are `None`; errors when a filter is
    /// requested but the catalog has no analytics.
    pub fn filter_analytics(
        &self,
        ids: &mut Vec<u32>,
        min_lift: Option<f64>,
        max_p: Option<f64>,
    ) -> Result<(), AnalyticsUnavailable> {
        if min_lift.is_none() && max_p.is_none() {
            return Ok(());
        }
        let Some(analytics) = &self.analytics else {
            return Err(AnalyticsUnavailable);
        };
        ids.retain(|&id| {
            let (lift, p_adjusted) = analytics.filter_values[id as usize];
            min_lift.is_none_or(|min| lift >= min) && max_p.is_none_or(|max| p_adjusted <= max)
        });
        Ok(())
    }

    /// The precomputed order for `by`. Analytics rankings on a catalog
    /// without analytics fall back to support order — entry points
    /// (CLI, serve) reject that combination before getting here, via
    /// [`RankBy::needs_analytics`] and [`RuleIndex::has_analytics`].
    fn order(&self, by: RankBy) -> &[u32] {
        let analytics_order = |pick: fn(&AnalyticsOrders) -> &Vec<u32>| {
            self.analytics
                .as_ref()
                .map(pick)
                .map_or(&self.by_support[..], Vec::as_slice)
        };
        match by {
            RankBy::Support => &self.by_support,
            RankBy::Confidence => &self.by_confidence,
            RankBy::Interest => &self.by_interest,
            RankBy::Lift => analytics_order(|a| &a.by_lift),
            RankBy::Conviction => analytics_order(|a| &a.by_conviction),
            RankBy::Chi2 => analytics_order(|a| &a.by_chi2),
            RankBy::JMeasure => analytics_order(|a| &a.by_jmeasure),
        }
    }
}

/// Naive reference for [`RuleIndex::query_record`]: linear scan over all
/// rules checking antecedent coverage item by item. The property tests
/// assert the index returns exactly this.
pub fn naive_query_record(catalog: &Catalog, record: &[(u32, u32)]) -> Vec<u32> {
    let mut seen: Vec<(u32, u32)> = Vec::new();
    for &(attr, code) in record {
        if !seen.iter().any(|&(a, _)| a == attr) {
            seen.push((attr, code));
        }
    }
    catalog
        .rules()
        .iter()
        .enumerate()
        .filter(|(_, rule)| {
            rule.antecedent.items().iter().all(|item| {
                seen.iter()
                    .any(|&(attr, code)| attr == item.attr && item.matches(code))
            })
        })
        .map(|(id, _)| id as u32)
        .collect()
}

/// Naive reference for [`RuleIndex::query_range`]: linear scan over all
/// items of all rules, intersecting numeric bounds.
pub fn naive_query_range(catalog: &Catalog, attr: u32, lo: f64, hi: f64) -> Vec<u32> {
    if lo > hi || lo.is_nan() || hi.is_nan() {
        return Vec::new();
    }
    let encoders = catalog.encoders();
    let enc: &AttributeEncoder = match encoders.get(attr as usize) {
        Some(e) => e,
        None => return Vec::new(),
    };
    catalog
        .rules()
        .iter()
        .enumerate()
        .filter(|(_, rule)| {
            rule.antecedent
                .items()
                .iter()
                .chain(rule.consequent.items())
                .any(|item| {
                    item.attr == attr
                        && enc
                            .numeric_bounds(item.lo, item.hi)
                            .is_some_and(|(ilo, ihi)| ilo <= hi && lo <= ihi)
                })
        })
        .map(|(id, _)| id as u32)
        .collect()
}
