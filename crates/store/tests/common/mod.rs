//! Shared generator for the store property tests: structurally valid —
//! but otherwise arbitrary — catalogs, built directly from parts rather
//! than through the miner so edge cases (empty rulesets, single-partition
//! intervals, extreme float values, NaN confidences) are actually hit.

use std::time::Duration;

use qar_analytics::{AnalyticsSet, RuleAnalytics};
use qar_core::mine::MineStats;
use qar_core::pipeline::MiningStats;
use qar_core::supercand::PassStats;
use qar_core::{
    encoding_fingerprint, CapturedCounts, CountsConfig, InterestConfig, InterestMode,
    PartitionSpec, PartitionStrategy, QuantRule, RuleInterest, SupportCounts,
};
use qar_itemset::{Item, Itemset};
use qar_prng::Prng;
use qar_store::Catalog;
use qar_table::encode::IntervalSpec;
use qar_table::{AttributeEncoder, Schema};

/// Finite values spanning the f64 range, kept strictly increasing so any
/// ascending subsequence is a valid encoder value/cut list.
const EXTREME_SORTED: [f64; 9] = [
    f64::MIN,
    -1.0e10,
    -2.5,
    -f64::MIN_POSITIVE,
    0.0,
    f64::MIN_POSITIVE,
    3.75,
    1.0e10,
    f64::MAX,
];

/// A strictly increasing sequence of `n` finite values, sometimes drawn
/// from the extreme pool, otherwise small integers spaced apart.
fn ascending_values(rng: &mut Prng, n: usize) -> Vec<f64> {
    if rng.gen_bool(0.3) && n <= EXTREME_SORTED.len() {
        let start = rng.gen_range(0..EXTREME_SORTED.len() - n + 1);
        return EXTREME_SORTED[start..start + n].to_vec();
    }
    let mut v = Vec::with_capacity(n);
    let mut x = rng.gen_range(-100.0..100.0);
    for _ in 0..n {
        v.push(x);
        x += rng.gen_range(0.25..10.0);
    }
    v
}

fn arb_encoder(rng: &mut Prng, quantitative: bool) -> AttributeEncoder {
    if quantitative {
        if rng.gen_bool(0.5) {
            let n = rng.gen_range(1..6);
            AttributeEncoder::QuantValues {
                values: ascending_values(rng, n),
                integral: rng.gen_bool(0.5),
            }
        } else {
            // `num_cuts == 0` is the single-partition case: one interval
            // covering the whole attribute.
            let num_cuts = rng.gen_range(0..5);
            AttributeEncoder::QuantIntervals {
                cuts: ascending_values(rng, num_cuts),
                display: ascending_values(rng, num_cuts + 1)
                    .into_iter()
                    .map(|v| IntervalSpec { lo: v, hi: v })
                    .collect(),
                integral: rng.gen_bool(0.5),
            }
        }
    } else if rng.gen_bool(0.5) {
        let n = rng.gen_range(1..6);
        AttributeEncoder::Categorical {
            labels: (0..n).map(|i| format!("label-{i:02}")).collect(),
        }
    } else {
        // Taxonomy labels are in DFS order, not sorted; scramble them and
        // recover the lexicographic permutation.
        let n: usize = rng.gen_range(1..6);
        let mut labels: Vec<String> = (0..n).map(|i| format!("leaf-{i:02}")).collect();
        rng.shuffle(&mut labels);
        let mut sorted_index: Vec<u32> = (0..n as u32).collect();
        sorted_index.sort_by(|&a, &b| labels[a as usize].cmp(&labels[b as usize]));
        let groups = (0..rng.gen_range(0..3usize))
            .map(|g| {
                let lo = rng.gen_range(0..n as u32);
                let hi = rng.gen_range(lo..n as u32);
                (format!("group-{g}"), lo, hi)
            })
            .collect();
        AttributeEncoder::CategoricalTaxonomy {
            labels,
            sorted_index,
            groups,
        }
    }
}

fn arb_itemset(rng: &mut Prng, attrs: &[u32], encoders: &[AttributeEncoder]) -> Itemset {
    Itemset::new(
        attrs
            .iter()
            .map(|&attr| {
                let card = encoders[attr as usize].cardinality();
                let lo = rng.gen_range(0..card);
                let hi = rng.gen_range(lo..card);
                Item::range(attr, lo, hi)
            })
            .collect(),
    )
}

fn arb_duration(rng: &mut Prng) -> Duration {
    Duration::new(rng.next_u64() >> 34, rng.gen_range(0..1_000_000_000))
}

fn arb_stats(rng: &mut Prng, num_attrs: usize, num_rules: usize) -> MiningStats {
    let passes = rng.gen_range(0..3usize);
    MiningStats {
        intervals_per_attribute: (0..num_attrs)
            .map(|_| rng.gen_bool(0.5).then(|| rng.gen_range(1..32usize)))
            .collect(),
        mine: MineStats {
            candidates_per_pass: (0..passes).map(|_| rng.gen_range(0..1000)).collect(),
            pass_stats: (0..passes)
                .map(|_| PassStats {
                    super_candidates: rng.gen_range(0..100),
                    array_backed: rng.gen_range(0..100),
                    rtree_backed: rng.gen_range(0..100),
                    hash_tree_nodes: rng.gen_range(0..10_000),
                    counter_bytes: rng.gen_range(0..1_000_000),
                    scan_time: arb_duration(rng),
                    merge_time: arb_duration(rng),
                    shard_scan_times: (0..rng.gen_range(0..4usize))
                        .map(|_| arb_duration(rng))
                        .collect(),
                    pooled: rng.gen_bool(0.5),
                    memoized: rng.gen_bool(0.5),
                    distinct_tuples: rng.gen_range(0..5000),
                    memo_hits: rng.gen_range(0..100_000),
                    kernel: ["direct", "memoized", "bitmask", "mixed"][rng.gen_range(0..4usize)]
                        .to_string(),
                })
                .collect(),
            interest_pruned_items: rng.gen_range(0..50),
            pass1_scan_time: arb_duration(rng),
            parallelism: rng.gen_range(1..16),
        },
        rules_total: num_rules,
        rules_interesting: rng.gen_range(0..num_rules + 1),
        elapsed: arb_duration(rng),
        elapsed_mining: arb_duration(rng),
        encoding_reused: rng.gen_bool(0.5),
    }
}

/// An f64 that exercises the format's bit-exactness: NaN, infinities,
/// and signed zero alongside ordinary values.
fn adversarial_f64(rng: &mut Prng) -> f64 {
    match rng.gen_range(0..8u32) {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3 => -0.0,
        _ => rng.gen_f64(),
    }
}

/// Arbitrary analytics aligned with `rules`: any floats at all (the
/// format carries them bit-exactly), Shapley entries over exactly the
/// antecedent's attributes (the one structural invariant).
fn arb_analytics(rng: &mut Prng, rules: &[QuantRule]) -> AnalyticsSet {
    AnalyticsSet {
        shapley_samples: rng.gen_range(1..128u32),
        seed: rng.next_u64(),
        rules: rules
            .iter()
            .map(|r| RuleAnalytics {
                count_antecedent: rng.next_u64(),
                count_consequent: rng.next_u64(),
                lift: adversarial_f64(rng),
                conviction: adversarial_f64(rng),
                leverage: adversarial_f64(rng),
                chi2: adversarial_f64(rng),
                p_value: adversarial_f64(rng),
                p_adjusted: adversarial_f64(rng),
                jmeasure: adversarial_f64(rng),
                shapley: r
                    .antecedent
                    .items()
                    .iter()
                    .map(|it| (it.attr, adversarial_f64(rng)))
                    .collect(),
            })
            .collect(),
    }
}

/// Arbitrary persisted support counts that satisfy every invariant
/// [`Catalog::with_counts`] checks: row total and fingerprint taken from
/// the catalog, a valid semantic config, histograms spanning exactly the
/// encoders' code spaces, in-range candidates with arbitrary tallies.
fn arb_counts(rng: &mut Prng, catalog: &Catalog) -> SupportCounts {
    let schema = catalog.schema();
    let encoders = catalog.encoders();
    let num_attrs = schema.len();
    let min_support = rng.gen_range(0.01..0.9);
    let config = CountsConfig {
        min_support,
        min_confidence: rng.gen_range(0.0..1.0),
        max_support: rng.gen_range(min_support..1.0),
        max_itemset_size: rng.gen_range(0..5usize),
        interest: rng.gen_bool(0.3).then(|| InterestConfig {
            level: rng.gen_range(1.1..4.0),
            mode: if rng.gen_bool(0.5) {
                InterestMode::SupportAndConfidence
            } else {
                InterestMode::SupportOrConfidence
            },
            prune_candidates: rng.gen_bool(0.5),
        }),
        partitioning: match rng.gen_range(0..4u32) {
            0 => PartitionSpec::None,
            1 => PartitionSpec::CompletenessLevel(rng.gen_range(1.5..5.0)),
            2 => PartitionSpec::FixedIntervals(rng.gen_range(1..8usize)),
            _ => {
                let mut map = std::collections::BTreeMap::new();
                for (_, def) in schema.iter() {
                    if rng.gen_bool(0.5) {
                        map.insert(def.name().to_string(), rng.gen_range(1..8usize));
                    }
                }
                PartitionSpec::PerAttribute(map)
            }
        },
        partition_strategy: [
            PartitionStrategy::EquiDepth,
            PartitionStrategy::EquiWidth,
            PartitionStrategy::KMeans,
        ][rng.gen_range(0..3usize)],
    };
    let value_counts = encoders
        .iter()
        .map(|e| (0..e.cardinality()).map(|_| rng.next_u64()).collect())
        .collect();
    let mut passes = Vec::new();
    let mut pass = 2u32;
    for _ in 0..rng.gen_range(0..3usize) {
        let entries = (0..rng.gen_range(0..12usize))
            .map(|_| {
                let mut attrs: Vec<u32> = (0..num_attrs as u32).collect();
                rng.shuffle(&mut attrs);
                let used = rng.gen_range(1..num_attrs + 1);
                let mut sub = attrs[..used].to_vec();
                sub.sort_unstable();
                (arb_itemset(rng, &sub, encoders), rng.next_u64())
            })
            .collect();
        passes.push((pass, entries));
        pass += rng.gen_range(1..3u32);
    }
    SupportCounts {
        num_rows: catalog.num_rows(),
        fingerprint: encoding_fingerprint(schema, encoders),
        config,
        intervals_per_attribute: (0..num_attrs)
            .map(|_| rng.gen_bool(0.5).then(|| rng.gen_range(1..32usize)))
            .collect(),
        captured: CapturedCounts {
            value_counts,
            passes,
        },
    }
}

/// A random structurally valid catalog: 1–5 attributes of mixed kinds,
/// 0–20 rules over them (possibly none — the empty-ruleset edge case),
/// interest verdicts half the time, and adversarial float values in both
/// encoders and confidences (including NaN and infinities, which the
/// format must carry bit-exactly).
pub fn arb_catalog(rng: &mut Prng) -> Catalog {
    let num_attrs = rng.gen_range(1..6usize);
    let kinds: Vec<bool> = (0..num_attrs).map(|_| rng.gen_bool(0.5)).collect();
    let mut builder = Schema::builder();
    for (i, &quant) in kinds.iter().enumerate() {
        let name = format!("attr{i}");
        builder = if quant {
            builder.quantitative(name)
        } else {
            builder.categorical(name)
        };
    }
    let schema = builder.build().expect("distinct names");
    let encoders: Vec<AttributeEncoder> =
        kinds.iter().map(|&quant| arb_encoder(rng, quant)).collect();

    // A rule needs disjoint non-empty sides, so at least two attributes.
    let num_rules = if num_attrs < 2 || rng.gen_bool(0.15) {
        0 // empty-ruleset edge case
    } else {
        rng.gen_range(1..20usize)
    };
    let rules: Vec<QuantRule> = (0..num_rules)
        .map(|_| {
            // Split a random non-trivial subset of attributes into
            // disjoint antecedent / consequent halves.
            let mut attrs: Vec<u32> = (0..num_attrs as u32).collect();
            rng.shuffle(&mut attrs);
            let used = rng.gen_range(2..num_attrs + 1);
            let cut = rng.gen_range(1..used);
            let (mut ant, mut cons) = (attrs[..cut].to_vec(), attrs[cut..used].to_vec());
            ant.sort_unstable();
            cons.sort_unstable();
            let confidence = match rng.gen_range(0..8u32) {
                0 => f64::NAN,
                1 => f64::INFINITY,
                2 => -0.0,
                _ => rng.gen_f64(),
            };
            QuantRule {
                antecedent: arb_itemset(rng, &ant, &encoders),
                consequent: arb_itemset(rng, &cons, &encoders),
                support: rng.next_u64(),
                confidence,
            }
        })
        .collect();
    let interest = rng.gen_bool(0.5).then(|| {
        rules
            .iter()
            .map(|_| RuleInterest {
                interesting: rng.gen_bool(0.5),
                has_ancestors: rng.gen_bool(0.5),
            })
            .collect()
    });

    let stats = arb_stats(rng, num_attrs, num_rules);
    let catalog = Catalog::new(schema, encoders, rng.next_u64(), rules, interest, stats)
        .expect("generated catalog is valid");
    // Half the catalogs carry the optional analytics section and half
    // carry persisted counts (independently), so every property
    // downstream (round trip, corruption, truncation, queries) covers
    // all four trailing-section layouts.
    let catalog = if rng.gen_bool(0.5) {
        let analytics = arb_analytics(rng, catalog.rules());
        catalog
            .with_analytics(analytics)
            .expect("generated analytics are valid")
    } else {
        catalog
    };
    if rng.gen_bool(0.5) {
        let counts = arb_counts(rng, &catalog);
        catalog
            .with_counts(counts)
            .expect("generated counts are valid")
    } else {
        catalog
    }
}
