//! Property and end-to-end tests for analytics-backed queries: ranking
//! by lift / conviction / chi² / J-measure must match a naive sort of
//! the persisted analytics, the `--min-lift` / `--max-p` filters must
//! match a naive retain, analytics-less catalogs must refuse both with
//! [`AnalyticsUnavailable`] locally and `BadRequest` over the wire, and
//! the Info response must advertise the capability truthfully.

mod common;

use common::arb_catalog;
use qar_analytics::{AnalyticsConfig, RuleAnalytics};
use qar_core::{Miner, MinerConfig, PartitionSpec};
use qar_datagen::{PlantedConfig, PlantedDataset};
use qar_prng::Prng;
use qar_store::protocol::{CatalogInfo, ErrorCode, Query, QueryOptions};
use qar_store::serve::{execute_query, ServeClient};
use qar_store::{
    analytics_from_mining, Catalog, RankBy, Request, Response, RuleIndex, Server, ServerConfig,
};

/// The metric each analytics ranking sorts by, shared with the naive
/// reference below.
fn metric(by: RankBy, r: &RuleAnalytics) -> f64 {
    match by {
        RankBy::Lift => r.lift,
        RankBy::Conviction => r.conviction,
        RankBy::Chi2 => r.chi2,
        RankBy::JMeasure => r.jmeasure,
        other => panic!("not an analytics ranking: {other:?}"),
    }
}

/// Naive reference order: metric descending (`total_cmp`, so NaN sorts
/// last), then support descending, then rule id — the documented
/// tie-break discipline.
fn naive_order(catalog: &Catalog, by: RankBy) -> Vec<u32> {
    let set = catalog.analytics().expect("catalog has analytics");
    let rules = catalog.rules();
    let mut ids: Vec<u32> = (0..rules.len() as u32).collect();
    ids.sort_by(|&a, &b| {
        let (ma, mb) = (
            metric(by, &set.rules[a as usize]),
            metric(by, &set.rules[b as usize]),
        );
        mb.total_cmp(&ma)
            .then(rules[b as usize].support.cmp(&rules[a as usize].support))
            .then(a.cmp(&b))
    });
    ids
}

const ANALYTICS_RANKINGS: [RankBy; 4] = [
    RankBy::Lift,
    RankBy::Conviction,
    RankBy::Chi2,
    RankBy::JMeasure,
];

#[test]
fn analytics_rankings_match_naive_sort() {
    qar_prng::cases(64, 0xA11A_11CE, |case, rng| {
        let catalog = arb_catalog(rng);
        let Some(_) = catalog.analytics() else {
            return; // half the generated catalogs; covered by the error test
        };
        let index = RuleIndex::build(&catalog, None);
        assert!(index.has_analytics(), "case {case}");
        for by in ANALYTICS_RANKINGS {
            let want = naive_order(&catalog, by);
            assert_eq!(
                index.top_k(by, catalog.rules().len()),
                want,
                "case {case}: full order by {by}"
            );
            // rank() agrees with top_k on an arbitrary id subset.
            let mut subset: Vec<u32> = want.iter().copied().filter(|_| rng.gen_bool(0.5)).collect();
            rng.shuffle(&mut subset);
            let mut ranked = subset.clone();
            index.rank(&mut ranked, by);
            let mut expected = subset;
            let pos = |id: u32| want.iter().position(|&w| w == id).unwrap();
            expected.sort_by_key(|&id| pos(id));
            assert_eq!(ranked, expected, "case {case}: subset rank by {by}");
        }
    });
}

#[test]
fn analytics_filters_match_naive_retain() {
    qar_prng::cases(64, 0xF117E2, |case, rng| {
        let catalog = arb_catalog(rng);
        let Some(set) = catalog.analytics() else {
            return;
        };
        let set = set.clone();
        let index = RuleIndex::build(&catalog, None);
        for _ in 0..8 {
            let min_lift = rng.gen_bool(0.7).then(|| rng.gen_f64() * 4.0);
            let max_p = rng.gen_bool(0.7).then(|| rng.gen_f64());
            let mut ids: Vec<u32> = (0..catalog.rules().len() as u32)
                .filter(|_| rng.gen_bool(0.8))
                .collect();
            let mut want = ids.clone();
            index
                .filter_analytics(&mut ids, min_lift, max_p)
                .expect("analytics present");
            want.retain(|&id| {
                let r = &set.rules[id as usize];
                // NaN metrics fail every threshold.
                min_lift.is_none_or(|min| r.lift >= min)
                    && max_p.is_none_or(|max| r.p_adjusted <= max)
            });
            assert_eq!(
                ids, want,
                "case {case}: min_lift={min_lift:?} max_p={max_p:?}"
            );
        }
    });
}

#[test]
fn analytics_less_catalogs_refuse_analytics_queries() {
    qar_prng::cases(32, 0x0FF, |case, rng| {
        let catalog = arb_catalog(rng);
        if catalog.analytics().is_some() {
            return;
        }
        let index = RuleIndex::build(&catalog, None);
        assert!(!index.has_analytics(), "case {case}");

        // Filters without thresholds are a no-op even without analytics.
        let mut ids: Vec<u32> = (0..catalog.rules().len() as u32).collect();
        let before = ids.clone();
        index
            .filter_analytics(&mut ids, None, None)
            .expect("no-op filter");
        assert_eq!(ids, before, "case {case}");

        // Any actual threshold errors instead of silently passing rules.
        assert!(
            index.filter_analytics(&mut ids, Some(1.0), None).is_err(),
            "case {case}: min_lift must error"
        );
        assert!(
            index.filter_analytics(&mut ids, None, Some(0.05)).is_err(),
            "case {case}: max_p must error"
        );

        // execute_query surfaces the same refusal as a structured
        // BadRequest for both rankings and filters.
        for by in ANALYTICS_RANKINGS {
            let err = execute_query(&index, &Query::TopK { by, k: 5 })
                .expect_err("analytics ranking without analytics");
            assert_eq!(err.code, ErrorCode::BadRequest, "case {case}: {by}");
        }
        let err = execute_query(
            &index,
            &Query::Point {
                record: vec![],
                opts: QueryOptions {
                    min_lift: Some(1.0),
                    ..QueryOptions::default()
                },
            },
        )
        .expect_err("analytics filter without analytics");
        assert_eq!(err.code, ErrorCode::BadRequest, "case {case}");
    });
}

/// A catalog mined from the planted dataset with real analytics attached.
fn mined_catalog_with_analytics() -> Catalog {
    let data = PlantedDataset::generate(PlantedConfig {
        num_records: 800,
        seed: 2024,
    });
    let config = MinerConfig {
        min_support: 0.05,
        min_confidence: 0.4,
        max_support: 0.5,
        partitioning: PartitionSpec::FixedIntervals(10),
        interest: None,
        max_itemset_size: 2,
        ..MinerConfig::default()
    };
    let out = Miner::new(config).mine(&data.table).expect("mine");
    let analytics = analytics_from_mining(&out, &AnalyticsConfig::default(), None);
    let catalog = Catalog::from_mining(&out);
    assert!(!catalog.rules().is_empty(), "planted mine found rules");
    catalog
        .with_analytics(analytics)
        .expect("mined analytics are valid")
}

/// End-to-end over the wire: the server advertises analytics via Info,
/// answers analytics rankings and filters byte-identically to the local
/// reference, and refuses them with BadRequest on a slot whose catalog
/// has no analytics section.
#[test]
fn serve_carries_analytics_rankings_and_filters() {
    let with = mined_catalog_with_analytics();
    let mut rng = Prng::seed_from_u64(77);
    let without = loop {
        let c = arb_catalog(&mut rng);
        if c.analytics().is_none() {
            break c;
        }
    };

    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let with_path = dir.join(format!("qar_analytics_serve_{pid}_with.qarcat"));
    let without_path = dir.join(format!("qar_analytics_serve_{pid}_without.qarcat"));
    with.save(&with_path, None).expect("save");
    without.save(&without_path, None).expect("save");

    let server = Server::bind(
        &[
            ("with".to_string(), with_path.clone()),
            ("without".to_string(), without_path.clone()),
        ],
        &ServerConfig {
            port: 0,
            threads: 2,
        },
        None,
    )
    .expect("bind");
    let addr = server.local_addr();
    let server_thread = std::thread::spawn(move || server.serve());
    let mut client = ServeClient::connect(addr).expect("connect");

    // Info reports the capability per slot.
    match client.request(&Request::Info).expect("info") {
        Response::Info { mut catalogs } => {
            catalogs.sort_by(|a, b| a.name.cmp(&b.name));
            let caps: Vec<(String, bool)> = catalogs
                .iter()
                .map(|c: &CatalogInfo| (c.name.clone(), c.analytics))
                .collect();
            assert_eq!(
                caps,
                vec![("with".to_string(), true), ("without".to_string(), false)]
            );
        }
        other => panic!("expected Info, got {other:?}"),
    }

    // Rankings and filters answer byte-identically to the local engine.
    let index = RuleIndex::build(&with, None);
    let queries = [
        Query::TopK {
            by: RankBy::Lift,
            k: 5,
        },
        Query::TopK {
            by: RankBy::JMeasure,
            k: 3,
        },
        Query::Range {
            attr: 0,
            lo: -1.0e9,
            hi: 1.0e9,
            opts: QueryOptions {
                by: Some(RankBy::Chi2),
                top_k: Some(4),
                min_lift: Some(1.0),
                max_p: Some(0.5),
            },
        },
    ];
    for query in queries {
        let response = client
            .request(&Request::Query {
                catalog: "with".into(),
                deadline_ms: None,
                query: query.clone(),
            })
            .expect("query");
        let expected = Response::Ids {
            generation: 1,
            ids: execute_query(&index, &query).expect("servable"),
        };
        assert_eq!(
            response.to_frame().unwrap(),
            expected.to_frame().unwrap(),
            "query {query:?}"
        );
    }

    // The analytics-less slot keeps answering plain queries but refuses
    // analytics rankings and filters with BadRequest — and the
    // connection survives the refusal.
    for query in [
        Query::TopK {
            by: RankBy::Conviction,
            k: 2,
        },
        Query::Point {
            record: vec![],
            opts: QueryOptions {
                max_p: Some(0.05),
                ..QueryOptions::default()
            },
        },
    ] {
        match client
            .request(&Request::Query {
                catalog: "without".into(),
                deadline_ms: None,
                query,
            })
            .expect("request survives")
        {
            Response::Error(e) => assert_eq!(e.code, ErrorCode::BadRequest),
            other => panic!("expected BadRequest, got {other:?}"),
        }
    }
    match client
        .request(&Request::Query {
            catalog: "without".into(),
            deadline_ms: None,
            query: Query::TopK {
                by: RankBy::Support,
                k: 2,
            },
        })
        .expect("plain query")
    {
        Response::Ids { .. } => {}
        other => panic!("plain ranking still works, got {other:?}"),
    }

    assert!(matches!(
        client.request(&Request::Shutdown),
        Ok(Response::ShuttingDown)
    ));
    server_thread.join().unwrap().expect("clean exit");
    let _ = std::fs::remove_file(&with_path);
    let _ = std::fs::remove_file(&without_path);
}
