//! Concurrent-client soak tests for the rule-serving daemon: many
//! client threads fire mixed point / range / top-k / batch queries at a
//! live server and every response must be **byte-identical** to the
//! frame built from direct in-process [`RuleIndex`] answers. A second
//! test hot-reloads the catalog mid-flight and pins the generation
//! semantics: every response matches the catalog version its generation
//! names, and once the reload is acknowledged every later query sees
//! the new generation.

mod common;

use std::path::PathBuf;
use std::sync::Barrier;

use common::arb_catalog;
use qar_prng::Prng;
use qar_store::protocol::{Query, QueryOptions};
use qar_store::serve::{execute_query, ServeClient};
use qar_store::{RankBy, Request, Response, RuleIndex, Server, ServerConfig};

const CLIENTS: usize = 8;

/// A scratch file under the OS temp dir, unique per process and test.
fn scratch_catalog_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "qar_serve_soak_{}_{tag}.qarcat",
        std::process::id()
    ))
}

/// An arbitrary query, loosely shaped by the catalog's attribute count
/// but deliberately allowed to wander out of range — the index answers
/// unknown attributes and codes with empty sets, and the server must
/// agree byte-for-byte.
fn arb_query(rng: &mut Prng, num_attrs: u32) -> Query {
    let opts = QueryOptions {
        by: rng.gen_bool(0.4).then(|| {
            *rng.choose(&[RankBy::Support, RankBy::Confidence, RankBy::Interest])
                .unwrap()
        }),
        top_k: rng.gen_bool(0.4).then(|| rng.gen_range(0..8u32)),
        // Analytics filters stay off: the soak catalog is mined without
        // analytics, and the reference `execute_query` would reject them.
        min_lift: None,
        max_p: None,
    };
    match rng.gen_range(0..3u32) {
        0 => Query::Point {
            record: (0..rng.gen_range(0..4usize))
                .map(|_| (rng.gen_range(0..num_attrs + 2), rng.gen_range(0..40u32)))
                .collect(),
            opts,
        },
        1 => {
            let a = rng.gen_f64() * 200.0 - 100.0;
            let b = rng.gen_f64() * 200.0 - 100.0;
            Query::Range {
                attr: rng.gen_range(0..num_attrs + 2),
                lo: a.min(b),
                hi: a.max(b),
                opts,
            }
        }
        _ => Query::TopK {
            by: *rng
                .choose(&[RankBy::Support, RankBy::Confidence, RankBy::Interest])
                .unwrap(),
            k: rng.gen_range(0..10u32),
        },
    }
}

/// One client-side request plus the byte-exact response the server must
/// produce when serving the catalog behind `index` at `generation`.
fn expected_response(index: &RuleIndex, generation: u64, request: &Request) -> Response {
    match request {
        Request::Query { query, .. } => Response::Ids {
            generation,
            ids: execute_query(index, query).expect("soak query is servable"),
        },
        Request::Batch { queries, .. } => Response::Batch {
            generation,
            items: queries
                .iter()
                .map(|q| Ok(execute_query(index, q).expect("soak query is servable")))
                .collect(),
        },
        other => panic!("not a query request: {other:?}"),
    }
}

/// A mixed workload of single and batch query requests for one client.
fn workload(rng: &mut Prng, slot: &str, num_attrs: u32, requests: usize) -> Vec<Request> {
    (0..requests)
        .map(|i| {
            let deadline_ms = (i % 5 == 4).then_some(30_000);
            if i % 4 == 3 {
                Request::Batch {
                    catalog: slot.into(),
                    deadline_ms,
                    queries: (0..rng.gen_range(1..4usize))
                        .map(|_| arb_query(rng, num_attrs))
                        .collect(),
                }
            } else {
                Request::Query {
                    catalog: slot.into(),
                    deadline_ms,
                    query: arb_query(rng, num_attrs),
                }
            }
        })
        .collect()
}

/// Eight concurrent clients, mixed queries, zero tolerance: every
/// response frame must equal the frame computed from the in-process
/// index, bit for bit.
#[test]
fn concurrent_clients_get_byte_identical_answers() {
    let mut rng = Prng::seed_from_u64(0x50AC_0001);
    let catalog = arb_catalog(&mut rng);
    let num_attrs = catalog.schema().len() as u32;
    let path = scratch_catalog_path("consistency");
    catalog.save(&path, None).expect("save catalog");
    let index = RuleIndex::build(&catalog, None);

    let server = Server::bind(
        &[("soak".to_string(), path.clone())],
        &ServerConfig {
            port: 0,
            threads: CLIENTS + 1,
        },
        None,
    )
    .expect("bind");
    let addr = server.local_addr();
    let server_thread = std::thread::spawn(move || server.serve());

    let workloads: Vec<Vec<Request>> = (0..CLIENTS)
        .map(|c| workload(&mut rng, "soak", num_attrs, 60 + c))
        .collect();

    std::thread::scope(|scope| {
        for (client_id, requests) in workloads.iter().enumerate() {
            let index = &index;
            scope.spawn(move || {
                let mut client = ServeClient::connect(addr).expect("connect");
                for (i, request) in requests.iter().enumerate() {
                    let response = client
                        .request(request)
                        .unwrap_or_else(|e| panic!("client {client_id} request {i}: {e}"));
                    let expected = expected_response(index, 1, request);
                    assert_eq!(
                        response.to_frame().unwrap(),
                        expected.to_frame().unwrap(),
                        "client {client_id} request {i}: served answer diverges\n\
                         request: {request:?}\ngot: {response:?}\nwant: {expected:?}"
                    );
                }
            });
        }
    });

    let mut control = ServeClient::connect(addr).expect("connect control");
    assert!(matches!(
        control.request(&Request::Shutdown),
        Ok(Response::ShuttingDown)
    ));
    server_thread.join().unwrap().expect("server exits cleanly");
    let _ = std::fs::remove_file(path);
}

/// Hot reload mid-flight: while clients hammer the server, the catalog
/// file is replaced and a reload frame lands. Responses may come from
/// either generation during the overlap, but each must match the
/// catalog its generation tags; after the reload acknowledgement every
/// new query sees generation 2. The swap must never tear a response.
#[test]
fn hot_reload_keeps_every_response_generation_consistent() {
    let mut rng = Prng::seed_from_u64(0x50AC_0002);
    let catalog_v1 = arb_catalog(&mut rng);
    // A second version with a different rule count so the two
    // generations are observably different catalogs.
    let catalog_v2 = loop {
        let candidate = arb_catalog(&mut rng);
        if candidate.rules().len() != catalog_v1.rules().len() {
            break candidate;
        }
    };
    let num_attrs = catalog_v1.schema().len().max(catalog_v2.schema().len()) as u32;
    let path = scratch_catalog_path("reload");
    catalog_v1.save(&path, None).expect("save v1");
    let index_v1 = RuleIndex::build(&catalog_v1, None);
    let index_v2 = RuleIndex::build(&catalog_v2, None);

    let server = Server::bind(
        &[("soak".to_string(), path.clone())],
        &ServerConfig {
            port: 0,
            // Clients + the reload controller + the shutdown control
            // connection at the end.
            threads: CLIENTS + 2,
        },
        None,
    )
    .expect("bind");
    let addr = server.local_addr();
    let server_thread = std::thread::spawn(move || server.serve());

    let workloads: Vec<Vec<Request>> = (0..CLIENTS)
        .map(|c| workload(&mut rng, "soak", num_attrs, 40 + c))
        .collect();

    // Everyone (clients + reload controller) starts together; the end
    // barrier is crossed by the controller only after the reload is
    // acknowledged, so queries after it must see generation 2.
    let start = Barrier::new(CLIENTS + 1);
    let done = Barrier::new(CLIENTS + 1);

    std::thread::scope(|scope| {
        for (client_id, requests) in workloads.iter().enumerate() {
            let (start, done) = (&start, &done);
            let (index_v1, index_v2) = (&index_v1, &index_v2);
            scope.spawn(move || {
                let mut client = ServeClient::connect(addr).expect("connect");
                start.wait();
                for (i, request) in requests.iter().enumerate() {
                    let response = client
                        .request(request)
                        .unwrap_or_else(|e| panic!("client {client_id} request {i}: {e}"));
                    let generation = match &response {
                        Response::Ids { generation, .. } | Response::Batch { generation, .. } => {
                            *generation
                        }
                        other => panic!("client {client_id} request {i}: {other:?}"),
                    };
                    let index = match generation {
                        1 => index_v1,
                        2 => index_v2,
                        g => panic!("client {client_id} request {i}: impossible generation {g}"),
                    };
                    let expected = expected_response(index, generation, request);
                    assert_eq!(
                        response.to_frame().unwrap(),
                        expected.to_frame().unwrap(),
                        "client {client_id} request {i}: answer does not match \
                         generation {generation}\nrequest: {request:?}"
                    );
                }
                done.wait();
                // The reload is acknowledged: from here on, only v2.
                let request = Request::Query {
                    catalog: "soak".into(),
                    deadline_ms: None,
                    query: Query::TopK {
                        by: RankBy::Confidence,
                        k: 5,
                    },
                };
                let response = client.request(&request).expect("post-reload query");
                let expected = expected_response(index_v2, 2, &request);
                assert_eq!(
                    response.to_frame().unwrap(),
                    expected.to_frame().unwrap(),
                    "client {client_id}: post-reload query not served from generation 2"
                );
            });
        }

        // The reload controller: swap the file mid-flight, demand the
        // acknowledgement, and verify Info reports the new generation.
        let (start, done) = (&start, &done);
        let (path, catalog_v2) = (&path, &catalog_v2);
        scope.spawn(move || {
            let mut control = ServeClient::connect(addr).expect("connect control");
            start.wait();
            catalog_v2.save(path, None).expect("overwrite with v2");
            match control.request(&Request::Reload {
                catalog: "soak".into(),
            }) {
                Ok(Response::Reloaded {
                    catalog,
                    generation,
                    rules,
                }) => {
                    assert_eq!(catalog, "soak");
                    assert_eq!(generation, 2);
                    assert_eq!(rules, catalog_v2.rules().len() as u64);
                }
                other => panic!("reload failed: {other:?}"),
            }
            match control.request(&Request::Info) {
                Ok(Response::Info { catalogs }) => {
                    assert_eq!(catalogs.len(), 1);
                    assert_eq!(catalogs[0].generation, 2);
                    assert_eq!(catalogs[0].rules, catalog_v2.rules().len() as u64);
                }
                other => panic!("info failed: {other:?}"),
            }
            done.wait();
        });
    });

    let mut control = ServeClient::connect(addr).expect("connect control");
    assert!(matches!(
        control.request(&Request::Shutdown),
        Ok(Response::ShuttingDown)
    ));
    server_thread.join().unwrap().expect("server exits cleanly");
    let _ = std::fs::remove_file(path);
}
