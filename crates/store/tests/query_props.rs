//! Property tests for the query engine: [`RuleIndex`] answers must match
//! the naive linear-scan reference on arbitrary catalogs and on catalogs
//! produced by a real mine of the planted dataset.

mod common;

use common::arb_catalog;
use qar_core::{Miner, MinerConfig, PartitionSpec};
use qar_datagen::{PlantedConfig, PlantedDataset};
use qar_prng::Prng;
use qar_store::{naive_query_range, naive_query_record, Catalog, RuleIndex};
use qar_table::AttributeKind;

/// A random record in code space: a subset of attributes (sometimes all,
/// sometimes partial, sometimes with out-of-range codes the index must
/// treat as non-matching).
fn arb_record(rng: &mut Prng, catalog: &Catalog) -> Vec<(u32, u32)> {
    let mut record = Vec::new();
    for attr in 0..catalog.schema().len() as u32 {
        if !rng.gen_bool(0.8) {
            continue;
        }
        let card = catalog.encoders()[attr as usize].cardinality();
        // Occasionally one past the end: unknown codes never match.
        record.push((attr, rng.gen_range(0..card + 1)));
    }
    record
}

#[test]
fn point_queries_match_naive_scan() {
    qar_prng::cases(48, 0x901147, |case, rng| {
        let catalog = arb_catalog(rng);
        let index = RuleIndex::build(&catalog, None);
        for _ in 0..16 {
            let record = arb_record(rng, &catalog);
            let got = index.query_record(&record);
            let want = naive_query_record(&catalog, &record);
            assert_eq!(got, want, "case {case}: record {record:?}");
            // Double-entry check: every reported rule really covers the
            // record.
            for &id in &got {
                let rule = &catalog.rules()[id as usize];
                for item in rule.antecedent.items() {
                    assert!(
                        record
                            .iter()
                            .any(|&(a, c)| a == item.attr && item.matches(c)),
                        "case {case}: rule {id} does not cover {record:?}"
                    );
                }
            }
        }
    });
}

#[test]
fn range_queries_match_naive_scan() {
    qar_prng::cases(48, 0x9A25E, |case, rng| {
        let catalog = arb_catalog(rng);
        let index = RuleIndex::build(&catalog, None);
        for _ in 0..16 {
            let attr = rng.gen_range(0..catalog.schema().len() as u32);
            let a = rng.gen_range(-1.0e11..1.0e11);
            let b = rng.gen_range(-1.0e11..1.0e11);
            let (lo, hi) = (a.min(b), a.max(b));
            assert_eq!(
                index.query_range(attr, lo, hi),
                naive_query_range(&catalog, attr, lo, hi),
                "case {case}: range {attr}={lo}..{hi}"
            );
        }
    });
}

/// The same agreement holds for a catalog captured from an actual mine,
/// with records drawn from the mined table itself (so most queries hit).
#[test]
fn mined_catalog_queries_match_naive_scan() {
    let data = PlantedDataset::generate(PlantedConfig {
        num_records: 2_000,
        seed: 1996,
    });
    let config = MinerConfig {
        min_support: 0.05,
        min_confidence: 0.4,
        max_support: 0.5,
        partitioning: PartitionSpec::FixedIntervals(10),
        interest: None,
        max_itemset_size: 2,
        ..MinerConfig::default()
    };
    let out = Miner::new(config).mine(&data.table).expect("mine");
    let catalog = Catalog::from_mining(&out);
    assert!(!catalog.rules().is_empty(), "planted mine found rules");
    let index = RuleIndex::build(&catalog, None);

    // Records straight from the encoded table rows.
    let encoded = &out.encoded;
    for row in (0..2_000).step_by(37) {
        let record: Vec<(u32, u32)> = catalog
            .schema()
            .iter()
            .map(|(id, _)| (id.index() as u32, encoded.codes(id)[row]))
            .collect();
        assert_eq!(
            index.query_record(&record),
            naive_query_record(&catalog, &record),
            "row {row}"
        );
    }

    // Value-space windows over every quantitative attribute.
    let mut rng = Prng::seed_from_u64(7);
    for (id, def) in catalog.schema().iter() {
        if def.kind() != AttributeKind::Quantitative {
            continue;
        }
        let attr = id.index() as u32;
        for _ in 0..32 {
            let a = rng.gen_range(-50.0..150.0);
            let b = rng.gen_range(-50.0..150.0);
            let (lo, hi) = (a.min(b), a.max(b));
            assert_eq!(
                index.query_range(attr, lo, hi),
                naive_query_range(&catalog, attr, lo, hi),
                "attr {attr} range {lo}..{hi}"
            );
        }
    }
}
