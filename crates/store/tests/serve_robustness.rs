//! Adversarial-client robustness tests for the serving daemon: hostile
//! or unlucky inputs — oversized frames, unknown tags, checksum
//! corruption, mid-frame disconnects, expired deadlines, reloads of a
//! corrupted catalog — must each produce a structured wire error (or a
//! clean close) while the server keeps serving everyone else from the
//! catalog it already has. Nothing here may panic, hang, or wedge the
//! server.

mod common;

use std::path::PathBuf;
use std::sync::Arc;

use common::arb_catalog;
use qar_prng::Prng;
use qar_store::protocol::{encode_frame, tag, ErrorCode, Query, MAGIC, MAX_PAYLOAD};
use qar_store::serve::{execute_query, ServeClient};
use qar_store::{Catalog, RankBy, Request, Response, RuleIndex, Server, ServerConfig};
use qar_trace::{CollectingSink, TraceEvent};

/// A live server over one arbitrary catalog, plus everything the
/// assertions need to check answers independently.
struct Fixture {
    addr: std::net::SocketAddr,
    server_thread: std::thread::JoinHandle<std::io::Result<()>>,
    catalog: Catalog,
    index: RuleIndex,
    path: PathBuf,
    sink: Arc<CollectingSink>,
}

impl Fixture {
    fn start(tag: &str, seed: u64) -> Fixture {
        let mut rng = Prng::seed_from_u64(seed);
        let catalog = arb_catalog(&mut rng);
        let path = std::env::temp_dir().join(format!(
            "qar_serve_robust_{}_{tag}.qarcat",
            std::process::id()
        ));
        catalog.save(&path, None).expect("save catalog");
        let index = RuleIndex::build(&catalog, None);
        let sink = Arc::new(CollectingSink::new());
        let server = Server::bind(
            &[("cat".to_string(), path.clone())],
            &ServerConfig {
                port: 0,
                threads: 4,
            },
            Some(sink.clone()),
        )
        .expect("bind");
        let addr = server.local_addr();
        let server_thread = std::thread::spawn(move || server.serve());
        Fixture {
            addr,
            server_thread,
            catalog,
            index,
            path,
            sink,
        }
    }

    fn client(&self) -> ServeClient {
        ServeClient::connect(self.addr).expect("connect")
    }

    /// The server still answers correctly from its current catalog —
    /// the invariant every abuse case must leave intact.
    fn assert_healthy(&self) {
        let mut client = self.client();
        let query = Query::TopK {
            by: RankBy::Confidence,
            k: 3,
        };
        let response = client
            .request(&Request::Query {
                catalog: "cat".into(),
                deadline_ms: None,
                query: query.clone(),
            })
            .expect("health query");
        let expected = Response::Ids {
            generation: 1,
            ids: execute_query(&self.index, &query).expect("health query is servable"),
        };
        assert_eq!(response.to_frame().unwrap(), expected.to_frame().unwrap());
    }

    fn stop(self) {
        let mut control = self.client();
        assert!(matches!(
            control.request(&Request::Shutdown),
            Ok(Response::ShuttingDown)
        ));
        self.server_thread
            .join()
            .unwrap()
            .expect("server exits cleanly");
        let _ = std::fs::remove_file(&self.path);
        // Connection bookkeeping balances: every opened connection
        // eventually closed, every abuse logged as a served request.
        let events = self.sink.events();
        let opened = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::ConnectionOpened { .. }))
            .count();
        let closed = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::ConnectionClosed { .. }))
            .count();
        assert_eq!(opened, closed, "connection open/close imbalance");
    }
}

fn expect_error(response: Response, code: ErrorCode) {
    match response {
        Response::Error(e) => assert_eq!(e.code, code, "wrong error code: {e}"),
        other => panic!("expected {code:?} error, got {other:?}"),
    }
}

/// An oversized length field is rejected before any allocation with a
/// best-effort BadFrame error, then the connection closes; the server
/// itself keeps running.
#[test]
fn oversized_frame_is_rejected_without_allocation() {
    let fx = Fixture::start("oversized", 0xB0B0_0001);
    let mut client = fx.client();
    let mut frame = Vec::new();
    frame.extend_from_slice(&MAGIC);
    frame.extend_from_slice(&tag::REQ_PING.to_le_bytes());
    frame.extend_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
    frame.extend_from_slice(&0u32.to_le_bytes());
    client.send_raw(&frame).expect("send oversized header");
    match client.read_response() {
        Ok(Some(response)) => expect_error(response, ErrorCode::BadFrame),
        Ok(None) => {} // server closed before the error flushed
        Err(_) => {}   // ditto, surfaced as a read error
    }
    assert!(
        matches!(client.read_response(), Ok(None) | Err(_)),
        "connection must be closed after an oversized frame"
    );
    fx.assert_healthy();
    fx.stop();
}

/// A frame with an unknown request tag gets a structured UnknownRequest
/// error and the connection survives for the next request.
#[test]
fn unknown_request_tag_keeps_the_connection_alive() {
    let fx = Fixture::start("unknown_tag", 0xB0B0_0002);
    let mut client = fx.client();
    client
        .send_raw(&encode_frame(99, b"whatever").unwrap())
        .expect("send unknown tag");
    let response = client.read_response().expect("read").expect("response");
    expect_error(response, ErrorCode::UnknownRequest);
    // Same connection, next request answers normally.
    assert!(matches!(client.request(&Request::Ping), Ok(Response::Pong)));
    fx.assert_healthy();
    fx.stop();
}

/// A CRC-valid frame whose payload does not decode as its tag claims is
/// a BadRequest error; the connection stays up.
#[test]
fn malformed_payload_is_a_bad_request_not_a_disconnect() {
    let fx = Fixture::start("malformed", 0xB0B0_0003);
    let mut client = fx.client();
    client
        .send_raw(&encode_frame(tag::REQ_QUERY, b"\xff\xff\xff\xff garbage").unwrap())
        .expect("send malformed query");
    let response = client.read_response().expect("read").expect("response");
    expect_error(response, ErrorCode::BadRequest);
    assert!(matches!(client.request(&Request::Ping), Ok(Response::Pong)));
    fx.assert_healthy();
    fx.stop();
}

/// A corrupted checksum is frame-level poison: BadFrame (best effort),
/// close. The server is unharmed.
#[test]
fn checksum_corruption_closes_only_that_connection() {
    let fx = Fixture::start("crc", 0xB0B0_0004);
    let mut client = fx.client();
    // Ping has an empty payload, so flip a byte of the CRC field.
    let mut frame = Request::Ping.to_frame().unwrap();
    let last = frame.len() - 1;
    frame[last] ^= 0x41;
    client.send_raw(&frame).expect("send corrupt frame");
    // The BadFrame notice is best effort: the server may close before the
    // client reads it, so only check the code when a response arrives.
    if let Ok(Some(response)) = client.read_response() {
        expect_error(response, ErrorCode::BadFrame);
    }
    assert!(
        matches!(client.read_response(), Ok(None) | Err(_)),
        "connection must be closed after checksum corruption"
    );
    fx.assert_healthy();
    fx.stop();
}

/// A client that dies mid-frame (header promised more bytes than ever
/// arrive) neither hangs a worker nor takes the server down.
#[test]
fn client_disconnect_mid_request_is_contained() {
    let fx = Fixture::start("disconnect", 0xB0B0_0005);

    // Half a frame, then a half-close: the server sees EOF mid-frame.
    let mut client = fx.client();
    let frame = Request::Reload {
        catalog: "cat".into(),
    }
    .to_frame()
    .unwrap();
    client
        .send_raw(&frame[..frame.len() / 2])
        .expect("send half");
    client.shutdown_write().expect("half-close");
    assert!(
        matches!(
            client.read_response(),
            Ok(Some(Response::Error(_))) | Ok(None) | Err(_)
        ),
        "server must answer with an error or close, never hang"
    );
    drop(client);

    // An abrupt drop at a frame boundary is a clean goodbye.
    let mut polite = fx.client();
    assert!(matches!(polite.request(&Request::Ping), Ok(Response::Pong)));
    drop(polite);

    fx.assert_healthy();
    fx.stop();
}

/// `deadline_ms: 0` is already expired on arrival: single queries get a
/// DeadlineExceeded error, batch items each report it, and the
/// connection remains usable.
#[test]
fn expired_deadline_is_a_structured_error() {
    let fx = Fixture::start("deadline", 0xB0B0_0006);
    let mut client = fx.client();
    let query = Query::TopK {
        by: RankBy::Support,
        k: 5,
    };
    let response = client
        .request(&Request::Query {
            catalog: "cat".into(),
            deadline_ms: Some(0),
            query: query.clone(),
        })
        .expect("deadline query");
    expect_error(response, ErrorCode::DeadlineExceeded);

    let response = client
        .request(&Request::Batch {
            catalog: "cat".into(),
            deadline_ms: Some(0),
            queries: vec![query.clone(), query.clone()],
        })
        .expect("deadline batch");
    match response {
        Response::Batch { items, .. } => {
            assert_eq!(items.len(), 2);
            for item in items {
                match item {
                    Err(e) => assert_eq!(e.code, ErrorCode::DeadlineExceeded),
                    Ok(ids) => panic!("batch item ignored its deadline: {ids:?}"),
                }
            }
        }
        other => panic!("expected batch response, got {other:?}"),
    }

    // A generous deadline on the same connection answers normally.
    let response = client
        .request(&Request::Query {
            catalog: "cat".into(),
            deadline_ms: Some(60_000),
            query: query.clone(),
        })
        .expect("generous deadline");
    let expected = Response::Ids {
        generation: 1,
        ids: execute_query(&fx.index, &query).expect("query is servable"),
    };
    assert_eq!(response.to_frame().unwrap(), expected.to_frame().unwrap());
    fx.stop();
}

/// Queries against a slot the server never loaded are UnknownCatalog
/// errors, not crashes.
#[test]
fn unknown_catalog_is_a_structured_error() {
    let fx = Fixture::start("unknown_cat", 0xB0B0_0007);
    let mut client = fx.client();
    let response = client
        .request(&Request::Query {
            catalog: "nope".into(),
            deadline_ms: None,
            query: Query::TopK {
                by: RankBy::Support,
                k: 1,
            },
        })
        .expect("query unknown slot");
    expect_error(response, ErrorCode::UnknownCatalog);
    let response = client
        .request(&Request::Reload {
            catalog: "nope".into(),
        })
        .expect("reload unknown slot");
    expect_error(response, ErrorCode::UnknownCatalog);
    fx.assert_healthy();
    fx.stop();
}

/// Reloading a catalog whose file has been corrupted (or deleted) fails
/// with ReloadFailed — and the old snapshot keeps serving, generation
/// unchanged.
#[test]
fn reload_of_corrupted_catalog_keeps_serving_the_old_one() {
    let fx = Fixture::start("bad_reload", 0xB0B0_0008);
    let mut client = fx.client();

    // Corrupt the on-disk catalog: flip one byte in the middle.
    let mut bytes = std::fs::read(&fx.path).expect("read catalog");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&fx.path, &bytes).expect("write corrupted");
    let response = client
        .request(&Request::Reload {
            catalog: "cat".into(),
        })
        .expect("reload corrupted");
    expect_error(response, ErrorCode::ReloadFailed);
    fx.assert_healthy(); // still generation 1, still the old rules

    // Deleting the file entirely is no worse.
    std::fs::remove_file(&fx.path).expect("delete catalog");
    let response = client
        .request(&Request::Reload {
            catalog: "cat".into(),
        })
        .expect("reload deleted");
    expect_error(response, ErrorCode::ReloadFailed);
    fx.assert_healthy();

    // Restoring a good file lets the next reload succeed at last.
    fx.catalog.save(&fx.path, None).expect("restore catalog");
    match client.request(&Request::Reload {
        catalog: "cat".into(),
    }) {
        Ok(Response::Reloaded { generation, .. }) => assert_eq!(generation, 2),
        other => panic!("restored reload failed: {other:?}"),
    }
    fx.stop();
}

/// End-to-end catalog freshness: the incremental-update library path
/// (`qar mine --update`'s engine) rewrites a served catalog with delta
/// rows merged into its persisted counts, and a `Reload` frame makes the
/// server answer from the updated rules — no restart, generation bumped.
#[test]
fn reload_picks_up_an_incrementally_updated_catalog() {
    use qar_core::{Miner, MinerConfig, PartitionSpec, UpdateInput};
    use qar_table::Table;

    // The paper's people table is the base; the delta re-appends its
    // first two rows (values the base encoders already know, so the
    // update stays on the incremental path).
    let base = qar_datagen::people_table();
    let mut delta = Table::new(base.schema().clone());
    let mut full = Table::new(base.schema().clone());
    for row in base.rows() {
        full.push_row(&row.to_values()).expect("same schema");
    }
    for row in base.rows().take(2) {
        delta.push_row(&row.to_values()).expect("same schema");
        full.push_row(&row.to_values()).expect("same schema");
    }

    let config = MinerConfig {
        min_support: 0.4,
        min_confidence: 0.5,
        partitioning: PartitionSpec::None,
        ..MinerConfig::default()
    };
    let (out, counts) = Miner::new(config.clone())
        .mine_with_counts(&base)
        .expect("base mine succeeds");
    let catalog = Catalog::from_mining(&out)
        .with_counts(counts)
        .expect("counts attach");
    let path = std::env::temp_dir().join(format!("qar_serve_update_{}.qarcat", std::process::id()));
    catalog.save(&path, None).expect("save catalog");

    let server = Server::bind(
        &[("cat".to_string(), path.clone())],
        &ServerConfig {
            port: 0,
            threads: 2,
        },
        None,
    )
    .expect("bind");
    let addr = server.local_addr();
    let server_thread = std::thread::spawn(move || server.serve());
    let mut client = ServeClient::connect(addr).expect("connect");

    let top_all = Query::TopK {
        by: RankBy::Confidence,
        k: u32::MAX,
    };
    let ask = |client: &mut ServeClient| match client
        .request(&Request::Query {
            catalog: "cat".into(),
            deadline_ms: None,
            query: top_all.clone(),
        })
        .expect("query")
    {
        Response::Ids { generation, ids } => (generation, ids),
        other => panic!("expected ids, got {other:?}"),
    };

    // Generation 1 serves the base mine.
    let base_index = RuleIndex::build(&catalog, None);
    let (generation, ids) = ask(&mut client);
    assert_eq!(generation, 1);
    assert_eq!(ids, execute_query(&base_index, &top_all).expect("servable"));

    // Update the catalog on disk: delta-only scan merged into the
    // persisted counts, no base rows needed.
    let loaded =
        Catalog::load_bytes(&std::fs::read(&path).expect("read"), None).expect("catalog loads");
    let updated = Miner::new(config.clone())
        .update(UpdateInput {
            schema: loaded.schema(),
            encoders: loaded.encoders(),
            counts: loaded.counts().expect("counts persisted"),
            delta: &delta,
            base_rows: None,
        })
        .expect("incremental update succeeds");
    assert!(
        updated.incremental,
        "no fallback expected: {:?}",
        updated.fallback
    );
    let fresh = Catalog::from_mining(&updated.output)
        .with_counts(updated.counts)
        .expect("merged counts attach");
    fresh.save(&path, None).expect("save updated catalog");

    // The server still answers from the old snapshot until told.
    let (generation, _) = ask(&mut client);
    assert_eq!(generation, 1, "no reload yet");

    // Reload → generation 2, answers now match the updated catalog,
    // which in turn matches a from-scratch mine of base+delta.
    match client.request(&Request::Reload {
        catalog: "cat".into(),
    }) {
        Ok(Response::Reloaded { generation, .. }) => assert_eq!(generation, 2),
        other => panic!("reload failed: {other:?}"),
    }
    let fresh_index = RuleIndex::build(&fresh, None);
    let (generation, ids) = ask(&mut client);
    assert_eq!(generation, 2);
    assert_eq!(
        ids,
        execute_query(&fresh_index, &top_all).expect("servable")
    );
    let scratch = Miner::new(config).mine(&full).expect("scratch mine");
    assert_eq!(
        updated.output.rules, scratch.rules,
        "updated catalog serves the same rules a full re-mine would"
    );

    let mut control = ServeClient::connect(addr).expect("connect");
    assert!(matches!(
        control.request(&Request::Shutdown),
        Ok(Response::ShuttingDown)
    ));
    server_thread.join().unwrap().expect("server exits cleanly");
    let _ = std::fs::remove_file(&path);
}
