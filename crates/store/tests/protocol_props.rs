//! Property tests for the serve wire protocol: encode → decode → encode
//! is the identity byte-for-byte over arbitrary requests and responses,
//! and no corrupted frame — any single-byte flip, any prefix truncation
//! — ever panics or slips through as a valid message; each surfaces a
//! structured [`ProtocolError`].

use qar_prng::Prng;
use qar_store::protocol::{
    decode_request, decode_response, read_frame, CatalogInfo, ErrorCode, ProtocolError, Query,
    QueryOptions, WireError,
};
use qar_store::{RankBy, Request, Response};

/// Characters chosen to stress UTF-8 boundaries and JSON-escape paths
/// downstream: ASCII, quotes, backslashes, control bytes, multi-byte.
const CHAR_POOL: [char; 12] = [
    'a',
    'Z',
    '0',
    ' ',
    '"',
    '\\',
    '\n',
    '\u{1}',
    'é',
    '桜',
    '\u{10348}',
    '-',
];

fn arb_string(rng: &mut Prng) -> String {
    let n = rng.gen_range(0..12usize);
    (0..n).map(|_| *rng.choose(&CHAR_POOL).unwrap()).collect()
}

/// Finite, infinite, NaN, and signed-zero bounds: the frame must carry
/// every bit pattern unchanged.
fn arb_f64(rng: &mut Prng) -> f64 {
    match rng.gen_range(0..6u32) {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3 => -0.0,
        4 => f64::MAX,
        _ => rng.gen_f64() * 200.0 - 100.0,
    }
}

fn arb_rank_by(rng: &mut Prng) -> RankBy {
    *rng.choose(&[
        RankBy::Support,
        RankBy::Confidence,
        RankBy::Interest,
        RankBy::Lift,
        RankBy::Conviction,
        RankBy::Chi2,
        RankBy::JMeasure,
    ])
    .unwrap()
}

fn arb_opts(rng: &mut Prng) -> QueryOptions {
    QueryOptions {
        by: rng.gen_bool(0.5).then(|| arb_rank_by(rng)),
        top_k: rng
            .gen_bool(0.5)
            .then(|| *rng.choose(&[0, 1, 7, u32::MAX]).unwrap()),
        min_lift: rng.gen_bool(0.3).then(|| arb_f64(rng)),
        max_p: rng.gen_bool(0.3).then(|| arb_f64(rng)),
    }
}

fn arb_query(rng: &mut Prng) -> Query {
    match rng.gen_range(0..3u32) {
        0 => Query::Point {
            record: (0..rng.gen_range(0..5usize))
                .map(|_| (rng.next_u64() as u32, rng.next_u64() as u32))
                .collect(),
            opts: arb_opts(rng),
        },
        1 => Query::Range {
            attr: rng.next_u64() as u32,
            lo: arb_f64(rng),
            hi: arb_f64(rng),
            opts: arb_opts(rng),
        },
        _ => Query::TopK {
            by: arb_rank_by(rng),
            k: *rng.choose(&[0, 1, 10, u32::MAX]).unwrap(),
        },
    }
}

fn arb_deadline(rng: &mut Prng) -> Option<u32> {
    rng.gen_bool(0.5)
        .then(|| *rng.choose(&[0, 1, 10_000, u32::MAX]).unwrap())
}

fn arb_request(rng: &mut Prng) -> Request {
    match rng.gen_range(0..6u32) {
        0 => Request::Ping,
        1 => Request::Query {
            catalog: arb_string(rng),
            deadline_ms: arb_deadline(rng),
            query: arb_query(rng),
        },
        2 => Request::Batch {
            catalog: arb_string(rng),
            deadline_ms: arb_deadline(rng),
            queries: (0..rng.gen_range(0..6usize))
                .map(|_| arb_query(rng))
                .collect(),
        },
        3 => Request::Reload {
            catalog: arb_string(rng),
        },
        4 => Request::Info,
        _ => Request::Shutdown,
    }
}

fn arb_error_code(rng: &mut Prng) -> ErrorCode {
    *rng.choose(&[
        ErrorCode::UnknownCatalog,
        ErrorCode::BadRequest,
        ErrorCode::DeadlineExceeded,
        ErrorCode::ReloadFailed,
        ErrorCode::UnknownRequest,
        ErrorCode::BadFrame,
        ErrorCode::Internal,
    ])
    .unwrap()
}

fn arb_wire_error(rng: &mut Prng) -> WireError {
    WireError::new(arb_error_code(rng), arb_string(rng))
}

fn arb_ids(rng: &mut Prng) -> Vec<u32> {
    (0..rng.gen_range(0..20usize))
        .map(|_| rng.next_u64() as u32)
        .collect()
}

fn arb_response(rng: &mut Prng) -> Response {
    match rng.gen_range(0..7u32) {
        0 => Response::Pong,
        1 => Response::Ids {
            generation: rng.next_u64(),
            ids: arb_ids(rng),
        },
        2 => Response::Batch {
            generation: rng.next_u64(),
            items: (0..rng.gen_range(0..6usize))
                .map(|_| {
                    if rng.gen_bool(0.75) {
                        Ok(arb_ids(rng))
                    } else {
                        Err(arb_wire_error(rng))
                    }
                })
                .collect(),
        },
        3 => Response::Reloaded {
            catalog: arb_string(rng),
            generation: rng.next_u64(),
            rules: rng.next_u64(),
        },
        4 => Response::Info {
            catalogs: (0..rng.gen_range(0..4usize))
                .map(|_| CatalogInfo {
                    name: arb_string(rng),
                    generation: rng.next_u64(),
                    rules: rng.next_u64(),
                    analytics: rng.gen_bool(0.5),
                })
                .collect(),
        },
        5 => Response::Error(arb_wire_error(rng)),
        _ => Response::ShuttingDown,
    }
}

/// Requests survive encode → decode → encode byte-exactly, including
/// NaN range bounds and adversarial strings.
#[test]
fn arbitrary_requests_round_trip_bit_exactly() {
    qar_prng::cases(256, 0x9E0_0E57, |case, rng| {
        let request = arb_request(rng);
        let frame = request.to_frame().unwrap();
        let back = decode_request(&frame)
            .unwrap_or_else(|e| panic!("case {case}: decode failed: {e}\n{request:?}"));
        assert_eq!(
            back.to_frame().unwrap(),
            frame,
            "case {case}: re-encode differs\n{request:?}"
        );
    });
}

/// Responses survive encode → decode → encode byte-exactly.
#[test]
fn arbitrary_responses_round_trip_bit_exactly() {
    qar_prng::cases(256, 0x9E0_0E5B, |case, rng| {
        let response = arb_response(rng);
        let frame = response.to_frame().unwrap();
        let back = decode_response(&frame)
            .unwrap_or_else(|e| panic!("case {case}: decode failed: {e}\n{response:?}"));
        assert_eq!(
            back.to_frame().unwrap(),
            frame,
            "case {case}: re-encode differs\n{response:?}"
        );
    });
}

/// Every single-byte flip of a valid frame is rejected with a structured
/// error, never a panic and never a silently different message: the
/// magic guards the prefix, the length field is consistency-checked, and
/// the CRC covers the tag and the whole payload.
#[test]
fn every_single_byte_flip_is_a_structured_error() {
    qar_prng::cases(48, 0xF11B, |case, rng| {
        let frame = if rng.gen_bool(0.5) {
            arb_request(rng).to_frame().unwrap()
        } else {
            arb_response(rng).to_frame().unwrap()
        };
        for offset in 0..frame.len() {
            for mask in [0x01u8, 0x80, rng.gen_range(1..256u32) as u8] {
                let mut bad = frame.clone();
                bad[offset] ^= mask;
                for result in [decode_request(&bad).err(), decode_response(&bad).err()] {
                    let error = result.unwrap_or_else(|| {
                        panic!("case {case}: flipping byte {offset} with {mask:#04x} undetected")
                    });
                    // Always a deterministic protocol error, never Io.
                    assert!(
                        !matches!(error, ProtocolError::Io(_)),
                        "case {case}: unexpected Io error at byte {offset}"
                    );
                }
            }
        }
    });
}

/// Every strict prefix of a valid frame fails to decode — no truncation
/// is silently accepted — and the streaming reader agrees: an empty
/// stream is a clean EOF, a partial frame is an error.
#[test]
fn every_prefix_truncation_is_a_structured_error() {
    qar_prng::cases(32, 0x7B04C47E, |case, rng| {
        let frame = if rng.gen_bool(0.5) {
            arb_request(rng).to_frame().unwrap()
        } else {
            arb_response(rng).to_frame().unwrap()
        };
        for len in 0..frame.len() {
            let prefix = &frame[..len];
            assert!(
                decode_request(prefix).is_err(),
                "case {case}: request prefix of {len} bytes decoded"
            );
            assert!(
                decode_response(prefix).is_err(),
                "case {case}: response prefix of {len} bytes decoded"
            );
            let mut cursor = std::io::Cursor::new(prefix.to_vec());
            match read_frame(&mut cursor) {
                Ok(None) => assert_eq!(len, 0, "case {case}: clean EOF mid-frame at {len}"),
                Ok(Some(_)) => panic!("case {case}: streaming reader accepted a {len}-byte prefix"),
                Err(e) => assert!(
                    !matches!(e, ProtocolError::Io(_)) || len > 0,
                    "case {case}: empty stream must not be Io"
                ),
            }
        }
    });
}

/// Request tags and response tags are disjoint: decoding a frame with
/// the wrong decoder is always an [`ProtocolError::UnknownTag`] carrying
/// the offending tag.
#[test]
fn request_and_response_tag_spaces_are_disjoint() {
    qar_prng::cases(64, 0xD157017, |case, rng| {
        let request = arb_request(rng);
        match decode_response(&request.to_frame().unwrap()) {
            Err(ProtocolError::UnknownTag(tag)) => assert_eq!(tag, request.tag(), "case {case}"),
            other => panic!("case {case}: request decoded as response: {other:?}"),
        }
        let response = arb_response(rng);
        match decode_request(&response.to_frame().unwrap()) {
            Err(ProtocolError::UnknownTag(tag)) => assert_eq!(tag, response.tag(), "case {case}"),
            other => panic!("case {case}: response decoded as request: {other:?}"),
        }
    });
}
