//! Property tests for the `.qarcat` wire format: encode→decode is the
//! identity (bit-exactly, including NaN confidences and extreme float
//! values), and no corrupted or truncated input ever panics — every one
//! surfaces a structured [`StoreError`].

mod common;

use common::arb_catalog;
use qar_store::Catalog;

/// Arbitrary valid catalogs survive encode → decode → encode with byte
/// equality — the strongest round-trip statement, immune to `f64`
/// comparison pitfalls (`NaN != NaN`).
#[test]
fn arbitrary_catalogs_round_trip_bit_exactly() {
    qar_prng::cases(64, 0x5702E, |case, rng| {
        let catalog = arb_catalog(rng);
        let bytes = catalog.encode();
        let back =
            Catalog::decode(&bytes).unwrap_or_else(|e| panic!("case {case}: decode failed: {e}"));
        assert_eq!(back.encode(), bytes, "case {case}: re-encode differs");
        assert_eq!(back.rules().len(), catalog.rules().len(), "case {case}");
        assert_eq!(back.num_rows(), catalog.num_rows(), "case {case}");
        assert_eq!(back.schema().len(), catalog.schema().len(), "case {case}");
        assert_eq!(
            back.interest().map(<[_]>::len),
            catalog.interest().map(<[_]>::len),
            "case {case}"
        );
    });
}

/// A decoded catalog is [`Catalog::content_eq`] to the one that was
/// encoded (whenever content equality is decidable — NaN confidences make
/// a catalog unequal even to itself, exactly like `f64` comparison), and
/// two independently drawn catalogs with different bytes are not.
#[test]
fn round_trip_preserves_content_equality() {
    qar_prng::cases(32, 0xC07E47, |case, rng| {
        let catalog = arb_catalog(rng);
        let bytes = catalog.encode();
        let back = Catalog::decode(&bytes).expect("valid catalog decodes");
        let has_nan = catalog.rules().iter().any(|r| r.confidence.is_nan());
        assert_eq!(
            back.content_eq(&catalog),
            !has_nan,
            "case {case}: round trip must preserve content (modulo NaN)"
        );
        let other = arb_catalog(rng);
        if other.schema() != back.schema() || other.rules() != back.rules() {
            assert!(
                !back.content_eq(&other),
                "case {case}: catalogs with different schemas/rules compared equal"
            );
        }
    });
}

/// Flipping any single byte always produces an `Err` (the magic, version,
/// and per-section CRCs leave no unprotected byte) and never a panic.
#[test]
fn single_byte_corruption_is_always_detected() {
    qar_prng::cases(24, 0xC0552, |case, rng| {
        let bytes = arb_catalog(rng).encode();
        for _ in 0..64 {
            let mut bad = bytes.clone();
            let offset = rng.gen_range(0..bad.len());
            let mask = rng.gen_range(1..256u32) as u8;
            bad[offset] ^= mask;
            let result = Catalog::decode(&bad);
            assert!(
                result.is_err(),
                "case {case}: flipping byte {offset} with {mask:#04x} went undetected"
            );
        }
    });
}

/// Every strict prefix of a valid catalog fails to decode (no truncation
/// is silently accepted), and decoding never panics on any prefix. The
/// deliberate exceptions: a catalog with trailing optional sections
/// (analytics, counts) cut *exactly* at a section boundary after the
/// mandatory three is a valid, shorter catalog — those boundaries are
/// the forward-compatibility seam, and a cut there must decode to the
/// same content minus the dropped trailing section(s).
#[test]
fn truncated_catalogs_always_error() {
    qar_prng::cases(8, 0x7254C, |case, rng| {
        let catalog = arb_catalog(rng);
        let bytes = catalog.encode();
        // Decodable prefixes: every section end after the mandatory
        // three (excluding the full length, which is not a strict
        // prefix). One boundary per trailing optional section.
        let sections = qar_store::section_inventory(&bytes).expect("valid catalog walks");
        let mut boundaries = std::collections::HashSet::new();
        let mut offset = qar_store::format::MAGIC.len() + 4;
        for (i, s) in sections.iter().enumerate() {
            offset += 4 + 8 + 4 + s.len as usize;
            if i >= 2 && offset < bytes.len() {
                boundaries.insert(offset);
            }
        }
        for len in 0..bytes.len() {
            match Catalog::decode(&bytes[..len]) {
                Err(_) => assert!(
                    !boundaries.contains(&len),
                    "case {case}: cut at an optional-section boundary ({len}) must decode"
                ),
                Ok(back) => {
                    assert!(
                        boundaries.contains(&len),
                        "case {case}: prefix of {len}/{} bytes decoded",
                        bytes.len()
                    );
                    assert_eq!(
                        back.encode(),
                        &bytes[..len],
                        "case {case}: truncated catalog re-encodes to its own prefix"
                    );
                }
            }
        }
    });
}

/// A catalog followed by a well-formed *unknown* trailing section (the
/// layout a future format revision would write) still decodes, and its
/// content is untouched — old readers skip what they don't understand.
/// A corrupted unknown section is still rejected: skipping never skips
/// the checksum.
#[test]
fn unknown_trailing_sections_are_skipped_but_verified() {
    qar_prng::cases(16, 0xF07A4D, |case, rng| {
        let catalog = arb_catalog(rng);
        let mut bytes = catalog.encode();
        let payload: Vec<u8> = (0..rng.gen_range(0..64usize))
            .map(|_| rng.gen_range(0..256u32) as u8)
            .collect();
        let tag: u32 = rng.gen_range(1000..2000);
        let mut w = qar_store::format::Writer::new();
        w.put_section(tag, &payload);
        let section = w.into_bytes();
        bytes.extend_from_slice(&section);

        let back = Catalog::decode(&bytes)
            .unwrap_or_else(|e| panic!("case {case}: unknown section broke decode: {e}"));
        let has_nan = catalog.rules().iter().any(|r| r.confidence.is_nan());
        assert_eq!(back.content_eq(&catalog), !has_nan, "case {case}");

        // Any flipped byte inside the appended section is still caught.
        let offset = bytes.len() - section.len() + rng.gen_range(0..section.len());
        bytes[offset] ^= 0x10;
        assert!(
            Catalog::decode(&bytes).is_err(),
            "case {case}: corrupted unknown section went undetected"
        );
    });
}

/// Appending trailing garbage after a valid catalog is rejected too.
#[test]
fn trailing_bytes_are_rejected() {
    qar_prng::cases(8, 0x72A17, |case, rng| {
        let mut bytes = arb_catalog(rng).encode();
        bytes.push(0);
        assert!(
            Catalog::decode(&bytes).is_err(),
            "case {case}: trailing byte accepted"
        );
    });
}
