//! Out-of-core chunked columnar table backend.
//!
//! A [`ChunkStore`] holds an encoded table as fixed-size row blocks whose
//! `u32` code columns are spilled to per-chunk files on disk; only one
//! chunk's columns are resident at a time, so a single node can run the
//! paper's multi-pass scans over tables far beyond RAM. Counting an
//! itemset over the whole table is counting it over every chunk and
//! adding the per-chunk `u64` counts — exact integer arithmetic, so the
//! result is bit-identical to an in-memory scan.
//!
//! Building the encoders without holding the table needs one streaming
//! *stats* pass first: [`TableSummary`] accumulates per-attribute value
//! histograms (quantitative) and label sets (categorical) chunk by chunk,
//! then reconstructs each column in sorted order — one attribute at a
//! time — for the partitioner. Every encoder constructor and partitioner
//! in this workspace is order-independent (they sort internally), so the
//! encoders built from a summary are identical to the ones built from the
//! in-memory table.

use std::collections::{BTreeMap, BTreeSet};
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::PathBuf;

use crate::encode::{AttributeEncoder, EncodedTable};
use crate::error::TableError;
use crate::schema::{AttributeId, AttributeKind, Schema};
use crate::table::{Column, Table};

/// Magic prefix of a spilled chunk file.
const CHUNK_MAGIC: [u8; 4] = *b"QCK1";

/// Monotone key for `f64` under `total_cmp` order, so a `BTreeMap` over
/// keys iterates values in sorted order.
fn f64_key(v: f64) -> u64 {
    let b = v.to_bits();
    if b >> 63 == 1 {
        !b
    } else {
        b | (1 << 63)
    }
}

/// Per-attribute accumulator of one streaming stats pass.
#[derive(Debug, Clone)]
enum ColumnSummary {
    /// Value -> multiplicity, keyed in `total_cmp` order.
    Quant {
        counts: BTreeMap<u64, (f64, u64)>,
        integral: bool,
    },
    /// Observed labels.
    Cat { labels: BTreeSet<String> },
}

/// Streaming per-attribute statistics of a table read in chunks — enough
/// to rebuild every encoder the in-memory pipeline would build, without
/// ever holding more than one attribute's expanded column.
#[derive(Debug, Clone)]
pub struct TableSummary {
    schema: Schema,
    columns: Vec<ColumnSummary>,
    num_rows: usize,
}

impl TableSummary {
    /// An empty summary for `schema`.
    pub fn new(schema: Schema) -> Self {
        let columns = schema
            .attributes()
            .iter()
            .map(|def| match def.kind() {
                AttributeKind::Quantitative => ColumnSummary::Quant {
                    counts: BTreeMap::new(),
                    integral: true,
                },
                AttributeKind::Categorical => ColumnSummary::Cat {
                    labels: BTreeSet::new(),
                },
            })
            .collect();
        TableSummary {
            schema,
            columns,
            num_rows: 0,
        }
    }

    /// Fold one chunk into the summary. The chunk must share the schema.
    pub fn add_chunk(&mut self, chunk: &Table) {
        assert_eq!(chunk.schema().len(), self.schema.len(), "schema mismatch");
        self.num_rows += chunk.num_rows();
        for (idx, summary) in self.columns.iter_mut().enumerate() {
            match (chunk.column(AttributeId(idx)), summary) {
                (
                    Column::Quantitative { data, integral },
                    ColumnSummary::Quant {
                        counts,
                        integral: all_integral,
                    },
                ) => {
                    *all_integral &= *integral;
                    for &v in data {
                        counts.entry(f64_key(v)).or_insert((v, 0)).1 += 1;
                    }
                }
                (Column::Categorical { data }, ColumnSummary::Cat { labels }) => {
                    for s in data {
                        if !labels.contains(s) {
                            labels.insert(s.clone());
                        }
                    }
                }
                _ => unreachable!("columns always match their schema kind"),
            }
        }
    }

    /// The schema this summary was built for.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Total rows folded in so far.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Whether quantitative attribute `id` saw only whole numbers.
    pub fn integral(&self, id: AttributeId) -> bool {
        match &self.columns[id.index()] {
            ColumnSummary::Quant { integral, .. } => *integral,
            ColumnSummary::Cat { .. } => false,
        }
    }

    /// The full quantitative column of `id`, reconstructed in sorted order
    /// with original multiplicities. This is the one transiently large
    /// allocation of the stats pass: `num_rows` values for a single
    /// attribute at a time.
    pub fn expand_quant(&self, id: AttributeId) -> Vec<f64> {
        match &self.columns[id.index()] {
            ColumnSummary::Quant { counts, .. } => {
                let mut out = Vec::with_capacity(self.num_rows);
                for &(v, n) in counts.values() {
                    for _ in 0..n {
                        out.push(v);
                    }
                }
                out
            }
            ColumnSummary::Cat { .. } => panic!("attribute {} is categorical", id.index()),
        }
    }

    /// Sorted distinct labels of categorical attribute `id`.
    pub fn labels(&self, id: AttributeId) -> Vec<String> {
        match &self.columns[id.index()] {
            ColumnSummary::Cat { labels } => labels.iter().cloned().collect(),
            ColumnSummary::Quant { .. } => panic!("attribute {} is quantitative", id.index()),
        }
    }
}

/// An encoded table spilled to disk as per-chunk code-column files.
///
/// Create with [`ChunkStore::create`], append row blocks with
/// [`ChunkStore::append_chunk`] (raw rows, encoded here) or
/// [`ChunkStore::append_encoded`], then scan chunk by chunk via
/// [`ChunkStore::chunk`] — each load returns a normal [`EncodedTable`]
/// the existing scan kernels consume unchanged. Chunk files are removed
/// on drop.
#[derive(Debug)]
pub struct ChunkStore {
    dir: PathBuf,
    schema: Schema,
    encoders: Vec<AttributeEncoder>,
    /// Rows per chunk, append order.
    chunk_rows: Vec<usize>,
    num_rows: usize,
}

impl ChunkStore {
    /// Create a store spilling into `dir` (created if missing). The
    /// encoders fix the code space for every chunk appended later.
    pub fn create(
        dir: impl Into<PathBuf>,
        schema: Schema,
        encoders: Vec<AttributeEncoder>,
    ) -> Result<Self, TableError> {
        assert_eq!(encoders.len(), schema.len(), "one encoder per attribute");
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(ChunkStore {
            dir,
            schema,
            encoders,
            chunk_rows: Vec::new(),
            num_rows: 0,
        })
    }

    fn chunk_path(&self, index: usize) -> PathBuf {
        self.dir.join(format!("chunk_{index:06}.qcol"))
    }

    /// Encode a raw row block with the store's encoders and spill it.
    pub fn append_chunk(&mut self, chunk: &Table) -> Result<(), TableError> {
        let encoded = EncodedTable::encode(chunk, self.encoders.clone())?;
        self.append_encoded(&encoded)
    }

    /// Spill an already-encoded row block. Its schema/encoder shapes must
    /// match the store's.
    pub fn append_encoded(&mut self, chunk: &EncodedTable) -> Result<(), TableError> {
        assert_eq!(chunk.schema().len(), self.schema.len(), "schema mismatch");
        let index = self.chunk_rows.len();
        let path = self.chunk_path(index);
        let mut w = BufWriter::new(File::create(&path)?);
        let mut checksum: u64 = 0;
        w.write_all(&CHUNK_MAGIC)?;
        w.write_all(&(self.schema.len() as u32).to_le_bytes())?;
        w.write_all(&(chunk.num_rows() as u64).to_le_bytes())?;
        for idx in 0..self.schema.len() {
            for &code in chunk.codes(AttributeId(idx)) {
                w.write_all(&code.to_le_bytes())?;
                checksum = checksum
                    .wrapping_mul(0x100000001B3)
                    .wrapping_add(code as u64);
            }
        }
        w.write_all(&checksum.to_le_bytes())?;
        w.flush()?;
        self.chunk_rows.push(chunk.num_rows());
        self.num_rows += chunk.num_rows();
        Ok(())
    }

    /// Number of spilled chunks.
    pub fn num_chunks(&self) -> usize {
        self.chunk_rows.len()
    }

    /// Total rows across all chunks.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// The shared schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The shared encoders (one per attribute, schema order).
    pub fn encoders(&self) -> &[AttributeEncoder] {
        &self.encoders
    }

    /// A decode-only header table (schema + encoders, true row count, no
    /// columns) for rule rendering and candidate generation.
    pub fn header(&self) -> EncodedTable {
        EncodedTable::header_only(self.schema.clone(), self.encoders.clone(), self.num_rows)
    }

    /// Load chunk `index` back into memory as a normal [`EncodedTable`].
    pub fn chunk(&self, index: usize) -> Result<EncodedTable, TableError> {
        let path = self.chunk_path(index);
        let expected_rows = self.chunk_rows[index];
        let mut r = BufReader::new(File::open(&path)?);
        let corrupt = |detail: &str| TableError::Io(format!("{}: {detail}", path.display()));

        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if magic != CHUNK_MAGIC {
            return Err(corrupt("bad chunk magic"));
        }
        let mut b4 = [0u8; 4];
        r.read_exact(&mut b4)?;
        let ncols = u32::from_le_bytes(b4) as usize;
        if ncols != self.schema.len() {
            return Err(corrupt("column count mismatch"));
        }
        let mut b8 = [0u8; 8];
        r.read_exact(&mut b8)?;
        let nrows = u64::from_le_bytes(b8) as usize;
        if nrows != expected_rows {
            return Err(corrupt("row count mismatch"));
        }

        let mut checksum: u64 = 0;
        let mut columns = Vec::with_capacity(ncols);
        let mut raw = vec![0u8; nrows * 4];
        for _ in 0..ncols {
            r.read_exact(&mut raw)?;
            let codes: Vec<u32> = raw
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                .collect();
            for &code in &codes {
                checksum = checksum
                    .wrapping_mul(0x100000001B3)
                    .wrapping_add(code as u64);
            }
            columns.push(codes);
        }
        r.read_exact(&mut b8)?;
        if u64::from_le_bytes(b8) != checksum {
            return Err(corrupt("chunk checksum mismatch"));
        }
        Ok(EncodedTable::from_parts(
            self.schema.clone(),
            self.encoders.clone(),
            columns,
            nrows,
        ))
    }
}

impl Drop for ChunkStore {
    fn drop(&mut self) {
        for index in 0..self.chunk_rows.len() {
            let _ = std::fs::remove_file(self.chunk_path(index));
        }
        // Only removes the directory when nothing else lives in it.
        let _ = std::fs::remove_dir(&self.dir);
    }
}

/// A fresh spill directory under the system temp dir, unique per process
/// and call.
pub fn default_spill_dir(label: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("qar_chunks_{label}_{}_{seq}", std::process::id()))
}

/// Stream a CSV input into a [`ChunkStore`] in `chunk_rows`-row blocks:
/// one stats pass to build the summary, then (driven by the caller, who
/// decides the encoders from the summary) one spill pass. This helper
/// runs the *spill* pass given encoders already chosen.
pub fn spill_csv<R: std::io::BufRead>(
    reader: R,
    schema: &Schema,
    encoders: Vec<AttributeEncoder>,
    chunk_rows: usize,
    dir: impl Into<PathBuf>,
) -> Result<ChunkStore, TableError> {
    let mut chunks = crate::csv::CsvChunks::new(reader, schema.clone(), chunk_rows)?;
    let mut store = ChunkStore::create(dir, schema.clone(), encoders)?;
    while let Some(chunk) = chunks.next_chunk()? {
        store.append_chunk(&chunk)?;
    }
    Ok(store)
}

/// Run the stats pass over a CSV input: stream it in `chunk_rows`-row
/// blocks and fold every block into a [`TableSummary`].
pub fn summarize_csv<R: std::io::BufRead>(
    reader: R,
    schema: &Schema,
    chunk_rows: usize,
) -> Result<TableSummary, TableError> {
    let mut chunks = crate::csv::CsvChunks::new(reader, schema.clone(), chunk_rows)?;
    let mut summary = TableSummary::new(schema.clone());
    while let Some(chunk) = chunks.next_chunk()? {
        summary.add_chunk(&chunk);
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn schema() -> Schema {
        Schema::builder()
            .quantitative("age")
            .categorical("married")
            .quantitative("num_cars")
            .build()
            .unwrap()
    }

    fn people() -> Table {
        let mut t = Table::new(schema());
        for (age, married, cars) in [
            (23, "No", 1),
            (25, "Yes", 1),
            (29, "No", 0),
            (34, "Yes", 2),
            (38, "Yes", 2),
        ] {
            t.push_row(&[Value::Int(age), Value::from(married), Value::Int(cars)])
                .unwrap();
        }
        t
    }

    fn spill_dir(label: &str) -> PathBuf {
        default_spill_dir(label)
    }

    #[test]
    fn summary_reconstructs_sorted_columns() {
        let t = people();
        let mut summary = TableSummary::new(schema());
        summary.add_chunk(&t);
        assert_eq!(summary.num_rows(), 5);
        assert_eq!(
            summary.expand_quant(AttributeId(0)),
            vec![23.0, 25.0, 29.0, 34.0, 38.0]
        );
        assert_eq!(
            summary.expand_quant(AttributeId(2)),
            vec![0.0, 1.0, 1.0, 2.0, 2.0]
        );
        assert!(summary.integral(AttributeId(0)));
        assert_eq!(summary.labels(AttributeId(1)), vec!["No", "Yes"]);
    }

    #[test]
    fn summary_is_chunking_invariant() {
        let t = people();
        let mut whole = TableSummary::new(schema());
        whole.add_chunk(&t);

        // Same rows in two chunks of 2 and 3.
        let mut parts = TableSummary::new(schema());
        for range in [0..2usize, 2..5] {
            let mut chunk = Table::new(schema());
            for r in range {
                chunk.push_row(&t.row(r).to_values()).unwrap();
            }
            parts.add_chunk(&chunk);
        }
        assert_eq!(
            whole.expand_quant(AttributeId(0)),
            parts.expand_quant(AttributeId(0))
        );
        assert_eq!(whole.labels(AttributeId(1)), parts.labels(AttributeId(1)));
        assert_eq!(whole.num_rows(), parts.num_rows());
    }

    #[test]
    fn chunk_store_round_trips_codes() {
        let t = people();
        let whole = EncodedTable::encode_full_resolution(&t).unwrap();
        let mut store = ChunkStore::create(
            spill_dir("roundtrip"),
            t.schema().clone(),
            whole.encoders().to_vec(),
        )
        .unwrap();
        // Spill in blocks of 2.
        for range in [0..2usize, 2..4, 4..5] {
            let mut chunk = Table::new(t.schema().clone());
            for r in range {
                chunk.push_row(&t.row(r).to_values()).unwrap();
            }
            store.append_chunk(&chunk).unwrap();
        }
        assert_eq!(store.num_chunks(), 3);
        assert_eq!(store.num_rows(), 5);
        // Concatenated chunk codes equal the in-memory encoding.
        for a in 0..3 {
            let id = AttributeId(a);
            let mut got: Vec<u32> = Vec::new();
            for i in 0..store.num_chunks() {
                got.extend_from_slice(store.chunk(i).unwrap().codes(id));
            }
            assert_eq!(got, whole.codes(id), "attribute {a}");
        }
    }

    #[test]
    fn chunk_files_removed_on_drop() {
        let dir = spill_dir("drop");
        {
            let t = people();
            let whole = EncodedTable::encode_full_resolution(&t).unwrap();
            let mut store =
                ChunkStore::create(&dir, t.schema().clone(), whole.encoders().to_vec()).unwrap();
            store.append_chunk(&t).unwrap();
            assert!(dir.join("chunk_000000.qcol").exists());
        }
        assert!(!dir.join("chunk_000000.qcol").exists());
    }

    #[test]
    fn corrupt_chunk_detected() {
        let dir = spill_dir("corrupt");
        let t = people();
        let whole = EncodedTable::encode_full_resolution(&t).unwrap();
        let mut store =
            ChunkStore::create(&dir, t.schema().clone(), whole.encoders().to_vec()).unwrap();
        store.append_chunk(&t).unwrap();
        let path = dir.join("chunk_000000.qcol");
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, bytes).unwrap();
        let err = store.chunk(0).unwrap_err();
        assert!(matches!(err, TableError::Io(_)), "{err}");
    }

    #[test]
    fn spill_and_summarize_csv_helpers() {
        let s = Schema::builder()
            .quantitative("x")
            .categorical("c")
            .build()
            .unwrap();
        let input = "x,c\n1,a\n2,b\n3,a\n4,b\n5,a\n";
        let summary = summarize_csv(input.as_bytes(), &s, 2).unwrap();
        assert_eq!(summary.num_rows(), 5);
        assert_eq!(summary.labels(AttributeId(1)), vec!["a", "b"]);
        let encoders = vec![
            AttributeEncoder::quant_values_from(&summary.expand_quant(AttributeId(0)), true),
            AttributeEncoder::categorical_from(&summary.labels(AttributeId(1))),
        ];
        let store = spill_csv(input.as_bytes(), &s, encoders, 2, spill_dir("helper")).unwrap();
        assert_eq!(store.num_chunks(), 3);
        assert_eq!(store.num_rows(), 5);
        assert_eq!(store.chunk(2).unwrap().codes(AttributeId(0)), &[4]);
    }
}
