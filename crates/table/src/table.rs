//! Column-oriented record storage.

use crate::error::TableError;
use crate::schema::{AttributeId, AttributeKind, Schema};
use crate::value::Value;

/// One column of a [`Table`], stored densely by kind.
///
/// Quantitative columns store `f64` (integers are widened on insert and
/// remembered via the `integral` flag so they render without decimals);
/// categorical columns store owned strings.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// A quantitative column.
    Quantitative {
        /// Cell values, row-aligned with the table.
        data: Vec<f64>,
        /// True while every inserted value was an integer.
        integral: bool,
    },
    /// A categorical column.
    Categorical {
        /// Cell values, row-aligned with the table.
        data: Vec<String>,
    },
}

impl Column {
    fn new(kind: AttributeKind) -> Self {
        match kind {
            AttributeKind::Quantitative => Column::Quantitative {
                data: Vec::new(),
                integral: true,
            },
            AttributeKind::Categorical => Column::Categorical { data: Vec::new() },
        }
    }

    fn with_capacity(kind: AttributeKind, capacity: usize) -> Self {
        match kind {
            AttributeKind::Quantitative => Column::Quantitative {
                data: Vec::with_capacity(capacity),
                integral: true,
            },
            AttributeKind::Categorical => Column::Categorical {
                data: Vec::with_capacity(capacity),
            },
        }
    }

    /// Number of cells (row count of the owning table).
    pub fn len(&self) -> usize {
        match self {
            Column::Quantitative { data, .. } => data.len(),
            Column::Categorical { data } => data.len(),
        }
    }

    /// True when the column holds no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The numeric cells of a quantitative column, or `None` for a
    /// categorical column.
    pub fn as_quantitative(&self) -> Option<&[f64]> {
        match self {
            Column::Quantitative { data, .. } => Some(data),
            Column::Categorical { .. } => None,
        }
    }

    /// The string cells of a categorical column, or `None` for a
    /// quantitative column.
    pub fn as_categorical(&self) -> Option<&[String]> {
        match self {
            Column::Categorical { data } => Some(data),
            Column::Quantitative { .. } => None,
        }
    }

    /// True if every value pushed into a quantitative column was integral.
    /// Categorical columns report `false`.
    pub fn is_integral(&self) -> bool {
        matches!(self, Column::Quantitative { integral: true, .. })
    }

    /// The cell at `row` as a [`Value`].
    pub fn value(&self, row: usize) -> Value {
        match self {
            Column::Quantitative { data, integral } => {
                let v = data[row];
                if *integral {
                    Value::Int(v as i64)
                } else {
                    Value::Float(v)
                }
            }
            Column::Categorical { data } => Value::Cat(data[row].clone()),
        }
    }
}

/// A relational table: a [`Schema`] plus row-aligned columns.
///
/// Rows are pushed as slices of [`Value`] and type-checked against the
/// schema. Storage is columnar because the miner's support-counting pass
/// touches a handful of attributes across every record.
///
/// ```
/// use qar_table::{Schema, Table, Value};
///
/// let schema = Schema::builder()
///     .quantitative("age")
///     .categorical("married")
///     .build().unwrap();
/// let mut table = Table::new(schema);
/// table.push_row(&[Value::Int(23), Value::from("No")]).unwrap();
/// table.push_row(&[Value::Int(38), Value::from("Yes")]).unwrap();
/// assert_eq!(table.num_rows(), 2);
/// assert_eq!(table.row(1).value(0), Value::Int(38));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    schema: Schema,
    columns: Vec<Column>,
    num_rows: usize,
}

impl Table {
    /// Create an empty table for `schema`.
    pub fn new(schema: Schema) -> Self {
        let columns = schema
            .attributes()
            .iter()
            .map(|a| Column::new(a.kind()))
            .collect();
        Table {
            schema,
            columns,
            num_rows: 0,
        }
    }

    /// Create an empty table with per-column capacity reserved for
    /// `capacity` rows.
    pub fn with_capacity(schema: Schema, capacity: usize) -> Self {
        let columns = schema
            .attributes()
            .iter()
            .map(|a| Column::with_capacity(a.kind(), capacity))
            .collect();
        Table {
            schema,
            columns,
            num_rows: 0,
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of records.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of attributes.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// True if the table holds no records.
    pub fn is_empty(&self) -> bool {
        self.num_rows == 0
    }

    /// The column for `id`.
    pub fn column(&self, id: AttributeId) -> &Column {
        &self.columns[id.index()]
    }

    /// The column for the attribute called `name`.
    pub fn column_by_name(&self, name: &str) -> Result<&Column, TableError> {
        Ok(self.column(self.schema.id_of(name)?))
    }

    /// Append one record. Cells must match the schema's arity and kinds.
    pub fn push_row(&mut self, cells: &[Value]) -> Result<(), TableError> {
        if cells.len() != self.columns.len() {
            return Err(TableError::ArityMismatch {
                expected: self.columns.len(),
                got: cells.len(),
            });
        }
        // Validate before mutating so a failed push leaves the table intact.
        for (def, cell) in self.schema.attributes().iter().zip(cells) {
            let ok = match def.kind() {
                AttributeKind::Quantitative => cell.is_quantitative(),
                AttributeKind::Categorical => !cell.is_quantitative(),
            };
            if !ok {
                return Err(TableError::TypeMismatch {
                    attribute: def.name().to_owned(),
                    expected: def.kind().name(),
                    got: cell.kind_name().to_owned(),
                });
            }
            if let Some(x) = cell.as_f64() {
                if !x.is_finite() {
                    return Err(TableError::NonFiniteValue {
                        attribute: def.name().to_owned(),
                    });
                }
            }
        }
        for (column, cell) in self.columns.iter_mut().zip(cells) {
            match (column, cell) {
                (Column::Quantitative { data, integral }, v) => {
                    let x = v.as_f64().expect("validated quantitative");
                    // Whole-number floats keep the column integral.
                    if x.fract() != 0.0 {
                        *integral = false;
                    }
                    data.push(x);
                }
                (Column::Categorical { data }, Value::Cat(s)) => data.push(s.clone()),
                _ => unreachable!("validated above"),
            }
        }
        self.num_rows += 1;
        Ok(())
    }

    /// A lightweight view of one record.
    pub fn row(&self, index: usize) -> RowView<'_> {
        assert!(index < self.num_rows, "row {index} out of range");
        RowView { table: self, index }
    }

    /// Iterate over all records.
    pub fn rows(&self) -> impl Iterator<Item = RowView<'_>> {
        (0..self.num_rows).map(move |i| RowView {
            table: self,
            index: i,
        })
    }
}

/// A borrowed view of one record of a [`Table`].
#[derive(Debug, Clone, Copy)]
pub struct RowView<'a> {
    table: &'a Table,
    index: usize,
}

impl<'a> RowView<'a> {
    /// The record's position in the table.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The cell in column `col` (by positional index).
    pub fn value(&self, col: usize) -> Value {
        self.table.columns[col].value(self.index)
    }

    /// The cell for attribute `id`.
    pub fn value_of(&self, id: AttributeId) -> Value {
        self.table.columns[id.index()].value(self.index)
    }

    /// All cells, materialized.
    pub fn to_values(&self) -> Vec<Value> {
        (0..self.table.num_columns())
            .map(|c| self.value(c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn people_table() -> Table {
        let schema = Schema::builder()
            .quantitative("age")
            .categorical("married")
            .quantitative("num_cars")
            .build()
            .unwrap();
        let mut t = Table::new(schema);
        for (age, married, cars) in [
            (23, "No", 1),
            (25, "Yes", 1),
            (29, "No", 0),
            (34, "Yes", 2),
            (38, "Yes", 2),
        ] {
            t.push_row(&[Value::Int(age), Value::from(married), Value::Int(cars)])
                .unwrap();
        }
        t
    }

    #[test]
    fn push_and_read_back() {
        let t = people_table();
        assert_eq!(t.num_rows(), 5);
        assert_eq!(t.num_columns(), 3);
        assert_eq!(t.row(0).value(0), Value::Int(23));
        assert_eq!(t.row(3).value(1), Value::Cat("Yes".into()));
        assert_eq!(t.row(4).to_values().len(), 3);
    }

    #[test]
    fn columnar_access() {
        let t = people_table();
        let ages = t.column_by_name("age").unwrap().as_quantitative().unwrap();
        assert_eq!(ages, &[23.0, 25.0, 29.0, 34.0, 38.0]);
        let married = t
            .column_by_name("married")
            .unwrap()
            .as_categorical()
            .unwrap();
        assert_eq!(married[1], "Yes");
        assert!(t.column_by_name("age").unwrap().is_integral());
    }

    #[test]
    fn arity_mismatch_rejected_atomically() {
        let mut t = people_table();
        let err = t.push_row(&[Value::Int(1)]).unwrap_err();
        assert!(matches!(
            err,
            TableError::ArityMismatch {
                expected: 3,
                got: 1
            }
        ));
        assert_eq!(t.num_rows(), 5);
    }

    #[test]
    fn type_mismatch_rejected_atomically() {
        let mut t = people_table();
        let err = t
            .push_row(&[Value::from("old"), Value::from("No"), Value::Int(0)])
            .unwrap_err();
        assert!(matches!(err, TableError::TypeMismatch { .. }));
        // No column may have grown.
        assert_eq!(t.column(AttributeId(0)).as_quantitative().unwrap().len(), 5);
        assert_eq!(t.column(AttributeId(1)).as_categorical().unwrap().len(), 5);
    }

    #[test]
    fn float_values_clear_integral_flag() {
        let schema = Schema::builder().quantitative("income").build().unwrap();
        let mut t = Table::new(schema);
        t.push_row(&[Value::Float(1000.5)]).unwrap();
        assert!(!t.column(AttributeId(0)).is_integral());
        assert_eq!(t.row(0).value(0), Value::Float(1000.5));
    }

    #[test]
    fn whole_float_keeps_integral_flag() {
        let schema = Schema::builder().quantitative("income").build().unwrap();
        let mut t = Table::new(schema);
        t.push_row(&[Value::Float(1000.0)]).unwrap();
        assert!(t.column(AttributeId(0)).is_integral());
    }

    #[test]
    fn rows_iterator_covers_all() {
        let t = people_table();
        assert_eq!(t.rows().count(), 5);
        let indices: Vec<_> = t.rows().map(|r| r.index()).collect();
        assert_eq!(indices, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn row_out_of_range_panics() {
        let t = people_table();
        let _ = t.row(5);
    }

    #[test]
    fn non_finite_values_rejected_atomically() {
        let schema = Schema::builder()
            .quantitative("x")
            .quantitative("y")
            .build()
            .unwrap();
        let mut t = Table::new(schema);
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = t
                .push_row(&[Value::Float(1.0), Value::Float(bad)])
                .unwrap_err();
            assert!(matches!(err, TableError::NonFiniteValue { .. }), "{bad}");
        }
        assert!(t.is_empty(), "no partial rows");
    }

    #[test]
    fn with_capacity_starts_empty() {
        let schema = Schema::builder().categorical("c").build().unwrap();
        let t = Table::with_capacity(schema, 100);
        assert!(t.is_empty());
    }
}
