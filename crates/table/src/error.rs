//! Error type shared by all table operations.

use std::fmt;

/// Errors produced by schema construction, table mutation, CSV parsing and
/// encoding.
#[derive(Debug, Clone, PartialEq)]
pub enum TableError {
    /// An attribute name was declared twice in a schema.
    DuplicateAttribute(String),
    /// A schema was built with no attributes.
    EmptySchema,
    /// A row had the wrong number of cells for its schema.
    ArityMismatch {
        /// Number of attributes the schema declares.
        expected: usize,
        /// Number of cells the offending row carried.
        got: usize,
    },
    /// A cell value did not match its attribute's kind (e.g. a string in a
    /// quantitative column).
    TypeMismatch {
        /// Attribute name.
        attribute: String,
        /// Kind the schema declares for this attribute.
        expected: &'static str,
        /// Short description of what was supplied instead.
        got: String,
    },
    /// An attribute name was looked up but does not exist.
    NoSuchAttribute(String),
    /// A CSV line could not be parsed.
    Csv {
        /// 1-based line number within the input.
        line: usize,
        /// Explanation of the failure.
        message: String,
    },
    /// A quantitative cell could not be parsed as a number.
    BadNumber {
        /// 1-based line number within the input.
        line: usize,
        /// The token that failed to parse.
        token: String,
    },
    /// A value fell outside every encoding interval / dictionary entry.
    UnencodableValue {
        /// Attribute name.
        attribute: String,
        /// Display form of the offending value.
        value: String,
    },
    /// A quantitative cell was NaN or infinite; ranges over such values
    /// are meaningless, so they are rejected at insertion.
    NonFiniteValue {
        /// Attribute name.
        attribute: String,
    },
    /// An operation that requires a non-empty table was called on an empty
    /// one.
    EmptyTable,
    /// A taxonomy was malformed or inconsistent with the data.
    Taxonomy(String),
    /// An I/O failure, carried as a string so the error stays `Clone`.
    Io(String),
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::DuplicateAttribute(name) => {
                write!(f, "attribute `{name}` declared more than once")
            }
            TableError::EmptySchema => write!(f, "schema has no attributes"),
            TableError::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "row has {got} cells but schema has {expected} attributes"
                )
            }
            TableError::TypeMismatch {
                attribute,
                expected,
                got,
            } => write!(
                f,
                "attribute `{attribute}` expects {expected} values, got {got}"
            ),
            TableError::NoSuchAttribute(name) => write!(f, "no attribute named `{name}`"),
            TableError::Csv { line, message } => {
                write!(f, "CSV parse error on line {line}: {message}")
            }
            TableError::BadNumber { line, token } => {
                write!(f, "line {line}: `{token}` is not a number")
            }
            TableError::UnencodableValue { attribute, value } => {
                write!(
                    f,
                    "value `{value}` of attribute `{attribute}` cannot be encoded"
                )
            }
            TableError::NonFiniteValue { attribute } => {
                write!(
                    f,
                    "attribute `{attribute}` received a NaN or infinite value"
                )
            }
            TableError::EmptyTable => write!(f, "operation requires a non-empty table"),
            TableError::Taxonomy(message) => write!(f, "taxonomy error: {message}"),
            TableError::Io(message) => write!(f, "I/O error: {message}"),
        }
    }
}

impl std::error::Error for TableError {}

impl From<std::io::Error> for TableError {
    fn from(e: std::io::Error) -> Self {
        TableError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TableError::ArityMismatch {
            expected: 3,
            got: 2,
        };
        assert_eq!(e.to_string(), "row has 2 cells but schema has 3 attributes");
        let e = TableError::NoSuchAttribute("age".into());
        assert!(e.to_string().contains("age"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: TableError = io.into();
        assert!(matches!(e, TableError::Io(_)));
        assert!(e.to_string().contains("gone"));
    }
}
