//! Schemas: typed attribute declarations.

use crate::error::TableError;

/// Index of an attribute within its [`Schema`], assigned in declaration
/// order. Kept as a plain `usize` newtype so it is `Copy` and cheap to hash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AttributeId(pub usize);

impl AttributeId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for AttributeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Whether an attribute's values are ordered numbers or unordered labels.
///
/// The paper treats boolean attributes as a special case of categorical
/// attributes; we do the same.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttributeKind {
    /// Ordered numeric attribute: intervals over it are meaningful and the
    /// miner may combine adjacent values into ranges.
    Quantitative,
    /// Unordered label attribute: values are never combined (unless an
    /// external taxonomy exists, which this paper does not use).
    Categorical,
}

impl AttributeKind {
    /// Short lowercase name, used in error messages and CSV headers.
    pub fn name(self) -> &'static str {
        match self {
            AttributeKind::Quantitative => "quantitative",
            AttributeKind::Categorical => "categorical",
        }
    }
}

/// One attribute declaration: a name plus its [`AttributeKind`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttributeDef {
    name: String,
    kind: AttributeKind,
}

impl AttributeDef {
    /// Declare a quantitative attribute.
    pub fn quantitative(name: impl Into<String>) -> Self {
        AttributeDef {
            name: name.into(),
            kind: AttributeKind::Quantitative,
        }
    }

    /// Declare a categorical attribute.
    pub fn categorical(name: impl Into<String>) -> Self {
        AttributeDef {
            name: name.into(),
            kind: AttributeKind::Categorical,
        }
    }

    /// The attribute's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The attribute's kind.
    pub fn kind(&self) -> AttributeKind {
        self.kind
    }

    /// True for quantitative attributes.
    pub fn is_quantitative(&self) -> bool {
        self.kind == AttributeKind::Quantitative
    }
}

/// An ordered list of attribute declarations with unique names.
///
/// Build one with [`Schema::builder`]:
///
/// ```
/// use qar_table::{Schema, AttributeKind};
///
/// let schema = Schema::builder()
///     .quantitative("age")
///     .categorical("married")
///     .quantitative("num_cars")
///     .build()
///     .unwrap();
/// assert_eq!(schema.len(), 3);
/// assert_eq!(schema.attribute_by_name("married").unwrap().kind(),
///            AttributeKind::Categorical);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    attributes: Vec<AttributeDef>,
}

impl Schema {
    /// Start building a schema.
    pub fn builder() -> SchemaBuilder {
        SchemaBuilder {
            attributes: Vec::new(),
        }
    }

    /// Construct directly from attribute definitions, checking name
    /// uniqueness and non-emptiness.
    pub fn new(attributes: Vec<AttributeDef>) -> Result<Self, TableError> {
        if attributes.is_empty() {
            return Err(TableError::EmptySchema);
        }
        for (i, a) in attributes.iter().enumerate() {
            if attributes[..i].iter().any(|b| b.name == a.name) {
                return Err(TableError::DuplicateAttribute(a.name.clone()));
            }
        }
        Ok(Schema { attributes })
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attributes.len()
    }

    /// Always false: schemas are non-empty by construction. Provided for
    /// clippy-friendliness alongside `len`.
    pub fn is_empty(&self) -> bool {
        self.attributes.is_empty()
    }

    /// All attribute definitions in declaration order.
    pub fn attributes(&self) -> &[AttributeDef] {
        &self.attributes
    }

    /// The definition at `id`, panicking on out-of-range ids (ids are only
    /// minted by this schema, so an out-of-range id is a logic error).
    pub fn attribute(&self, id: AttributeId) -> &AttributeDef {
        &self.attributes[id.0]
    }

    /// Look up an attribute definition by name.
    pub fn attribute_by_name(&self, name: &str) -> Result<&AttributeDef, TableError> {
        self.attributes
            .iter()
            .find(|a| a.name == name)
            .ok_or_else(|| TableError::NoSuchAttribute(name.to_owned()))
    }

    /// Look up an attribute id by name.
    pub fn id_of(&self, name: &str) -> Result<AttributeId, TableError> {
        self.attributes
            .iter()
            .position(|a| a.name == name)
            .map(AttributeId)
            .ok_or_else(|| TableError::NoSuchAttribute(name.to_owned()))
    }

    /// Ids of all quantitative attributes, in declaration order.
    pub fn quantitative_ids(&self) -> Vec<AttributeId> {
        self.ids_of_kind(AttributeKind::Quantitative)
    }

    /// Ids of all categorical attributes, in declaration order.
    pub fn categorical_ids(&self) -> Vec<AttributeId> {
        self.ids_of_kind(AttributeKind::Categorical)
    }

    fn ids_of_kind(&self, kind: AttributeKind) -> Vec<AttributeId> {
        self.attributes
            .iter()
            .enumerate()
            .filter(|(_, a)| a.kind == kind)
            .map(|(i, _)| AttributeId(i))
            .collect()
    }

    /// Iterate over `(id, def)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (AttributeId, &AttributeDef)> {
        self.attributes
            .iter()
            .enumerate()
            .map(|(i, a)| (AttributeId(i), a))
    }
}

/// Fluent builder returned by [`Schema::builder`].
#[derive(Debug, Default)]
pub struct SchemaBuilder {
    attributes: Vec<AttributeDef>,
}

impl SchemaBuilder {
    /// Add a quantitative attribute.
    pub fn quantitative(mut self, name: impl Into<String>) -> Self {
        self.attributes.push(AttributeDef::quantitative(name));
        self
    }

    /// Add a categorical attribute.
    pub fn categorical(mut self, name: impl Into<String>) -> Self {
        self.attributes.push(AttributeDef::categorical(name));
        self
    }

    /// Add an attribute of either kind.
    pub fn attribute(mut self, def: AttributeDef) -> Self {
        self.attributes.push(def);
        self
    }

    /// Finish, validating name uniqueness and non-emptiness.
    pub fn build(self) -> Result<Schema, TableError> {
        Schema::new(self.attributes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn people() -> Schema {
        Schema::builder()
            .quantitative("age")
            .categorical("married")
            .quantitative("num_cars")
            .build()
            .unwrap()
    }

    #[test]
    fn builder_assigns_ids_in_order() {
        let s = people();
        assert_eq!(s.id_of("age").unwrap(), AttributeId(0));
        assert_eq!(s.id_of("married").unwrap(), AttributeId(1));
        assert_eq!(s.id_of("num_cars").unwrap(), AttributeId(2));
    }

    #[test]
    fn kind_queries() {
        let s = people();
        assert_eq!(s.quantitative_ids(), vec![AttributeId(0), AttributeId(2)]);
        assert_eq!(s.categorical_ids(), vec![AttributeId(1)]);
        assert!(s.attribute(AttributeId(0)).is_quantitative());
        assert!(!s.attribute(AttributeId(1)).is_quantitative());
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = Schema::builder()
            .quantitative("x")
            .categorical("x")
            .build()
            .unwrap_err();
        assert_eq!(err, TableError::DuplicateAttribute("x".into()));
    }

    #[test]
    fn empty_schema_rejected() {
        assert_eq!(Schema::new(vec![]).unwrap_err(), TableError::EmptySchema);
    }

    #[test]
    fn missing_attribute_lookup() {
        let s = people();
        assert!(matches!(
            s.id_of("income"),
            Err(TableError::NoSuchAttribute(_))
        ));
        assert!(s.attribute_by_name("age").is_ok());
    }

    #[test]
    fn iter_pairs() {
        let s = people();
        let names: Vec<_> = s.iter().map(|(id, d)| (id.index(), d.name())).collect();
        assert_eq!(names, vec![(0, "age"), (1, "married"), (2, "num_cars")]);
    }

    #[test]
    fn kind_name_strings() {
        assert_eq!(AttributeKind::Quantitative.name(), "quantitative");
        assert_eq!(AttributeKind::Categorical.name(), "categorical");
    }

    #[test]
    fn attribute_id_display() {
        assert_eq!(AttributeId(4).to_string(), "#4");
    }
}
