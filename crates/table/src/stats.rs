//! Per-column summaries used by the partitioner and the data generators.

use std::collections::BTreeMap;

use crate::error::TableError;
use crate::schema::AttributeId;
use crate::table::{Column, Table};

/// Summary statistics of one column.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnStats {
    /// Statistics of a quantitative column.
    Quantitative {
        /// Smallest value.
        min: f64,
        /// Largest value.
        max: f64,
        /// Arithmetic mean.
        mean: f64,
        /// Number of distinct values.
        distinct: usize,
        /// Sorted distinct values with their occurrence counts.
        value_counts: Vec<(f64, usize)>,
    },
    /// Statistics of a categorical column.
    Categorical {
        /// Number of distinct labels.
        distinct: usize,
        /// Sorted labels with their occurrence counts.
        value_counts: Vec<(String, usize)>,
    },
}

impl ColumnStats {
    /// Compute statistics for one column of `table`.
    pub fn compute(table: &Table, id: AttributeId) -> Result<Self, TableError> {
        if table.is_empty() {
            return Err(TableError::EmptyTable);
        }
        match table.column(id) {
            Column::Quantitative { data, .. } => {
                let mut sorted: Vec<f64> = data.clone();
                sorted.sort_by(f64::total_cmp);
                let min = sorted[0];
                let max = *sorted.last().expect("non-empty");
                let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
                let mut value_counts: Vec<(f64, usize)> = Vec::new();
                for &v in &sorted {
                    match value_counts.last_mut() {
                        Some((last, n)) if *last == v => *n += 1,
                        _ => value_counts.push((v, 1)),
                    }
                }
                Ok(ColumnStats::Quantitative {
                    min,
                    max,
                    mean,
                    distinct: value_counts.len(),
                    value_counts,
                })
            }
            Column::Categorical { data } => {
                let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
                for s in data {
                    *counts.entry(s).or_insert(0) += 1;
                }
                let value_counts: Vec<(String, usize)> =
                    counts.into_iter().map(|(k, v)| (k.to_owned(), v)).collect();
                Ok(ColumnStats::Categorical {
                    distinct: value_counts.len(),
                    value_counts,
                })
            }
        }
    }

    /// Number of distinct values in the column.
    pub fn distinct(&self) -> usize {
        match self {
            ColumnStats::Quantitative { distinct, .. } => *distinct,
            ColumnStats::Categorical { distinct, .. } => *distinct,
        }
    }

    /// The most frequent value's count (the "modal support" that
    /// equi-depth partitioning cannot split below).
    pub fn max_count(&self) -> usize {
        match self {
            ColumnStats::Quantitative { value_counts, .. } => {
                value_counts.iter().map(|(_, n)| *n).max().unwrap_or(0)
            }
            ColumnStats::Categorical { value_counts, .. } => {
                value_counts.iter().map(|(_, n)| *n).max().unwrap_or(0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::Value;

    fn table() -> Table {
        let schema = Schema::builder()
            .quantitative("age")
            .categorical("married")
            .build()
            .unwrap();
        let mut t = Table::new(schema);
        for (age, m) in [
            (23, "No"),
            (25, "Yes"),
            (25, "No"),
            (34, "Yes"),
            (38, "Yes"),
        ] {
            t.push_row(&[Value::Int(age), Value::from(m)]).unwrap();
        }
        t
    }

    #[test]
    fn quantitative_stats() {
        let t = table();
        let s = ColumnStats::compute(&t, AttributeId(0)).unwrap();
        match &s {
            ColumnStats::Quantitative {
                min,
                max,
                mean,
                distinct,
                value_counts,
            } => {
                assert_eq!(*min, 23.0);
                assert_eq!(*max, 38.0);
                assert!((mean - 29.0).abs() < 1e-12);
                assert_eq!(*distinct, 4);
                assert_eq!(value_counts[1], (25.0, 2));
            }
            _ => panic!("expected quantitative stats"),
        }
        assert_eq!(s.max_count(), 2);
    }

    #[test]
    fn categorical_stats_sorted() {
        let t = table();
        let s = ColumnStats::compute(&t, AttributeId(1)).unwrap();
        match &s {
            ColumnStats::Categorical {
                distinct,
                value_counts,
            } => {
                assert_eq!(*distinct, 2);
                assert_eq!(value_counts[0], ("No".into(), 2));
                assert_eq!(value_counts[1], ("Yes".into(), 3));
            }
            _ => panic!("expected categorical stats"),
        }
        assert_eq!(s.max_count(), 3);
    }

    #[test]
    fn empty_table_rejected() {
        let schema = Schema::builder().quantitative("x").build().unwrap();
        let t = Table::new(schema);
        assert_eq!(
            ColumnStats::compute(&t, AttributeId(0)).unwrap_err(),
            TableError::EmptyTable
        );
    }
}
