//! A dependency-free CSV reader/writer for relational tables.
//!
//! Supports the common subset of RFC 4180: comma separation, `"`-quoting
//! with doubled-quote escapes, and embedded commas/newlines inside quoted
//! fields. The first line must be a header whose names match the schema.

use std::io::{BufRead, Write};

use crate::error::TableError;
use crate::schema::{AttributeKind, Schema};
use crate::table::Table;
use crate::value::Value;

/// Split one logical CSV record that has already been assembled into
/// `line` (quoted newlines resolved by the caller).
fn split_record(line: &str, line_no: usize) -> Result<Vec<String>, TableError> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        match (in_quotes, c) {
            (false, ',') => fields.push(std::mem::take(&mut field)),
            (false, '"') => {
                if !field.is_empty() {
                    return Err(TableError::Csv {
                        line: line_no,
                        message: "quote in the middle of an unquoted field".into(),
                    });
                }
                in_quotes = true;
            }
            (false, c) => field.push(c),
            (true, '"') => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    field.push('"');
                } else {
                    in_quotes = false;
                    match chars.peek() {
                        None | Some(',') => {}
                        Some(_) => {
                            return Err(TableError::Csv {
                                line: line_no,
                                message: "text after closing quote".into(),
                            })
                        }
                    }
                }
            }
            (true, c) => field.push(c),
        }
    }
    if in_quotes {
        return Err(TableError::Csv {
            line: line_no,
            message: "unterminated quoted field".into(),
        });
    }
    fields.push(field);
    Ok(fields)
}

/// Read the next logical record (which may span physical lines when quoted
/// fields contain newlines). Returns `None` at end of input.
fn read_record<R: BufRead>(
    reader: &mut R,
    line_no: &mut usize,
) -> Result<Option<(Vec<String>, usize)>, TableError> {
    // Outer loop skips blank lines between records without recursing.
    loop {
        let mut buf = String::new();
        loop {
            let n = reader.read_line(&mut buf)?;
            if n == 0 {
                if buf.is_empty() {
                    return Ok(None);
                }
                break;
            }
            *line_no += 1;
            // A record is complete when quotes balance.
            let quotes = buf.chars().filter(|&c| c == '"').count();
            if quotes % 2 == 0 {
                break;
            }
        }
        let start = *line_no;
        while buf.ends_with('\n') || buf.ends_with('\r') {
            buf.pop();
        }
        if buf.is_empty() {
            continue;
        }
        let fields = split_record(&buf, start)?;
        return Ok(Some((fields, start)));
    }
}

/// Read a whole table from CSV. The header is matched *by name* against the
/// schema (any column order), and each cell is parsed per the attribute's
/// kind: quantitative cells must parse as numbers, categorical cells are
/// taken verbatim.
///
/// ```
/// use qar_table::{csv, Schema, Value};
///
/// let schema = Schema::builder()
///     .quantitative("age").categorical("married").build().unwrap();
/// let data = "married,age\nNo,23\nYes,38\n";
/// let table = csv::read_table(data.as_bytes(), &schema).unwrap();
/// assert_eq!(table.num_rows(), 2);
/// assert_eq!(table.row(0).value(0), Value::Int(23));
/// ```
pub fn read_table<R: BufRead>(reader: R, schema: &Schema) -> Result<Table, TableError> {
    let mut chunks = CsvChunks::new(reader, schema.clone(), usize::MAX)?;
    match chunks.next_chunk()? {
        Some(table) => Ok(table),
        None => Ok(Table::new(schema.clone())),
    }
}

/// Streaming CSV reader that yields the table in fixed-size row blocks —
/// the ingest half of the out-of-core path. The header is parsed once at
/// construction (same by-name matching as [`read_table`]); each
/// [`CsvChunks::next_chunk`] call then reads up to `chunk_rows` logical
/// records into its own [`Table`]. Record assembly reuses the same
/// quote-balancing reader as the whole-table path, so a quoted field
/// spanning a block boundary stays one record.
pub struct CsvChunks<R: BufRead> {
    reader: R,
    schema: Schema,
    /// CSV column position -> schema attribute.
    order: Vec<crate::schema::AttributeId>,
    line_no: usize,
    chunk_rows: usize,
}

impl<R: BufRead> CsvChunks<R> {
    /// Parse the header and prepare to stream blocks of at most
    /// `chunk_rows` records. Fails on an empty input (no header), a
    /// header/schema column-count mismatch, or an unknown header name.
    pub fn new(mut reader: R, schema: Schema, chunk_rows: usize) -> Result<Self, TableError> {
        assert!(chunk_rows >= 1, "chunk_rows must be at least 1");
        let mut line_no = 0usize;
        let (header, header_line) =
            read_record(&mut reader, &mut line_no)?.ok_or(TableError::Csv {
                line: 1,
                message: "empty input (no header)".into(),
            })?;
        if header.len() != schema.len() {
            return Err(TableError::Csv {
                line: header_line,
                message: format!(
                    "header has {} columns but schema has {}",
                    header.len(),
                    schema.len()
                ),
            });
        }
        let mut order = Vec::with_capacity(header.len());
        for name in &header {
            order.push(schema.id_of(name.trim()).map_err(|_| TableError::Csv {
                line: header_line,
                message: format!("header column `{name}` is not in the schema"),
            })?);
        }
        Ok(CsvChunks {
            reader,
            schema,
            order,
            line_no,
            chunk_rows,
        })
    }

    /// Read the next block of up to `chunk_rows` records. Returns
    /// `Ok(None)` at end of input — never an empty table, so a row count
    /// that divides evenly by the chunk size produces no empty trailing
    /// chunk.
    pub fn next_chunk(&mut self) -> Result<Option<Table>, TableError> {
        let mut table = Table::new(self.schema.clone());
        let mut cells: Vec<Value> = vec![Value::Int(0); self.schema.len()];
        while table.num_rows() < self.chunk_rows {
            let Some((fields, line)) = read_record(&mut self.reader, &mut self.line_no)? else {
                break;
            };
            if fields.len() != self.schema.len() {
                return Err(TableError::Csv {
                    line,
                    message: format!(
                        "record has {} fields but schema has {}",
                        fields.len(),
                        self.schema.len()
                    ),
                });
            }
            for (pos, raw) in fields.iter().enumerate() {
                let id = self.order[pos];
                let def = self.schema.attribute(id);
                cells[id.index()] = match def.kind() {
                    AttributeKind::Categorical => Value::Cat(raw.clone()),
                    AttributeKind::Quantitative => {
                        let token = raw.trim();
                        if let Ok(i) = token.parse::<i64>() {
                            Value::Int(i)
                        } else if let Ok(x) = token.parse::<f64>() {
                            if !x.is_finite() {
                                return Err(TableError::BadNumber {
                                    line,
                                    token: raw.clone(),
                                });
                            }
                            Value::Float(x)
                        } else {
                            return Err(TableError::BadNumber {
                                line,
                                token: raw.clone(),
                            });
                        }
                    }
                };
            }
            table.push_row(&cells)?;
        }
        if table.num_rows() == 0 {
            return Ok(None);
        }
        Ok(Some(table))
    }
}

fn escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') || field.contains('\r') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

/// Write a table as CSV (header + one line per record, schema order).
pub fn write_table<W: Write>(writer: &mut W, table: &Table) -> Result<(), TableError> {
    let header: Vec<String> = table
        .schema()
        .attributes()
        .iter()
        .map(|a| escape(a.name()))
        .collect();
    writeln!(writer, "{}", header.join(","))?;
    for row in table.rows() {
        let line: Vec<String> = (0..table.num_columns())
            .map(|c| escape(&row.value(c).to_string()))
            .collect();
        writeln!(writer, "{}", line.join(","))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::builder()
            .quantitative("age")
            .categorical("married")
            .quantitative("num_cars")
            .build()
            .unwrap()
    }

    #[test]
    fn roundtrip() {
        let s = schema();
        let input = "age,married,num_cars\n23,No,1\n38,Yes,2\n";
        let t = read_table(input.as_bytes(), &s).unwrap();
        let mut out = Vec::new();
        write_table(&mut out, &t).unwrap();
        assert_eq!(String::from_utf8(out).unwrap(), input);
    }

    #[test]
    fn header_reordering() {
        let s = schema();
        let input = "num_cars,age,married\n1,23,No\n";
        let t = read_table(input.as_bytes(), &s).unwrap();
        assert_eq!(t.row(0).value(0), Value::Int(23));
        assert_eq!(t.row(0).value(2), Value::Int(1));
    }

    #[test]
    fn quoted_fields_with_commas_and_quotes() {
        let s = Schema::builder().categorical("note").build().unwrap();
        let input = "note\n\"hello, \"\"world\"\"\"\n";
        let t = read_table(input.as_bytes(), &s).unwrap();
        assert_eq!(t.row(0).value(0), Value::Cat("hello, \"world\"".into()));
    }

    #[test]
    fn quoted_newline_spans_lines() {
        let s = Schema::builder()
            .categorical("note")
            .categorical("tag")
            .build()
            .unwrap();
        let input = "note,tag\n\"two\nlines\",x\n";
        let t = read_table(input.as_bytes(), &s).unwrap();
        assert_eq!(t.row(0).value(0), Value::Cat("two\nlines".into()));
    }

    #[test]
    fn floats_and_ints_parse() {
        let s = Schema::builder().quantitative("income").build().unwrap();
        let t = read_table("income\n1500\n1500.5\n".as_bytes(), &s).unwrap();
        assert_eq!(t.row(0).value(0), Value::Float(1500.0));
        assert_eq!(t.row(1).value(0), Value::Float(1500.5));
    }

    #[test]
    fn bad_number_reports_line() {
        let s = Schema::builder().quantitative("income").build().unwrap();
        let err = read_table("income\n15k\n".as_bytes(), &s).unwrap_err();
        assert_eq!(
            err,
            TableError::BadNumber {
                line: 2,
                token: "15k".into()
            }
        );
    }

    #[test]
    fn non_finite_tokens_rejected() {
        let s = Schema::builder().quantitative("income").build().unwrap();
        for bad in ["NaN", "inf", "-inf", "infinity"] {
            let input = format!("income\n{bad}\n");
            let err = read_table(input.as_bytes(), &s).unwrap_err();
            assert!(
                matches!(err, TableError::BadNumber { line: 2, .. }),
                "{bad}"
            );
        }
    }

    #[test]
    fn wrong_field_count_reports_line() {
        let s = schema();
        let err = read_table("age,married,num_cars\n23,No\n".as_bytes(), &s).unwrap_err();
        assert!(matches!(err, TableError::Csv { line: 2, .. }));
    }

    #[test]
    fn unknown_header_rejected() {
        let s = schema();
        let err = read_table("age,married,pets\n".as_bytes(), &s).unwrap_err();
        assert!(matches!(err, TableError::Csv { line: 1, .. }));
    }

    #[test]
    fn empty_input_rejected() {
        let s = schema();
        let err = read_table("".as_bytes(), &s).unwrap_err();
        assert!(matches!(err, TableError::Csv { line: 1, .. }));
    }

    #[test]
    fn blank_lines_skipped() {
        let s = Schema::builder().quantitative("x").build().unwrap();
        let t = read_table("x\n\n1\n\n2\n".as_bytes(), &s).unwrap();
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn unterminated_quote_rejected() {
        let s = Schema::builder().categorical("c").build().unwrap();
        let err = read_table("c\n\"oops\n".as_bytes(), &s).unwrap_err();
        assert!(matches!(err, TableError::Csv { .. }));
    }

    #[test]
    fn stray_quote_rejected() {
        let s = Schema::builder().categorical("c").build().unwrap();
        let err = read_table("c\nab\"cd\n".as_bytes(), &s).unwrap_err();
        assert!(matches!(err, TableError::Csv { .. }));
    }

    /// Collect every chunk of `input` at the given block size.
    fn chunks_of(input: &str, schema: &Schema, rows: usize) -> Vec<Table> {
        let mut reader = CsvChunks::new(input.as_bytes(), schema.clone(), rows).unwrap();
        let mut out = Vec::new();
        while let Some(chunk) = reader.next_chunk().unwrap() {
            out.push(chunk);
        }
        out
    }

    #[test]
    fn chunked_reader_matches_whole_table_read() {
        let s = schema();
        let input = "age,married,num_cars\n23,No,1\n25,Yes,1\n29,No,0\n34,Yes,2\n38,Yes,2\n";
        let whole = read_table(input.as_bytes(), &s).unwrap();
        for rows in [1, 2, 3, 5, 100] {
            let chunks = chunks_of(input, &s, rows);
            let total: usize = chunks.iter().map(Table::num_rows).sum();
            assert_eq!(total, whole.num_rows(), "chunk_rows={rows}");
            let mut row = 0;
            for chunk in &chunks {
                for r in 0..chunk.num_rows() {
                    for c in 0..chunk.num_columns() {
                        assert_eq!(chunk.row(r).value(c), whole.row(row).value(c));
                    }
                    row += 1;
                }
            }
        }
    }

    #[test]
    fn chunked_reader_crlf_only_file() {
        let s = Schema::builder().quantitative("x").build().unwrap();
        let input = "x\r\n1\r\n2\r\n3\r\n";
        let chunks = chunks_of(input, &s, 2);
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0].num_rows(), 2);
        assert_eq!(chunks[1].num_rows(), 1);
        assert_eq!(chunks[1].row(0).value(0), Value::Int(3));
    }

    #[test]
    fn chunked_reader_final_record_without_trailing_newline() {
        let s = Schema::builder().quantitative("x").build().unwrap();
        let chunks = chunks_of("x\n1\n2\n3", &s, 2);
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[1].num_rows(), 1);
        assert_eq!(chunks[1].row(0).value(0), Value::Int(3));
    }

    #[test]
    fn chunked_reader_quoted_field_spans_block_boundary() {
        // The second record's quoted field contains a newline; with
        // chunk_rows=1 the record straddles what a byte-block reader would
        // call a boundary. Logical-record assembly must keep it whole.
        let s = Schema::builder()
            .categorical("note")
            .categorical("tag")
            .build()
            .unwrap();
        let input = "note,tag\nplain,a\n\"two\nlines, with comma\",b\nlast,c\n";
        let chunks = chunks_of(input, &s, 1);
        assert_eq!(chunks.len(), 3);
        assert_eq!(
            chunks[1].row(0).value(0),
            Value::Cat("two\nlines, with comma".into())
        );
        assert_eq!(chunks[1].row(0).value(1), Value::Cat("b".into()));
    }

    #[test]
    fn chunked_reader_no_empty_trailing_chunk() {
        // 4 records at chunk_rows=2: exactly two chunks, and the next call
        // reports end of input rather than an empty table.
        let s = Schema::builder().quantitative("x").build().unwrap();
        let mut reader = CsvChunks::new("x\n1\n2\n3\n4\n".as_bytes(), s, 2).unwrap();
        assert_eq!(reader.next_chunk().unwrap().unwrap().num_rows(), 2);
        assert_eq!(reader.next_chunk().unwrap().unwrap().num_rows(), 2);
        assert!(reader.next_chunk().unwrap().is_none());
        assert!(reader.next_chunk().unwrap().is_none());
    }

    #[test]
    fn chunked_reader_header_only_input() {
        let s = Schema::builder().quantitative("x").build().unwrap();
        let mut reader = CsvChunks::new("x\n".as_bytes(), s, 8).unwrap();
        assert!(reader.next_chunk().unwrap().is_none());
    }

    #[test]
    fn chunked_reader_blank_lines_between_blocks() {
        let s = Schema::builder().quantitative("x").build().unwrap();
        let chunks = chunks_of("x\n1\n\n\n2\n\n3\n", &s, 2);
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0].num_rows(), 2);
        assert_eq!(chunks[1].num_rows(), 1);
    }
}
