//! # qar-table — relational table substrate
//!
//! The paper ("Mining Quantitative Association Rules in Large Relational
//! Tables", Srikant & Agrawal, SIGMOD 1996) operates on relational tables
//! whose non-key attributes are either *categorical* (e.g. marital status)
//! or *quantitative* (e.g. age, income). This crate provides everything the
//! miner needs from the storage layer:
//!
//! * [`Schema`] / [`AttributeDef`] — typed attribute declarations,
//! * [`Value`] — a dynamically typed cell value,
//! * [`Table`] — column-oriented record storage with row views,
//! * [`csv`] — a dependency-free CSV reader/writer,
//! * [`encode`] — Step 2 of the paper's problem decomposition: mapping
//!   categorical values and quantitative values/intervals to consecutive
//!   integers so that "the algorithm only sees values (or ranges over
//!   values)",
//! * [`stats`] — per-column summaries used by the partitioner.
//!
//! Everything is deterministic: dictionaries and distinct-value tables are
//! sorted, so the same input table always encodes identically.

#![warn(missing_docs)]

pub mod chunk;
pub mod csv;
pub mod encode;
pub mod error;
pub mod schema;
pub mod stats;
pub mod table;
pub mod taxonomy;
pub mod value;

pub use chunk::{ChunkStore, TableSummary};
pub use encode::{AttributeEncoder, EncodedTable};
pub use error::TableError;
pub use schema::{AttributeDef, AttributeId, AttributeKind, Schema, SchemaBuilder};
pub use stats::ColumnStats;
pub use table::{Column, RowView, Table};
pub use taxonomy::Taxonomy;
pub use value::Value;
