//! Step 2 of the paper's problem decomposition: mapping attribute values to
//! consecutive integers.
//!
//! > "For categorical attributes, the values of the attribute are mapped to
//! > a set of consecutive integers. For quantitative attributes that are not
//! > partitioned into intervals, the values are mapped to consecutive
//! > integers such that the order of the values is preserved. If a
//! > quantitative attribute is partitioned into intervals, the intervals are
//! > mapped to consecutive integers, such that the order of the intervals is
//! > preserved."
//!
//! After encoding, the miner sees only `u32` codes per attribute; whether a
//! code denotes a raw value or an interval is transparent to it. The
//! [`AttributeEncoder`] remembers enough to decode codes (and code ranges)
//! back to human-readable form for rule output.

use crate::error::TableError;
use crate::schema::{AttributeId, AttributeKind, Schema};
use crate::table::{Column, Table};
use crate::value::Value;

/// Inclusive display bounds of one encoded interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntervalSpec {
    /// Smallest value the interval covers (observed or cut bound).
    pub lo: f64,
    /// Largest value the interval covers (observed or cut bound).
    pub hi: f64,
}

/// Per-attribute mapping between raw values and consecutive integer codes.
#[derive(Debug, Clone, PartialEq)]
pub enum AttributeEncoder {
    /// Categorical attribute: sorted distinct labels; code = index.
    Categorical {
        /// Sorted distinct labels.
        labels: Vec<String>,
    },
    /// Quantitative attribute kept at full resolution: sorted distinct
    /// values; code = rank.
    QuantValues {
        /// Sorted distinct values.
        values: Vec<f64>,
        /// True if every value is a whole number (affects display).
        integral: bool,
    },
    /// Quantitative attribute partitioned into intervals at the given cut
    /// points; code = interval index.
    QuantIntervals {
        /// `cuts[i]` separates interval `i` from interval `i+1`; a value `v`
        /// belongs to interval `partition_point(cuts, c <= v)`.
        cuts: Vec<f64>,
        /// Display bounds per interval.
        display: Vec<IntervalSpec>,
        /// True if the underlying data is all whole numbers.
        integral: bool,
    },
    /// Categorical attribute with an is-a taxonomy: labels in DFS leaf
    /// order so every taxonomy node is a contiguous code interval
    /// (`groups`). Generalized items over this attribute are plain range
    /// items.
    CategoricalTaxonomy {
        /// Labels in taxonomy DFS order (NOT sorted).
        labels: Vec<String>,
        /// Label positions sorted lexicographically, for O(log n) encoding.
        sorted_index: Vec<u32>,
        /// Interior taxonomy nodes as `(name, lo, hi)` code intervals.
        groups: Vec<(String, u32, u32)>,
    },
}

impl AttributeEncoder {
    /// Build a categorical encoder from a column (sorted distinct labels).
    pub fn categorical_from(data: &[String]) -> Self {
        let mut labels: Vec<String> = data.to_vec();
        labels.sort();
        labels.dedup();
        AttributeEncoder::Categorical { labels }
    }

    /// Build a full-resolution quantitative encoder from a column.
    pub fn quant_values_from(data: &[f64], integral: bool) -> Self {
        let mut values = data.to_vec();
        values.sort_by(f64::total_cmp);
        values.dedup();
        AttributeEncoder::QuantValues { values, integral }
    }

    /// Build an interval encoder from cut points. Display bounds are the
    /// observed per-interval min/max of `data`; empty intervals fall back to
    /// the cut bounds.
    ///
    /// `cuts` must be strictly increasing; `k = cuts.len() + 1` intervals
    /// result.
    pub fn quant_intervals_from(data: &[f64], cuts: Vec<f64>, integral: bool) -> Self {
        debug_assert!(
            cuts.windows(2).all(|w| w[0] < w[1]),
            "cut points must be strictly increasing"
        );
        let k = cuts.len() + 1;
        let global_min = data.iter().copied().fold(f64::INFINITY, f64::min);
        let global_max = data.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut display: Vec<IntervalSpec> = (0..k)
            .map(|i| {
                let lo = if i == 0 { global_min } else { cuts[i - 1] };
                let hi = if i == k - 1 { global_max } else { cuts[i] };
                IntervalSpec { lo, hi }
            })
            .collect();
        // Tighten to observed values so rule output reads like the paper's
        // "Age: 20..29" rather than "Age: 19.5..29.5".
        let mut seen = vec![false; k];
        for &v in data {
            let idx = cuts.partition_point(|&c| c <= v);
            if !seen[idx] {
                display[idx] = IntervalSpec { lo: v, hi: v };
                seen[idx] = true;
            } else {
                display[idx].lo = display[idx].lo.min(v);
                display[idx].hi = display[idx].hi.max(v);
            }
        }
        AttributeEncoder::QuantIntervals {
            cuts,
            display,
            integral,
        }
    }

    /// Build a taxonomy-ordered categorical encoder from a column and its
    /// taxonomy (Step 1/2 for categorical attributes with an is-a
    /// hierarchy). Labels are numbered in taxonomy DFS order so every
    /// interior node covers a contiguous code interval, returned as
    /// `groups`.
    pub fn categorical_with_taxonomy(
        data: &[String],
        taxonomy: &crate::taxonomy::Taxonomy,
    ) -> Result<Self, TableError> {
        let observed: std::collections::BTreeSet<String> = data.iter().cloned().collect();
        let (labels, groups) = taxonomy.plan(&observed)?;
        let mut sorted_index: Vec<u32> = (0..labels.len() as u32).collect();
        sorted_index.sort_by(|&a, &b| labels[a as usize].cmp(&labels[b as usize]));
        Ok(AttributeEncoder::CategoricalTaxonomy {
            labels,
            sorted_index,
            groups,
        })
    }

    /// Number of distinct codes this encoder produces (codes are
    /// `0..cardinality`).
    pub fn cardinality(&self) -> u32 {
        match self {
            AttributeEncoder::Categorical { labels } => labels.len() as u32,
            AttributeEncoder::QuantValues { values, .. } => values.len() as u32,
            AttributeEncoder::QuantIntervals { cuts, .. } => cuts.len() as u32 + 1,
            AttributeEncoder::CategoricalTaxonomy { labels, .. } => labels.len() as u32,
        }
    }

    /// True for the two quantitative variants.
    pub fn is_quantitative(&self) -> bool {
        !matches!(
            self,
            AttributeEncoder::Categorical { .. } | AttributeEncoder::CategoricalTaxonomy { .. }
        )
    }

    /// The interior taxonomy nodes of a [`AttributeEncoder::CategoricalTaxonomy`]
    /// encoder as `(name, lo, hi)` code spans; empty for other variants.
    pub fn taxonomy_groups(&self) -> &[(String, u32, u32)] {
        match self {
            AttributeEncoder::CategoricalTaxonomy { groups, .. } => groups,
            _ => &[],
        }
    }

    /// Encode one value. Quantitative interval encoders accept any number
    /// (values beyond the data range land in the first/last interval);
    /// full-resolution and categorical encoders reject values they have
    /// never seen.
    pub fn encode(&self, attribute: &str, value: &Value) -> Result<u32, TableError> {
        let unencodable = || TableError::UnencodableValue {
            attribute: attribute.to_owned(),
            value: value.to_string(),
        };
        match self {
            AttributeEncoder::Categorical { labels } => {
                let s = value.as_cat().ok_or_else(unencodable)?;
                labels
                    .binary_search_by(|l| l.as_str().cmp(s))
                    .map(|i| i as u32)
                    .map_err(|_| unencodable())
            }
            AttributeEncoder::QuantValues { values, .. } => {
                let v = value.as_f64().ok_or_else(unencodable)?;
                values
                    .binary_search_by(|x| x.total_cmp(&v))
                    .map(|i| i as u32)
                    .map_err(|_| unencodable())
            }
            AttributeEncoder::QuantIntervals { cuts, .. } => {
                let v = value.as_f64().ok_or_else(unencodable)?;
                Ok(cuts.partition_point(|&c| c <= v) as u32)
            }
            AttributeEncoder::CategoricalTaxonomy {
                labels,
                sorted_index,
                ..
            } => {
                let s = value.as_cat().ok_or_else(unencodable)?;
                sorted_index
                    .binary_search_by(|&i| labels[i as usize].as_str().cmp(s))
                    .map(|pos| sorted_index[pos])
                    .map_err(|_| unencodable())
            }
        }
    }

    fn fmt_num(x: f64, integral: bool) -> String {
        if integral {
            format!("{}", x as i64)
        } else {
            format!("{x}")
        }
    }

    /// Human-readable form of the code range `[lo..hi]` (inclusive), e.g.
    /// `"20..29"` for an interval range, `"Yes"` for a categorical code.
    pub fn describe_range(&self, lo: u32, hi: u32) -> String {
        debug_assert!(lo <= hi);
        match self {
            AttributeEncoder::Categorical { labels } => {
                debug_assert_eq!(lo, hi, "categorical values are never combined");
                labels[lo as usize].clone()
            }
            AttributeEncoder::QuantValues { values, integral } => {
                let a = Self::fmt_num(values[lo as usize], *integral);
                if lo == hi {
                    a
                } else {
                    let b = Self::fmt_num(values[hi as usize], *integral);
                    format!("{a}..{b}")
                }
            }
            AttributeEncoder::QuantIntervals {
                display, integral, ..
            } => {
                let a = Self::fmt_num(display[lo as usize].lo, *integral);
                let b = Self::fmt_num(display[hi as usize].hi, *integral);
                if a == b {
                    a
                } else {
                    format!("{a}..{b}")
                }
            }
            AttributeEncoder::CategoricalTaxonomy { labels, groups, .. } => {
                if lo == hi {
                    return labels[lo as usize].clone();
                }
                // An exact interior node renders by name; other ranges
                // (e.g. interest-measure differences) list their span.
                match groups
                    .iter()
                    .find(|&&(_, g_lo, g_hi)| g_lo == lo && g_hi == hi)
                {
                    Some((name, _, _)) => name.clone(),
                    None => format!("{}..{}", labels[lo as usize], labels[hi as usize]),
                }
            }
        }
    }

    /// The numeric bounds a code range decodes to, if quantitative.
    pub fn numeric_bounds(&self, lo: u32, hi: u32) -> Option<(f64, f64)> {
        match self {
            AttributeEncoder::Categorical { .. } => None,
            AttributeEncoder::QuantValues { values, .. } => {
                Some((values[lo as usize], values[hi as usize]))
            }
            AttributeEncoder::QuantIntervals { display, .. } => {
                Some((display[lo as usize].lo, display[hi as usize].hi))
            }
            AttributeEncoder::CategoricalTaxonomy { .. } => None,
        }
    }
}

/// A table after Step 2: one `u32` code column per attribute.
///
/// This is the representation all mining passes run over. Column codes are
/// dense in `0..cardinality(attr)`.
#[derive(Debug, Clone)]
pub struct EncodedTable {
    schema: Schema,
    encoders: Vec<AttributeEncoder>,
    columns: Vec<Vec<u32>>,
    num_rows: usize,
}

impl EncodedTable {
    /// Encode `table` using one encoder per attribute (schema order).
    pub fn encode(table: &Table, encoders: Vec<AttributeEncoder>) -> Result<Self, TableError> {
        assert_eq!(
            encoders.len(),
            table.schema().len(),
            "one encoder per attribute required"
        );
        let schema = table.schema().clone();
        let mut columns: Vec<Vec<u32>> = Vec::with_capacity(encoders.len());
        for (idx, encoder) in encoders.iter().enumerate() {
            let id = AttributeId(idx);
            let name = schema.attribute(id).name();
            let mut codes = Vec::with_capacity(table.num_rows());
            match (table.column(id), encoder) {
                (Column::Quantitative { data, .. }, enc) if enc.is_quantitative() => {
                    for &v in data {
                        codes.push(enc.encode(name, &Value::Float(v))?);
                    }
                }
                (Column::Categorical { data }, AttributeEncoder::Categorical { labels }) => {
                    for s in data {
                        let code = labels
                            .binary_search_by(|l| l.as_str().cmp(s))
                            .map(|i| i as u32)
                            .map_err(|_| TableError::UnencodableValue {
                                attribute: name.to_owned(),
                                value: s.clone(),
                            })?;
                        codes.push(code);
                    }
                }
                (
                    Column::Categorical { data },
                    enc @ AttributeEncoder::CategoricalTaxonomy { .. },
                ) => {
                    for s in data {
                        codes.push(enc.encode(name, &Value::Cat(s.clone()))?);
                    }
                }
                _ => {
                    return Err(TableError::TypeMismatch {
                        attribute: name.to_owned(),
                        expected: schema.attribute(id).kind().name(),
                        got: "mismatched encoder".to_owned(),
                    })
                }
            }
            columns.push(codes);
        }
        Ok(EncodedTable {
            schema,
            encoders,
            columns,
            num_rows: table.num_rows(),
        })
    }

    /// Encode without any partitioning: categorical dictionaries and
    /// full-resolution value ranks (what the paper does when an attribute
    /// has few values).
    pub fn encode_full_resolution(table: &Table) -> Result<Self, TableError> {
        let encoders = table
            .schema()
            .iter()
            .map(|(id, def)| match (def.kind(), table.column(id)) {
                (AttributeKind::Categorical, Column::Categorical { data }) => {
                    AttributeEncoder::categorical_from(data)
                }
                (AttributeKind::Quantitative, Column::Quantitative { data, integral }) => {
                    AttributeEncoder::quant_values_from(data, *integral)
                }
                _ => unreachable!("columns always match their schema kind"),
            })
            .collect();
        Self::encode(table, encoders)
    }

    /// Assemble an encoded table from already-encoded code columns.
    ///
    /// This is the loading path for spilled chunk files
    /// ([`crate::chunk::ChunkStore`]) and for worker row partitions
    /// received over the wire: the codes were produced by these exact
    /// encoders elsewhere, so re-encoding would be wasted work. Panics if
    /// the shapes disagree (one column per attribute, every column
    /// `num_rows` long, every code below its encoder's cardinality is NOT
    /// checked here — callers validating untrusted input must check codes
    /// themselves).
    pub fn from_parts(
        schema: Schema,
        encoders: Vec<AttributeEncoder>,
        columns: Vec<Vec<u32>>,
        num_rows: usize,
    ) -> Self {
        assert_eq!(encoders.len(), schema.len(), "one encoder per attribute");
        assert_eq!(columns.len(), schema.len(), "one column per attribute");
        for (i, col) in columns.iter().enumerate() {
            assert_eq!(col.len(), num_rows, "column {i} length != num_rows");
        }
        EncodedTable {
            schema,
            encoders,
            columns,
            num_rows,
        }
    }

    /// A decode-only view: schema and encoders with no code columns.
    ///
    /// Used where rules must be rendered (attribute names, range labels)
    /// but the row data lives elsewhere — on chunk files, on remote
    /// workers. `num_rows` reports the true row count of the backing data;
    /// [`EncodedTable::codes`] returns empty slices, so this must never be
    /// handed to a scan.
    pub fn header_only(schema: Schema, encoders: Vec<AttributeEncoder>, num_rows: usize) -> Self {
        assert_eq!(encoders.len(), schema.len(), "one encoder per attribute");
        let columns = vec![Vec::new(); schema.len()];
        EncodedTable {
            schema,
            encoders,
            columns,
            num_rows,
        }
    }

    /// The schema shared with the source table.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of records.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Code column for `id`.
    pub fn codes(&self, id: AttributeId) -> &[u32] {
        &self.columns[id.index()]
    }

    /// The encoder for `id`.
    pub fn encoder(&self, id: AttributeId) -> &AttributeEncoder {
        &self.encoders[id.index()]
    }

    /// All encoders, schema order.
    pub fn encoders(&self) -> &[AttributeEncoder] {
        &self.encoders
    }

    /// Number of distinct codes of attribute `id`.
    pub fn cardinality(&self, id: AttributeId) -> u32 {
        self.encoders[id.index()].cardinality()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn people() -> Table {
        let schema = Schema::builder()
            .quantitative("age")
            .categorical("married")
            .quantitative("num_cars")
            .build()
            .unwrap();
        let mut t = Table::new(schema);
        for (age, married, cars) in [
            (23, "No", 1),
            (25, "Yes", 1),
            (29, "No", 0),
            (34, "Yes", 2),
            (38, "Yes", 2),
        ] {
            t.push_row(&[Value::Int(age), Value::from(married), Value::Int(cars)])
                .unwrap();
        }
        t
    }

    #[test]
    fn full_resolution_encoding_preserves_order() {
        let t = people();
        let e = EncodedTable::encode_full_resolution(&t).unwrap();
        // age distinct sorted: 23,25,29,34,38 -> codes 0..5 in row order.
        assert_eq!(e.codes(AttributeId(0)), &[0, 1, 2, 3, 4]);
        // married sorted: No=0, Yes=1.
        assert_eq!(e.codes(AttributeId(1)), &[0, 1, 0, 1, 1]);
        // num_cars sorted: 0,1,2 -> codes.
        assert_eq!(e.codes(AttributeId(2)), &[1, 1, 0, 2, 2]);
        assert_eq!(e.cardinality(AttributeId(0)), 5);
        assert_eq!(e.cardinality(AttributeId(1)), 2);
        assert_eq!(e.cardinality(AttributeId(2)), 3);
    }

    #[test]
    fn interval_encoding_matches_paper_figure_3() {
        // Figure 3b partitions Age into <20..24> <25..29> <30..34> <35..39>.
        let t = people();
        let ages = t.column(AttributeId(0)).as_quantitative().unwrap();
        let enc = AttributeEncoder::quant_intervals_from(ages, vec![25.0, 30.0, 35.0], true);
        assert_eq!(enc.cardinality(), 4);
        assert_eq!(enc.encode("age", &Value::Int(23)).unwrap(), 0);
        assert_eq!(enc.encode("age", &Value::Int(25)).unwrap(), 1);
        assert_eq!(enc.encode("age", &Value::Int(29)).unwrap(), 1);
        assert_eq!(enc.encode("age", &Value::Int(34)).unwrap(), 2);
        assert_eq!(enc.encode("age", &Value::Int(38)).unwrap(), 3);
        // Display uses observed bounds.
        assert_eq!(enc.describe_range(0, 1), "23..29");
        assert_eq!(enc.describe_range(2, 3), "34..38");
        assert_eq!(enc.describe_range(3, 3), "38");
    }

    #[test]
    fn categorical_round_trip_and_rejection() {
        let enc = AttributeEncoder::categorical_from(&["Yes".into(), "No".into(), "Yes".into()]);
        assert_eq!(enc.cardinality(), 2);
        assert_eq!(enc.encode("married", &Value::from("No")).unwrap(), 0);
        assert_eq!(enc.encode("married", &Value::from("Yes")).unwrap(), 1);
        assert_eq!(enc.describe_range(1, 1), "Yes");
        assert!(enc.encode("married", &Value::from("Maybe")).is_err());
        assert!(enc.encode("married", &Value::Int(1)).is_err());
    }

    #[test]
    fn quant_values_rejects_unseen() {
        let enc = AttributeEncoder::quant_values_from(&[1.0, 3.0, 2.0], true);
        assert_eq!(enc.encode("x", &Value::Int(2)).unwrap(), 1);
        assert!(enc.encode("x", &Value::Float(2.5)).is_err());
    }

    #[test]
    fn interval_out_of_range_clamps() {
        let enc =
            AttributeEncoder::quant_intervals_from(&[10.0, 20.0, 30.0], vec![15.0, 25.0], true);
        assert_eq!(enc.encode("x", &Value::Int(-100)).unwrap(), 0);
        assert_eq!(enc.encode("x", &Value::Int(999)).unwrap(), 2);
    }

    #[test]
    fn numeric_bounds_reported() {
        let enc =
            AttributeEncoder::quant_intervals_from(&[10.0, 20.0, 30.0], vec![15.0, 25.0], true);
        assert_eq!(enc.numeric_bounds(0, 1), Some((10.0, 20.0)));
        let cat = AttributeEncoder::categorical_from(&["a".into()]);
        assert_eq!(cat.numeric_bounds(0, 0), None);
    }

    #[test]
    fn float_display_keeps_decimals() {
        let enc = AttributeEncoder::quant_values_from(&[1.5, 2.5], false);
        assert_eq!(enc.describe_range(0, 1), "1.5..2.5");
    }

    #[test]
    fn mismatched_encoder_kind_rejected() {
        let t = people();
        let bad = vec![
            AttributeEncoder::categorical_from(&["x".into()]), // age is quantitative
            AttributeEncoder::categorical_from(&["No".into(), "Yes".into()]),
            AttributeEncoder::quant_values_from(&[0.0, 1.0, 2.0], true),
        ];
        assert!(EncodedTable::encode(&t, bad).is_err());
    }
}
