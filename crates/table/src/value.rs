//! Dynamically typed cell values.

use std::cmp::Ordering;
use std::fmt;

/// A single cell of a relational table.
///
/// Quantitative attributes hold [`Value::Int`] or [`Value::Float`];
/// categorical attributes hold [`Value::Cat`]. Boolean attributes from the
/// classic association-rule setting are just categorical attributes with two
/// values (Section 1 of the paper).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// An integer-valued quantitative cell (age, number of cars, ...).
    Int(i64),
    /// A real-valued quantitative cell (income, balance, ...).
    Float(f64),
    /// A categorical cell (zip code, make of car, ...).
    Cat(String),
}

impl Value {
    /// The numeric view of a quantitative value, or `None` for categorical
    /// values. Integers are widened to `f64` (exact below 2^53, far beyond
    /// the domains the paper considers).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            Value::Cat(_) => None,
        }
    }

    /// The categorical view of this value, or `None` for numbers.
    pub fn as_cat(&self) -> Option<&str> {
        match self {
            Value::Cat(s) => Some(s),
            _ => None,
        }
    }

    /// True if the value is numeric ([`Value::Int`] or [`Value::Float`]).
    pub fn is_quantitative(&self) -> bool {
        !matches!(self, Value::Cat(_))
    }

    /// A short name of the value's kind, used in error messages.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Cat(_) => "categorical",
        }
    }

    /// Total order over numeric values (NaN sorts last, mirroring
    /// `f64::total_cmp` semantics closely enough for finite data). Panics if
    /// either side is categorical; callers compare numbers only within a
    /// quantitative column.
    pub fn cmp_numeric(&self, other: &Value) -> Ordering {
        let a = self
            .as_f64()
            .expect("cmp_numeric called on a categorical value");
        let b = other
            .as_f64()
            .expect("cmp_numeric called on a categorical value");
        a.total_cmp(&b)
    }
}

impl fmt::Display for Value {
    /// Integers render without a decimal point, floats with the shortest
    /// round-trip form, categorical values verbatim.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Cat(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Cat(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Cat(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_views() {
        assert_eq!(Value::Int(23).as_f64(), Some(23.0));
        assert_eq!(Value::Float(1.5).as_f64(), Some(1.5));
        assert_eq!(Value::Cat("yes".into()).as_f64(), None);
    }

    #[test]
    fn categorical_views() {
        assert_eq!(Value::Cat("yes".into()).as_cat(), Some("yes"));
        assert_eq!(Value::Int(1).as_cat(), None);
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(0.5), Value::Float(0.5));
        assert_eq!(Value::from("a"), Value::Cat("a".into()));
        assert_eq!(Value::from(String::from("b")), Value::Cat("b".into()));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::Float(2.5).to_string(), "2.5");
        assert_eq!(Value::Cat("Married".into()).to_string(), "Married");
    }

    #[test]
    fn numeric_ordering_mixes_int_and_float() {
        assert_eq!(
            Value::Int(2).cmp_numeric(&Value::Float(2.5)),
            Ordering::Less
        );
        assert_eq!(
            Value::Float(3.0).cmp_numeric(&Value::Int(3)),
            Ordering::Equal
        );
    }

    #[test]
    #[should_panic(expected = "categorical")]
    fn numeric_ordering_rejects_categorical() {
        let _ = Value::Cat("x".into()).cmp_numeric(&Value::Int(1));
    }

    #[test]
    fn kind_names() {
        assert_eq!(Value::Int(1).kind_name(), "integer");
        assert_eq!(Value::Float(1.0).kind_name(), "float");
        assert_eq!(Value::Cat("c".into()).kind_name(), "categorical");
        assert!(Value::Int(1).is_quantitative());
        assert!(!Value::Cat("c".into()).is_quantitative());
    }
}
