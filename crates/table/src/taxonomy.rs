//! Is-a hierarchies (taxonomies) over categorical attribute values.
//!
//! The paper notes that categorical values are never combined "unless a
//! taxonomy (is-a hierarchy) is present on the attribute. In this case,
//! the taxonomy can be used to implicitly combine values of a categorical
//! attribute (see \[SA95\], \[HF95\]). Using a taxonomy in this manner is
//! somewhat similar to considering ranges over quantitative attributes."
//!
//! This module makes that similarity literal: leaves are numbered in DFS
//! order, so every interior node's leaf set is one *contiguous code
//! interval* — a generalized categorical item is then just a range item
//! `⟨attr, lo, hi⟩`, and the entire quantitative machinery (counting,
//! candidate generation, the interest measure's generalization lattice)
//! applies unchanged.

use std::collections::{BTreeMap, BTreeSet};

use crate::error::TableError;

/// A taxonomy node span: `(name, lo, hi)` over positions in a DFS leaf
/// order — the contiguous code interval an interior node covers.
pub type TaxonomySpan = (String, u32, u32);

/// An is-a forest over string labels.
///
/// Built from `(child, parent)` edges; leaves are the labels that never
/// appear as a parent. Labels observed in the data but absent from the
/// taxonomy become standalone leaves with no ancestors.
///
/// ```
/// use qar_table::Taxonomy;
///
/// let tax = Taxonomy::from_edges(&[
///     ("CA", "West"), ("WA", "West"),
///     ("NY", "East"), ("MA", "East"),
///     ("West", "USA"), ("East", "USA"),
/// ]).unwrap();
/// assert!(tax.is_ancestor("West", "CA"));
/// assert!(tax.is_ancestor("USA", "MA"));
/// assert!(!tax.is_ancestor("West", "NY"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Taxonomy {
    /// `parent[child] = parent` for every edge.
    parent: BTreeMap<String, String>,
    /// All labels, in insertion-independent (sorted) order.
    labels: BTreeSet<String>,
}

impl Taxonomy {
    /// Build from `(child, parent)` edges. Rejects labels with two parents
    /// (the encoding needs a forest, not a DAG) and parent cycles.
    pub fn from_edges<S: AsRef<str>>(edges: &[(S, S)]) -> Result<Self, TableError> {
        let mut parent: BTreeMap<String, String> = BTreeMap::new();
        let mut labels: BTreeSet<String> = BTreeSet::new();
        for (child, par) in edges {
            let child = child.as_ref().to_owned();
            let par = par.as_ref().to_owned();
            if child == par {
                return Err(TableError::Taxonomy(format!("`{child}` is its own parent")));
            }
            labels.insert(child.clone());
            labels.insert(par.clone());
            if let Some(existing) = parent.get(&child) {
                if *existing != par {
                    return Err(TableError::Taxonomy(format!(
                        "`{child}` has two parents: `{existing}` and `{par}`"
                    )));
                }
            }
            parent.insert(child, par);
        }
        // Cycle check: walk up from every label; depth is bounded by the
        // label count in an acyclic forest.
        let bound = labels.len();
        for label in &labels {
            let mut cur = label;
            let mut steps = 0;
            while let Some(p) = parent.get(cur) {
                cur = p;
                steps += 1;
                if steps > bound {
                    return Err(TableError::Taxonomy(format!("cycle through `{label}`")));
                }
            }
        }
        Ok(Taxonomy { parent, labels })
    }

    /// Is `ancestor` a strict ancestor of `label`?
    pub fn is_ancestor(&self, ancestor: &str, label: &str) -> bool {
        let mut cur = label;
        while let Some(p) = self.parent.get(cur) {
            if p == ancestor {
                return true;
            }
            cur = p;
        }
        false
    }

    /// All interior labels (those with at least one child).
    pub fn interior_labels(&self) -> BTreeSet<&str> {
        self.parent.values().map(|s| s.as_str()).collect()
    }

    /// Leaf labels of the taxonomy (never a parent), sorted.
    pub fn leaf_labels(&self) -> Vec<&str> {
        let interior = self.interior_labels();
        self.labels
            .iter()
            .map(|s| s.as_str())
            .filter(|l| !interior.contains(l))
            .collect()
    }

    fn children_of(&self) -> BTreeMap<&str, Vec<&str>> {
        let mut children: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        for (child, par) in &self.parent {
            children
                .entry(par.as_str())
                .or_default()
                .push(child.as_str());
        }
        children
    }

    /// Produce the DFS leaf order and the interior-node spans for the set
    /// of `observed` leaf labels (from the data).
    ///
    /// * Observed labels that are taxonomy leaves appear in DFS order;
    ///   observed labels unknown to the taxonomy are appended (sorted).
    /// * Each returned group is `(name, lo, hi)` over positions in the
    ///   returned leaf order — the contiguous code interval of an interior
    ///   node — restricted to groups covering at least one observed label
    ///   and more than one code (single-leaf groups are the leaf itself).
    /// * Observed labels that are *interior* taxonomy nodes are an error:
    ///   records must hold leaf values ("the algorithm only sees values").
    pub fn plan(
        &self,
        observed: &BTreeSet<String>,
    ) -> Result<(Vec<String>, Vec<TaxonomySpan>), TableError> {
        let interior = self.interior_labels();
        for label in observed {
            if interior.contains(label.as_str()) {
                return Err(TableError::Taxonomy(format!(
                    "records contain interior taxonomy label `{label}`; data must hold leaves"
                )));
            }
        }
        let children = self.children_of();
        // Roots: interior labels with no parent, plus taxonomy leaves with
        // no parent (isolated), in sorted order.
        let roots: Vec<&str> = self
            .labels
            .iter()
            .map(|s| s.as_str())
            .filter(|l| !self.parent.contains_key(*l))
            .collect();

        let mut order: Vec<String> = Vec::new();
        let mut groups: Vec<TaxonomySpan> = Vec::new();
        // Iterative DFS that records each interior node's leaf span.
        for root in roots {
            self.dfs(root, &children, observed, &mut order, &mut groups);
        }
        // Observed labels outside the taxonomy: standalone leaves.
        for label in observed {
            if !self.labels.contains(label) {
                order.push(label.clone());
            }
        }
        Ok((order, groups))
    }

    fn dfs(
        &self,
        node: &str,
        children: &BTreeMap<&str, Vec<&str>>,
        observed: &BTreeSet<String>,
        order: &mut Vec<String>,
        groups: &mut Vec<TaxonomySpan>,
    ) {
        match children.get(node) {
            None => {
                // Leaf: emit only if observed in the data (unobserved
                // leaves would waste codes with zero support).
                if observed.contains(node) {
                    order.push(node.to_owned());
                }
            }
            Some(kids) => {
                let lo = order.len() as u32;
                for kid in kids {
                    self.dfs(kid, children, observed, order, groups);
                }
                let hi = order.len() as u32;
                // Only spans covering >= 2 observed leaves add information.
                if hi >= lo + 2 {
                    groups.push((node.to_owned(), lo, hi - 1));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn states() -> Taxonomy {
        Taxonomy::from_edges(&[
            ("CA", "West"),
            ("WA", "West"),
            ("OR", "West"),
            ("NY", "East"),
            ("MA", "East"),
            ("West", "USA"),
            ("East", "USA"),
        ])
        .unwrap()
    }

    fn observed(labels: &[&str]) -> BTreeSet<String> {
        labels.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn ancestry() {
        let t = states();
        assert!(t.is_ancestor("West", "CA"));
        assert!(t.is_ancestor("USA", "CA"));
        assert!(t.is_ancestor("USA", "West"));
        assert!(!t.is_ancestor("East", "CA"));
        assert!(!t.is_ancestor("CA", "West"));
        assert_eq!(t.leaf_labels(), vec!["CA", "MA", "NY", "OR", "WA"]);
    }

    #[test]
    fn plan_produces_contiguous_spans() {
        let t = states();
        let (order, groups) = t.plan(&observed(&["CA", "WA", "OR", "NY", "MA"])).unwrap();
        // DFS from USA: East first (BTreeMap order), then West.
        assert_eq!(order, vec!["MA", "NY", "CA", "OR", "WA"]);
        // Groups: East = [0,1], West = [2,4], USA = [0,4].
        let find = |name: &str| groups.iter().find(|(n, _, _)| n == name).cloned();
        assert_eq!(find("East"), Some(("East".into(), 0, 1)));
        assert_eq!(find("West"), Some(("West".into(), 2, 4)));
        assert_eq!(find("USA"), Some(("USA".into(), 0, 4)));
    }

    #[test]
    fn unobserved_leaves_are_skipped_and_spans_shrink() {
        let t = states();
        let (order, groups) = t.plan(&observed(&["CA", "NY"])).unwrap();
        assert_eq!(order, vec!["NY", "CA"]);
        // Each region now covers one observed leaf -> no 2+ leaf groups
        // except USA.
        let names: Vec<&str> = groups.iter().map(|(n, _, _)| n.as_str()).collect();
        assert_eq!(names, vec!["USA"]);
        assert_eq!(groups[0].1, 0);
        assert_eq!(groups[0].2, 1);
    }

    #[test]
    fn foreign_labels_appended() {
        let t = states();
        let (order, _) = t.plan(&observed(&["CA", "TX", "AK"])).unwrap();
        assert_eq!(order, vec!["CA", "AK", "TX"]); // taxonomy leaves, then sorted extras
    }

    #[test]
    fn interior_label_in_data_rejected() {
        let t = states();
        let err = t.plan(&observed(&["CA", "West"])).unwrap_err();
        assert!(err.to_string().contains("interior"));
    }

    #[test]
    fn two_parents_rejected() {
        let err = Taxonomy::from_edges(&[("CA", "West"), ("CA", "Pacific")]).unwrap_err();
        assert!(err.to_string().contains("two parents"));
    }

    #[test]
    fn cycles_rejected() {
        let err = Taxonomy::from_edges(&[("a", "b"), ("b", "c"), ("c", "a")]).unwrap_err();
        assert!(err.to_string().contains("cycle"));
        let err = Taxonomy::from_edges(&[("a", "a")]).unwrap_err();
        assert!(err.to_string().contains("own parent"));
    }

    #[test]
    fn duplicate_identical_edges_ok() {
        let t = Taxonomy::from_edges(&[("CA", "West"), ("CA", "West")]).unwrap();
        assert!(t.is_ancestor("West", "CA"));
    }
}
