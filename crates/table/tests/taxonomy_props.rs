//! Property tests: `Taxonomy::plan` must produce a valid DFS numbering —
//! every label once, and the interior-node spans a laminar family that
//! agrees exactly with the ancestry relation.

use proptest::prelude::*;
use qar_table::Taxonomy;
use std::collections::BTreeSet;

/// Build a random forest over labels L0..Ln: each label's parent is a
/// lower-indexed label or none (guarantees acyclicity), then interior
/// nodes are excluded from the observed set.
fn forest_strategy() -> impl Strategy<Value = (Vec<(String, String)>, BTreeSet<String>)> {
    (3usize..30).prop_flat_map(|n| {
        prop::collection::vec(prop::option::of(0usize..n), n).prop_map(move |parents| {
            let label = |i: usize| format!("L{i}");
            let mut edges = Vec::new();
            for (i, p) in parents.iter().enumerate() {
                if let Some(p) = p {
                    if *p < i {
                        edges.push((label(i), label(*p)));
                    }
                }
            }
            let interior: BTreeSet<String> = edges.iter().map(|(_, p)| p.clone()).collect();
            let observed: BTreeSet<String> = (0..n)
                .map(label)
                .filter(|l| !interior.contains(l))
                .collect();
            (edges, observed)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn plan_invariants((edges, observed) in forest_strategy()) {
        prop_assume!(!edges.is_empty());
        let tax = Taxonomy::from_edges(&edges).expect("acyclic by construction");
        let (order, groups) = tax.plan(&observed).expect("observed are leaves");

        // 1. The order contains every observed label exactly once.
        let as_set: BTreeSet<&String> = order.iter().collect();
        prop_assert_eq!(order.len(), observed.len());
        prop_assert_eq!(as_set.len(), order.len());
        for l in &observed {
            prop_assert!(as_set.contains(l));
        }

        // 2. Spans are in range and cover >= 2 leaves.
        for (name, lo, hi) in &groups {
            prop_assert!(lo < hi, "{name}");
            prop_assert!((*hi as usize) < order.len());
        }

        // 3. Laminar family: any two spans are nested or disjoint.
        for a in &groups {
            for b in &groups {
                let (al, ah) = (a.1, a.2);
                let (bl, bh) = (b.1, b.2);
                let disjoint = ah < bl || bh < al;
                let nested = (al <= bl && bh <= ah) || (bl <= al && ah <= bh);
                prop_assert!(disjoint || nested, "{:?} vs {:?}", a, b);
            }
        }

        // 4. Spans agree exactly with ancestry: position i is inside the
        //    span of group g iff g is an ancestor of order[i].
        for (name, lo, hi) in &groups {
            for (i, leaf) in order.iter().enumerate() {
                let inside = (*lo as usize) <= i && i <= (*hi as usize);
                prop_assert_eq!(
                    inside,
                    tax.is_ancestor(name, leaf),
                    "group {} span [{}, {}] vs leaf {} at {}",
                    name, lo, hi, leaf, i
                );
            }
        }
    }
}
