//! Randomized property tests: `Taxonomy::plan` must produce a valid DFS
//! numbering — every label once, and the interior-node spans a laminar
//! family that agrees exactly with the ancestry relation.

use qar_prng::{cases, Prng};
use qar_table::Taxonomy;
use std::collections::BTreeSet;

/// Build a random forest over labels L0..Ln: each label's parent is a
/// lower-indexed label or none (guarantees acyclicity), then interior
/// nodes are excluded from the observed set.
fn random_forest(rng: &mut Prng) -> (Vec<(String, String)>, BTreeSet<String>) {
    let n = rng.gen_range(3..30usize);
    let label = |i: usize| format!("L{i}");
    let mut edges = Vec::new();
    for i in 1..n {
        // ~50% of labels get a lower-indexed parent.
        if rng.gen_bool(0.5) {
            let p = rng.gen_range(0..i);
            edges.push((label(i), label(p)));
        }
    }
    let interior: BTreeSet<String> = edges.iter().map(|(_, p)| p.clone()).collect();
    let observed: BTreeSet<String> = (0..n)
        .map(label)
        .filter(|l| !interior.contains(l))
        .collect();
    (edges, observed)
}

#[test]
fn plan_invariants() {
    cases(256, 0x5EED_7A40_0001, |case, rng| {
        let (edges, observed) = random_forest(rng);
        if edges.is_empty() {
            return;
        }
        let tax = Taxonomy::from_edges(&edges).expect("acyclic by construction");
        let (order, groups) = tax.plan(&observed).expect("observed are leaves");

        // 1. The order contains every observed label exactly once.
        let as_set: BTreeSet<&String> = order.iter().collect();
        assert_eq!(order.len(), observed.len(), "case {case}");
        assert_eq!(as_set.len(), order.len(), "case {case}");
        for l in &observed {
            assert!(as_set.contains(l), "case {case}");
        }

        // 2. Spans are in range and cover >= 2 leaves.
        for (name, lo, hi) in &groups {
            assert!(lo < hi, "case {case} {name}");
            assert!((*hi as usize) < order.len(), "case {case} {name}");
        }

        // 3. Laminar family: any two spans are nested or disjoint.
        for a in &groups {
            for b in &groups {
                let (al, ah) = (a.1, a.2);
                let (bl, bh) = (b.1, b.2);
                let disjoint = ah < bl || bh < al;
                let nested = (al <= bl && bh <= ah) || (bl <= al && ah <= bh);
                assert!(disjoint || nested, "case {case}: {a:?} vs {b:?}");
            }
        }

        // 4. Spans agree exactly with ancestry: position i is inside the
        //    span of group g iff g is an ancestor of order[i].
        for (name, lo, hi) in &groups {
            for (i, leaf) in order.iter().enumerate() {
                let inside = (*lo as usize) <= i && i <= (*hi as usize);
                assert_eq!(
                    inside,
                    tax.is_ancestor(name, leaf),
                    "case {case}: group {name} span [{lo}, {hi}] vs leaf {leaf} at {i}"
                );
            }
        }
    });
}
