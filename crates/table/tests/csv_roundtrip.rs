//! Randomized property test: any table survives a CSV write/read round
//! trip intact, including adversarial categorical strings (quotes, commas,
//! newlines, unicode).

use qar_prng::{cases, Prng};
use qar_table::{csv, Schema, Table, Value};

fn categorical_string(rng: &mut Prng) -> String {
    // A mix of plain words and adversarial CSV content. Leading/trailing
    // whitespace-only distinctions and bare CR are excluded: the format
    // cannot represent them unambiguously (matching RFC 4180 practice).
    const WORD_CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_";
    match rng.gen_range(0..7u32) {
        0 => "with,comma".to_string(),
        1 => "with\"quote".to_string(),
        2 => "multi\nline".to_string(),
        3 => "ünïcødé 字".to_string(),
        4 => "\"\"".to_string(),
        5 => "trailing,".to_string(),
        _ => {
            let len = rng.gen_range(1..13usize);
            (0..len)
                .map(|_| *rng.choose(WORD_CHARS).unwrap() as char)
                .collect()
        }
    }
}

#[test]
fn roundtrip_preserves_every_cell() {
    cases(64, 0x5EED_C511_0001, |case, rng| {
        let schema = Schema::builder()
            .quantitative("q_int")
            .categorical("label")
            .quantitative("q_float")
            .build()
            .unwrap();
        let mut table = Table::new(schema.clone());
        let num_rows = rng.gen_range(1..60usize);
        for _ in 0..num_rows {
            let i = rng.gen_range(i32::MIN as i64..i32::MAX as i64 + 1);
            let s = categorical_string(rng);
            let f = rng.gen_range(-1.0e6..1.0e6);
            table
                .push_row(&[Value::Int(i), Value::from(s), Value::Float(f)])
                .unwrap();
        }
        let mut buf = Vec::new();
        csv::write_table(&mut buf, &table).unwrap();
        let reread = csv::read_table(buf.as_slice(), &schema).unwrap();
        assert_eq!(reread.num_rows(), table.num_rows(), "case {case}");
        for row in 0..table.num_rows() {
            // Integer column: exact.
            assert_eq!(
                reread.row(row).value(0),
                table.row(row).value(0),
                "case {case}"
            );
            // Categorical column: exact bytes.
            assert_eq!(
                reread.row(row).value(1),
                table.row(row).value(1),
                "case {case}"
            );
            // Float column: Display uses shortest-roundtrip form, so parsing
            // it back is exact.
            let (a, b) = (reread.row(row).value(2), table.row(row).value(2));
            assert_eq!(a.as_f64().unwrap(), b.as_f64().unwrap(), "case {case}");
        }
    });
}

#[test]
fn header_escaping_roundtrips() {
    cases(16, 0x5EED_C511_0002, |case, rng| {
        // Attribute names containing commas/quotes must be escaped too.
        let len = rng.gen_range(1..9usize);
        let word: String = (0..len)
            .map(|_| (b'a' + rng.gen_range(0..26u8)) as char)
            .collect();
        let tricky = format!("{word},\"x");
        let schema = Schema::builder()
            .categorical(tricky.clone())
            .quantitative("n")
            .build()
            .unwrap();
        let mut table = Table::new(schema.clone());
        table.push_row(&[Value::from("v"), Value::Int(1)]).unwrap();
        let mut buf = Vec::new();
        csv::write_table(&mut buf, &table).unwrap();
        let reread = csv::read_table(buf.as_slice(), &schema).unwrap();
        assert_eq!(reread.num_rows(), 1, "case {case}");
        assert_eq!(
            reread.schema().attribute_by_name(&tricky).unwrap().name(),
            tricky.as_str(),
            "case {case}"
        );
    });
}
