//! Property test: any table survives a CSV write/read round trip intact,
//! including adversarial categorical strings (quotes, commas, newlines,
//! unicode).

use proptest::prelude::*;
use qar_table::{csv, Schema, Table, Value};

fn categorical_string() -> impl Strategy<Value = String> {
    // A mix of plain words and adversarial CSV content. Leading/trailing
    // whitespace-only distinctions and bare CR are excluded: the format
    // cannot represent them unambiguously (matching RFC 4180 practice).
    prop_oneof![
        "[a-zA-Z0-9_]{1,12}",
        Just("with,comma".to_string()),
        Just("with\"quote".to_string()),
        Just("multi\nline".to_string()),
        Just("ünïcødé 字".to_string()),
        Just("\"\"".to_string()),
        Just("trailing,".to_string()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn roundtrip_preserves_every_cell(
        rows in prop::collection::vec(
            (any::<i32>(), categorical_string(), -1.0e6f64..1.0e6), 1..60),
    ) {
        let schema = Schema::builder()
            .quantitative("q_int")
            .categorical("label")
            .quantitative("q_float")
            .build()
            .unwrap();
        let mut table = Table::new(schema.clone());
        for (i, s, f) in &rows {
            table
                .push_row(&[Value::Int(*i as i64), Value::from(s.clone()), Value::Float(*f)])
                .unwrap();
        }
        let mut buf = Vec::new();
        csv::write_table(&mut buf, &table).unwrap();
        let reread = csv::read_table(buf.as_slice(), &schema).unwrap();
        prop_assert_eq!(reread.num_rows(), table.num_rows());
        for row in 0..table.num_rows() {
            // Integer column: exact.
            prop_assert_eq!(reread.row(row).value(0), table.row(row).value(0));
            // Categorical column: exact bytes.
            prop_assert_eq!(reread.row(row).value(1), table.row(row).value(1));
            // Float column: Display uses shortest-roundtrip form, so parsing
            // it back is exact.
            let (a, b) = (reread.row(row).value(2), table.row(row).value(2));
            prop_assert_eq!(a.as_f64().unwrap(), b.as_f64().unwrap());
        }
    }

    #[test]
    fn header_escaping_roundtrips(word in "[a-z]{1,8}") {
        // Attribute names containing commas/quotes must be escaped too.
        let tricky = format!("{word},\"x");
        let schema = Schema::builder()
            .categorical(tricky.clone())
            .quantitative("n")
            .build()
            .unwrap();
        let mut table = Table::new(schema.clone());
        table.push_row(&[Value::from("v"), Value::Int(1)]).unwrap();
        let mut buf = Vec::new();
        csv::write_table(&mut buf, &table).unwrap();
        let reread = csv::read_table(buf.as_slice(), &schema).unwrap();
        prop_assert_eq!(reread.num_rows(), 1);
        prop_assert_eq!(
            reread.schema().attribute_by_name(&tricky).unwrap().name(),
            tricky.as_str()
        );
    }
}
