//! Greedy case minimization: when a case diverges, repeatedly try
//! simpler variants (fewer rows, fewer columns, plainer configuration)
//! and keep any variant that still fails. The result is the fixture a
//! human actually wants to read.
//!
//! The shrinker only requires that the reduced case *fails* — not that it
//! fails with the identical divergence. In practice one bug dominates a
//! failing case, and "any failure" shrinks much further than "the same
//! failure".

use crate::case::{IncrementalCase, MiningCase, PartitionCase, ReproCase};
use crate::check::check_case;
use qar_core::{PartitionSpec, PartitionStrategy};
use qar_table::{AttributeKind, Schema, Table, Value};

/// Upper bound on re-checks during one shrink, so a pathological case
/// cannot stall the fuzz loop.
const MAX_ATTEMPTS: usize = 4000;

/// Minimize a failing case. The input must already fail [`check_case`];
/// the returned case is guaranteed to still fail it.
pub fn shrink(case: ReproCase) -> ReproCase {
    shrink_with(case, |c| check_case(c).is_err())
}

/// Greedy descent with a pluggable failure predicate (tests inject their
/// own predicate; production uses [`check_case`]).
pub(crate) fn shrink_with(case: ReproCase, fails: impl Fn(&ReproCase) -> bool) -> ReproCase {
    let mut current = case;
    let mut attempts = 0usize;
    loop {
        let mut improved = false;
        for candidate in candidates(&current) {
            attempts += 1;
            if attempts > MAX_ATTEMPTS {
                return current;
            }
            if fails(&candidate) {
                current = candidate;
                improved = true;
                break;
            }
        }
        if !improved {
            return current;
        }
    }
}

/// Simpler variants of `case`, biggest reductions first.
fn candidates(case: &ReproCase) -> Vec<ReproCase> {
    match case {
        ReproCase::Mining(c) => mining_candidates(c)
            .into_iter()
            .map(ReproCase::Mining)
            .collect(),
        ReproCase::Memo(c) => mining_candidates(c)
            .into_iter()
            .map(ReproCase::Memo)
            .collect(),
        ReproCase::Kernel(c) => mining_candidates(c)
            .into_iter()
            .map(ReproCase::Kernel)
            .collect(),
        ReproCase::Analytics(c) => mining_candidates(c)
            .into_iter()
            .map(ReproCase::Analytics)
            .collect(),
        ReproCase::Distributed(c) => mining_candidates(c)
            .into_iter()
            .map(ReproCase::Distributed)
            .collect(),
        ReproCase::Incremental(inc) => {
            // Shrinking the table can shorten it past the cut; clamp so
            // every candidate keeps a valid split. Then try moving the
            // cut itself toward the edges (all-delta, all-base).
            let mut out: Vec<ReproCase> = mining_candidates(&inc.case)
                .into_iter()
                .map(|case| {
                    let cut = inc.cut.min(case.table.num_rows());
                    ReproCase::Incremental(IncrementalCase { case, cut })
                })
                .collect();
            for cut in [
                0,
                inc.cut / 2,
                inc.cut.saturating_sub(1),
                inc.case.table.num_rows(),
            ] {
                if cut != inc.cut {
                    out.push(ReproCase::Incremental(IncrementalCase {
                        case: inc.case.clone(),
                        cut,
                    }));
                }
            }
            out
        }
        ReproCase::Partition(c) => partition_candidates(c)
            .into_iter()
            .map(ReproCase::Partition)
            .collect(),
        // Snap and intervals cases are four scalars; nothing to shrink.
        ReproCase::Snap(_) | ReproCase::Intervals(_) => Vec::new(),
    }
}

fn mining_candidates(c: &MiningCase) -> Vec<MiningCase> {
    let mut out = Vec::new();
    let rows = c.table.num_rows();
    let with_table = |table: Table| MiningCase {
        table,
        config: c.config.clone(),
        threads: c.threads,
    };
    // Halve the row count from either end, then drop single rows.
    if rows >= 2 {
        out.push(with_table(keep_rows(&c.table, |i| i < rows / 2)));
        out.push(with_table(keep_rows(&c.table, |i| i >= rows / 2)));
    }
    for r in 0..rows {
        out.push(with_table(keep_rows(&c.table, |i| i != r)));
    }
    // Drop whole columns (a table needs at least one attribute).
    for col in 0..c.table.num_columns() {
        if let Some(table) = drop_column(&c.table, col) {
            out.push(with_table(table));
        }
    }
    // Plainer configurations, one knob at a time.
    let with_config = |f: &dyn Fn(&mut MiningCase)| {
        let mut cand = c.clone();
        f(&mut cand);
        cand
    };
    if c.config.partitioning != PartitionSpec::None {
        out.push(with_config(&|m| {
            m.config.partitioning = PartitionSpec::None
        }));
    }
    if c.config.interest.is_some() {
        out.push(with_config(&|m| m.config.interest = None));
    }
    if c.config.partition_strategy != PartitionStrategy::EquiDepth {
        out.push(with_config(&|m| {
            m.config.partition_strategy = PartitionStrategy::EquiDepth
        }));
    }
    if c.config.max_support != 1.0 {
        out.push(with_config(&|m| m.config.max_support = 1.0));
    }
    if c.config.min_confidence != 0.0 {
        out.push(with_config(&|m| m.config.min_confidence = 0.0));
    }
    if c.config.max_itemset_size != 0 && c.config.max_itemset_size != 1 {
        out.push(with_config(&|m| m.config.max_itemset_size = 1));
    }
    if c.threads != 2 {
        out.push(with_config(&|m| m.threads = 2));
    }
    out
}

fn partition_candidates(c: &PartitionCase) -> Vec<PartitionCase> {
    let mut out = Vec::new();
    let n = c.values.len();
    let with_values = |values: Vec<f64>| PartitionCase {
        values,
        k: c.k,
        strategy: c.strategy,
    };
    if n >= 2 {
        out.push(with_values(c.values[..n / 2].to_vec()));
        out.push(with_values(c.values[n / 2..].to_vec()));
    }
    for i in 0..n {
        let mut values = c.values.clone();
        values.remove(i);
        out.push(with_values(values));
    }
    for k in [c.k / 2, c.k.saturating_sub(1)] {
        if k >= 1 && k != c.k {
            out.push(PartitionCase {
                values: c.values.clone(),
                k,
                strategy: c.strategy,
            });
        }
    }
    if c.strategy != PartitionStrategy::EquiDepth {
        out.push(PartitionCase {
            values: c.values.clone(),
            k: c.k,
            strategy: PartitionStrategy::EquiDepth,
        });
    }
    out
}

/// Copy of `table` keeping only the rows whose index satisfies `keep`.
fn keep_rows(table: &Table, keep: impl Fn(usize) -> bool) -> Table {
    let mut out = Table::new(table.schema().clone());
    for row in table.rows() {
        if keep(row.index()) {
            out.push_row(&row.to_values()).expect("same schema");
        }
    }
    out
}

/// Copy of `table` without attribute `drop`; `None` when it is the last
/// attribute (a table needs at least one).
fn drop_column(table: &Table, drop: usize) -> Option<Table> {
    if table.num_columns() <= 1 {
        return None;
    }
    let mut builder = Schema::builder();
    for (i, (_, def)) in table.schema().iter().enumerate() {
        if i == drop {
            continue;
        }
        builder = match def.kind() {
            AttributeKind::Quantitative => builder.quantitative(def.name()),
            AttributeKind::Categorical => builder.categorical(def.name()),
        };
    }
    let schema = builder.build().ok()?;
    let mut out = Table::new(schema);
    for row in table.rows() {
        let cells: Vec<Value> = (0..table.num_columns())
            .filter(|&c| c != drop)
            .map(|c| row.value(c))
            .collect();
        out.push_row(&cells).expect("same shape");
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn partition_case(values: Vec<f64>) -> ReproCase {
        ReproCase::Partition(PartitionCase {
            values,
            k: 4,
            strategy: PartitionStrategy::KMeans,
        })
    }

    /// A synthetic failure predicate ("fails whenever both 1.0 and 2.0
    /// survive") must shrink a 10-value case down to exactly those two
    /// values and the plainest strategy.
    #[test]
    fn shrinks_to_the_failure_witness() {
        let case = partition_case(vec![5.0, 7.0, 1.0, 9.0, 2.0, 5.0, 3.0, 8.0, 4.0, 6.0]);
        let fails = |c: &ReproCase| match c {
            ReproCase::Partition(p) => p.values.contains(&1.0) && p.values.contains(&2.0),
            _ => false,
        };
        assert!(fails(&case));
        let shrunk = shrink_with(case, fails);
        let ReproCase::Partition(p) = shrunk else {
            panic!("kind changed during shrinking");
        };
        assert_eq!(p.values.len(), 2, "not minimal: {:?}", p.values);
        assert!(p.values.contains(&1.0) && p.values.contains(&2.0));
        assert_eq!(p.strategy, PartitionStrategy::EquiDepth);
        assert_eq!(p.k, 1);
    }

    /// Dropping a column keeps the remaining cells aligned.
    #[test]
    fn drop_column_preserves_remaining_cells() {
        let schema = Schema::builder()
            .quantitative("q")
            .categorical("c")
            .build()
            .unwrap();
        let mut table = Table::new(schema);
        table
            .push_row(&[Value::Float(1.5), Value::from("x")])
            .unwrap();
        table
            .push_row(&[Value::Float(2.5), Value::from("y")])
            .unwrap();
        let dropped = drop_column(&table, 0).expect("two columns");
        assert_eq!(dropped.num_columns(), 1);
        assert_eq!(dropped.schema().attributes()[0].name(), "c");
        assert_eq!(dropped.row(1).value(0), Value::from("y"));
        assert!(drop_column(&dropped, 0).is_none(), "last column must stay");
    }
}
