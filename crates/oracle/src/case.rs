//! The cases the fuzzer draws, checks, shrinks, and persists.

use qar_core::{MinerConfig, PartitionStrategy};
use qar_table::Table;

/// One fuzz case: an input plus everything needed to re-run its check
/// deterministically. Serialized to/parsed from the repro fixture format
/// by [`crate::repro`].
#[derive(Debug, Clone)]
pub enum ReproCase {
    /// End-to-end differential case: one table, one configuration, five
    /// execution paths that must agree.
    Mining(MiningCase),
    /// Partitioner invariant case: one column, one strategy, one `k`.
    Partition(PartitionCase),
    /// Range-snapping invariant case for
    /// [`qar_partition::range_completeness::snap_to_intervals`].
    Snap(SnapCase),
    /// Interval-count invariant case for [`qar_partition::num_intervals`].
    Intervals(IntervalsCase),
    /// Memoized-scan case: a duplicate-heavy categorical table mined with
    /// the tuple cache + worker pool on, cross-checked against the
    /// direct serial scan.
    Memo(MiningCase),
    /// Bitmask-kernel case: boundary-skewed codes and degenerate (lo==hi)
    /// ranges mined with the blocked bitmask kernel, serial and pooled,
    /// cross-checked against the direct serial scan.
    Kernel(MiningCase),
    /// Rule-analytics case: a mined ruleset's lift / conviction /
    /// leverage / chi² / p-value / J-measure cross-checked at 0 ulps
    /// against an independent contingency-table reference, plus BH
    /// monotonicity, Shapley determinism and efficiency, and a byte-exact
    /// catalog round trip of the `ANALYTICS` section.
    Analytics(MiningCase),
    /// Count-distribution case: the same table mined through the
    /// distributed coordinator over in-process worker threads (raw
    /// per-partition count vectors, merged element-wise), cross-checked
    /// against the single-process miner — same errors, same rules, and a
    /// byte-identical catalog once volatile stats are normalized.
    Distributed(MiningCase),
    /// Incremental-update case: the table split at a cut into base and
    /// delta rows; mine(base) → update(delta) must reproduce
    /// mine(base+delta) exactly — same errors, same rules, same merged
    /// counts, and a byte-identical normalized catalog including the
    /// `COUNTS` section — whether the update stays incremental or falls
    /// back to a re-mine over the retained base rows.
    Incremental(IncrementalCase),
}

impl ReproCase {
    /// Short kind tag, used in fixture files and log lines.
    pub fn kind(&self) -> &'static str {
        match self {
            ReproCase::Mining(_) => "mining",
            ReproCase::Partition(_) => "partition",
            ReproCase::Snap(_) => "snap",
            ReproCase::Intervals(_) => "intervals",
            ReproCase::Memo(_) => "memo",
            ReproCase::Kernel(_) => "kernel",
            ReproCase::Analytics(_) => "analytics",
            ReproCase::Distributed(_) => "distributed",
            ReproCase::Incremental(_) => "incremental",
        }
    }
}

/// A mining case plus the base/delta split point for the incremental
/// oracle.
#[derive(Debug, Clone)]
pub struct IncrementalCase {
    /// The underlying table + configuration; the table is base+delta.
    pub case: MiningCase,
    /// Row index where the delta starts: rows `[0, cut)` are the base,
    /// rows `[cut, n)` the delta. `0` is an empty base (the delta
    /// outweighs it); `n` is an empty delta.
    pub cut: usize,
}

/// A table + miner configuration to run through every execution path.
#[derive(Debug, Clone)]
pub struct MiningCase {
    /// The input table (possibly empty or single-row).
    pub table: Table,
    /// The configuration; `parallelism` is overridden per path.
    pub config: MinerConfig,
    /// Worker threads for the parallel path (the serial path uses 1).
    pub threads: usize,
}

/// A column to partition plus the requested interval count.
#[derive(Debug, Clone)]
pub struct PartitionCase {
    /// Raw column values (unsorted, duplicates expected).
    pub values: Vec<f64>,
    /// Requested interval count.
    pub k: usize,
    /// Which partitioner to check.
    pub strategy: PartitionStrategy,
}

/// A range-to-interval-grid snapping problem.
#[derive(Debug, Clone)]
pub struct SnapCase {
    /// Range lower bound (`lo <= hi`).
    pub lo: f64,
    /// Range upper bound.
    pub hi: f64,
    /// Interval grid origin.
    pub origin: f64,
    /// Interval width (`> 0`).
    pub w: f64,
}

/// An Equation-2 interval-count computation.
#[derive(Debug, Clone)]
pub struct IntervalsCase {
    /// Number of quantitative attributes.
    pub num_quantitative: usize,
    /// Minimum support fraction.
    pub minsup: f64,
    /// Partial-completeness level (deliberately sometimes invalid).
    pub level: f64,
}
