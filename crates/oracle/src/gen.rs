//! Case generation, skewed toward the edge regions where boundary bugs
//! live: duplicate-heavy columns, adjacent-float values, minsup on exact
//! `k/n` grid points or near 0/1, completeness levels just above 1,
//! empty and single-row tables.

use crate::case::{IncrementalCase, IntervalsCase, MiningCase, PartitionCase, ReproCase, SnapCase};
use qar_core::{InterestConfig, InterestMode, MinerConfig, PartitionSpec, PartitionStrategy};
use qar_prng::Prng;
use qar_table::{Schema, Table, Value};

/// Draw one case. The mix favors end-to-end mining cases; the rest stress
/// the partitioning and completeness primitives directly.
pub fn gen_case(rng: &mut Prng) -> ReproCase {
    match rng.gen_weighted(&[5.0, 2.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0, 2.0]) {
        0 => ReproCase::Mining(gen_mining(rng)),
        1 => ReproCase::Partition(gen_partition(rng)),
        2 => ReproCase::Snap(gen_snap(rng)),
        3 => ReproCase::Intervals(gen_intervals(rng)),
        4 => ReproCase::Memo(gen_memo(rng)),
        5 => ReproCase::Kernel(gen_kernel(rng)),
        6 => ReproCase::Analytics(gen_analytics(rng)),
        7 => ReproCase::Distributed(gen_distributed(rng)),
        _ => ReproCase::Incremental(gen_incremental(rng)),
    }
}

/// An incremental case: an ordinary mining case split at a cut point,
/// with the edges over-weighted — an empty base (the whole table is
/// delta), an empty delta, and a base much smaller than its delta — on
/// top of a uniform draw over every split.
fn gen_incremental(rng: &mut Prng) -> IncrementalCase {
    let case = gen_mining(rng);
    let rows = case.table.num_rows();
    let cut = match rng.gen_weighted(&[1.0, 2.0, 2.0, 5.0]) {
        0 => 0,
        1 => rows,
        2 => rows / 4,
        _ => rng.gen_range(0..rows + 1),
    };
    IncrementalCase { case, cut }
}

/// A distributed case: an ordinary mining case, unchanged — the edge
/// draws the base generator keeps making (empty tables, single rows,
/// row counts below the worker count) are exactly what the partition
/// split and empty-partition handling must survive. The case's thread
/// count doubles as the worker count.
fn gen_distributed(rng: &mut Prng) -> MiningCase {
    gen_mining(rng)
}

/// An analytics case: an ordinary mining case with the thresholds biased
/// toward actually producing rules (empty rulesets stay covered by the
/// edge draws the base generator keeps making), since the analytics
/// checks are per rule.
fn gen_analytics(rng: &mut Prng) -> MiningCase {
    let mut case = gen_mining(rng);
    if case.config.min_support > 0.3 && rng.gen_bool(0.8) {
        case.config.min_support = 0.25;
    }
    if case.config.min_confidence > 0.6 && rng.gen_bool(0.8) {
        case.config.min_confidence = 0.5;
    }
    case
}

/// A quantitative column of length `len`, drawn from one of the edge
/// styles. Values are always finite.
fn gen_quant_column(rng: &mut Prng, len: usize) -> Vec<f64> {
    match rng.gen_weighted(&[3.0, 3.0, 2.0, 2.0, 1.0, 1.0]) {
        // Small integer domain: heavy natural duplication.
        0 => (0..len).map(|_| rng.gen_range(0i64..6) as f64).collect(),
        // Zipf-weighted duplicates over a handful of values.
        1 => {
            let distinct = rng.gen_range(2..7);
            rng.gen_duplicate_heavy(len, distinct)
        }
        // Values a few ulps apart: midpoint-rounding territory.
        2 => {
            let base = *rng.choose(&[1.0, 3.5, 1.0e9]).expect("non-empty");
            let radius = rng.gen_range(1..5);
            rng.gen_ulp_neighborhood(len, base, radius)
        }
        // Clustered with near-duplicates inside clusters.
        3 => {
            let clusters = rng.gen_range(2..5);
            rng.gen_clustered(len, clusters, 0.5)
        }
        // Constant column (one distinct value).
        4 => vec![rng.gen_range(-3i64..4) as f64; len],
        // Exact multiples of a decimal step: grid-boundary values.
        _ => {
            let step = *rng.choose(&[0.07, 0.1, 0.25]).expect("non-empty");
            (0..len)
                .map(|_| rng.gen_range(0i64..12) as f64 * step)
                .collect()
        }
    }
}

/// An end-to-end mining case: small enough for the brute-force references,
/// adversarial enough to hit rounding and tie boundaries.
fn gen_mining(rng: &mut Prng) -> MiningCase {
    let num_rows = match rng.gen_weighted(&[1.0, 1.0, 4.0, 6.0]) {
        0 => 0,
        1 => 1,
        2 => rng.gen_range(2..8),
        _ => rng.gen_range(8..41),
    };
    let num_attrs = rng.gen_range(1..4usize);
    let kinds: Vec<bool> = (0..num_attrs).map(|_| rng.gen_bool(0.7)).collect();
    let mut builder = Schema::builder();
    for (i, &quant) in kinds.iter().enumerate() {
        let name = format!("a{i}");
        builder = if quant {
            builder.quantitative(name)
        } else {
            builder.categorical(name)
        };
    }
    let schema = builder.build().expect("generated names are valid");

    let labels = ["a", "b", "c", "d"];
    let columns: Vec<Vec<Value>> = kinds
        .iter()
        .map(|&quant| {
            if quant {
                gen_quant_column(rng, num_rows)
                    .into_iter()
                    .map(Value::Float)
                    .collect()
            } else {
                let distinct = rng.gen_range(1..labels.len() + 1);
                (0..num_rows)
                    .map(|_| Value::from(labels[rng.gen_zipf(distinct, 1.0)]))
                    .collect()
            }
        })
        .collect();
    let mut table = Table::new(schema);
    for row in 0..num_rows {
        let cells: Vec<Value> = columns.iter().map(|c| c[row].clone()).collect();
        table.push_row(&cells).expect("cells match schema");
    }

    let denom = num_rows.max(1) as u64;
    let min_support = rng.gen_edge_fraction(denom);
    let min_confidence = match rng.gen_weighted(&[1.0, 1.0, 3.0]) {
        0 => 0.0,
        1 => 1.0,
        _ => rng.gen_edge_fraction(denom),
    };
    let max_support = if rng.gen_bool(0.5) {
        1.0
    } else {
        rng.gen_edge_fraction(denom).max(min_support)
    };
    let partitioning = match rng.gen_weighted(&[4.0, 4.0, 2.0]) {
        0 => PartitionSpec::None,
        1 => {
            let level = *rng
                .choose(&[1.0 + 1.0e-9, 1.1, 1.5, 2.0, 3.0])
                .expect("non-empty");
            PartitionSpec::CompletenessLevel(level)
        }
        _ => PartitionSpec::FixedIntervals(rng.gen_range(1..7)),
    };
    let partition_strategy = *rng
        .choose(&[
            PartitionStrategy::EquiDepth,
            PartitionStrategy::EquiWidth,
            PartitionStrategy::KMeans,
        ])
        .expect("non-empty");
    let interest = if rng.gen_bool(0.5) {
        None
    } else {
        // Sometimes aim R exactly at rows/s so an item's support can sit
        // precisely on the Lemma-5 `1/R` boundary.
        let level = if num_rows >= 2 && rng.gen_bool(0.4) {
            let s = rng.gen_range(1..num_rows as u64);
            let exact = num_rows as f64 / s as f64;
            if exact > 1.0 {
                exact
            } else {
                2.0
            }
        } else {
            *rng.choose(&[1.5, 2.0, 3.0]).expect("non-empty")
        };
        let mode = if rng.gen_bool(0.5) {
            InterestMode::SupportAndConfidence
        } else {
            InterestMode::SupportOrConfidence
        };
        Some(InterestConfig {
            level,
            mode,
            prune_candidates: rng.gen_bool(0.7),
        })
    };
    let config = MinerConfig {
        min_support,
        min_confidence,
        max_support,
        partitioning,
        partition_strategy,
        taxonomies: Default::default(),
        interest,
        max_itemset_size: *rng.choose(&[0, 0, 0, 1, 2, 3]).expect("non-empty"),
        parallelism: None,
        kernel: Default::default(),
    };
    MiningCase {
        table,
        config,
        threads: rng.gen_range(2..9),
    }
}

/// A memoized-scan case: low-cardinality categorical attributes over
/// enough rows that the per-shard tuple cache sees real duplication
/// (every distinct tuple recurs many times), with a thread count that
/// forces the pooled sharded path. The checker compares this against the
/// direct (cache-off) serial scan.
fn gen_memo(rng: &mut Prng) -> MiningCase {
    let num_rows = rng.gen_range(16..65);
    let num_cats = rng.gen_range(2..5usize);
    let with_quant = rng.gen_bool(0.4);
    let mut builder = Schema::builder();
    for i in 0..num_cats {
        builder = builder.categorical(format!("c{i}"));
    }
    if with_quant {
        builder = builder.quantitative("q");
    }
    let schema = builder.build().expect("generated names are valid");
    let labels = ["a", "b", "c", "d"];
    let cardinalities: Vec<usize> = (0..num_cats).map(|_| rng.gen_range(2..5usize)).collect();
    let mut table = Table::new(schema);
    for _ in 0..num_rows {
        let mut cells: Vec<Value> = cardinalities
            .iter()
            .map(|&card| Value::from(labels[rng.gen_zipf(card, 1.0)]))
            .collect();
        if with_quant {
            // A tiny integer domain keeps PartitionSpec::None cheap and
            // the quant dimension duplicate-heavy too.
            cells.push(Value::Float(rng.gen_range(0i64..4) as f64));
        }
        table.push_row(&cells).expect("cells match schema");
    }
    let denom = num_rows as u64;
    let config = MinerConfig {
        min_support: rng.gen_edge_fraction(denom),
        min_confidence: rng.gen_edge_fraction(denom),
        max_support: 1.0,
        partitioning: PartitionSpec::None,
        partition_strategy: PartitionStrategy::EquiDepth,
        taxonomies: Default::default(),
        interest: None,
        max_itemset_size: *rng.choose(&[0, 0, 2, 3]).expect("non-empty"),
        parallelism: None,
        kernel: Default::default(),
    };
    MiningCase {
        table,
        config,
        threads: rng.gen_range(2..9),
    }
}

/// A bitmask-kernel case: codes skewed toward the domain boundaries
/// (first/last encoded value), constant columns whose frequent ranges
/// degenerate to `lo == hi`, and row counts straddling the kernel's
/// 64-bit word and block edges — plus occasional empty tables and
/// impossible supports so the plan list itself can be empty. The checker
/// compares bitmask serial and bitmask pooled against direct serial.
fn gen_kernel(rng: &mut Prng) -> MiningCase {
    // Word- and block-boundary row counts matter: the kernel's tail
    // masking and partial-block path only run when rows % 64 != 0.
    let num_rows = match rng.gen_weighted(&[1.0, 2.0, 3.0, 3.0, 3.0]) {
        0 => 0,
        1 => rng.gen_range(1..4),
        2 => *rng.choose(&[63, 64, 65, 127, 128, 129]).expect("non-empty"),
        3 => rng.gen_range(2..64),
        _ => rng.gen_range(64..200),
    };
    let num_quants = rng.gen_range(1..4usize);
    let num_cats = rng.gen_range(0..3usize);
    let mut builder = Schema::builder();
    for i in 0..num_quants {
        builder = builder.quantitative(format!("q{i}"));
    }
    for i in 0..num_cats {
        builder = builder.categorical(format!("c{i}"));
    }
    let schema = builder.build().expect("generated names are valid");
    let labels = ["a", "b", "c", "d"];
    // Per-column style: boundary-skewed (mass at domain min/max),
    // constant (every range is lo == hi), or a small uniform domain.
    let quant_styles: Vec<u32> = (0..num_quants)
        .map(|_| rng.gen_weighted(&[3.0, 2.0, 2.0]) as u32)
        .collect();
    let cat_cards: Vec<usize> = (0..num_cats).map(|_| rng.gen_range(1..5usize)).collect();
    let domain = rng.gen_range(2i64..8);
    let mut table = Table::new(schema);
    for _ in 0..num_rows {
        let mut cells: Vec<Value> = Vec::with_capacity(num_quants + num_cats);
        for &style in &quant_styles {
            let v = match style {
                // ~80% of the mass on the two extreme codes.
                0 => {
                    if rng.gen_bool(0.8) {
                        if rng.gen_bool(0.5) {
                            0
                        } else {
                            domain - 1
                        }
                    } else {
                        rng.gen_range(0i64..domain)
                    }
                }
                1 => 2,
                _ => rng.gen_range(0i64..domain),
            };
            cells.push(Value::Float(v as f64));
        }
        for &card in &cat_cards {
            cells.push(Value::from(labels[rng.gen_zipf(card, 1.0)]));
        }
        table.push_row(&cells).expect("cells match schema");
    }
    let denom = num_rows.max(1) as u64;
    // Sometimes demand more support than any itemset can have, so the
    // super-candidate plan list is empty and the kernel counts nothing.
    let min_support = if rng.gen_bool(0.15) {
        1.0
    } else {
        rng.gen_edge_fraction(denom)
    };
    let config = MinerConfig {
        min_support,
        min_confidence: rng.gen_edge_fraction(denom),
        max_support: if rng.gen_bool(0.5) { 1.0 } else { 0.5 },
        partitioning: PartitionSpec::None,
        partition_strategy: PartitionStrategy::EquiDepth,
        taxonomies: Default::default(),
        interest: None,
        max_itemset_size: *rng.choose(&[0, 0, 2, 3]).expect("non-empty"),
        parallelism: None,
        kernel: Default::default(),
    };
    MiningCase {
        table,
        config,
        threads: rng.gen_range(2..9),
    }
}

fn gen_partition(rng: &mut Prng) -> PartitionCase {
    let len = rng.gen_range(2..60usize);
    let values = gen_quant_column(rng, len);
    let k = match rng.gen_weighted(&[1.0, 2.0, 4.0, 2.0]) {
        0 => 1,
        1 => 2,
        2 => rng.gen_range(3..9),
        // At or above the distinct-value count: full-resolution territory.
        _ => rng.gen_range(len.max(3)..len + 40),
    };
    let strategy = *rng
        .choose(&[
            PartitionStrategy::EquiDepth,
            PartitionStrategy::EquiWidth,
            PartitionStrategy::KMeans,
        ])
        .expect("non-empty");
    PartitionCase {
        values,
        k,
        strategy,
    }
}

fn gen_snap(rng: &mut Prng) -> SnapCase {
    // The huge-magnitude case: the interval width is below the endpoint's
    // ulp, so naive snapping cannot move the bounds at all.
    if rng.gen_bool(0.1) {
        let x = 1.0e16;
        return SnapCase {
            lo: x,
            hi: x,
            origin: 0.0,
            w: 0.5,
        };
    }
    let w = *rng
        .choose(&[0.07, 0.1, 0.5, 1.0, 0.003])
        .expect("non-empty");
    let origin = *rng.choose(&[0.0, -1.0, 10.0]).expect("non-empty");
    let lo = if rng.gen_bool(0.6) {
        // Exactly on the grid (modulo float rounding of origin + i*w).
        origin + rng.gen_range(0i64..30) as f64 * w
    } else {
        origin + rng.gen_f64() * 30.0 * w
    };
    let hi = match rng.gen_weighted(&[2.0, 4.0, 3.0]) {
        0 => lo, // degenerate range
        1 => lo + rng.gen_range(0i64..10) as f64 * w,
        _ => lo + rng.gen_f64() * 10.0 * w,
    };
    SnapCase {
        lo,
        hi: hi.max(lo),
        origin,
        w,
    }
}

fn gen_intervals(rng: &mut Prng) -> IntervalsCase {
    IntervalsCase {
        num_quantitative: rng.gen_range(1..4),
        minsup: rng.gen_edge_fraction(40),
        level: *rng
            .choose(&[0.5, 1.0, 1.0 + 1.0e-9, 1.0 + 1.0e-6, 1.5, 2.0, f64::NAN])
            .expect("non-empty"),
    }
}
