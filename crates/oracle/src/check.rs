//! The oracle proper: run a case through every execution path and demand
//! agreement, or check the invariant a primitive promises.
//!
//! A mining case exercises five paths that must produce the same answer:
//!
//! 1. the full miner with `parallelism = 1` (the reference execution),
//! 2. the full miner with `parallelism = threads` (sharded counting),
//! 3. the brute-force [`naive_mine`] enumerator,
//! 4. the boolean [`apriori()`] bridge, cross-checked against an independent
//!    row-index-intersection enumerator over the encoded table,
//! 5. a `.qarcat` save → load → query round trip.
//!
//! Partition, snap, and intervals cases check the contracts of the
//! corresponding primitives directly — those bugs cannot surface as
//! mining-path divergence because every mining path shares the one
//! encoded table.

use crate::case::{IncrementalCase, IntervalsCase, MiningCase, PartitionCase, ReproCase, SnapCase};
use qar_analytics::{chi2_p_value, AnalyticsConfig};
use qar_apriori::apriori;
use qar_apriori::bridge::to_transactions;
use qar_core::naive::naive_mine;
use qar_core::pipeline::build_encoders;
use qar_core::{
    InterestMode, ItemsetSetDelta, Miner, MinerConfig, MinerError, MiningOutput, PartitionStrategy,
    QuantFrequentItemsets, RuleSetDelta, ScanKernel, SupportCounts, UpdateInput,
};
use qar_dist::{mine_distributed, Backing, DistOptions, WorkerOptions, WorkerSpawn};
use qar_itemset::{Item, Itemset};
use qar_partition::range_completeness::snap_to_intervals;
use qar_partition::{num_intervals, EquiDepth, EquiWidth, KMeans1D, Partitioner, MAX_INTERVALS};
use qar_store::{analytics_from_mining, naive_query_range, naive_query_record, Catalog, RuleIndex};
use qar_table::{AttributeId, AttributeKind, EncodedTable, Table};
use std::collections::{BTreeMap, HashSet};
use std::fmt;
use std::num::NonZeroUsize;

/// A failed check: which oracle tripped, and enough detail to debug it.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Stable name of the check that failed (e.g. `serial-vs-parallel`).
    pub check: &'static str,
    /// Human-readable explanation of the disagreement.
    pub detail: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.check, self.detail)
    }
}

fn div(check: &'static str, detail: String) -> Divergence {
    Divergence { check, detail }
}

/// Check one case; `Ok(())` means every path and invariant agreed.
pub fn check_case(case: &ReproCase) -> Result<(), Divergence> {
    match case {
        ReproCase::Mining(c) => check_mining(c),
        ReproCase::Partition(c) => check_partition(c),
        ReproCase::Snap(c) => check_snap(c),
        ReproCase::Intervals(c) => check_intervals(c),
        ReproCase::Memo(c) => check_memo(c),
        ReproCase::Kernel(c) => check_kernel(c),
        ReproCase::Analytics(c) => check_analytics(c),
        ReproCase::Distributed(c) => check_distributed(c),
        ReproCase::Incremental(c) => check_incremental(c),
    }
}

fn with_parallelism(config: &MinerConfig, threads: usize) -> MinerConfig {
    let mut c = config.clone();
    c.parallelism = NonZeroUsize::new(threads);
    c
}

/// Memoized-scan oracle: the pooled scan with the categorical-tuple
/// cache on must agree bit-for-bit with the direct serial scan (cache
/// off), and the cache must also be thread-count-independent (memoized
/// serial agrees too). Generated tables are duplicate-heavy, so the
/// cache's hit path actually executes.
pub fn check_memo(case: &MiningCase) -> Result<(), Divergence> {
    let mut direct_cfg = with_parallelism(&case.config, 1);
    direct_cfg.kernel = ScanKernel::Direct;
    let mut memo_par_cfg = with_parallelism(&case.config, case.threads.max(2));
    memo_par_cfg.kernel = ScanKernel::Memoized;
    let mut memo_ser_cfg = with_parallelism(&case.config, 1);
    memo_ser_cfg.kernel = ScanKernel::Memoized;

    let direct = Miner::new(direct_cfg).mine(&case.table);
    let memo_par = Miner::new(memo_par_cfg).mine(&case.table);
    let memo_ser = Miner::new(memo_ser_cfg).mine(&case.table);
    compare_paths("memo-parallel-vs-direct", &direct, &memo_par)?;
    compare_paths("memo-serial-vs-direct", &direct, &memo_ser)
}

/// Bitmask-kernel oracle: the blocked bitmask scan must agree
/// bit-for-bit with the direct serial scan, both on one thread (same
/// shard boundaries, different counting loop) and pooled (different
/// shard boundaries too). Generated tables skew codes to the domain
/// boundaries and include constant columns, so the kernel's tail masks,
/// `lo == hi` range rows, and block pre-screening all execute.
pub fn check_kernel(case: &MiningCase) -> Result<(), Divergence> {
    let mut direct_cfg = with_parallelism(&case.config, 1);
    direct_cfg.kernel = ScanKernel::Direct;
    let mut bitmask_ser_cfg = with_parallelism(&case.config, 1);
    bitmask_ser_cfg.kernel = ScanKernel::Bitmask;
    let mut bitmask_par_cfg = with_parallelism(&case.config, case.threads.max(2));
    bitmask_par_cfg.kernel = ScanKernel::Bitmask;

    let direct = Miner::new(direct_cfg).mine(&case.table);
    let bitmask_ser = Miner::new(bitmask_ser_cfg).mine(&case.table);
    let bitmask_par = Miner::new(bitmask_par_cfg).mine(&case.table);
    compare_paths("bitmask-serial-vs-direct", &direct, &bitmask_ser)?;
    compare_paths("bitmask-parallel-vs-direct", &direct, &bitmask_par)
}

/// Count-distribution oracle: the distributed coordinator over
/// in-process worker threads must reproduce the single-process miner
/// exactly. Workers return raw per-partition `u64` count vectors and the
/// coordinator merges them element-wise, so the cross-check is bitwise,
/// not approximate: same error on rejection, same itemsets, rules, and
/// interest verdicts on success — and the two runs' catalogs must be
/// byte-identical once volatile statistics are normalized.
pub fn check_distributed(case: &MiningCase) -> Result<(), Divergence> {
    let config = with_parallelism(&case.config, 1);
    let serial = Miner::new(config.clone()).mine(&case.table);
    let options = DistOptions {
        workers: case.threads.clamp(2, 4),
        spawn: WorkerSpawn::Threads(WorkerOptions::default()),
        ..DistOptions::default()
    };
    // Steps 1-2 (partitioning, encoding) run on the coordinator with the
    // factored-out builder — the same one the CLI's distributed path uses.
    let distributed = build_encoders(&case.table, &config).and_then(|(encoders, intervals)| {
        let encoded = EncodedTable::encode(&case.table, encoders).map_err(MinerError::from)?;
        let mut out = mine_distributed(Backing::Memory(&encoded), &config, &options, None, None)?;
        out.stats.intervals_per_attribute = intervals;
        Ok(out)
    });
    compare_paths("distributed-vs-serial", &serial, &distributed)?;
    if let (Ok(s), Ok(d)) = (&serial, &distributed) {
        let serial_bytes = normalized_catalog_bytes(s);
        let dist_bytes = normalized_catalog_bytes(d);
        if serial_bytes != dist_bytes {
            return Err(div(
                "distributed-catalog-bytes",
                format!(
                    "normalized catalogs differ: serial {} byte(s), distributed {} byte(s)",
                    serial_bytes.len(),
                    dist_bytes.len()
                ),
            ));
        }
    }
    Ok(())
}

/// The `.qarcat` encoding of a mine with volatile statistics zeroed —
/// the byte-level identity relation serial and distributed runs are held
/// to (what `qar mine --normalize-stats --store` writes).
fn normalized_catalog_bytes(out: &MiningOutput) -> Vec<u8> {
    Catalog::new(
        out.encoded.schema().clone(),
        out.encoded.encoders().to_vec(),
        out.frequent.num_rows,
        out.rules.clone(),
        out.interest.clone(),
        out.stats.normalized(),
    )
    .expect("mining output forms a valid catalog")
    .encode()
}

/// Incremental oracle: split the table at the cut, mine the base with
/// count capture, feed the delta through [`Miner::update`] (base rows
/// retained, so a fallback still completes), and demand the result equal
/// the from-scratch mine of the whole table exactly — same errors, same
/// itemsets/rules/interest, element-wise identical merged counts, and a
/// byte-identical normalized catalog with the `COUNTS` section attached.
pub fn check_incremental(inc: &IncrementalCase) -> Result<(), Divergence> {
    let case = &inc.case;
    let cut = inc.cut.min(case.table.num_rows());
    let mut base = Table::new(case.table.schema().clone());
    let mut delta = Table::new(case.table.schema().clone());
    for row in case.table.rows() {
        let side = if row.index() < cut {
            &mut base
        } else {
            &mut delta
        };
        side.push_row(&row.to_values()).expect("same schema");
    }

    let config = with_parallelism(&case.config, 1);
    let full = Miner::new(config.clone()).mine_with_counts(&case.table);
    let based = Miner::new(config.clone()).mine_with_counts(&base);
    let (base_output, base_counts) = match (based, &full) {
        (Err(b), Err(f)) => {
            // Rejection is configuration-driven; the split must not
            // change the error.
            if b.to_string() != f.to_string() {
                return Err(div(
                    "incremental-error-agreement",
                    format!("base mine error `{b}` != full mine error `{f}`"),
                ));
            }
            return Ok(());
        }
        (Err(b), Ok(_)) => {
            // An empty base legitimately fails data-dependent checks the
            // full table passes (e.g. quantitative encoding needs rows);
            // with no base catalog there is nothing incremental to check.
            if base.num_rows() == 0 {
                return Ok(());
            }
            return Err(div(
                "incremental-error-agreement",
                format!("full mine succeeded but the base mine failed: {b}"),
            ));
        }
        (Ok(_), Err(f)) => {
            return Err(div(
                "incremental-error-agreement",
                format!("base mine succeeded but the full mine failed: {f}"),
            ))
        }
        (Ok(b), Ok(_)) => b,
    };
    let (full_output, full_counts) = full.expect("full mine succeeded above");

    let updated = match Miner::new(config).update(UpdateInput {
        schema: base_output.encoded.schema(),
        encoders: base_output.encoded.encoders(),
        counts: &base_counts,
        delta: &delta,
        base_rows: Some(&base),
    }) {
        Ok(u) => u,
        Err(e) => {
            return Err(div(
                "incremental-update-error",
                format!("update failed where the full mine succeeded: {e}"),
            ))
        }
    };
    if delta.num_rows() == 0 && !updated.incremental {
        return Err(div(
            "incremental-empty-delta",
            format!(
                "an empty delta must stay on the incremental path, fell back: {:?}",
                updated.fallback
            ),
        ));
    }

    let full_res = Ok(full_output);
    let upd_res = Ok(updated.output);
    compare_paths("incremental-vs-full", &full_res, &upd_res)?;
    let (Ok(full_output), Ok(upd_output)) = (full_res, upd_res) else {
        unreachable!("both constructed as Ok")
    };

    if updated.counts != full_counts {
        return Err(div(
            "incremental-counts",
            format!(
                "merged counts differ from the full scan's \
                 (update {} candidate(s) over {} row(s), full {} over {})",
                updated.counts.total_candidates(),
                updated.counts.num_rows,
                full_counts.total_candidates(),
                full_counts.num_rows,
            ),
        ));
    }
    let upd_bytes = counted_catalog_bytes(&upd_output, updated.counts)?;
    let full_bytes = counted_catalog_bytes(&full_output, full_counts)?;
    if upd_bytes != full_bytes {
        return Err(div(
            "incremental-catalog-bytes",
            format!(
                "normalized catalogs (COUNTS included) differ: \
                 update {} byte(s), full {} byte(s)",
                upd_bytes.len(),
                full_bytes.len()
            ),
        ));
    }
    Ok(())
}

/// [`normalized_catalog_bytes`] with the `COUNTS` section attached — the
/// byte-level identity an incremental update is held to.
fn counted_catalog_bytes(out: &MiningOutput, counts: SupportCounts) -> Result<Vec<u8>, Divergence> {
    Catalog::new(
        out.encoded.schema().clone(),
        out.encoded.encoders().to_vec(),
        out.frequent.num_rows,
        out.rules.clone(),
        out.interest.clone(),
        out.stats.normalized(),
    )
    .expect("mining output forms a valid catalog")
    .with_counts(counts)
    .map(|catalog| catalog.encode())
    .map_err(|e| {
        div(
            "incremental-catalog-bytes",
            format!("counts do not attach to their own catalog: {e}"),
        )
    })
}

/// The fixed analytics tuning every analytics case uses, so persisted
/// repros re-check identically: few samples (speed), a fixed seed.
const ANALYTICS_CFG: AnalyticsConfig = AnalyticsConfig {
    shapley_samples: 8,
    seed: 0xA11A,
};

/// Independent restatement of the closed-form measures: same formulas,
/// same operation order as `qar_analytics::Measures::from_facts`, but a
/// second copy the oracle owns — any refactor over there that changes
/// rounding (or a count plumbed wrong anywhere in the pipeline) shows up
/// as a ulp-level divergence here.
struct RefMeasures {
    lift: f64,
    conviction: f64,
    leverage: f64,
    chi2: f64,
    p_value: f64,
    jmeasure: f64,
}

fn ref_jterm(p: f64, q: f64) -> f64 {
    if p == 0.0 {
        0.0
    } else {
        p * (p / q).log2()
    }
}

fn ref_jmeasure(n_rows: u64, count_a: u64, count_c: u64, count_ac: u64) -> f64 {
    if count_a == 0 || n_rows == 0 {
        return 0.0;
    }
    let n = n_rows as f64;
    let pa = count_a as f64 / n;
    let pc = count_c as f64 / n;
    let pca = count_ac as f64 / count_a as f64;
    pa * (ref_jterm(pca, pc) + ref_jterm(1.0 - pca, 1.0 - pc))
}

fn ref_measures(n_rows: u64, count_a: u64, count_c: u64, count_ac: u64) -> RefMeasures {
    let n = n_rows as f64;
    let ca = count_a as f64;
    let cc = count_c as f64;
    let cac = count_ac as f64;
    let lift = if count_a == 0 || count_c == 0 {
        f64::NAN
    } else {
        (cac * n) / (ca * cc)
    };
    let conviction = if count_a == 0 {
        f64::NAN
    } else if count_ac == count_a {
        f64::INFINITY
    } else {
        (1.0 - cc / n) / (1.0 - cac / ca)
    };
    let leverage = if n_rows == 0 {
        f64::NAN
    } else {
        cac / n - (ca / n) * (cc / n)
    };
    let degenerate = count_a == 0 || count_a == n_rows || count_c == 0 || count_c == n_rows;
    let chi2 = if degenerate {
        0.0
    } else {
        let o11 = cac;
        let o12 = ca - cac;
        let o21 = cc - cac;
        let o22 = n - ca - cc + cac;
        let det = o11 * o22 - o12 * o21;
        (n * det * det) / (ca * cc * (n - ca) * (n - cc))
    };
    RefMeasures {
        lift,
        conviction,
        leverage,
        chi2,
        p_value: chi2_p_value(chi2),
        jmeasure: ref_jmeasure(n_rows, count_a, count_c, count_ac),
    }
}

/// Independent Benjamini–Hochberg restatement (same tie-break, same
/// ratio-first operation order).
fn ref_bh(p: &[f64]) -> Vec<f64> {
    let m = p.len();
    let mut order: Vec<usize> = (0..m).collect();
    order.sort_by(|&a, &b| p[a].total_cmp(&p[b]).then(a.cmp(&b)));
    let mut adjusted = vec![0.0; m];
    let mut running = f64::INFINITY;
    for rank in (0..m).rev() {
        let i = order[rank];
        let scaled = p[i] * (m as f64 / (rank + 1) as f64);
        if scaled < running {
            running = scaled;
        }
        adjusted[i] = if running > 1.0 { 1.0 } else { running };
    }
    adjusted
}

/// Exact support count of an itemset by direct row iteration — the
/// independent counting path (the production paths count via
/// frequent-itemset lookups or the store's memoized scan).
fn ref_count(encoded: &EncodedTable, set: &Itemset) -> u64 {
    let mut record: Vec<u32> = vec![0; encoded.schema().len()];
    let mut count = 0;
    for row in 0..encoded.num_rows() {
        for (a, slot) in record.iter_mut().enumerate() {
            *slot = encoded.codes(AttributeId(a))[row];
        }
        if set.supported_by(&record) {
            count += 1;
        }
    }
    count
}

fn ulps_eq(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits()
}

/// Analytics oracle: every persisted measure must match the independent
/// contingency-table reference at 0 ulps, the BH adjustment must match
/// the independent restatement and its monotonicity contract, Shapley
/// attributions must be deterministic, efficient, and aligned with the
/// antecedent, and the `ANALYTICS` section must round-trip through the
/// catalog byte-exactly.
pub fn check_analytics(case: &MiningCase) -> Result<(), Divergence> {
    let out = match Miner::new(with_parallelism(&case.config, 1)).mine(&case.table) {
        Ok(out) => out,
        // Rejected configurations have no ruleset to annotate; the
        // error-agreement oracle owns that surface.
        Err(_) => return Ok(()),
    };
    let set = analytics_from_mining(&out, &ANALYTICS_CFG, None);
    if set.rules.len() != out.rules.len() {
        return Err(div(
            "analytics-alignment",
            format!(
                "{} analytics entries for {} rules",
                set.rules.len(),
                out.rules.len()
            ),
        ));
    }

    // Determinism: same mine, same config, bit-identical floats.
    let again = analytics_from_mining(&out, &ANALYTICS_CFG, None);
    if !set.bits_eq(&again) {
        return Err(div(
            "analytics-determinism",
            "two computations over the same mine differ bitwise".to_string(),
        ));
    }

    let n = out.frequent.num_rows;
    let mut ref_p = Vec::with_capacity(out.rules.len());
    for (i, (rule, got)) in out.rules.iter().zip(&set.rules).enumerate() {
        let count_a = ref_count(&out.encoded, &rule.antecedent);
        let count_c = ref_count(&out.encoded, &rule.consequent);
        if got.count_antecedent != count_a || got.count_consequent != count_c {
            return Err(div(
                "analytics-counts",
                format!(
                    "rule {i}: counts ({}, {}) != independent scan ({count_a}, {count_c})",
                    got.count_antecedent, got.count_consequent
                ),
            ));
        }
        let want = ref_measures(n, count_a, count_c, rule.support);
        for (name, got_v, want_v) in [
            ("lift", got.lift, want.lift),
            ("conviction", got.conviction, want.conviction),
            ("leverage", got.leverage, want.leverage),
            ("chi2", got.chi2, want.chi2),
            ("p_value", got.p_value, want.p_value),
            ("jmeasure", got.jmeasure, want.jmeasure),
        ] {
            if !ulps_eq(got_v, want_v) {
                return Err(div(
                    "analytics-measures",
                    format!("rule {i}: {name} {got_v} != reference {want_v} (0 ulps demanded)"),
                ));
            }
        }
        ref_p.push(want.p_value);

        // Shapley structure: one entry per antecedent attribute, in
        // order; the values sum to the J-measure (telescoping exactness
        // up to the sample average's rounding).
        let want_attrs: Vec<u32> = rule.antecedent.items().iter().map(|it| it.attr).collect();
        let got_attrs: Vec<u32> = got.shapley.iter().map(|(a, _)| *a).collect();
        if got_attrs != want_attrs {
            return Err(div(
                "analytics-shapley-attrs",
                format!("rule {i}: attribution over {got_attrs:?}, antecedent is {want_attrs:?}"),
            ));
        }
        let sum: f64 = got.shapley.iter().map(|(_, v)| v).sum();
        if (sum - got.jmeasure).abs() > 1e-9 * got.jmeasure.abs().max(1.0) {
            return Err(div(
                "analytics-shapley-efficiency",
                format!(
                    "rule {i}: attributions sum to {sum}, J-measure is {}",
                    got.jmeasure
                ),
            ));
        }
        if got.shapley.len() == 1 && !ulps_eq(got.shapley[0].1, got.jmeasure) {
            return Err(div(
                "analytics-shapley-single",
                format!(
                    "rule {i}: single-attribute attribution {} != J-measure {}",
                    got.shapley[0].1, got.jmeasure
                ),
            ));
        }
    }

    // BH across the whole ruleset: bit-identical to the restatement, and
    // the order contract (adjusted >= raw, <= 1, monotone in p order).
    let want_adjusted = ref_bh(&ref_p);
    for (i, (got, want)) in set.rules.iter().zip(&want_adjusted).enumerate() {
        if !ulps_eq(got.p_adjusted, *want) {
            return Err(div(
                "analytics-bh",
                format!(
                    "rule {i}: p_adjusted {} != reference {want}",
                    got.p_adjusted
                ),
            ));
        }
        // NaN on either side must flag, so spell the negated >= out.
        if got.p_adjusted.is_nan()
            || got.p_value.is_nan()
            || got.p_adjusted < got.p_value
            || got.p_adjusted > 1.0
        {
            return Err(div(
                "analytics-bh-bounds",
                format!(
                    "rule {i}: p_adjusted {} vs raw {} violates [raw, 1]",
                    got.p_adjusted, got.p_value
                ),
            ));
        }
    }
    let mut order: Vec<usize> = (0..ref_p.len()).collect();
    order.sort_by(|&a, &b| ref_p[a].total_cmp(&ref_p[b]).then(a.cmp(&b)));
    let mut prev = 0.0;
    for &i in &order {
        let adj = set.rules[i].p_adjusted;
        if adj < prev {
            return Err(div(
                "analytics-bh-monotone",
                format!("p_adjusted not monotone in p order at rule {i}: {adj} < {prev}"),
            ));
        }
        prev = adj;
    }

    // The ANALYTICS section round-trips byte-exactly through the catalog.
    let catalog = match Catalog::from_mining(&out).with_analytics(set.clone()) {
        Ok(c) => c,
        Err(e) => {
            return Err(div(
                "analytics-catalog",
                format!("attaching computed analytics failed validation: {e}"),
            ))
        }
    };
    let bytes = catalog.encode();
    let loaded = match Catalog::load_bytes(&bytes, None) {
        Ok(c) => c,
        Err(e) => {
            return Err(div(
                "analytics-catalog",
                format!("decoding a just-encoded analytics catalog failed: {e}"),
            ))
        }
    };
    if loaded.encode() != bytes {
        return Err(div(
            "analytics-catalog",
            "re-encoded analytics catalog differs byte-for-byte".to_string(),
        ));
    }
    match loaded.analytics() {
        Some(decoded) if decoded.bits_eq(&set) => Ok(()),
        Some(_) => Err(div(
            "analytics-catalog",
            "decoded analytics differ bitwise from the computed set".to_string(),
        )),
        None => Err(div(
            "analytics-catalog",
            "ANALYTICS section lost in the round trip".to_string(),
        )),
    }
}

/// Demand two executions of the same case agree: same error, or same
/// frequent itemsets, rules, and interest verdicts.
fn compare_paths(
    check: &'static str,
    reference: &Result<MiningOutput, MinerError>,
    other: &Result<MiningOutput, MinerError>,
) -> Result<(), Divergence> {
    match (reference, other) {
        (Err(a), Err(b)) => {
            if a.to_string() != b.to_string() {
                return Err(div(check, format!("errors differ: `{a}` vs `{b}`")));
            }
            Ok(())
        }
        (Ok(_), Err(b)) => Err(div(
            check,
            format!("reference succeeded but the other path failed: {b}"),
        )),
        (Err(a), Ok(_)) => Err(div(
            check,
            format!("the other path succeeded but the reference failed: {a}"),
        )),
        (Ok(a), Ok(b)) => {
            let itemsets = ItemsetSetDelta::between(&a.frequent, &b.frequent);
            if !itemsets.is_empty() {
                return Err(div(check, itemsets.to_string()));
            }
            let rules = RuleSetDelta::between(&a.rules, &b.rules, 0);
            if !rules.is_empty() {
                return Err(div(check, rules.to_string()));
            }
            if a.interest != b.interest {
                return Err(div(
                    check,
                    format!(
                        "interest verdicts differ: {:?} != {:?}",
                        a.interest, b.interest
                    ),
                ));
            }
            Ok(())
        }
    }
}

/// Run the five mining paths and compare them pairwise.
pub fn check_mining(case: &MiningCase) -> Result<(), Divergence> {
    let serial = Miner::new(with_parallelism(&case.config, 1)).mine(&case.table);
    let parallel =
        Miner::new(with_parallelism(&case.config, case.threads.max(2))).mine(&case.table);
    let out = match (serial, parallel) {
        (Err(s), Err(p)) => {
            // Rejection must not depend on the thread count.
            if s.to_string() != p.to_string() {
                return Err(div(
                    "error-agreement",
                    format!("serial error `{s}` != parallel error `{p}`"),
                ));
            }
            return Ok(());
        }
        (Ok(_), Err(p)) => {
            return Err(div(
                "error-agreement",
                format!("serial succeeded but parallel failed: {p}"),
            ))
        }
        (Err(s), Ok(_)) => {
            return Err(div(
                "error-agreement",
                format!("parallel succeeded but serial failed: {s}"),
            ))
        }
        (Ok(s), Ok(p)) => {
            let itemsets = ItemsetSetDelta::between(&s.frequent, &p.frequent);
            if !itemsets.is_empty() {
                return Err(div("serial-vs-parallel-itemsets", itemsets.to_string()));
            }
            let rules = RuleSetDelta::between(&s.rules, &p.rules, 0);
            if !rules.is_empty() {
                return Err(div("serial-vs-parallel-rules", rules.to_string()));
            }
            if s.interest != p.interest {
                return Err(div(
                    "serial-vs-parallel-interest",
                    format!(
                        "interest verdicts differ: serial {:?} != parallel {:?}",
                        s.interest, p.interest
                    ),
                ));
            }
            s
        }
    };
    check_naive(&out, &case.config)?;
    check_apriori(&out.encoded, &case.config)?;
    check_catalog(&out)
}

fn check_naive(out: &MiningOutput, config: &MinerConfig) -> Result<(), Divergence> {
    let reference = naive_reference(&out.encoded, config);
    let delta = ItemsetSetDelta::between(&reference, &out.frequent);
    if !delta.is_empty() {
        return Err(div("miner-vs-naive", delta.to_string()));
    }
    Ok(())
}

/// Brute-force reference for the miner's frequent itemsets.
///
/// [`naive_mine`] ignores the interest measure, but the miner's Lemma 5
/// prune deletes low-interest *items* after pass 1 — before extension —
/// so every itemset containing a pruned item disappears from the miner's
/// output. Mirror that here: a frequent singleton over a quantitative
/// attribute is pruned exactly when `count × R > rows` (fractional
/// support strictly above `1/R`). Anti-monotonicity guarantees the
/// filtered levels stay downward closed.
fn naive_reference(encoded: &EncodedTable, config: &MinerConfig) -> QuantFrequentItemsets {
    let raw = naive_mine(encoded, config);
    let Some(interest) = config
        .interest
        .as_ref()
        .filter(|i| i.prune_candidates && i.mode == InterestMode::SupportAndConfidence)
    else {
        return raw;
    };
    let rows = raw.num_rows as f64;
    let attrs = encoded.schema().attributes();
    let mut pruned: HashSet<Item> = HashSet::new();
    if let Some(level1) = raw.levels.first() {
        for (set, count) in level1 {
            let item = set.items()[0];
            let quantitative = attrs[item.attr as usize].kind() == AttributeKind::Quantitative;
            if quantitative && *count as f64 * interest.level > rows {
                pruned.insert(item);
            }
        }
    }
    if pruned.is_empty() {
        return raw;
    }
    let mut filtered = QuantFrequentItemsets::new(raw.num_rows);
    for level in &raw.levels {
        let keep: Vec<(Itemset, u64)> = level
            .iter()
            .filter(|(set, _)| set.items().iter().all(|i| !pruned.contains(i)))
            .cloned()
            .collect();
        filtered.push_level(keep);
    }
    filtered
}

/// Cross-check the boolean apriori bridge against an independent
/// enumerator that never goes through transactions at all.
fn check_apriori(encoded: &EncodedTable, config: &MinerConfig) -> Result<(), Divergence> {
    let (db, mapping) = to_transactions(encoded);
    let found = apriori(&db, config.min_support);
    let mut got: BTreeMap<Vec<(u32, u32)>, u64> = BTreeMap::new();
    for level in &found.by_size {
        for itemset in level {
            got.insert(mapping.decode_items(&itemset.items), itemset.support);
        }
    }
    let min_count = ((config.min_support * encoded.num_rows() as f64).ceil() as u64).max(1);
    let all_rows: Vec<usize> = (0..encoded.num_rows()).collect();
    let mut want = BTreeMap::new();
    enumerate_combos(encoded, 0, &all_rows, min_count, &mut Vec::new(), &mut want);
    if got != want {
        let only_want: Vec<_> = want
            .iter()
            .filter(|(k, v)| got.get(*k) != Some(v))
            .take(8)
            .collect();
        let only_got: Vec<_> = got
            .iter()
            .filter(|(k, v)| want.get(*k) != Some(v))
            .take(8)
            .collect();
        return Err(div(
            "apriori-vs-enumeration",
            format!(
                "apriori bridge disagrees with direct enumeration; \
                 enumeration-only (first 8): {only_want:?}; \
                 apriori-only (first 8): {only_got:?}"
            ),
        ));
    }
    Ok(())
}

/// Enumerate every one-code-per-attribute combination whose support count
/// reaches `min_count`, by intersecting row-index lists attribute by
/// attribute. Support anti-monotonicity makes the prefix pruning exact:
/// an infrequent prefix has no frequent extension.
fn enumerate_combos(
    encoded: &EncodedTable,
    attr: usize,
    rows: &[usize],
    min_count: u64,
    prefix: &mut Vec<(u32, u32)>,
    out: &mut BTreeMap<Vec<(u32, u32)>, u64>,
) {
    if attr == encoded.schema().len() {
        return;
    }
    // Either skip this attribute entirely...
    enumerate_combos(encoded, attr + 1, rows, min_count, prefix, out);
    // ...or fix it to each code frequent together with the prefix.
    let codes = encoded.codes(AttributeId(attr));
    let mut by_code: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
    for &row in rows {
        by_code.entry(codes[row]).or_default().push(row);
    }
    for (code, matching) in by_code {
        if matching.len() as u64 >= min_count {
            prefix.push((attr as u32, code));
            out.insert(prefix.clone(), matching.len() as u64);
            enumerate_combos(encoded, attr + 1, &matching, min_count, prefix, out);
            prefix.pop();
        }
    }
}

/// Save → load → query round trip: the decoded catalog must carry the
/// same content, and the interval index must agree with a linear scan on
/// deterministic probes (deterministic so persisted repros re-check
/// identically).
fn check_catalog(out: &MiningOutput) -> Result<(), Divergence> {
    let catalog = Catalog::from_mining(out);
    let bytes = catalog.encode();
    let loaded = match Catalog::load_bytes(&bytes, None) {
        Ok(c) => c,
        Err(e) => {
            return Err(div(
                "catalog-round-trip",
                format!("decoding a just-encoded catalog failed: {e}"),
            ))
        }
    };
    // NaN confidences make a catalog unequal even to itself, exactly like
    // `f64` comparison; content equality is only decidable without them.
    let has_nan = catalog.rules().iter().any(|r| r.confidence.is_nan());
    if !has_nan && !loaded.content_eq(&catalog) {
        let delta = RuleSetDelta::between(catalog.rules(), loaded.rules(), 0);
        return Err(div(
            "catalog-round-trip",
            format!("decoded catalog differs in content; rule delta: {delta}"),
        ));
    }

    let index = RuleIndex::build(&loaded, None);
    let schema = out.encoded.schema();
    // Record probes: the first few rows of the table itself.
    for row in 0..out.encoded.num_rows().min(3) {
        let record: Vec<(u32, u32)> = (0..schema.len())
            .map(|a| (a as u32, out.encoded.codes(AttributeId(a))[row]))
            .collect();
        let got = sorted_dedup(index.query_record(&record));
        let want = sorted_dedup(naive_query_record(&loaded, &record));
        if got != want {
            return Err(div(
                "index-vs-scan-record",
                format!("record {record:?}: index {got:?} != linear scan {want:?}"),
            ));
        }
    }
    // Range probes: full span and both halves of every quantitative
    // attribute's encoded domain.
    for (id, def) in schema.iter() {
        if def.kind() != AttributeKind::Quantitative {
            continue;
        }
        let encoder = out.encoded.encoder(id);
        let card = encoder.cardinality();
        if card == 0 {
            continue;
        }
        let Some((lo, hi)) = encoder.numeric_bounds(0, card - 1) else {
            continue;
        };
        let mid = lo + (hi - lo) / 2.0;
        for (a, b) in [(lo, hi), (lo, mid), (mid, hi)] {
            let got = sorted_dedup(index.query_range(id.index() as u32, a, b));
            let want = sorted_dedup(naive_query_range(&loaded, id.index() as u32, a, b));
            if got != want {
                return Err(div(
                    "index-vs-scan-range",
                    format!(
                        "attribute `{}` range [{a}, {b}]: index {got:?} != linear scan {want:?}",
                        def.name()
                    ),
                ));
            }
        }
    }
    Ok(())
}

fn sorted_dedup(mut ids: Vec<u32>) -> Vec<u32> {
    ids.sort_unstable();
    ids.dedup();
    ids
}

fn cut_points_for(case: &PartitionCase) -> Vec<f64> {
    match case.strategy {
        PartitionStrategy::EquiDepth => EquiDepth.cut_points(&case.values, case.k),
        PartitionStrategy::EquiWidth => EquiWidth.cut_points(&case.values, case.k),
        PartitionStrategy::KMeans => KMeans1D::default().cut_points(&case.values, case.k),
    }
}

/// Partitioner contract: deterministic, strictly increasing cuts, at most
/// `k` intervals, cuts inside the data range, and — for the data-driven
/// strategies — no empty interval. (Equi-width legitimately produces
/// empty intervals on skewed data; that weakness is the paper's point.)
pub fn check_partition(case: &PartitionCase) -> Result<(), Divergence> {
    let cuts = cut_points_for(case);
    if cuts != cut_points_for(case) {
        return Err(div(
            "partition-determinism",
            format!(
                "two runs disagreed on {} values, k={}",
                case.values.len(),
                case.k
            ),
        ));
    }
    if cuts.len() + 1 > case.k.max(1) {
        return Err(div(
            "partition-count",
            format!("{} cuts for k={} (at most k-1 allowed)", cuts.len(), case.k),
        ));
    }
    // partial_cmp so a NaN cut (never `Less`) also registers as a failure.
    let strictly_less = |a: f64, b: f64| a.partial_cmp(&b) == Some(std::cmp::Ordering::Less);
    if let Some(w) = cuts.windows(2).find(|w| !strictly_less(w[0], w[1])) {
        return Err(div(
            "partition-order",
            format!("cuts not strictly increasing: {} then {}", w[0], w[1]),
        ));
    }
    let min = case.values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = case
        .values
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max);
    if let Some(&c) = cuts.iter().find(|&&c| !(c > min && c <= max)) {
        return Err(div(
            "partition-bounds",
            format!("cut {c} outside data range ({min}, {max}]"),
        ));
    }
    if case.strategy != PartitionStrategy::EquiWidth && !cuts.is_empty() {
        // Membership convention: value v lands in interval
        // `cuts.partition_point(|&c| c <= v)`.
        let mut counts = vec![0usize; cuts.len() + 1];
        for &v in &case.values {
            counts[cuts.partition_point(|&c| c <= v)] += 1;
        }
        if let Some(i) = counts.iter().position(|&c| c == 0) {
            return Err(div(
                "partition-empty-interval",
                format!(
                    "{:?} left interval {i} of {} empty (cuts {cuts:?})",
                    case.strategy,
                    counts.len()
                ),
            ));
        }
    }
    Ok(())
}

/// Snapping contract: the snapped range contains the input, has positive
/// width, stays finite — and when both endpoints sit bit-exactly on the
/// interval grid (and the range is non-degenerate), snapping must be the
/// identity: any widening there is a spurious interval.
pub fn check_snap(case: &SnapCase) -> Result<(), Divergence> {
    let &SnapCase { lo, hi, origin, w } = case;
    let (s_lo, s_hi) = snap_to_intervals(lo, hi, origin, w);
    if !s_lo.is_finite() || !s_hi.is_finite() {
        return Err(div(
            "snap-finite",
            format!("snap({lo}, {hi}) produced non-finite ({s_lo}, {s_hi})"),
        ));
    }
    if s_lo > lo || s_hi < hi {
        return Err(div(
            "snap-containment",
            format!("snapped ({s_lo}, {s_hi}) does not contain input ({lo}, {hi})"),
        ));
    }
    // Both ends are finite by now, so `<=` is the exact negation.
    if s_hi <= s_lo {
        return Err(div(
            "snap-zero-width",
            format!("snapped range ({s_lo}, {s_hi}) has no width"),
        ));
    }
    // Bit-exact grid case: float rounding is out of the picture, so the
    // necessity argument is exact and we can demand identity.
    let r_lo = ((lo - origin) / w).round();
    let r_hi = ((hi - origin) / w).round();
    if hi > lo && origin + r_lo * w == lo && origin + r_hi * w == hi && (s_lo, s_hi) != (lo, hi) {
        return Err(div(
            "snap-spurious-interval",
            format!(
                "({lo}, {hi}) lies exactly on the grid (origin {origin}, width {w}) \
                 but snapped to ({s_lo}, {s_hi})"
            ),
        ));
    }
    Ok(())
}

/// Equation-2 contract: `Ok(n)` must be the true ceiling of the raw count
/// for valid inputs and never exceed [`MAX_INTERVALS`]; `Err` must be
/// justified by an actually-invalid input or an overflowing count.
pub fn check_intervals(case: &IntervalsCase) -> Result<(), Divergence> {
    let &IntervalsCase {
        num_quantitative,
        minsup,
        level,
    } = case;
    let raw = 2.0 * num_quantitative as f64 / (minsup * (level - 1.0));
    let valid_params = level > 1.0 && minsup > 0.0 && minsup <= 1.0;
    match num_intervals(num_quantitative, minsup, level) {
        Ok(n) => {
            if !valid_params {
                return Err(div(
                    "intervals-accepts-invalid",
                    format!("num_intervals({num_quantitative}, {minsup}, {level}) = Ok({n})"),
                ));
            }
            if n > MAX_INTERVALS {
                return Err(div(
                    "intervals-overflow",
                    format!("Ok({n}) exceeds MAX_INTERVALS = {MAX_INTERVALS}"),
                ));
            }
            if !raw.is_finite() || n as f64 != raw.ceil() {
                return Err(div(
                    "intervals-count",
                    format!("Ok({n}) but the raw Equation-2 count is {raw}"),
                ));
            }
        }
        Err(e) => {
            let justified = !valid_params || !raw.is_finite() || raw > MAX_INTERVALS as f64;
            if justified {
                return Ok(());
            }
            return Err(div(
                "intervals-rejects-valid",
                format!("num_intervals({num_quantitative}, {minsup}, {level}) = Err({e})"),
            ));
        }
    }
    Ok(())
}
