//! Differential fuzzing oracle for the quantitative-rule miner.
//!
//! Every iteration draws a random case — skewed toward the edge regions
//! where boundary bugs live — and cross-checks every execution path the
//! repo has for the same question: serial vs parallel mining, the
//! brute-force enumerator, the boolean apriori bridge, the `.qarcat`
//! save → load → query round trip, the memoized pooled scan against
//! the direct serial scan on duplicate-heavy categorical tables, the
//! blocked bitmask kernel (serial and pooled) against the direct serial
//! scan on boundary-skewed tables, count-distribution distributed
//! mining over worker threads against the single-process miner (down to
//! byte-identical normalized catalogs), and incremental catalog updates
//! (mine the base, merge a delta-only scan into the persisted counts)
//! against a from-scratch mine of base+delta down to byte-identical
//! catalogs including the `COUNTS` section. On divergence the case is shrunk to a
//! minimal repro and rendered as a self-contained text fixture that
//! [`repro::parse`] turns back into an executable case.
//!
//! The crate does no I/O: [`run_fuzz`] returns fixture *strings*; writing
//! them under `tests/fuzz_repros/` is the CLI's job.

#![warn(missing_docs)]

pub mod case;
pub mod check;
pub mod gen;
pub mod repro;
pub mod shrink;

pub use case::{IncrementalCase, IntervalsCase, MiningCase, PartitionCase, ReproCase, SnapCase};
pub use check::{check_case, Divergence};
pub use gen::gen_case;
pub use repro::ReproError;
pub use shrink::shrink;

use qar_prng::Prng;
use std::collections::BTreeMap;

/// Per-iteration seed mixing constant (the same scheme `qar_prng::cases`
/// uses), so any single iteration can be replayed in isolation from the
/// base seed and its index.
const SEED_MIX: u64 = 0xA076_1D64_78BD_642F;

/// Stop collecting failures after this many: one bug tends to repeat for
/// thousands of iterations, and each failure costs a shrink.
const MAX_FAILURES: usize = 5;

/// One divergence, minimized and ready to persist.
#[derive(Debug)]
pub struct FuzzFailure {
    /// Iteration index within the run.
    pub iteration: u64,
    /// The derived seed that reproduces this iteration on its own.
    pub case_seed: u64,
    /// The divergence the *minimized* case still triggers.
    pub divergence: Divergence,
    /// The minimized case itself.
    pub case: ReproCase,
    /// The case rendered as a fixture file, divergence comment included.
    pub fixture: String,
}

/// Outcome of a fuzz run.
#[derive(Debug)]
pub struct FuzzReport {
    /// Iterations actually executed (may stop early after repeated failures).
    pub iterations: u64,
    /// How many cases of each kind were drawn.
    pub kind_counts: BTreeMap<&'static str, u64>,
    /// Minimized failures, in discovery order.
    pub failures: Vec<FuzzFailure>,
}

impl FuzzReport {
    /// True when every path agreed on every case.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Run `iters` fuzz iterations from `seed`. `log` receives progress
/// lines (failures and shrink announcements) as they happen.
pub fn run_fuzz(iters: u64, seed: u64, mut log: impl FnMut(&str)) -> FuzzReport {
    let mut report = FuzzReport {
        iterations: 0,
        kind_counts: BTreeMap::new(),
        failures: Vec::new(),
    };
    for i in 0..iters {
        let case_seed = seed ^ i.wrapping_mul(SEED_MIX);
        let mut rng = Prng::seed_from_u64(case_seed);
        let case = gen_case(&mut rng);
        *report.kind_counts.entry(case.kind()).or_insert(0) += 1;
        report.iterations += 1;
        if let Err(first) = check_case(&case) {
            log(&format!(
                "iteration {i} (case seed {case_seed:#x}): {first}; shrinking"
            ));
            let shrunk = shrink(case);
            // The shrinker guarantees the result still fails; re-check to
            // report the divergence of the *minimized* case.
            let divergence = check_case(&shrunk).err().unwrap_or(first);
            let header = format!("{divergence}\nfound at iteration {i}, case seed {case_seed:#x}");
            let fixture = repro::serialize(&shrunk, &header);
            report.failures.push(FuzzFailure {
                iteration: i,
                case_seed,
                divergence,
                case: shrunk,
                fixture,
            });
            if report.failures.len() >= MAX_FAILURES {
                log(&format!(
                    "{MAX_FAILURES} failures collected; stopping early"
                ));
                break;
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The standing guarantee this PR establishes: a fixed-seed fuzz run
    /// over every path finds zero divergences.
    #[test]
    fn fuzz_smoke_is_clean() {
        let report = run_fuzz(100, 0x5EED, |_| {});
        assert_eq!(report.iterations, 100);
        assert!(
            report.ok(),
            "divergences found:\n{}",
            report
                .failures
                .iter()
                .map(|f| f.fixture.as_str())
                .collect::<Vec<_>>()
                .join("\n---\n")
        );
        // The generator mix must actually exercise every case kind.
        assert!(report.kind_counts.contains_key("mining"));
        assert!(report.kind_counts.contains_key("memo"));
        assert!(report.kind_counts.contains_key("kernel"));
        assert!(report.kind_counts.contains_key("analytics"));
        assert!(report.kind_counts.contains_key("distributed"));
        assert!(report.kind_counts.contains_key("incremental"));
        assert!(report.kind_counts.len() >= 8, "{:?}", report.kind_counts);
    }

    /// Same seed, same run — byte for byte.
    #[test]
    fn run_fuzz_is_deterministic() {
        let a = run_fuzz(40, 42, |_| {});
        let b = run_fuzz(40, 42, |_| {});
        assert_eq!(a.kind_counts, b.kind_counts);
        assert_eq!(a.failures.len(), b.failures.len());
    }

    /// Each iteration's case depends only on its derived seed, so a
    /// failure can be replayed without re-running the whole sweep.
    #[test]
    fn iterations_replay_independently() {
        let seed = 0xBEEF;
        let i = 17u64;
        let case_seed = seed ^ i.wrapping_mul(SEED_MIX);
        let mut rng1 = Prng::seed_from_u64(case_seed);
        let mut rng2 = Prng::seed_from_u64(case_seed);
        let a = gen_case(&mut rng1);
        let b = gen_case(&mut rng2);
        assert_eq!(
            repro::serialize(&a, ""),
            repro::serialize(&b, ""),
            "replayed case differs"
        );
    }
}
