//! Property tests: the R*-tree must agree with a linear scan on every
//! query, through arbitrary interleavings of inserts, removals, and bulk
//! loads, while maintaining its structural invariants.

use proptest::prelude::*;
use qar_rtree::{NaiveRectIndex, RStarTree, Rect};

#[derive(Debug, Clone)]
enum Op {
    Insert { lo: [i32; 2], extent: [u8; 2] },
    Remove { index: usize },
    QueryPoint { at: [i32; 2] },
    QueryWindow { lo: [i32; 2], extent: [u8; 2] },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (any::<[i16; 2]>(), any::<[u8; 2]>()).prop_map(|(lo, extent)| Op::Insert {
            lo: [lo[0] as i32, lo[1] as i32],
            extent,
        }),
        1 => (0usize..64).prop_map(|index| Op::Remove { index }),
        2 => any::<[i16; 2]>().prop_map(|at| Op::QueryPoint { at: [at[0] as i32, at[1] as i32] }),
        1 => (any::<[i16; 2]>(), any::<[u8; 2]>()).prop_map(|(lo, extent)| Op::QueryWindow {
            lo: [lo[0] as i32, lo[1] as i32],
            extent,
        }),
    ]
}

fn rect(lo: [i32; 2], extent: [u8; 2]) -> Rect {
    Rect::new(
        &[lo[0] as f64, lo[1] as f64],
        &[(lo[0] + extent[0] as i32) as f64, (lo[1] + extent[1] as i32) as f64],
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tree_agrees_with_naive_under_arbitrary_ops(
        ops in prop::collection::vec(op_strategy(), 1..200),
        max_entries in 4usize..12,
    ) {
        let mut tree = RStarTree::with_max_entries(max_entries);
        let mut naive = NaiveRectIndex::new();
        let mut live: Vec<(Rect, u32)> = Vec::new();
        let mut next_id = 0u32;
        for op in ops {
            match op {
                Op::Insert { lo, extent } => {
                    let r = rect(lo, extent);
                    tree.insert(r, next_id);
                    naive.insert(r, next_id);
                    live.push((r, next_id));
                    next_id += 1;
                }
                Op::Remove { index } => {
                    if live.is_empty() { continue; }
                    let (r, id) = live.swap_remove(index % live.len());
                    prop_assert!(tree.remove(&r, &id));
                    prop_assert!(naive.remove(&r, &id));
                }
                Op::QueryPoint { at } => {
                    let p = [at[0] as f64, at[1] as f64];
                    let mut a = Vec::new();
                    let mut b = Vec::new();
                    tree.query_point(&p, |v| a.push(*v));
                    naive.query_point(&p, |v| b.push(*v));
                    a.sort_unstable();
                    b.sort_unstable();
                    prop_assert_eq!(a, b);
                }
                Op::QueryWindow { lo, extent } => {
                    let w = rect(lo, extent);
                    let mut a = Vec::new();
                    let mut b = Vec::new();
                    tree.query_intersecting(&w, |v| a.push(*v));
                    naive.query_intersecting(&w, |v| b.push(*v));
                    a.sort_unstable();
                    b.sort_unstable();
                    prop_assert_eq!(a, b);
                }
            }
            tree.check_invariants();
        }
        prop_assert_eq!(tree.len(), live.len());
    }

    #[test]
    fn bulk_load_equals_incremental_everywhere(
        rects in prop::collection::vec((any::<[i16; 2]>(), any::<[u8; 2]>()), 1..300),
        probes in prop::collection::vec(any::<[i16; 2]>(), 1..50),
    ) {
        let items: Vec<(Rect, usize)> = rects
            .iter()
            .enumerate()
            .map(|(i, (lo, extent))| (rect([lo[0] as i32, lo[1] as i32], *extent), i))
            .collect();
        let bulk = RStarTree::bulk_load(items.clone());
        bulk.check_invariants();
        let mut incr = RStarTree::with_max_entries(8);
        for (r, v) in items {
            incr.insert(r, v);
        }
        for p in probes {
            let point = [p[0] as f64, p[1] as f64];
            let mut a = Vec::new();
            let mut b = Vec::new();
            bulk.query_point(&point, |v| a.push(*v));
            incr.query_point(&point, |v| b.push(*v));
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b);
        }
    }
}
