//! Randomized property tests: the R*-tree must agree with a linear scan on
//! every query, through arbitrary interleavings of inserts, removals, and
//! bulk loads, while maintaining its structural invariants.

use qar_prng::{cases, Prng};
use qar_rtree::{NaiveRectIndex, RStarTree, Rect};

#[derive(Debug, Clone)]
enum Op {
    Insert { lo: [i32; 2], extent: [u8; 2] },
    Remove { index: usize },
    QueryPoint { at: [i32; 2] },
    QueryWindow { lo: [i32; 2], extent: [u8; 2] },
}

fn random_lo(rng: &mut Prng) -> [i32; 2] {
    [rng.gen_range(-500..500), rng.gen_range(-500..500)]
}

fn random_extent(rng: &mut Prng) -> [u8; 2] {
    [rng.gen_range(0..64u8), rng.gen_range(0..64u8)]
}

fn random_op(rng: &mut Prng) -> Op {
    // Same op mix as the old proptest strategy: 3:1:2:1.
    match rng.gen_range(0..7u32) {
        0..=2 => Op::Insert {
            lo: random_lo(rng),
            extent: random_extent(rng),
        },
        3 => Op::Remove {
            index: rng.gen_range(0..64usize),
        },
        4..=5 => Op::QueryPoint { at: random_lo(rng) },
        _ => Op::QueryWindow {
            lo: random_lo(rng),
            extent: random_extent(rng),
        },
    }
}

fn rect(lo: [i32; 2], extent: [u8; 2]) -> Rect {
    Rect::new(
        &[lo[0] as f64, lo[1] as f64],
        &[
            (lo[0] + extent[0] as i32) as f64,
            (lo[1] + extent[1] as i32) as f64,
        ],
    )
}

#[test]
fn tree_agrees_with_naive_under_arbitrary_ops() {
    cases(64, 0x5EED_2176_0001, |case, rng| {
        let num_ops = rng.gen_range(1..200usize);
        let max_entries = rng.gen_range(4..12usize);
        let mut tree = RStarTree::with_max_entries(max_entries);
        let mut naive = NaiveRectIndex::new();
        let mut live: Vec<(Rect, u32)> = Vec::new();
        let mut next_id = 0u32;
        for _ in 0..num_ops {
            match random_op(rng) {
                Op::Insert { lo, extent } => {
                    let r = rect(lo, extent);
                    tree.insert(r, next_id);
                    naive.insert(r, next_id);
                    live.push((r, next_id));
                    next_id += 1;
                }
                Op::Remove { index } => {
                    if live.is_empty() {
                        continue;
                    }
                    let (r, id) = live.swap_remove(index % live.len());
                    assert!(tree.remove(&r, &id), "case {case}");
                    assert!(naive.remove(&r, &id), "case {case}");
                }
                Op::QueryPoint { at } => {
                    let p = [at[0] as f64, at[1] as f64];
                    let mut a = Vec::new();
                    let mut b = Vec::new();
                    tree.query_point(&p, |v| a.push(*v));
                    naive.query_point(&p, |v| b.push(*v));
                    a.sort_unstable();
                    b.sort_unstable();
                    assert_eq!(a, b, "case {case}");
                }
                Op::QueryWindow { lo, extent } => {
                    let w = rect(lo, extent);
                    let mut a = Vec::new();
                    let mut b = Vec::new();
                    tree.query_intersecting(&w, |v| a.push(*v));
                    naive.query_intersecting(&w, |v| b.push(*v));
                    a.sort_unstable();
                    b.sort_unstable();
                    assert_eq!(a, b, "case {case}");
                }
            }
            tree.check_invariants();
        }
        assert_eq!(tree.len(), live.len(), "case {case}");
    });
}

#[test]
fn bulk_load_equals_incremental_everywhere() {
    cases(48, 0x5EED_2176_0002, |case, rng| {
        let n = rng.gen_range(1..300usize);
        let items: Vec<(Rect, usize)> = (0..n)
            .map(|i| (rect(random_lo(rng), random_extent(rng)), i))
            .collect();
        let bulk = RStarTree::bulk_load(items.clone());
        bulk.check_invariants();
        let mut incr = RStarTree::with_max_entries(8);
        for (r, v) in items {
            incr.insert(r, v);
        }
        let probes = rng.gen_range(1..50usize);
        for _ in 0..probes {
            let at = random_lo(rng);
            let point = [at[0] as f64, at[1] as f64];
            let mut a = Vec::new();
            let mut b = Vec::new();
            bulk.query_point(&point, |v| a.push(*v));
            incr.query_point(&point, |v| b.push(*v));
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "case {case}");
        }
    });
}
