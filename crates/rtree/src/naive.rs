//! A linear-scan rectangle index: the correctness oracle for the R*-tree
//! and the "no index" baseline in the counting ablation.

use crate::rect::Rect;

/// Stores `(Rect, T)` pairs in a vector and answers queries by scanning.
/// O(n) per query, trivially correct.
#[derive(Debug, Clone, Default)]
pub struct NaiveRectIndex<T> {
    items: Vec<(Rect, T)>,
}

impl<T> NaiveRectIndex<T> {
    /// An empty index.
    pub fn new() -> Self {
        NaiveRectIndex { items: Vec::new() }
    }

    /// Add one rectangle.
    pub fn insert(&mut self, rect: Rect, value: T) {
        self.items.push((rect, value));
    }

    /// Number of stored rectangles.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Visit every value whose rectangle contains `point`.
    pub fn query_point<'a>(&'a self, point: &[f64], mut visit: impl FnMut(&'a T)) {
        for (rect, value) in &self.items {
            if rect.contains_point(point) {
                visit(value);
            }
        }
    }

    /// Visit every value whose rectangle intersects `window`.
    pub fn query_intersecting<'a>(&'a self, window: &Rect, mut visit: impl FnMut(&'a T)) {
        for (rect, value) in &self.items {
            if rect.intersects(window) {
                visit(value);
            }
        }
    }

    /// Remove the first rectangle equal to `rect` carrying a value equal to
    /// `value`; returns whether anything was removed.
    pub fn remove(&mut self, rect: &Rect, value: &T) -> bool
    where
        T: PartialEq,
    {
        if let Some(pos) = self.items.iter().position(|(r, v)| r == rect && v == value) {
            self.items.swap_remove(pos);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_queries() {
        let mut idx = NaiveRectIndex::new();
        idx.insert(Rect::new(&[0.0], &[5.0]), "a");
        idx.insert(Rect::new(&[3.0], &[8.0]), "b");
        let mut hits = Vec::new();
        idx.query_point(&[4.0], |v| hits.push(*v));
        hits.sort();
        assert_eq!(hits, vec!["a", "b"]);
        hits.clear();
        idx.query_point(&[9.0], |v| hits.push(*v));
        assert!(hits.is_empty());
    }

    #[test]
    fn window_queries_and_remove() {
        let mut idx = NaiveRectIndex::new();
        idx.insert(Rect::new(&[0.0, 0.0], &[1.0, 1.0]), 1);
        idx.insert(Rect::new(&[5.0, 5.0], &[6.0, 6.0]), 2);
        let mut hits = Vec::new();
        idx.query_intersecting(&Rect::new(&[0.5, 0.5], &[5.5, 5.5]), |v| hits.push(*v));
        hits.sort();
        assert_eq!(hits, vec![1, 2]);
        assert!(idx.remove(&Rect::new(&[0.0, 0.0], &[1.0, 1.0]), &1));
        assert!(!idx.remove(&Rect::new(&[0.0, 0.0], &[1.0, 1.0]), &1));
        assert_eq!(idx.len(), 1);
    }
}
