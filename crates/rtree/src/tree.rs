//! The R*-tree proper: arena-allocated nodes, forced reinsert, topological
//! split, STR bulk load, point/window queries, and deletion.

use crate::rect::Rect;

/// Default maximum entries per node. 32 keeps nodes around two cache lines
/// of child ids while staying close to BKSS90's page-sized nodes in spirit.
pub const DEFAULT_MAX_ENTRIES: usize = 32;

/// Fraction of `M+1` entries removed by forced reinsert; BKSS90 found 30 %
/// to perform best.
const REINSERT_FRACTION: f64 = 0.3;

const INVALID: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Node {
    /// 0 for leaves; parents are exactly one level above their children.
    level: u32,
    /// Arena id of the parent node, `INVALID` for the root.
    parent: u32,
    /// Minimum bounding rectangle of all entries (meaningless when empty).
    mbr: Rect,
    /// Child node ids (`level > 0`) or item ids (`level == 0`).
    children: Vec<u32>,
}

/// An R*-tree mapping rectangles to values of type `T`.
///
/// ```
/// use qar_rtree::{RStarTree, Rect};
///
/// let mut tree = RStarTree::new();
/// tree.insert(Rect::new(&[0.0, 0.0], &[10.0, 10.0]), "big");
/// tree.insert(Rect::new(&[2.0, 2.0], &[3.0, 3.0]), "small");
/// let mut hits: Vec<&str> = Vec::new();
/// tree.query_point(&[2.5, 2.5], |v| hits.push(v));
/// hits.sort();
/// assert_eq!(hits, ["big", "small"]);
/// ```
#[derive(Debug, Clone)]
pub struct RStarTree<T> {
    nodes: Vec<Node>,
    free_nodes: Vec<u32>,
    items: Vec<Option<(Rect, T)>>,
    free_items: Vec<u32>,
    root: u32,
    len: usize,
    max_entries: usize,
    min_entries: usize,
    dims: Option<usize>,
}

impl<T> Default for RStarTree<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> RStarTree<T> {
    /// An empty tree with the default node capacity.
    pub fn new() -> Self {
        Self::with_max_entries(DEFAULT_MAX_ENTRIES)
    }

    /// An empty tree whose nodes hold at most `max_entries` entries
    /// (minimum fill is 40 %, per BKSS90). `max_entries` must be ≥ 4.
    pub fn with_max_entries(max_entries: usize) -> Self {
        assert!(max_entries >= 4, "nodes must hold at least 4 entries");
        let min_entries = ((max_entries as f64 * 0.4).floor() as usize).max(2);
        let root = Node {
            level: 0,
            parent: INVALID,
            mbr: Rect::point(&[0.0]),
            children: Vec::new(),
        };
        RStarTree {
            nodes: vec![root],
            free_nodes: Vec::new(),
            items: Vec::new(),
            free_items: Vec::new(),
            root: 0,
            len: 0,
            max_entries,
            min_entries,
            dims: None,
        }
    }

    /// Number of stored rectangles.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the tree (0 for an empty/leaf-only tree).
    pub fn height(&self) -> u32 {
        self.nodes[self.root as usize].level
    }

    /// Rough heap footprint in bytes — the input to the paper's
    /// array-vs-R*-tree counting heuristic.
    pub fn approx_bytes(&self) -> usize {
        let node_bytes: usize = self
            .nodes
            .iter()
            .map(|n| std::mem::size_of::<Node>() + n.children.capacity() * 4)
            .sum();
        let item_bytes = self.items.capacity() * std::mem::size_of::<Option<(Rect, T)>>();
        node_bytes + item_bytes
    }

    fn alloc_node(&mut self, node: Node) -> u32 {
        if let Some(id) = self.free_nodes.pop() {
            self.nodes[id as usize] = node;
            id
        } else {
            self.nodes.push(node);
            (self.nodes.len() - 1) as u32
        }
    }

    fn alloc_item(&mut self, rect: Rect, value: T) -> u32 {
        if let Some(id) = self.free_items.pop() {
            self.items[id as usize] = Some((rect, value));
            id
        } else {
            self.items.push(Some((rect, value)));
            (self.items.len() - 1) as u32
        }
    }

    fn entry_rect(&self, level: u32, child: u32) -> Rect {
        if level == 0 {
            self.items[child as usize].as_ref().expect("live item").0
        } else {
            self.nodes[child as usize].mbr
        }
    }

    fn recompute_mbr(&mut self, node_id: u32) {
        let node = &self.nodes[node_id as usize];
        let level = node.level;
        let mut mbr: Option<Rect> = None;
        for &c in &node.children {
            let r = self.entry_rect(level, c);
            mbr = Some(match mbr {
                Some(m) => m.union(&r),
                None => r,
            });
        }
        if let Some(m) = mbr {
            self.nodes[node_id as usize].mbr = m;
        }
    }

    /// Insert `rect` with `value`. All rectangles in one tree must share
    /// their dimensionality.
    pub fn insert(&mut self, rect: Rect, value: T) {
        match self.dims {
            None => self.dims = Some(rect.dims()),
            Some(d) => assert_eq!(d, rect.dims(), "mixed dimensionality"),
        }
        let item = self.alloc_item(rect, value);
        let mut reinserted_levels: u64 = 0;
        self.insert_entry(item, rect, 0, &mut reinserted_levels);
        self.len += 1;
    }

    /// Insert an entry (item or subtree) into a node at `target_level`.
    fn insert_entry(&mut self, child: u32, rect: Rect, target_level: u32, reinserted: &mut u64) {
        let node_id = self.choose_subtree(&rect, target_level);
        self.nodes[node_id as usize].children.push(child);
        if target_level > 0 {
            self.nodes[child as usize].parent = node_id;
        }
        // Expand MBRs along the path to the root.
        let mut cur = node_id;
        loop {
            let node = &mut self.nodes[cur as usize];
            if node.children.len() == 1 {
                node.mbr = rect;
            } else {
                node.mbr = node.mbr.union(&rect);
            }
            if node.parent == INVALID {
                break;
            }
            cur = node.parent;
        }
        self.handle_overflow_chain(node_id, reinserted);
    }

    fn handle_overflow_chain(&mut self, start: u32, reinserted: &mut u64) {
        let mut cur = start;
        loop {
            if self.nodes[cur as usize].children.len() <= self.max_entries {
                break;
            }
            let level = self.nodes[cur as usize].level;
            let is_root = cur == self.root;
            let level_bit = 1u64 << level.min(63);
            if !is_root && (*reinserted & level_bit) == 0 {
                *reinserted |= level_bit;
                self.forced_reinsert(cur, reinserted);
                // Reinsertion may have re-grown this node or others; their
                // overflow was handled by the recursive inserts.
                break;
            }
            match self.split(cur) {
                Some(parent) => cur = parent,
                None => break, // split created a new root
            }
        }
    }

    /// Remove the 30 % of entries farthest from the node centre and
    /// reinsert them, closest first ("close reinsert").
    fn forced_reinsert(&mut self, node_id: u32, reinserted: &mut u64) {
        let level = self.nodes[node_id as usize].level;
        let node_mbr = self.nodes[node_id as usize].mbr;
        let mut ranked: Vec<(u32, Rect, f64)> = self.nodes[node_id as usize]
            .children
            .iter()
            .map(|&c| {
                let r = self.entry_rect(level, c);
                (c, r, r.center_distance_sq(&node_mbr))
            })
            .collect();
        // Sort by distance, farthest first; ties broken by id for
        // determinism.
        ranked.sort_by(|a, b| b.2.total_cmp(&a.2).then(a.0.cmp(&b.0)));
        let p = ((self.max_entries as f64 + 1.0) * REINSERT_FRACTION).ceil() as usize;
        let p = p.clamp(1, ranked.len() - 1);
        let removed: Vec<(u32, Rect)> = ranked[..p].iter().map(|&(c, r, _)| (c, r)).collect();
        let keep: Vec<u32> = ranked[p..].iter().map(|&(c, _, _)| c).collect();
        self.nodes[node_id as usize].children = keep;
        self.recompute_path_mbrs(node_id);
        // Close reinsert: nearest of the removed entries first.
        for &(child, rect) in removed.iter().rev() {
            self.insert_entry(child, rect, level, reinserted);
        }
    }

    fn recompute_path_mbrs(&mut self, mut node_id: u32) {
        loop {
            self.recompute_mbr(node_id);
            let parent = self.nodes[node_id as usize].parent;
            if parent == INVALID {
                break;
            }
            node_id = parent;
        }
    }

    /// BKSS90 ChooseSubtree: descend to the node at `target_level` that
    /// needs the least enlargement, preferring overlap enlargement when the
    /// children are leaves.
    fn choose_subtree(&self, rect: &Rect, target_level: u32) -> u32 {
        let mut cur = self.root;
        while self.nodes[cur as usize].level > target_level {
            let node = &self.nodes[cur as usize];
            let children = &node.children;
            let child_level = node.level - 1;
            let best = if child_level == 0 && target_level == 0 {
                self.pick_min_overlap_child(children, rect)
            } else {
                self.pick_min_area_child(children, child_level + 1, rect)
            };
            cur = best;
        }
        cur
    }

    fn pick_min_area_child(&self, children: &[u32], parent_level: u32, rect: &Rect) -> u32 {
        let mut best = children[0];
        let mut best_enlarge = f64::INFINITY;
        let mut best_area = f64::INFINITY;
        for &c in children {
            let r = self.entry_rect(parent_level, c);
            let enlarge = r.enlargement(rect);
            let area = r.area();
            if enlarge < best_enlarge || (enlarge == best_enlarge && area < best_area) {
                best = c;
                best_enlarge = enlarge;
                best_area = area;
            }
        }
        best
    }

    fn pick_min_overlap_child(&self, children: &[u32], rect: &Rect) -> u32 {
        let rects: Vec<Rect> = children
            .iter()
            .map(|&c| self.nodes[c as usize].mbr)
            .collect();
        let mut best = children[0];
        let mut best_key = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
        for (i, &c) in children.iter().enumerate() {
            let grown = rects[i].union(rect);
            let mut overlap_delta = 0.0;
            for (j, other) in rects.iter().enumerate() {
                if j != i {
                    overlap_delta += grown.overlap_area(other) - rects[i].overlap_area(other);
                }
            }
            let key = (overlap_delta, rects[i].enlargement(rect), rects[i].area());
            if key < best_key {
                best = c;
                best_key = key;
            }
        }
        best
    }

    /// Topological split. Returns the parent node id to continue the
    /// overflow chain at, or `None` when a new root was created.
    fn split(&mut self, node_id: u32) -> Option<u32> {
        let level = self.nodes[node_id as usize].level;
        let entries: Vec<(u32, Rect)> = self.nodes[node_id as usize]
            .children
            .iter()
            .map(|&c| (c, self.entry_rect(level, c)))
            .collect();
        let dims = entries[0].1.dims();
        let m = self.min_entries;
        let total = entries.len();
        debug_assert!(total == self.max_entries + 1);

        // ChooseSplitAxis: minimize the margin sum over all distributions.
        let mut best_axis = 0;
        let mut best_margin = f64::INFINITY;
        for axis in 0..dims {
            let mut margin_sum = 0.0;
            for sort_by_hi in [false, true] {
                let sorted = Self::sorted_entries(&entries, axis, sort_by_hi);
                for k in m..=(total - m) {
                    let (bb1, bb2) = Self::group_bbs(&sorted, k);
                    margin_sum += bb1.margin() + bb2.margin();
                }
            }
            if margin_sum < best_margin {
                best_margin = margin_sum;
                best_axis = axis;
            }
        }

        // ChooseSplitIndex: minimum overlap, ties by minimum area sum.
        let mut best_key = (f64::INFINITY, f64::INFINITY);
        let mut best_split: Option<(Vec<(u32, Rect)>, usize)> = None;
        for sort_by_hi in [false, true] {
            let sorted = Self::sorted_entries(&entries, best_axis, sort_by_hi);
            for k in m..=(total - m) {
                let (bb1, bb2) = Self::group_bbs(&sorted, k);
                let key = (bb1.overlap_area(&bb2), bb1.area() + bb2.area());
                if key < best_key {
                    best_key = key;
                    best_split = Some((sorted.clone(), k));
                }
            }
        }
        let (sorted, k) = best_split.expect("at least one distribution");
        let group1: Vec<u32> = sorted[..k].iter().map(|e| e.0).collect();
        let group2: Vec<u32> = sorted[k..].iter().map(|e| e.0).collect();

        let parent = self.nodes[node_id as usize].parent;
        self.nodes[node_id as usize].children = group1;
        self.recompute_mbr(node_id);
        let sibling = self.alloc_node(Node {
            level,
            parent: INVALID,
            mbr: Rect::point(&[0.0]),
            children: group2,
        });
        if level > 0 {
            let kids = self.nodes[sibling as usize].children.clone();
            for c in kids {
                self.nodes[c as usize].parent = sibling;
            }
        }
        self.recompute_mbr(sibling);

        if parent == INVALID {
            // Grow the tree: fresh root adopting both halves.
            let new_root = self.alloc_node(Node {
                level: level + 1,
                parent: INVALID,
                mbr: Rect::point(&[0.0]),
                children: vec![node_id, sibling],
            });
            self.nodes[node_id as usize].parent = new_root;
            self.nodes[sibling as usize].parent = new_root;
            self.recompute_mbr(new_root);
            self.root = new_root;
            None
        } else {
            self.nodes[sibling as usize].parent = parent;
            self.nodes[parent as usize].children.push(sibling);
            // Parent coverage is unchanged, but its child count grew; the
            // caller continues the overflow chain there.
            Some(parent)
        }
    }

    fn sorted_entries(entries: &[(u32, Rect)], axis: usize, by_hi: bool) -> Vec<(u32, Rect)> {
        let mut v = entries.to_vec();
        v.sort_by(|a, b| {
            let (pa, sa) = if by_hi {
                (a.1.hi(axis), a.1.lo(axis))
            } else {
                (a.1.lo(axis), a.1.hi(axis))
            };
            let (pb, sb) = if by_hi {
                (b.1.hi(axis), b.1.lo(axis))
            } else {
                (b.1.lo(axis), b.1.hi(axis))
            };
            pa.total_cmp(&pb)
                .then(sa.total_cmp(&sb))
                .then(a.0.cmp(&b.0))
        });
        v
    }

    fn group_bbs(sorted: &[(u32, Rect)], k: usize) -> (Rect, Rect) {
        let bb =
            |slice: &[(u32, Rect)]| slice[1..].iter().fold(slice[0].1, |acc, e| acc.union(&e.1));
        (bb(&sorted[..k]), bb(&sorted[k..]))
    }

    /// Visit every value whose rectangle contains `point`.
    pub fn query_point<'a>(&'a self, point: &[f64], mut visit: impl FnMut(&'a T)) {
        if self.len == 0 {
            return;
        }
        debug_assert_eq!(Some(point.len()), self.dims);
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            let node = &self.nodes[id as usize];
            if node.level == 0 {
                for &item in &node.children {
                    let (rect, value) = self.items[item as usize].as_ref().expect("live item");
                    if rect.contains_point(point) {
                        visit(value);
                    }
                }
            } else {
                for &child in &node.children {
                    if self.nodes[child as usize].mbr.contains_point(point) {
                        stack.push(child);
                    }
                }
            }
        }
    }

    /// Visit every value whose rectangle intersects `window`.
    pub fn query_intersecting<'a>(&'a self, window: &Rect, mut visit: impl FnMut(&'a T)) {
        if self.len == 0 {
            return;
        }
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            let node = &self.nodes[id as usize];
            if node.level == 0 {
                for &item in &node.children {
                    let (rect, value) = self.items[item as usize].as_ref().expect("live item");
                    if rect.intersects(window) {
                        visit(value);
                    }
                }
            } else {
                for &child in &node.children {
                    if self.nodes[child as usize].mbr.intersects(window) {
                        stack.push(child);
                    }
                }
            }
        }
    }

    /// Remove one rectangle equal to `rect` carrying a value equal to
    /// `value`. Returns whether anything was removed. Underfull nodes are
    /// dissolved and their entries reinserted (the classic CondenseTree).
    pub fn remove(&mut self, rect: &Rect, value: &T) -> bool
    where
        T: PartialEq,
    {
        let Some((leaf, pos)) = self.find_leaf(self.root, rect, value) else {
            return false;
        };
        let item = self.nodes[leaf as usize].children.remove(pos);
        self.items[item as usize] = None;
        self.free_items.push(item);
        self.len -= 1;
        self.condense(leaf);
        true
    }

    fn find_leaf(&self, node_id: u32, rect: &Rect, value: &T) -> Option<(u32, usize)>
    where
        T: PartialEq,
    {
        let node = &self.nodes[node_id as usize];
        if node.level == 0 {
            for (pos, &item) in node.children.iter().enumerate() {
                let (r, v) = self.items[item as usize].as_ref().expect("live item");
                if r == rect && v == value {
                    return Some((node_id, pos));
                }
            }
            None
        } else {
            for &child in &node.children {
                if self.nodes[child as usize].mbr.contains_rect(rect) {
                    if let Some(found) = self.find_leaf(child, rect, value) {
                        return Some(found);
                    }
                }
            }
            None
        }
    }

    fn condense(&mut self, mut node_id: u32) {
        let mut orphans: Vec<(u32, Rect, u32)> = Vec::new(); // (entry, rect, level)
        loop {
            let is_root = node_id == self.root;
            let parent = self.nodes[node_id as usize].parent;
            if !is_root && self.nodes[node_id as usize].children.len() < self.min_entries {
                // Dissolve this node: orphan its entries, unlink from parent.
                let level = self.nodes[node_id as usize].level;
                let children = std::mem::take(&mut self.nodes[node_id as usize].children);
                for c in children {
                    let r = self.entry_rect(level, c);
                    orphans.push((c, r, level));
                }
                let p = &mut self.nodes[parent as usize];
                let pos = p
                    .children
                    .iter()
                    .position(|&c| c == node_id)
                    .expect("child link");
                p.children.remove(pos);
                self.free_nodes.push(node_id);
            } else {
                self.recompute_mbr(node_id);
            }
            if is_root {
                break;
            }
            node_id = parent;
        }
        // Shrink the root if it became a lone-child internal node.
        while self.nodes[self.root as usize].level > 0
            && self.nodes[self.root as usize].children.len() == 1
        {
            let old_root = self.root;
            let child = self.nodes[old_root as usize].children[0];
            self.nodes[child as usize].parent = INVALID;
            self.root = child;
            self.free_nodes.push(old_root);
        }
        // Reinsert orphans at their original levels.
        for (entry, rect, level) in orphans {
            let mut reinserted = !0u64; // suppress forced reinsert during condense
            if level == 0 {
                self.insert_entry(entry, rect, 0, &mut reinserted);
            } else if self.nodes[self.root as usize].level > level {
                self.insert_entry(entry, rect, level, &mut reinserted);
            } else {
                // The tree shrank below this subtree's level: reinsert its
                // descendants item by item.
                let mut stack = vec![entry];
                while let Some(n) = stack.pop() {
                    let node = std::mem::take(&mut self.nodes[n as usize].children);
                    let lvl = self.nodes[n as usize].level;
                    for c in node {
                        if lvl == 0 {
                            let r = self.entry_rect(0, c);
                            self.insert_entry(c, r, 0, &mut reinserted);
                        } else {
                            stack.push(c);
                        }
                    }
                    self.free_nodes.push(n);
                }
            }
        }
    }

    /// STR bulk load: build a tree over `items` in one bottom-up pass.
    pub fn bulk_load(items: Vec<(Rect, T)>) -> Self {
        Self::bulk_load_with_max_entries(items, DEFAULT_MAX_ENTRIES)
    }

    /// Bulk-load a one-dimensional tree from inclusive `[lo, hi]`
    /// intervals — the shape `qar-store`'s per-attribute rule indexes
    /// use. Panics if any `lo > hi` (inherited from [`Rect::new`]).
    pub fn bulk_load_intervals(items: impl IntoIterator<Item = (f64, f64, T)>) -> Self {
        Self::bulk_load(
            items
                .into_iter()
                .map(|(lo, hi, value)| (Rect::new(&[lo], &[hi]), value))
                .collect(),
        )
    }

    /// STR bulk load with explicit node capacity.
    pub fn bulk_load_with_max_entries(items: Vec<(Rect, T)>, max_entries: usize) -> Self {
        let mut tree = Self::with_max_entries(max_entries);
        if items.is_empty() {
            return tree;
        }
        let dims = items[0].0.dims();
        tree.dims = Some(dims);
        tree.len = items.len();
        let mut entries: Vec<(u32, Rect)> = items
            .into_iter()
            .map(|(rect, value)| {
                assert_eq!(rect.dims(), dims, "mixed dimensionality");
                (tree.alloc_item(rect, value), rect)
            })
            .collect();

        let mut level = 0u32;
        loop {
            let node_ids = tree.str_pack(&mut entries, level, dims);
            if node_ids.len() == 1 {
                tree.root = node_ids[0];
                tree.nodes[tree.root as usize].parent = INVALID;
                // Node 0 was the placeholder root; free it unless reused.
                if tree.root != 0 {
                    tree.free_nodes.push(0);
                }
                break;
            }
            entries = node_ids
                .iter()
                .map(|&id| (id, tree.nodes[id as usize].mbr))
                .collect();
            level += 1;
        }
        tree
    }

    /// Pack `entries` into nodes at `level` using sort-tile-recursive
    /// tiling; returns the new node ids.
    fn str_pack(&mut self, entries: &mut [(u32, Rect)], level: u32, dims: usize) -> Vec<u32> {
        let capacity = self.max_entries;
        let mut out = Vec::new();
        self.str_tile(entries, 0, dims, capacity, level, &mut out);
        out
    }

    fn str_tile(
        &mut self,
        entries: &mut [(u32, Rect)],
        axis: usize,
        dims: usize,
        capacity: usize,
        level: u32,
        out: &mut Vec<u32>,
    ) {
        let n = entries.len();
        if n <= capacity {
            let children: Vec<u32> = entries.iter().map(|e| e.0).collect();
            let id = self.alloc_node(Node {
                level,
                parent: INVALID,
                mbr: Rect::point(&[0.0]),
                children,
            });
            if level > 0 {
                let kids = self.nodes[id as usize].children.clone();
                for c in kids {
                    self.nodes[c as usize].parent = id;
                }
            }
            self.recompute_mbr(id);
            out.push(id);
            return;
        }
        entries.sort_by(|a, b| {
            a.1.center(axis)
                .total_cmp(&b.1.center(axis))
                .then(a.0.cmp(&b.0))
        });
        let pages = n.div_ceil(capacity);
        let remaining_axes = dims - axis;
        // Number of slabs along this axis: pages^(1/remaining_axes).
        let slabs = if remaining_axes <= 1 {
            pages
        } else {
            (pages as f64).powf(1.0 / remaining_axes as f64).ceil() as usize
        }
        .max(1);
        let per_slab = n.div_ceil(slabs);
        let next_axis = if axis + 1 < dims { axis + 1 } else { axis };
        let mut start = 0;
        while start < n {
            let end = (start + per_slab).min(n);
            if axis + 1 < dims {
                self.str_tile(
                    &mut entries[start..end],
                    next_axis,
                    dims,
                    capacity,
                    level,
                    out,
                );
            } else {
                // Last axis: chunk straight into nodes.
                let mut s = start;
                while s < end {
                    let e = (s + capacity).min(end);
                    let children: Vec<u32> = entries[s..e].iter().map(|x| x.0).collect();
                    let id = self.alloc_node(Node {
                        level,
                        parent: INVALID,
                        mbr: Rect::point(&[0.0]),
                        children,
                    });
                    if level > 0 {
                        let kids = self.nodes[id as usize].children.clone();
                        for c in kids {
                            self.nodes[c as usize].parent = id;
                        }
                    }
                    self.recompute_mbr(id);
                    out.push(id);
                    s = e;
                }
                start = end;
                continue;
            }
            start = end;
        }
    }

    /// Verify all structural invariants; panics with a description on the
    /// first violation. Test-and-debug helper.
    pub fn check_invariants(&self) {
        if self.len == 0 {
            return;
        }
        let mut item_count = 0usize;
        self.check_node(self.root, INVALID, &mut item_count);
        assert_eq!(item_count, self.len, "live items vs len");
        let root = &self.nodes[self.root as usize];
        if root.level > 0 {
            assert!(
                root.children.len() >= 2,
                "internal root needs >= 2 children"
            );
        }
    }

    fn check_node(&self, id: u32, parent: u32, item_count: &mut usize) {
        let node = &self.nodes[id as usize];
        assert_eq!(node.parent, parent, "parent link of node {id}");
        if id != self.root {
            assert!(
                node.children.len() >= self.min_entries,
                "node {id} underfull: {}",
                node.children.len()
            );
        }
        assert!(
            node.children.len() <= self.max_entries,
            "node {id} overfull: {}",
            node.children.len()
        );
        let mut mbr: Option<Rect> = None;
        for &c in &node.children {
            let r = if node.level == 0 {
                *item_count += 1;
                self.items[c as usize].as_ref().expect("live item").0
            } else {
                let child = &self.nodes[c as usize];
                assert_eq!(child.level + 1, node.level, "level mismatch under {id}");
                self.check_node(c, id, item_count);
                child.mbr
            };
            mbr = Some(match mbr {
                Some(m) => m.union(&r),
                None => r,
            });
        }
        let expect = mbr.expect("non-empty node");
        assert_eq!(expect, node.mbr, "stale MBR at node {id}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::NaiveRectIndex;

    /// Deterministic pseudo-random f64 in [0, 1000) without external crates.
    fn prng(state: &mut u64) -> f64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((*state >> 11) as f64 / (1u64 << 53) as f64) * 1000.0
    }

    fn random_rect(state: &mut u64, dims: usize) -> Rect {
        let lo: Vec<f64> = (0..dims).map(|_| prng(state)).collect();
        let hi: Vec<f64> = lo.iter().map(|&l| l + prng(state) / 10.0).collect();
        Rect::new(&lo, &hi)
    }

    #[test]
    fn empty_tree_queries_nothing() {
        let tree: RStarTree<u32> = RStarTree::new();
        let mut hits = 0;
        tree.query_point(&[1.0], |_| hits += 1);
        assert_eq!(hits, 0);
        assert!(tree.is_empty());
    }

    #[test]
    fn single_insert_and_query() {
        let mut tree = RStarTree::new();
        tree.insert(Rect::new(&[0.0], &[10.0]), 7u32);
        let mut hits = Vec::new();
        tree.query_point(&[5.0], |v| hits.push(*v));
        assert_eq!(hits, vec![7]);
        tree.query_point(&[11.0], |v| hits.push(*v));
        assert_eq!(hits, vec![7]);
        tree.check_invariants();
    }

    #[test]
    fn split_grows_tree_and_keeps_answers() {
        let mut tree = RStarTree::with_max_entries(4);
        for i in 0..64 {
            let x = i as f64;
            tree.insert(Rect::new(&[x, x], &[x + 0.5, x + 0.5]), i);
        }
        tree.check_invariants();
        assert!(tree.height() >= 2);
        for i in 0..64 {
            let x = i as f64 + 0.25;
            let mut hits = Vec::new();
            tree.query_point(&[x, x], |v| hits.push(*v));
            assert_eq!(hits, vec![i], "point {x}");
        }
    }

    #[test]
    fn matches_naive_on_point_queries() {
        let mut state = 42u64;
        let mut tree = RStarTree::with_max_entries(8);
        let mut naive = NaiveRectIndex::new();
        for i in 0..500u32 {
            let r = random_rect(&mut state, 3);
            tree.insert(r, i);
            naive.insert(r, i);
        }
        tree.check_invariants();
        for _ in 0..200 {
            let p: Vec<f64> = (0..3).map(|_| prng(&mut state)).collect();
            let mut a = Vec::new();
            let mut b = Vec::new();
            tree.query_point(&p, |v| a.push(*v));
            naive.query_point(&p, |v| b.push(*v));
            a.sort();
            b.sort();
            assert_eq!(a, b, "point {p:?}");
        }
    }

    #[test]
    fn matches_naive_on_window_queries() {
        let mut state = 7u64;
        let mut tree = RStarTree::with_max_entries(8);
        let mut naive = NaiveRectIndex::new();
        for i in 0..300u32 {
            let r = random_rect(&mut state, 2);
            tree.insert(r, i);
            naive.insert(r, i);
        }
        for _ in 0..100 {
            let w = random_rect(&mut state, 2);
            let mut a = Vec::new();
            let mut b = Vec::new();
            tree.query_intersecting(&w, |v| a.push(*v));
            naive.query_intersecting(&w, |v| b.push(*v));
            a.sort();
            b.sort();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn bulk_load_matches_incremental() {
        let mut state = 99u64;
        let items: Vec<(Rect, u32)> = (0..1000u32)
            .map(|i| (random_rect(&mut state, 2), i))
            .collect();
        let bulk = RStarTree::bulk_load(items.clone());
        bulk.check_invariants();
        assert_eq!(bulk.len(), 1000);
        let mut incr = RStarTree::new();
        for (r, v) in items {
            incr.insert(r, v);
        }
        for _ in 0..100 {
            let p: Vec<f64> = (0..2).map(|_| prng(&mut state)).collect();
            let mut a = Vec::new();
            let mut b = Vec::new();
            bulk.query_point(&p, |v| a.push(*v));
            incr.query_point(&p, |v| b.push(*v));
            a.sort();
            b.sort();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn bulk_load_intervals_point_and_window_queries() {
        // Intervals [i, i+10] for i in 0..100: point 25.0 hits 15..=25.
        let tree =
            RStarTree::bulk_load_intervals((0..100u32).map(|i| (i as f64, i as f64 + 10.0, i)));
        tree.check_invariants();
        assert_eq!(tree.len(), 100);
        let mut hits = Vec::new();
        tree.query_point(&[25.0], |v| hits.push(*v));
        hits.sort();
        assert_eq!(hits, (15..=25).collect::<Vec<u32>>());
        let mut overlapping = Vec::new();
        tree.query_intersecting(&Rect::new(&[98.0], &[200.0]), |v| overlapping.push(*v));
        overlapping.sort();
        assert_eq!(overlapping, (88..100).collect::<Vec<u32>>());
        let empty: RStarTree<u8> = RStarTree::bulk_load_intervals(std::iter::empty());
        assert!(empty.is_empty());
    }

    #[test]
    fn bulk_load_small_input() {
        let tree = RStarTree::bulk_load(vec![(Rect::point(&[1.0]), "x")]);
        tree.check_invariants();
        let mut hits = Vec::new();
        tree.query_point(&[1.0], |v| hits.push(*v));
        assert_eq!(hits, vec!["x"]);
        let empty: RStarTree<u8> = RStarTree::bulk_load(vec![]);
        assert!(empty.is_empty());
    }

    #[test]
    fn remove_then_query() {
        let mut state = 5u64;
        let mut tree = RStarTree::with_max_entries(6);
        let mut rects = Vec::new();
        for i in 0..200u32 {
            let r = random_rect(&mut state, 2);
            rects.push((r, i));
            tree.insert(r, i);
        }
        // Remove every other item.
        for (r, i) in rects.iter().filter(|(_, i)| i % 2 == 0) {
            assert!(tree.remove(r, i), "remove {i}");
        }
        tree.check_invariants();
        assert_eq!(tree.len(), 100);
        for (r, i) in &rects {
            let center: Vec<f64> = (0..2).map(|d| r.center(d)).collect();
            let mut hits = Vec::new();
            tree.query_point(&center, |v| hits.push(*v));
            if i % 2 == 0 {
                assert!(!hits.contains(i));
            } else {
                assert!(hits.contains(i));
            }
        }
        assert!(!tree.remove(&rects[0].0, &rects[0].1), "double remove");
    }

    #[test]
    fn remove_everything_leaves_empty_tree() {
        let mut tree = RStarTree::with_max_entries(4);
        let rects: Vec<(Rect, u32)> = (0..50)
            .map(|i| (Rect::point(&[i as f64, -(i as f64)]), i))
            .collect();
        for (r, v) in &rects {
            tree.insert(*r, *v);
        }
        for (r, v) in &rects {
            assert!(tree.remove(r, v));
        }
        assert!(tree.is_empty());
        let mut hits = 0;
        tree.query_point(&[0.0, 0.0], |_| hits += 1);
        assert_eq!(hits, 0);
    }

    #[test]
    fn duplicate_rectangles_are_distinct_entries() {
        let mut tree = RStarTree::new();
        let r = Rect::new(&[0.0], &[1.0]);
        tree.insert(r, "a");
        tree.insert(r, "b");
        let mut hits = Vec::new();
        tree.query_point(&[0.5], |v| hits.push(*v));
        hits.sort();
        assert_eq!(hits, vec!["a", "b"]);
        assert!(tree.remove(&r, &"a"));
        hits.clear();
        tree.query_point(&[0.5], |v| hits.push(*v));
        assert_eq!(hits, vec!["b"]);
    }

    #[test]
    #[should_panic(expected = "mixed dimensionality")]
    fn mixed_dims_rejected() {
        let mut tree = RStarTree::new();
        tree.insert(Rect::point(&[1.0]), 0);
        tree.insert(Rect::point(&[1.0, 2.0]), 1);
    }

    #[test]
    fn approx_bytes_grows() {
        let mut tree = RStarTree::new();
        let before = tree.approx_bytes();
        for i in 0..1000 {
            tree.insert(Rect::point(&[i as f64]), i);
        }
        assert!(tree.approx_bytes() > before);
    }

    #[test]
    fn high_dim_rects() {
        let mut state = 3u64;
        let mut tree = RStarTree::with_max_entries(16);
        let mut naive = NaiveRectIndex::new();
        for i in 0..200u32 {
            let r = random_rect(&mut state, 7);
            tree.insert(r, i);
            naive.insert(r, i);
        }
        tree.check_invariants();
        for _ in 0..50 {
            let p: Vec<f64> = (0..7).map(|_| prng(&mut state)).collect();
            let mut a = Vec::new();
            let mut b = Vec::new();
            tree.query_point(&p, |v| a.push(*v));
            naive.query_point(&p, |v| b.push(*v));
            a.sort();
            b.sort();
            assert_eq!(a, b);
        }
    }
}
