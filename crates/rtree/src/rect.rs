//! Axis-aligned rectangles with inline coordinate storage.

/// Maximum dimensionality of a [`Rect`]. One dimension per quantitative
/// attribute of a super-candidate; seven attributes is already the whole
/// schema of the paper's evaluation dataset, so eight leaves headroom.
pub const MAX_DIMS: usize = 8;

/// A closed axis-aligned box `[lo_d, hi_d]` in up to [`MAX_DIMS`]
/// dimensions. Points are degenerate rectangles (`lo == hi`).
///
/// Coordinates are `f64` so the same tree serves both the miner (integer
/// codes) and general spatial tests; all comparisons are closed-interval,
/// matching the paper's inclusive value ranges.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    dims: u8,
    lo: [f64; MAX_DIMS],
    hi: [f64; MAX_DIMS],
}

impl Rect {
    /// Build from bound slices. Panics if lengths differ, exceed
    /// [`MAX_DIMS`], are empty, or any `lo > hi`.
    pub fn new(lo: &[f64], hi: &[f64]) -> Self {
        assert_eq!(lo.len(), hi.len(), "bound slices must have equal length");
        assert!(!lo.is_empty(), "rectangles need at least one dimension");
        assert!(lo.len() <= MAX_DIMS, "at most {MAX_DIMS} dimensions");
        let mut r = Rect {
            dims: lo.len() as u8,
            lo: [0.0; MAX_DIMS],
            hi: [0.0; MAX_DIMS],
        };
        for d in 0..lo.len() {
            assert!(lo[d] <= hi[d], "lo {} > hi {} in dim {d}", lo[d], hi[d]);
            r.lo[d] = lo[d];
            r.hi[d] = hi[d];
        }
        r
    }

    /// A degenerate rectangle covering exactly one point.
    pub fn point(coords: &[f64]) -> Self {
        Self::new(coords, coords)
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.dims as usize
    }

    /// Lower bound in dimension `d`.
    pub fn lo(&self, d: usize) -> f64 {
        debug_assert!(d < self.dims());
        self.lo[d]
    }

    /// Upper bound in dimension `d`.
    pub fn hi(&self, d: usize) -> f64 {
        debug_assert!(d < self.dims());
        self.hi[d]
    }

    /// Centre coordinate in dimension `d`.
    pub fn center(&self, d: usize) -> f64 {
        (self.lo[d] + self.hi[d]) / 2.0
    }

    /// Product of side lengths. Degenerate sides contribute factor 0, so
    /// points have area 0 — fine for comparisons, which is all the tree
    /// does with areas.
    pub fn area(&self) -> f64 {
        (0..self.dims()).map(|d| self.hi[d] - self.lo[d]).product()
    }

    /// Sum of side lengths (the "margin" of BKSS90, up to the factor 2^d-1).
    pub fn margin(&self) -> f64 {
        (0..self.dims()).map(|d| self.hi[d] - self.lo[d]).sum()
    }

    /// Smallest rectangle covering both `self` and `other`.
    pub fn union(&self, other: &Rect) -> Rect {
        debug_assert_eq!(self.dims, other.dims);
        let mut r = *self;
        for d in 0..self.dims() {
            r.lo[d] = r.lo[d].min(other.lo[d]);
            r.hi[d] = r.hi[d].max(other.hi[d]);
        }
        r
    }

    /// Growth in area needed to absorb `other`.
    pub fn enlargement(&self, other: &Rect) -> f64 {
        self.union(other).area() - self.area()
    }

    /// Closed-interval intersection test.
    pub fn intersects(&self, other: &Rect) -> bool {
        debug_assert_eq!(self.dims, other.dims);
        (0..self.dims()).all(|d| self.lo[d] <= other.hi[d] && other.lo[d] <= self.hi[d])
    }

    /// Area of the intersection (0 when disjoint).
    pub fn overlap_area(&self, other: &Rect) -> f64 {
        debug_assert_eq!(self.dims, other.dims);
        let mut area = 1.0;
        for d in 0..self.dims() {
            let lo = self.lo[d].max(other.lo[d]);
            let hi = self.hi[d].min(other.hi[d]);
            if hi < lo {
                return 0.0;
            }
            area *= hi - lo;
        }
        area
    }

    /// Does this rectangle contain the point `p` (closed bounds)?
    pub fn contains_point(&self, p: &[f64]) -> bool {
        debug_assert_eq!(p.len(), self.dims());
        (0..self.dims()).all(|d| self.lo[d] <= p[d] && p[d] <= self.hi[d])
    }

    /// Does this rectangle fully contain `other`?
    pub fn contains_rect(&self, other: &Rect) -> bool {
        debug_assert_eq!(self.dims, other.dims);
        (0..self.dims()).all(|d| self.lo[d] <= other.lo[d] && other.hi[d] <= self.hi[d])
    }

    /// Squared Euclidean distance between the centres of two rectangles
    /// (used by forced reinsert to rank entries).
    pub fn center_distance_sq(&self, other: &Rect) -> f64 {
        debug_assert_eq!(self.dims, other.dims);
        (0..self.dims())
            .map(|d| {
                let delta = self.center(d) - other.center(d);
                delta * delta
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let r = Rect::new(&[0.0, 1.0], &[2.0, 5.0]);
        assert_eq!(r.dims(), 2);
        assert_eq!(r.lo(0), 0.0);
        assert_eq!(r.hi(1), 5.0);
        assert_eq!(r.center(1), 3.0);
        assert_eq!(r.area(), 8.0);
        assert_eq!(r.margin(), 6.0);
    }

    #[test]
    fn point_is_degenerate() {
        let p = Rect::point(&[3.0, 4.0]);
        assert_eq!(p.area(), 0.0);
        assert!(p.contains_point(&[3.0, 4.0]));
        assert!(!p.contains_point(&[3.0, 4.1]));
    }

    #[test]
    #[should_panic(expected = "lo")]
    fn inverted_bounds_panic() {
        let _ = Rect::new(&[1.0], &[0.0]);
    }

    #[test]
    #[should_panic(expected = "at least one dimension")]
    fn empty_dims_panic() {
        let _ = Rect::new(&[], &[]);
    }

    #[test]
    fn union_covers_both() {
        let a = Rect::new(&[0.0, 0.0], &[1.0, 1.0]);
        let b = Rect::new(&[2.0, -1.0], &[3.0, 0.5]);
        let u = a.union(&b);
        assert!(u.contains_rect(&a));
        assert!(u.contains_rect(&b));
        assert_eq!(u.lo(1), -1.0);
        assert_eq!(u.hi(0), 3.0);
    }

    #[test]
    fn enlargement_zero_when_contained() {
        let a = Rect::new(&[0.0], &[10.0]);
        let b = Rect::new(&[2.0], &[3.0]);
        assert_eq!(a.enlargement(&b), 0.0);
        assert_eq!(b.enlargement(&a), 10.0 - 1.0);
    }

    #[test]
    fn intersection_tests() {
        let a = Rect::new(&[0.0, 0.0], &[2.0, 2.0]);
        let b = Rect::new(&[2.0, 2.0], &[3.0, 3.0]); // touching corner: closed => intersects
        let c = Rect::new(&[2.1, 2.1], &[3.0, 3.0]);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert_eq!(a.overlap_area(&b), 0.0);
        assert_eq!(a.overlap_area(&c), 0.0);
        let d = Rect::new(&[1.0, 1.0], &[3.0, 4.0]);
        assert_eq!(a.overlap_area(&d), 1.0);
    }

    #[test]
    fn closed_bounds_contain_edges() {
        let r = Rect::new(&[0.0], &[5.0]);
        assert!(r.contains_point(&[0.0]));
        assert!(r.contains_point(&[5.0]));
        assert!(!r.contains_point(&[5.000001]));
    }

    #[test]
    fn center_distance() {
        let a = Rect::new(&[0.0, 0.0], &[2.0, 2.0]); // center (1,1)
        let b = Rect::new(&[3.0, 5.0], &[5.0, 5.0]); // center (4,5)
        assert_eq!(a.center_distance_sq(&b), 9.0 + 16.0);
    }
}
