//! # qar-rtree — an R*-tree (Beckmann, Kriegel, Schneider, Seeger 1990)
//!
//! Section 5.2 of the paper counts the support of the quantitative parts of
//! "super-candidates" by asking, for every database record, *which
//! n-dimensional rectangles contain this n-dimensional point*. "The classic
//! solution to this problem is to put the rectangles in a R*-tree
//! \[BKSS90\]" — so this crate implements one, from the original description:
//!
//! * **ChooseSubtree** — minimum overlap enlargement at the leaf level,
//!   minimum area enlargement above it;
//! * **OverflowTreatment / forced reinsert** — on the first overflow per
//!   level per insertion, the 30 % of entries farthest from the node centre
//!   are reinserted ("close reinsert") instead of splitting;
//! * **topological split** — axis chosen by minimum margin sum, split index
//!   by minimum overlap (ties: minimum area);
//! * **STR bulk loading** (Leutenegger et al.) for building a tree from a
//!   known rectangle set in one pass — what the miner does at the start of
//!   every counting pass;
//! * point and window queries, deletion with subtree reinsertion, and a
//!   structural [`RStarTree::check_invariants`] used heavily by the
//!   property tests.
//!
//! Rectangles are low-dimensional (one dimension per quantitative attribute
//! of a super-candidate), so coordinates live inline in a fixed array of
//! [`MAX_DIMS`] and the whole [`Rect`] is `Copy`.

#![warn(missing_docs)]

pub mod naive;
pub mod rect;
mod tree;

pub use naive::NaiveRectIndex;
pub use rect::{Rect, MAX_DIMS};
pub use tree::{RStarTree, DEFAULT_MAX_ENTRIES};
