//! The worker side of count-distribution mining.
//!
//! A worker is a dumb, exact counter: it receives the table's schema and
//! encoders, accumulates a contiguous partition of already-encoded rows,
//! and answers counting requests with raw `u64` tallies over that
//! partition — never filtered by a support threshold, so the
//! coordinator's element-wise merge reproduces the serial counts
//! exactly. All policy (candidate generation, frequency, rules) stays on
//! the coordinator.
//!
//! Errors split two ways, mirroring the serve protocol's convention:
//! application-level problems (rows before setup, a code outside its
//! encoder's range) become [`DistResponse::Error`] replies and the
//! connection lives on; transport-level problems (corrupt frame, socket
//! loss) terminate the serve loop with a [`ProtocolError`].

use qar_core::frequent::attribute_value_counts;
use qar_core::supercand::{count_candidates_opts, ScanOptions};
use qar_core::{MinerConfig, ScanKernel};
use qar_store::dist::{read_request, write_response, DistRequest, DistResponse};
use qar_store::protocol::ProtocolError;
use qar_table::{AttributeEncoder, EncodedTable, Schema};
use std::io::{Read, Write};
use std::net::TcpStream;

/// Tuning knobs for a worker's counting scans. They affect speed only —
/// counts are exact under every kernel and thread count.
#[derive(Debug, Clone, Copy)]
pub struct WorkerOptions {
    /// Threads per counting scan; `0` picks the machine default (the
    /// same resolution [`MinerConfig::effective_parallelism`] applies).
    pub num_threads: usize,
    /// Scan kernel for candidate counting.
    pub kernel: ScanKernel,
}

impl Default for WorkerOptions {
    fn default() -> Self {
        WorkerOptions {
            num_threads: 0,
            kernel: ScanKernel::Auto,
        }
    }
}

impl WorkerOptions {
    fn effective_threads(&self) -> usize {
        if self.num_threads > 0 {
            return self.num_threads;
        }
        MinerConfig::default().effective_parallelism()
    }
}

/// The accumulated partition: schema, encoders, and the code columns
/// received so far. Columns are kept raw until the first counting
/// request, then assembled once into an [`EncodedTable`] (no copy).
struct Partition {
    schema: Schema,
    encoders: Vec<AttributeEncoder>,
    columns: Vec<Vec<u32>>,
    rows: usize,
    encoded: Option<EncodedTable>,
}

impl Partition {
    fn new(schema: Schema, encoders: Vec<AttributeEncoder>) -> Self {
        let columns = vec![Vec::new(); schema.len()];
        Partition {
            schema,
            encoders,
            columns,
            rows: 0,
            encoded: None,
        }
    }

    /// Append one row block; rejects shape and code-range violations
    /// (untrusted input — `EncodedTable::from_parts` does not check).
    fn append(&mut self, block: Vec<Vec<u32>>) -> Result<(), String> {
        if block.is_empty() {
            return Ok(()); // zero-row block
        }
        if block.len() != self.schema.len() {
            return Err(format!(
                "row block has {} columns, schema has {}",
                block.len(),
                self.schema.len()
            ));
        }
        for (i, col) in block.iter().enumerate() {
            let cardinality = self.encoders[i].cardinality();
            if let Some(&bad) = col.iter().find(|&&c| c >= cardinality) {
                return Err(format!(
                    "attribute {i}: code {bad} outside cardinality {cardinality}"
                ));
            }
        }
        // A block after counting began re-opens the raw columns (the
        // assembled table owns them by then — copy them back out).
        if let Some(encoded) = self.encoded.take() {
            self.columns = self
                .schema
                .iter()
                .map(|(id, _)| encoded.codes(id).to_vec())
                .collect();
        }
        let added = block[0].len();
        for (col, add) in self.columns.iter_mut().zip(block) {
            col.extend_from_slice(&add);
        }
        self.rows += added;
        Ok(())
    }

    /// The partition as a scannable table, assembled on first use.
    fn table(&mut self) -> &EncodedTable {
        if self.encoded.is_none() {
            let columns = std::mem::take(&mut self.columns);
            self.encoded = Some(EncodedTable::from_parts(
                self.schema.clone(),
                self.encoders.clone(),
                columns,
                self.rows,
            ));
        }
        self.encoded.as_ref().expect("assembled above")
    }
}

/// Serve one coordinator connection until `Shutdown` or a clean EOF.
///
/// Generic over the stream so tests can drive it with in-memory pipes;
/// [`run_worker`] wraps it around a [`TcpStream`].
pub fn serve_connection<S: Read + Write>(
    stream: &mut S,
    opts: &WorkerOptions,
) -> Result<(), ProtocolError> {
    let mut partition: Option<Partition> = None;
    loop {
        let Some(request) = read_request(stream)? else {
            return Ok(()); // coordinator went away at a frame boundary
        };
        let response = match request {
            DistRequest::Setup { schema, encoders } => {
                partition = Some(Partition::new(schema, encoders));
                DistResponse::Ready
            }
            DistRequest::Rows { columns } => match &mut partition {
                None => DistResponse::Error {
                    message: "rows before setup".to_string(),
                },
                Some(p) => match p.append(columns) {
                    Ok(()) => DistResponse::RowsLoaded {
                        total_rows: p.rows as u64,
                    },
                    Err(message) => DistResponse::Error { message },
                },
            },
            DistRequest::CountItems => match &mut partition {
                None => DistResponse::Error {
                    message: "count before setup".to_string(),
                },
                Some(p) => DistResponse::ItemCounts {
                    counts: attribute_value_counts(p.table()),
                },
            },
            DistRequest::CountCandidates { candidates, .. } => match &mut partition {
                None => DistResponse::Error {
                    message: "count before setup".to_string(),
                },
                Some(p) => {
                    let options = ScanOptions {
                        kernel: opts.kernel,
                        ..ScanOptions::new(opts.effective_threads())
                    };
                    match count_candidates_opts(p.table(), &candidates, None, options) {
                        Ok((counts, _)) => DistResponse::Counts { counts },
                        Err(_) => DistResponse::Error {
                            message: "counting scan was cancelled".to_string(),
                        },
                    }
                }
            },
            DistRequest::Shutdown => {
                write_response(stream, &DistResponse::Bye)?;
                return Ok(());
            }
        };
        write_response(stream, &response)?;
    }
}

/// Connect to a coordinator at `addr` and serve until shutdown — the
/// body of `qar worker --connect ADDR`.
pub fn run_worker(addr: &str, opts: &WorkerOptions) -> Result<(), ProtocolError> {
    let mut stream = TcpStream::connect(addr).map_err(ProtocolError::Io)?;
    let _ = stream.set_nodelay(true);
    serve_connection(&mut stream, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qar_itemset::{Item, Itemset};
    use qar_store::dist::{read_response, write_request};
    use std::io::Cursor;

    fn schema_and_encoders() -> (Schema, Vec<AttributeEncoder>) {
        let schema = Schema::builder()
            .quantitative("age")
            .categorical("married")
            .build()
            .unwrap();
        let encoders = vec![
            AttributeEncoder::quant_intervals_from(&[20.0, 30.0, 40.0], vec![25.0, 35.0], true),
            AttributeEncoder::Categorical {
                labels: vec!["No".to_string(), "Yes".to_string()],
            },
        ];
        (schema, encoders)
    }

    /// Run a scripted conversation through the serve loop.
    fn converse(requests: &[DistRequest]) -> Vec<DistResponse> {
        let mut input = Vec::new();
        for request in requests {
            write_request(&mut input, request).unwrap();
        }
        // A combined Read+Write stream over (script, captured output).
        struct Duplex {
            input: Cursor<Vec<u8>>,
            output: Vec<u8>,
        }
        impl Read for Duplex {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                self.input.read(buf)
            }
        }
        impl Write for Duplex {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.output.write(buf)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut stream = Duplex {
            input: Cursor::new(input),
            output: Vec::new(),
        };
        serve_connection(&mut stream, &WorkerOptions::default()).unwrap();
        let mut cursor = Cursor::new(stream.output);
        let mut responses = Vec::new();
        while let Some(response) = read_response(&mut cursor).unwrap() {
            responses.push(response);
        }
        responses
    }

    #[test]
    fn full_conversation_counts_exactly() {
        let (schema, encoders) = schema_and_encoders();
        let responses = converse(&[
            DistRequest::Setup { schema, encoders },
            DistRequest::Rows {
                columns: vec![vec![0, 1, 1], vec![1, 1, 0]],
            },
            DistRequest::Rows {
                columns: vec![vec![2], vec![1]],
            },
            DistRequest::CountItems,
            DistRequest::CountCandidates {
                pass: 2,
                candidates: vec![
                    Itemset::new(vec![Item::value(0, 1), Item::value(1, 1)]),
                    Itemset::new(vec![Item::value(0, 0), Item::value(1, 0)]),
                ],
            },
            DistRequest::Shutdown,
        ]);
        assert_eq!(
            responses,
            vec![
                DistResponse::Ready,
                DistResponse::RowsLoaded { total_rows: 3 },
                DistResponse::RowsLoaded { total_rows: 4 },
                DistResponse::ItemCounts {
                    counts: vec![vec![1, 2, 1], vec![1, 3]],
                },
                DistResponse::Counts { counts: vec![1, 0] },
                DistResponse::Bye,
            ]
        );
    }

    #[test]
    fn protocol_violations_are_soft_errors() {
        let (schema, encoders) = schema_and_encoders();
        let responses = converse(&[
            DistRequest::Rows {
                columns: vec![vec![0]],
            },
            DistRequest::CountItems,
            DistRequest::Setup {
                schema: schema.clone(),
                encoders: encoders.clone(),
            },
            DistRequest::Rows {
                columns: vec![vec![0]], // one column, schema has two
            },
            DistRequest::Rows {
                columns: vec![vec![99], vec![0]], // code out of range
            },
            DistRequest::Rows {
                columns: vec![vec![0], vec![1]],
            },
            DistRequest::Shutdown,
        ]);
        assert!(matches!(responses[0], DistResponse::Error { .. }));
        assert!(matches!(responses[1], DistResponse::Error { .. }));
        assert_eq!(responses[2], DistResponse::Ready);
        assert!(matches!(responses[3], DistResponse::Error { .. }));
        assert!(matches!(responses[4], DistResponse::Error { .. }));
        // The partition survives bad blocks untouched.
        assert_eq!(responses[5], DistResponse::RowsLoaded { total_rows: 1 });
        assert_eq!(responses[6], DistResponse::Bye);
    }

    #[test]
    fn empty_partition_counts_zero() {
        let (schema, encoders) = schema_and_encoders();
        let responses = converse(&[
            DistRequest::Setup { schema, encoders },
            DistRequest::CountItems,
            DistRequest::CountCandidates {
                pass: 2,
                candidates: vec![Itemset::new(vec![Item::value(0, 0), Item::value(1, 0)])],
            },
            DistRequest::Shutdown,
        ]);
        assert_eq!(
            responses[1],
            DistResponse::ItemCounts {
                counts: vec![vec![0, 0, 0], vec![0, 0]],
            }
        );
        assert_eq!(responses[2], DistResponse::Counts { counts: vec![0] });
    }
}
